#!/usr/bin/env python
"""Compare pipeline schedules for a custom Transformer.

The paper's §3.3 closes with: "the pipeline method can be selected based
on the tradeoff between throughput and the frequency of extra information
updates."  This example walks that decision for a user-defined
architecture across *every registered schedule* — the simulated timelines
for all of them, and the throughput-vs-refresh table for those the §3.3
analytic model covers.  A newly registered
:class:`repro.pipeline.spec.ScheduleSpec` shows up here without edits.

Run:  python examples/schedule_explorer.py [--d-model 768] [--depth 8]
"""

import argparse

from repro.perfmodel import PipelinePerfModel, P100
from repro.perfmodel.arch import TransformerArch
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks
from repro.pipeline.spec import get_spec, schedule_names
from repro.profiler import render_timeline, utilization


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--d-model", type=int, default=768)
    parser.add_argument("--d-ff", type=int, default=3072)
    parser.add_argument("--heads", type=int, default=12)
    parser.add_argument("--seq-len", type=int, default=128)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--b-micro", type=int, default=32)
    args = parser.parse_args()

    arch = TransformerArch("custom", "BertLayer", args.d_model, args.d_ff,
                           args.heads, args.seq_len)
    print(f"architecture: d_model={arch.d_model} d_ff={arch.d_ff} "
          f"h={arch.num_heads} S={arch.seq_len} "
          f"({arch.params_per_block/1e6:.1f}M params/block)\n")

    print("--- simulated timelines (one step each) ---")
    for name in schedule_names():
        costs = compute_stage_costs(arch, P100, args.b_micro,
                                    overhead_s=host_overhead(name))
        cfg = PipelineConfig(depth=args.depth, n_micro=args.depth, costs=costs)
        try:
            builder = make_schedule(name, cfg)
        except ValueError as err:
            print(f"\n{name}: skipped at depth {args.depth} ({err})")
            continue
        res = simulate_tasks(builder.build(), builder.num_devices)
        util = utilization(res.timeline)
        print(f"\n{name} [step {res.makespan*1000:.0f} ms, GPU util {util:.1%}]"
              f" — {get_spec(name).description}")
        print(render_timeline(res.timeline, width=90, show_legend=False))

    print("\n--- throughput vs refresh-frequency tradeoff (PipeFisher) ---")
    print(f"{'schedule':>12s} {'thr (seqs/s)':>13s} {'(c+i)/bubble':>13s} "
          f"{'refresh steps':>14s}")
    rows = []
    for name in schedule_names():
        if get_spec(name).critical_path is None:
            continue  # no §3.3 analytic model (simulate it above instead)
        model = PipelinePerfModel(arch, P100, name)
        r = model.report(args.b_micro, args.depth)
        rows.append((name, r))
        print(f"{name:>12s} {r.throughput_pipefisher:13.1f} {r.ratio:13.2f} "
              f"{r.refresh_steps:14d}")
    best_thr = max(rows, key=lambda x: x[1].throughput_pipefisher)[0]
    best_fresh = min(rows, key=lambda x: x[1].refresh_steps)[0]
    print(f"\nhighest throughput: {best_thr}; most frequent curvature "
          f"refresh: {best_fresh}")
    print("(the paper picks Chimera for throughput and accepts the less "
          "frequent refresh)")


if __name__ == "__main__":
    main()
