#!/usr/bin/env python
"""Capacity planning for pipeline-parallel LLM pretraining.

The intro's motivating scenario: you have a cluster of accelerators and a
target model; which (schedule, depth, micro-batch, recomputation) settings
fit device memory and maximize throughput — and what curvature-refresh
frequency would PipeFisher buy you there?

Uses the §3.3 performance/memory models to search the configuration
space, evaluated through the shared sweep engine so the cost model of
each (arch, hardware, B_micro) is computed once across the whole
schedule x depth x recompute search instead of per grid row.

Run:  python examples/capacity_planner.py [--arch BERT-Large] [--mem-gb 16]
"""

import argparse

from repro.perfmodel import MemoryModel
from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.pipeline.spec import get_spec, schedule_names
from repro.sweep import default_engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="BERT-Large", choices=sorted(ARCHITECTURES))
    parser.add_argument("--hardware", default="P100", choices=sorted(HARDWARE))
    parser.add_argument("--mem-gb", type=float, default=None,
                        help="memory budget (defaults to the device's)")
    parser.add_argument("--layers-per-stage", type=int, default=1)
    args = parser.parse_args()

    arch = ARCHITECTURES[args.arch]
    hw = HARDWARE[args.hardware]
    budget = args.mem_gb if args.mem_gb is not None else hw.memory_gb

    print(f"planning {arch.name} on {hw.name} ({budget:.0f} GB budget)\n")
    print(f"{'schedule':>9s} {'D':>4s} {'B':>4s} {'R':>2s} {'mem GB':>7s} "
          f"{'thr PF':>8s} {'refresh':>8s}  fits")

    engine = default_engine()
    feasible = []
    # Every registered schedule the §3.3 analytic model covers — a newly
    # registered spec joins the search without edits here.
    for schedule in schedule_names():
        spec = get_spec(schedule)
        if spec.critical_path is None:
            continue
        stages_dev = spec.stages_per_device(1)
        model = engine.perf_model(arch, hw, schedule,
                                  layers_per_stage=args.layers_per_stage)
        for depth in (4, 8, 16):
            for b_micro in (8, 16, 32, 64):
                for recompute in (False, True):
                    mm = MemoryModel(arch, args.layers_per_stage, stages_dev)
                    bd = mm.breakdown(b_micro, depth, recompute=recompute)
                    fits = bd.total_gb() <= budget
                    r = model.report(b_micro, depth, recompute=recompute)
                    flag = "R" if recompute else "-"
                    print(f"{schedule:>9s} {depth:4d} {b_micro:4d} {flag:>2s} "
                          f"{bd.total_gb():7.2f} {r.throughput_pipefisher:8.1f} "
                          f"{r.refresh_steps:8d}  {'yes' if fits else 'NO'}")
                    if fits:
                        feasible.append(
                            (r.throughput_pipefisher, schedule, depth, b_micro,
                             recompute, r.refresh_steps, bd.total_gb())
                        )

    if not feasible:
        print("\nno feasible configuration — increase the memory budget")
        return
    thr, schedule, depth, b_micro, recompute, refresh, mem = max(feasible)
    print(f"\nbest feasible: {schedule} D={depth} B_micro={b_micro}"
          f"{' +recompute' if recompute else ''} -> "
          f"{thr:.1f} seqs/s, {mem:.1f} GB, curvature refresh every "
          f"{refresh} steps")
    costs = engine.stats()["stage_costs"]
    print(f"(sweep engine: {costs.hits} cost-cache hits / "
          f"{costs.misses} computes across the search)")


if __name__ == "__main__":
    main()
