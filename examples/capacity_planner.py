#!/usr/bin/env python
"""Capacity planning for pipeline-parallel LLM pretraining.

The intro's motivating scenario: you have a cluster of accelerators and a
target model; which (schedule, depth, micro-batch, recomputation) settings
fit device memory and maximize throughput — and what curvature-refresh
frequency would PipeFisher buy you there?

The search itself lives in :mod:`repro.service.planner` (the §3.3
performance/memory models, evaluated through the shared sweep engine so
each (arch, hardware, B_micro) cost model is computed once across the
whole grid); this script prints it.  "Best" uses the planner's pinned
tie-break — highest throughput, then lower memory, then schedule
registration order — not tuple comparison.

Run locally:   python examples/capacity_planner.py [--arch BERT-Large] [--mem-gb 16]
Or against a running service (``python -m repro.cli serve``)::

    python examples/capacity_planner.py --url http://127.0.0.1:8351
"""

import argparse

from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE


def print_plan(result: dict, engine_stats: str | None = None) -> None:
    """Render one plan result (local ``Plan.to_dict()`` or service JSON)."""
    print(f"planning {result['arch']} on {result['hardware']} "
          f"({result['budget_gb']:.0f} GB budget)\n")
    print(f"{'schedule':>9s} {'D':>4s} {'B':>4s} {'R':>2s} {'mem GB':>7s} "
          f"{'thr PF':>8s} {'refresh':>8s}  fits")
    for p in result["points"]:
        flag = "R" if p["recompute"] else "-"
        print(f"{p['schedule']:>9s} {p['depth']:4d} {p['b_micro']:4d} "
              f"{flag:>2s} {p['mem_gb']:7.2f} {p['throughput']:8.1f} "
              f"{p['refresh_steps']:8d}  {'yes' if p['fits'] else 'NO'}")

    best = result["best"]
    if best is None:
        print("\nno feasible configuration — increase the memory budget")
        return
    print(f"\nbest feasible: {best['schedule']} D={best['depth']} "
          f"B_micro={best['b_micro']}"
          f"{' +recompute' if best['recompute'] else ''} -> "
          f"{best['throughput']:.1f} seqs/s, {best['mem_gb']:.1f} GB, "
          f"curvature refresh every {best['refresh_steps']} steps")
    if engine_stats:
        print(engine_stats)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="BERT-Large",
                        choices=sorted(ARCHITECTURES))
    parser.add_argument("--hardware", default="P100", choices=sorted(HARDWARE))
    parser.add_argument("--mem-gb", type=float, default=None,
                        help="memory budget (defaults to the device's)")
    parser.add_argument("--layers-per-stage", type=int, default=1)
    parser.add_argument("--url", default=None,
                        help="query a running planning service instead of "
                             "computing locally (e.g. http://127.0.0.1:8351)")
    args = parser.parse_args()

    if args.url is not None:
        from repro.service import ServiceClient

        client = ServiceClient(args.url)
        options = {"layers_per_stage": args.layers_per_stage}
        if args.mem_gb is not None:
            options["budget_gb"] = args.mem_gb
        result = client.plan(args.arch, args.hardware, **options)
        print_plan(result,
                   f"(served by {args.url}; {result['cost_units']} units)")
        return

    from repro.service.planner import plan
    from repro.sweep import default_engine

    engine = default_engine()
    result = plan(args.arch, args.hardware, budget_gb=args.mem_gb,
                  layers_per_stage=args.layers_per_stage, engine=engine)
    costs = engine.stats()["stage_costs"]
    print_plan(result.to_dict(),
               f"(sweep engine: {costs.hits} cost-cache hits / "
               f"{costs.misses} computes across the search)")


if __name__ == "__main__":
    main()
