#!/usr/bin/env python
"""Pretrain a (scaled-down) BERT with K-FAC vs NVLAMB — the Fig. 7 workload.

Builds the synthetic corpus, trains the WordPiece tokenizer, constructs a
structurally-faithful BERT, and runs the paper's comparison: NVLAMB with
its standard warmup vs K-FAC with the shortened warmup (the paper's single
hyperparameter change, §4).

Run:  python examples/pretrain_bert_kfac.py [--steps 120]
"""

import argparse

import numpy as np

from repro.data import PretrainDataLoader
from repro.data.corpus import CorpusConfig
from repro.kfac import KFAC
from repro.models import BertConfig, BertForPreTraining
from repro.optim import NVLAMB, PolyWarmupSchedule
from repro.training import TrainConfig, Trainer, smooth_loss, steps_to_target


def build(data: PretrainDataLoader, use_kfac: bool, total_steps: int,
          base_lr: float) -> Trainer:
    cfg = BertConfig.tiny(vocab_size=data.vocab_size, max_position_embeddings=32)
    model = BertForPreTraining(cfg)
    inner = NVLAMB(model.parameters(), lr=base_lr)
    if use_kfac:
        stepper = KFAC(model.encoder_linear_layers(), inner, damping=0.03,
                       curvature_interval=2, inverse_interval=2)
        warmup = max(2, int(round(600 / 7038 * total_steps)))  # paper's 600
    else:
        stepper = inner
        warmup = max(2, int(round(2000 / 7038 * total_steps)))  # paper's 2000
    sched = PolyWarmupSchedule(base_lr, warmup, total_steps, optimizer=stepper)
    return Trainer(model, stepper, data, sched, TrainConfig(batch_size=32))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=120)
    parser.add_argument("--lr", type=float, default=5e-2)
    args = parser.parse_args()

    print("building corpus + tokenizer ...")
    data = PretrainDataLoader(
        vocab_size=300, seq_len=32, num_documents=200,
        corpus_config=CorpusConfig(seed=7, branching=4, num_word_types=1500),
        seed=7,
    )
    print(f"vocab size {data.vocab_size}, {len(data.documents)} documents")

    curves = {}
    for name, use_kfac in (("NVLAMB", False), ("K-FAC", True)):
        print(f"\ntraining with {name} ({args.steps} steps) ...")
        trainer = build(data, use_kfac, args.steps, args.lr)
        trainer.train(args.steps, verbose=True)
        curves[name] = trainer.losses

    lamb_final = float(smooth_loss(curves["NVLAMB"])[-1])
    kfac_final = float(smooth_loss(curves["K-FAC"])[-1])
    print(f"\nfinal loss (smoothed): NVLAMB {lamb_final:.4f}, "
          f"K-FAC {kfac_final:.4f}")
    crossing = steps_to_target(curves["K-FAC"], lamb_final,
                               skip_initial=args.steps // 10)
    if crossing:
        print(f"K-FAC reaches NVLAMB's final loss at step {crossing}/"
              f"{args.steps} ({crossing / args.steps:.0%}; paper: 42%)")
    else:
        print("K-FAC did not cross NVLAMB's final loss within the budget "
              "(try more steps)")


if __name__ == "__main__":
    main()
