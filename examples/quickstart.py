#!/usr/bin/env python
"""Quickstart: fill a pipeline's bubbles with K-FAC work.

Reproduces the paper's headline experiment in miniature: simulate GPipe
training of BERT-Base over 4 pipeline stages, run PipeFisher's automatic
work assignment, and compare GPU utilization before and after.

Run:  python examples/quickstart.py
"""

from repro.perfmodel import P100
from repro.perfmodel.arch import BERT_BASE
from repro.pipefisher import run_pipefisher
from repro.profiler import render_timeline


def main() -> None:
    report = run_pipefisher(
        schedule="gpipe",       # also: "1f1b", "chimera"
        arch=BERT_BASE,         # Table 3 presets in repro.perfmodel.arch
        hardware=P100,          # P100 / V100 / RTX3090
        b_micro=32,             # micro-batch size
        depth=4,                # pipeline stages
        n_micro=4,              # micro-batches per step
        layers_per_stage=3,     # BERT-Base's 12 layers / 4 stages
        materialize_window=True,  # we render the timelines below
    )

    two_steps = (0.0, 2 * report.baseline_step_time)
    print("GPipe with a first-order optimizer (2 steps):")
    print(render_timeline(report.baseline_timeline, width=100, window=two_steps))

    pf_window = (0.0, 2 * report.pipefisher_step_time)
    print("\nGPipe with PipeFisher (bubbles carry K-FAC curvature/inversion):")
    print(render_timeline(report.pipefisher_timeline, width=100, window=pf_window))

    print(f"\nGPU utilization: {report.baseline_utilization:.1%} -> "
          f"{report.pipefisher_utilization:.1%}")
    print(f"Curvature+inverse refreshed every {report.refresh_steps} steps "
          f"(vs ~100 steps for conventional distributed K-FAC)")
    print(f"Per-step overhead: {report.step_time_overhead:.1%} "
          "(preconditioning only)")


if __name__ == "__main__":
    main()
