#!/usr/bin/env python
"""Fill pipeline bubbles with work other than K-FAC (paper §5).

The paper's closing argument is that PipeFisher is one instance of a
general pattern — "assigning extra work to bubbles in pipeline for
auxiliary benefits".  This example fills the same GPipe bubbles with three
different payloads and compares:

* K-FAC      (second-order optimization; the paper's choice)
* Shampoo    (Kronecker-factored AdaGrad; eigendecompositions split into
              bubble-sized pieces)
* SAM        (sharpness-aware minimization; a second forward/backward)

Run:  python examples/bubble_filling_extensions.py
"""

from repro.extensions import build_sam_queues, build_shampoo_queues
from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.perfmodel.hardware import P100
from repro.pipefisher import BubbleFiller, build_device_queues
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks
from repro.profiler import Timeline, render_timeline, utilization


def main() -> None:
    costs = compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=3,
                                overhead_s=host_overhead("gpipe"))
    cfg = PipelineConfig(depth=4, n_micro=4, costs=costs, precondition=True,
                         stage_param_bytes=3 * BERT_BASE.param_bytes())
    builder = make_schedule("gpipe", cfg)
    template = simulate_tasks(builder.build(), builder.num_devices)
    base_util = utilization(template.timeline, (0.0, template.makespan))
    print(f"GPipe baseline utilization: {base_util:.1%}\n")

    payloads = {
        "K-FAC (PipeFisher)": lambda: build_device_queues(builder, costs),
        "Shampoo": lambda: build_shampoo_queues(builder, costs),
        "SAM 2nd fwd/bwd": lambda: build_sam_queues(builder, costs),
    }
    for name, make_queues in payloads.items():
        queues = make_queues()
        result = BubbleFiller(template, queues).fill()
        span = template.makespan
        combined = Timeline(builder.num_devices)
        for k in range(result.refresh_steps):
            combined.extend(e.shifted(k * span)
                            for e in template.timeline.events)
        combined.extend(result.events())
        util = utilization(combined, (0.0, result.refresh_steps * span))
        work = sum(q.total_duration for q in queues.values())
        print(f"--- {name}: utilization {base_util:.1%} -> {util:.1%}, "
              f"{work:.2f}s of extra work per {result.refresh_steps} steps ---")
        print(render_timeline(combined, width=100,
                              window=(0.0, min(2, result.refresh_steps) * span),
                              show_legend=False))
        print()
    print("legend: F=fwd B=bwd c=stats/extra-fwd i=eig/inv/extra-bwd "
          "p=precondition ~=host .=idle")


if __name__ == "__main__":
    main()
