"""BoundedCache: LRU bounds, hit/miss/eviction accounting, clearing."""

import pytest

from repro.sweep.cache import BoundedCache


class TestBoundedCache:
    def test_put_get_counts(self):
        c = BoundedCache(maxsize=4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        s = c.stats()
        assert (s.hits, s.misses, s.size) == (1, 1, 1)
        assert s.lookups == 2
        assert s.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        c = BoundedCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1        # refreshes "a"; "b" is now LRU
        c.put("c", 3)
        assert "b" not in c
        assert "a" in c and "c" in c
        assert c.stats().evictions == 1

    def test_put_existing_key_refreshes_without_eviction(self):
        c = BoundedCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)                # update, not insert
        assert len(c) == 2
        assert c.stats().evictions == 0
        c.put("c", 3)                 # "b" was LRU
        assert "b" not in c and c.get("a") == 10

    def test_get_or_create(self):
        c = BoundedCache(maxsize=2)
        calls = []
        assert c.get_or_create("k", lambda: calls.append(1) or "v") == "v"
        assert c.get_or_create("k", lambda: calls.append(1) or "v2") == "v"
        assert len(calls) == 1

    def test_clear_resets_entries_and_counters(self):
        c = BoundedCache(maxsize=2)
        c.put("a", 1)
        c.get("a")
        c.get("zzz")
        c.clear()
        s = c.stats()
        assert (s.hits, s.misses, s.evictions, s.size) == (0, 0, 0, 0)
        assert c.get("a") is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            BoundedCache(maxsize=0)

    def test_none_values_cached(self):
        """A stored None must read back as a hit, not a miss."""
        c = BoundedCache(maxsize=2)
        sentinel = object()
        c.put("n", None)
        assert c.get("n", sentinel) is None
        assert c.stats().hits == 1
