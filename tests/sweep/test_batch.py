"""Batched re-timing must be bit-identical to the per-point reference.

Property tests for the PR's core invariant: every path that evaluates a
compiled point — native batched sim/fill, delta re-timing, the
``run_many`` streaming loop, and the process pool — produces exactly
the values the pure-python :func:`~repro.sweep.retime.simulate_compiled`
path does (``==`` on floats, no tolerances).  One fuzz case per
registered schedule family, 20 seeds each.
"""

import random

import pytest

from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.hardware import HARDWARE, P100
from repro.pipefisher.runner import PipeFisherRun
from repro.sweep import SweepEngine
from repro.sweep import batch as sweep_batch
from repro.sweep import native
from repro.sweep.retime import fill_compiled, simulate_compiled
from tests.sweep.test_engine_equivalence import (
    CASES,
    assert_reports_identical,
)

#: One representative case per registered schedule family.
SCHEDULE_CASES = ("gpipe", "1f1b", "chimera", "interleaved", "zb1f1b")
FUZZ_SEEDS = 20

pytestmark = pytest.mark.skipif(
    not native.available(),
    reason="native core unavailable (the python reference is the "
           "fallback these tests compare against)")


def _point(name):
    run = PipeFisherRun(hardware=P100, **CASES[name])
    return SweepEngine().compiled_point(run)


def _fuzz_tables(base, n, lo=0.25, hi=4.0):
    """n jittered copies of a per-code duration table (python floats)."""
    out = []
    for seed in range(n):
        rng = random.Random((hash(tuple(base)) ^ seed) & 0xFFFFFFFF)
        out.append(tuple(d * rng.uniform(lo, hi) for d in base))
    return out


def _assert_sims_equal(ref, got):
    assert ref.start == got.start
    assert ref.end == got.end
    assert ref.ev_end == got.ev_end
    assert ref.ev_order == got.ev_order
    assert ref.makespan == got.makespan


@pytest.mark.parametrize("name", SCHEDULE_CASES)
def test_simulate_batch_matches_reference(name):
    point = _point(name)
    for graph, durs in ((point.template.base_graph, point.base_durs),
                        (point.template.pf_graph, point.pf_durs)):
        tables = _fuzz_tables(durs, FUZZ_SEEDS)
        sims = sweep_batch.simulate_compiled_batch(graph, tables)
        assert len(sims) == FUZZ_SEEDS
        for table, got in zip(tables, sims):
            _assert_sims_equal(simulate_compiled(graph, table), got)


@pytest.mark.parametrize("name", SCHEDULE_CASES)
def test_fill_batch_matches_reference(name):
    point = _point(name)
    template = point.template
    pf_tables = _fuzz_tables(point.pf_durs, FUZZ_SEEDS)
    q_tables = _fuzz_tables(point.qdurs, FUZZ_SEEDS, lo=0.5, hi=2.0)
    sims = sweep_batch.simulate_compiled_batch(template.pf_graph, pf_tables)
    gb = sweep_batch.simulate_graph_batch(template.pf_graph, pf_tables)
    assert gb is not None and all(gb.ok(i) for i in range(FUZZ_SEEDS))
    fills = sweep_batch.fill_compiled_batch(template, gb, q_tables)
    for sim, qd, got in zip(sims, q_tables, fills):
        ref = fill_compiled(template, sim, qd)
        assert ref.span == got.span
        assert dict(ref.device_steps) == dict(got.device_steps)
        assert ref.segments == got.segments


def test_failed_rows_fall_back_per_point():
    """A row the native core rejects must re-run the reference, and the
    other rows of the batch must stay native and untouched."""
    point = _point("chimera")
    graph = point.template.base_graph
    tables = _fuzz_tables(point.base_durs, 4)
    gb = sweep_batch.simulate_graph_batch(graph, tables)
    gb.status[1] = native.ST_MAX_STEPS  # pretend row 1 failed
    sims = [gb.sim(i) if gb.ok(i) else simulate_compiled(graph, tables[i])
            for i in range(4)]
    for table, got in zip(tables, sims):
        _assert_sims_equal(simulate_compiled(graph, table), got)


def _grid_runs():
    runs = []
    for hw in ("P100", "V100", "RTX3090"):
        for b in (4, 8, 16, 32):
            runs.append(PipeFisherRun(
                schedule="chimera", arch=BERT_BASE, hardware=HARDWARE[hw],
                b_micro=b, depth=8, n_micro=8))
    for b in (8, 16, 32):
        runs.append(PipeFisherRun(
            schedule="zb1f1b", arch=BERT_BASE, hardware=P100,
            b_micro=b, depth=8, n_micro=8))
    return runs


def test_run_many_matches_sequential():
    runs = _grid_runs()
    seq_engine = SweepEngine()
    refs = [seq_engine.run(r) for r in runs]
    eng = SweepEngine()
    got = list(eng.run_many(runs, window=4))
    assert len(got) == len(refs)
    for ref, g in zip(refs, got):
        assert_reports_identical(ref, g)
    # Counter fidelity: the streaming loop evolves the caches exactly as
    # the sequential loop does.
    s_ref, s_got = seq_engine.stats(), eng.stats()
    for key in ("runs", "timing_hits", "rescales", "reexecutions"):
        assert s_got[key] == s_ref[key], key
    assert s_got["batched_points"] > 0


def test_run_many_streams_lazily_from_any_iterable():
    runs = _grid_runs()
    consumed = []

    def feed():
        for r in runs:
            consumed.append(r)
            yield r

    gen = SweepEngine().run_many(feed(), window=4)
    assert len(consumed) == 0  # nothing pulled until first next()
    first = next(gen)
    assert first is not None
    assert len(consumed) <= 4  # one window, not the whole grid
    rest = list(gen)
    assert len(rest) == len(runs) - 1
    assert len(consumed) == len(runs)


def test_run_many_pool_matches_sequential():
    runs = _grid_runs()
    refs = [SweepEngine().run(r) for r in runs]
    got = list(SweepEngine().run_many(runs, jobs=2, window=4))
    for ref, g in zip(refs, got):
        assert_reports_identical(ref, g)


def test_pool_payload_round_trips_native_flag():
    """The worker's ``native`` flag survives payload → evaluation → payload.

    The seed dropped it in ``evaluation_from_payload``, so a rebuilt
    evaluation re-serialized (or counted by the parent engine) read as a
    reference-path row — ``native_evals`` undercounted under ``jobs=N``.
    """
    from repro.sweep import pool as sweep_pool

    point = _point("chimera")
    payloads, _, _ = sweep_pool.eval_worker(
        sweep_pool.picklable_template(point.template),
        [(point.base_durs, point.pf_durs, point.qdurs)])
    assert payloads[0]["native"] is True
    ev = sweep_pool.evaluation_from_payload(payloads[0])
    assert ev._native is True
    assert sweep_pool.evaluation_payload(ev)["native"] is True


def test_pool_counter_fidelity_vs_in_process():
    """``jobs=2`` evolves the engine's evaluation counters exactly as the
    in-process loop does (same window content: window*jobs == window)."""
    runs = _grid_runs()
    seq = SweepEngine()
    refs = list(seq.run_many(runs, window=8))
    pooled = SweepEngine()
    got = list(pooled.run_many(runs, jobs=2, window=4))
    for ref, g in zip(refs, got):
        assert_reports_identical(ref, g)
    s_ref, s_got = seq.stats(), pooled.stats()
    for key in ("runs", "timing_hits", "rescales", "reexecutions",
                "native_evals"):
        assert s_got[key] == s_ref[key], key
    assert s_got["native_evals"] > 0  # the undercount this test pins


def test_run_many_without_native_matches(monkeypatch):
    monkeypatch.setenv(native.DISABLE_ENV, "1")
    assert not native.available()
    runs = _grid_runs()[:6]
    refs = [SweepEngine().run(r) for r in runs]
    eng = SweepEngine()
    got = list(eng.run_many(runs, window=4))
    for ref, g in zip(refs, got):
        assert_reports_identical(ref, g)
    assert eng.stats()["batched_points"] == 0
    assert eng.stats()["native_evals"] == 0


def test_engine_phase_counters():
    eng = SweepEngine()
    run = PipeFisherRun(hardware=P100, **CASES["chimera"])
    eng.run(run)
    stats = eng.stats()
    phases = stats["phase_s"]
    assert set(phases) == {"template_build", "retime", "fill", "report"}
    assert phases["template_build"] > 0.0
    assert all(v >= 0.0 for v in phases.values())
    eng.clear()
    assert all(v == 0.0 for v in eng.stats()["phase_s"].values())
