"""Delta re-timing must replay to bit-identical simulations.

:mod:`repro.sweep.delta` records an execution with round-numbered
checkpoints and replays only the suffix affected by a duration-code
change.  The contract: ``resume`` either returns exactly what a full
:func:`~repro.sweep.retime.simulate_compiled` run of the new table
returns, or ``None`` (caller re-runs in full).  No tolerances.
"""

import pytest

from repro.perfmodel.hardware import P100
from repro.pipefisher.runner import PipeFisherRun
from repro.sweep import SweepEngine
from repro.sweep import delta as sweep_delta
from repro.sweep import native
from repro.sweep.retime import simulate_compiled
from tests.sweep.test_engine_equivalence import CASES

SCHEDULE_CASES = ("gpipe", "1f1b", "chimera", "interleaved", "zb1f1b")


def _point(name):
    run = PipeFisherRun(hardware=P100, **CASES[name])
    return SweepEngine().compiled_point(run)


def _assert_sims_equal(ref, got):
    assert ref.start == got.start
    assert ref.end == got.end
    assert ref.ev_end == got.ev_end
    assert ref.ev_order == got.ev_order
    assert ref.makespan == got.makespan


def _graphs(point):
    yield point.template.base_graph, point.base_durs
    yield point.template.pf_graph, point.pf_durs


@pytest.mark.parametrize("name", SCHEDULE_CASES)
def test_recording_matches_reference(name):
    for graph, durs in _graphs(_point(name)):
        sim, trace = sweep_delta.simulate_recording(graph, durs)
        _assert_sims_equal(simulate_compiled(graph, durs), sim)
        assert trace.sim is sim
        assert trace.checkpoints


@pytest.mark.parametrize("name", SCHEDULE_CASES)
def test_resume_single_code_changes(name):
    """Every single-code change either resumes bit-identically or
    declines (None); late-dispatched codes must actually resume."""
    for graph, durs in _graphs(_point(name)):
        _, trace = sweep_delta.simulate_recording(graph, durs)
        resumed_some = False
        for code in range(len(durs)):
            changed = tuple(d * 1.5 if c == code else d
                            for c, d in enumerate(durs))
            got = sweep_delta.resume(trace, changed)
            if got is None:
                continue
            resumed_some = True
            _assert_sims_equal(simulate_compiled(graph, changed), got)
        assert resumed_some


@pytest.mark.parametrize("name", ("chimera", "zb1f1b"))
def test_resume_multi_code_changes(name):
    for graph, durs in _graphs(_point(name)):
        _, trace = sweep_delta.simulate_recording(graph, durs)
        late = sorted(trace.first_round, key=trace.first_round.get)[-2:]
        changed = tuple(d * 0.75 if c in late else d
                        for c, d in enumerate(durs))
        got = sweep_delta.resume(trace, changed)
        assert got is not None  # the two latest codes share a checkpoint
        _assert_sims_equal(simulate_compiled(graph, changed), got)


def test_resume_unchanged_table_reuses_outright():
    point = _point("chimera")
    graph, durs = point.template.base_graph, point.base_durs
    _, trace = sweep_delta.simulate_recording(graph, durs)
    assert sweep_delta.resume(trace, tuple(durs)) is trace.sim


def test_resume_unused_code_change_reuses_outright():
    """Changing a code the graph never dispatches can't affect timing."""
    point = _point("chimera")
    graph, durs = point.template.base_graph, point.base_durs
    _, trace = sweep_delta.simulate_recording(graph, durs)
    unused = [c for c in range(len(durs)) if c not in trace.first_round]
    if not unused:
        pytest.skip("every duration code is dispatched by this graph")
    changed = tuple(d * 9.0 if c == unused[0] else d
                    for c, d in enumerate(durs))
    assert sweep_delta.resume(trace, changed) is trace.sim


def test_engine_counts_delta_retimes(monkeypatch):
    """With the native core off, a late-code change through the engine
    must take the delta path — and still match a full re-execution."""
    monkeypatch.setenv(native.DISABLE_ENV, "1")
    assert not native.available()
    eng = SweepEngine()
    run = PipeFisherRun(hardware=P100, **CASES["chimera"])
    point = eng.compiled_point(run)
    template = point.template
    eng._evaluate(template, point.base_durs, point.pf_durs, point.qdurs)
    assert eng.delta_retimes == 0

    def bump_latest(trace, durs):
        code = max(trace.first_round, key=trace.first_round.get)
        return tuple(d * 1.5 if c == code else d
                     for c, d in enumerate(durs))

    new_base = bump_latest(template._delta_traces["base"], point.base_durs)
    new_pf = bump_latest(template._delta_traces["pf"], point.pf_durs)
    got = eng._evaluate(template, new_base, new_pf, point.qdurs)
    assert eng.delta_retimes == 1
    ref_eng = SweepEngine()
    ref_point = ref_eng.compiled_point(run)
    ref = ref_eng._evaluate(ref_point.template, new_base, new_pf,
                            point.qdurs)
    _assert_sims_equal(ref.base, got.base)
    _assert_sims_equal(ref.pf, got.pf)
    assert ref.fill.segments == got.fill.segments
    assert ref.base_util == got.base_util
    assert ref.pf_util == got.pf_util
    assert ref.refresh == got.refresh
