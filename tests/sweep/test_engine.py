"""SweepEngine behavior: cache accounting, bounds, rescaling, perf models."""

import pytest

from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.perfmodel.hardware import HARDWARE, P100
from repro.perfmodel.model import PipelinePerfModel
from repro.pipefisher import runner as runner_mod
from repro.pipefisher.runner import PipeFisherRun
from repro.sweep import SweepEngine, default_engine
from repro.sweep.retime import exact_pow2_ratio


def chimera_point(b_micro=32, depth=8, hw="P100", **kw):
    return PipeFisherRun(schedule="chimera", arch=BERT_BASE,
                         hardware=HARDWARE[hw], b_micro=b_micro,
                         depth=depth, n_micro=depth, **kw)


class TestCacheBehavior:
    def test_template_hit_miss_counters(self):
        engine = SweepEngine()
        engine.run(chimera_point(b_micro=8))
        s = engine.stats()
        assert s["templates"].misses == 1 and s["templates"].hits == 0
        engine.run(chimera_point(b_micro=16))      # same structure
        s = engine.stats()
        assert s["templates"].hits == 1
        assert s["stage_costs"].misses == 2        # two distinct b_micro

    def test_structural_change_misses(self):
        """A changed structural knob must build a new template, never
        reuse a stale one."""
        engine = SweepEngine()
        engine.run(chimera_point(depth=8))
        for kw in (dict(depth=16), dict(depth=8, layers_per_stage=2),
                   dict(depth=8, inversion_parallel=True),
                   dict(depth=8, recompute=True)):
            engine.run(chimera_point(**kw))
        s = engine.stats()
        assert s["templates"].misses == 5
        assert s["templates"].hits == 0

    def test_virtual_chunks_canonicalized_away_for_non_interleaved(self):
        """gpipe ignores virtual_chunks, so differing values must share
        one template."""
        engine = SweepEngine()
        for vc in (2, 4):
            engine.run(PipeFisherRun(schedule="gpipe", arch=BERT_BASE,
                                     hardware=P100, b_micro=8, depth=4,
                                     n_micro=4, virtual_chunks=vc))
        s = engine.stats()
        assert s["templates"].misses == 1 and s["templates"].hits == 1

    def test_exact_repeat_hits_timing_cache(self):
        engine = SweepEngine()
        run = chimera_point()
        engine.run(run)
        engine.run(run)
        assert engine.timing_hits == 1
        assert engine.reexecutions == 1

    def test_bounded_over_100_point_sweep(self):
        """A 100-point sweep must not grow any cache past its bound."""
        engine = SweepEngine(max_templates=4, max_costs=8, max_timings=4)
        for i in range(100):
            engine.run(chimera_point(b_micro=1 + (i % 25), depth=4,
                                     hw=("P100", "V100")[i % 2]))
        s = engine.stats()
        assert s["templates"].size <= 4
        assert s["stage_costs"].size <= 8
        assert s["cached_timings"] <= 4 * 4
        assert s["stage_costs"].evictions > 0
        assert s["runs"] == 100

    def test_clear_resets_everything(self):
        engine = SweepEngine()
        engine.run(chimera_point())
        engine.clear()
        s = engine.stats()
        assert s["templates"].size == 0
        assert s["stage_costs"].size == 0
        assert s["runs"] == 0 and s["reexecutions"] == 0

    def test_default_engine_is_shared(self):
        assert default_engine() is default_engine()


def synthetic_costs(scale=1.0):
    """Exact-binary work costs whose uniform scaling is fp-exact."""
    block = WorkCosts(
        t_fwd=scale * (3 / 256),
        t_bwd=scale * (5 / 256),
        t_curv_a=scale * (3 / 1024),
        t_curv_b=scale * (3 / 1024),
        t_inv=scale * (7 / 1024),
        t_prec=scale * (1 / 1024),
    )
    return StageCosts(block=block, layers_per_stage=1,
                      t_overhead=scale * (1 / 64), kernel_density=1.0)


class TestExactRescale:
    def test_rescale_refuses_wide_tie_clusters(self):
        """A reference whose chained tie cluster exceeded the executor's
        1e-12 epsilon was only *partially* batched; down-scaling it under
        the epsilon would batch it fully in a fresh run, so such a timing
        must never be rescaled — in either direction."""
        from repro.sweep.retime import rescale_safe

        # Healthy reference: tight ties, well-separated instants.
        assert rescale_safe(0.25, 1e-15, 1e-6)
        assert rescale_safe(4.0, 1e-15, 1e-6)
        # Cluster diameter 4e-12 > eps: refuse even though 0.25x would
        # shrink it to 1e-12.
        assert not rescale_safe(0.25, 4e-12, 1e-6)
        # Ties that would break apart under up-scaling: refuse.
        assert not rescale_safe(4.0, 0.5e-12, 1e-6)
        # Distinct instants that would collapse into ties: refuse.
        assert not rescale_safe(0.25, 1e-15, 3e-12)

    def test_pow2_ratio_detection(self):
        assert exact_pow2_ratio((2.0, 6.0, 0.0), (1.0, 3.0, 0.0)) == 2.0
        assert exact_pow2_ratio((1.0, 3.0), (1.0, 3.0)) == 1.0
        assert exact_pow2_ratio((3.0, 3.0), (1.0, 3.0)) is None   # mixed
        assert exact_pow2_ratio((1.5, 4.5), (1.0, 3.0)) is None   # not 2**k
        assert exact_pow2_ratio((2.0, 0.0), (1.0, 3.0)) is None   # zero pair

    def test_rescaled_point_matches_fresh_reference(self, monkeypatch):
        """A x2 uniform scaling must take the rescale path and still be
        bit-identical to a from-scratch per-point run at those costs.

        Uses a single-replica 1f1b point: schedules with a sync-grad
        allreduce (e.g. Chimera's pipeline pair) have a comm-derived
        duration that a costs-only scaling does not touch, so they are
        correctly *ineligible* for rescaling.
        """
        from repro.sweep.cache import BoundedCache
        from tests.sweep.test_engine_equivalence import assert_reports_identical

        engine = SweepEngine()
        run = PipeFisherRun(schedule="1f1b", arch=BERT_BASE, hardware=P100,
                            b_micro=32, depth=4, n_micro=4)
        base_costs = synthetic_costs(1.0)
        scaled_costs = synthetic_costs(2.0)
        # Every field of the scaled model is exactly 2x the base model.
        for name in ("t_fwd", "t_bwd", "t_curv_a", "t_curv_b", "t_inv",
                     "t_prec"):
            assert getattr(scaled_costs.block, name) == \
                2.0 * getattr(base_costs.block, name)

        engine.run(run, costs=base_costs)
        assert engine.reexecutions == 1
        got = engine.run(run, costs=scaled_costs)
        assert engine.rescales == 1, "uniform x2 point did not rescale"

        # Reference: a per-point run with the scaled costs seeded into the
        # runner memo (execute() resolves costs through it).
        memo = BoundedCache(maxsize=8)
        memo.put((run.arch, run.hardware, run.b_micro, run.layers_per_stage,
                  run.schedule), scaled_costs)
        monkeypatch.setattr(runner_mod, "_STAGE_COSTS_MEMO", memo)
        assert_reports_identical(run.execute(), got)

    def test_non_uniform_scaling_reexecutes(self):
        engine = SweepEngine()
        run = PipeFisherRun(schedule="1f1b", arch=BERT_BASE, hardware=P100,
                            b_micro=32, depth=4, n_micro=4)
        engine.run(run, costs=synthetic_costs(1.0))
        other = synthetic_costs(2.0)
        other = StageCosts(
            block=WorkCosts(t_fwd=other.block.t_fwd * 1.5,
                            t_bwd=other.block.t_bwd,
                            t_curv_a=other.block.t_curv_a,
                            t_curv_b=other.block.t_curv_b,
                            t_inv=other.block.t_inv,
                            t_prec=other.block.t_prec),
            layers_per_stage=1, t_overhead=other.t_overhead,
            kernel_density=1.0,
        )
        engine.run(run, costs=other)
        assert engine.rescales == 0
        assert engine.reexecutions == 2


class TestPerfModelPath:
    def test_bit_identical_to_uncached_model(self):
        engine = SweepEngine()
        cached = engine.perf_model(BERT_BASE, P100, "chimera")
        plain = PipelinePerfModel(BERT_BASE, P100, "chimera")
        for b, d in ((8, 4), (32, 8), (64, 16)):
            r1 = cached.report(b, d)
            r2 = plain.report(b, d)
            assert r1 == r2

    def test_grid_computes_each_cost_model_once(self):
        engine = SweepEngine()
        model = engine.perf_model(BERT_BASE, P100, "chimera")
        model.sweep([8, 16, 32], [4, 8], n_micro_factor=1)
        model.sweep([8, 16, 32], [4, 8], n_micro_factor=2)
        s = engine.stats()["stage_costs"]
        # 3 b_micro values -> 3 computes; everything else is hits.
        # Each sweep has 3 x 2 cells and report() consults the cost model
        # twice per cell: 2 sweeps * 6 cells * 2 lookups = 24 lookups.
        assert s.misses == 3
        assert s.hits == 24 - 3

    def test_cost_cache_shared_across_schedules_with_same_overhead(self):
        engine = SweepEngine()
        engine.perf_model(BERT_BASE, P100, "gpipe").report(8, 4)
        before = engine.stats()["stage_costs"].misses
        engine.perf_model(BERT_BASE, P100, "1f1b").report(8, 4)
        assert engine.stats()["stage_costs"].misses == before
        assert host_overhead("gpipe") == host_overhead("1f1b")

    def test_simulator_and_model_share_cost_cache(self):
        engine = SweepEngine()
        engine.perf_model(BERT_BASE, P100, "chimera",
                          layers_per_stage=1).report(32, 8)
        before = engine.stats()["stage_costs"].misses
        engine.run(chimera_point(b_micro=32, depth=8))
        assert engine.stats()["stage_costs"].misses == before


class TestStageCostMemo:
    """The runner-level memo (satellite of the same fix family)."""

    def test_bounded_and_clearable(self):
        runner_mod.clear_stage_costs_memo()
        for b in range(1, 40):
            runner_mod.cached_stage_costs(BERT_BASE, P100, b, 1, "gpipe")
        memo = runner_mod._STAGE_COSTS_MEMO
        assert len(memo) <= memo.maxsize
        runner_mod.clear_stage_costs_memo()
        assert len(memo) == 0
        s = memo.stats()
        assert (s.hits, s.misses, s.evictions) == (0, 0, 0)
