"""SweepEngine reports must be bit-identical to per-point PipeFisherRun.

These are the engine's acceptance tests: for every schedule family —
with data parallelism, inversion parallelism, recomputation, virtual
chunks — the re-timed report must equal the reference ``execute()``
output exactly (``==`` on floats, no tolerances): step times,
utilizations, refresh intervals, every K-FAC placement segment, and the
one-step template timelines.
"""

import pytest

from repro.perfmodel.arch import BERT_BASE, BERT_LARGE
from repro.perfmodel.hardware import HARDWARE, P100
from repro.pipefisher.runner import PipeFisherRun
from repro.sweep import SweepEngine

#: name -> PipeFisherRun kwargs, spanning every schedule and option axis.
CASES = {
    "gpipe": dict(schedule="gpipe", arch=BERT_BASE, b_micro=32, depth=4,
                  n_micro=4, layers_per_stage=3),
    "gpipe-dp": dict(schedule="gpipe", arch=BERT_BASE, b_micro=32, depth=4,
                     n_micro=4, dp=2, layers_per_stage=3),
    "1f1b": dict(schedule="1f1b", arch=BERT_BASE, b_micro=16, depth=4,
                 n_micro=8, layers_per_stage=3),
    "1f1b-recompute": dict(schedule="1f1b", arch=BERT_BASE, b_micro=8,
                           depth=4, n_micro=6, recompute=True),
    "chimera": dict(schedule="chimera", arch=BERT_BASE, b_micro=32, depth=16,
                    n_micro=16),
    "chimera-invpar": dict(schedule="chimera", arch=BERT_LARGE, b_micro=32,
                           depth=8, n_micro=8, layers_per_stage=3,
                           inversion_parallel=True),
    "chimera-dp-world": dict(schedule="chimera", arch=BERT_BASE, b_micro=32,
                             depth=8, n_micro=8, dp=2, world_multiplier=4,
                             inversion_parallel=True, layers_per_stage=3),
    "interleaved": dict(schedule="interleaved", arch=BERT_BASE, b_micro=32,
                        depth=8, n_micro=8, virtual_chunks=2),
    "interleaved-v4": dict(schedule="interleaved", arch=BERT_BASE, b_micro=16,
                           depth=8, n_micro=8, virtual_chunks=4),
    "zb1f1b": dict(schedule="zb1f1b", arch=BERT_BASE, b_micro=32, depth=8,
                   n_micro=8),
    "zb1f1b-dp": dict(schedule="zb1f1b", arch=BERT_BASE, b_micro=16, depth=4,
                      n_micro=8, dp=2, layers_per_stage=3),
    "zb1f1b-recompute": dict(schedule="zb1f1b", arch=BERT_LARGE, b_micro=8,
                             depth=4, n_micro=6, recompute=True,
                             inversion_parallel=True, dp=2),
}

NUMBER_FIELDS = (
    "schedule", "num_devices", "baseline_step_time", "baseline_utilization",
    "pipefisher_step_time", "pipefisher_utilization", "refresh_steps",
    "device_refresh_steps", "step_time_overhead", "window_steps",
)


def assert_reports_identical(ref, got):
    for field in NUMBER_FIELDS:
        assert getattr(ref, field) == getattr(got, field), field
    # Every K-FAC placement, segment for segment.
    assert set(ref.assignment.queues) == set(got.assignment.queues)
    assert ref.assignment.span == got.assignment.span
    assert ref.assignment.refresh_steps == got.assignment.refresh_steps
    for dev, rq in ref.assignment.queues.items():
        gq = got.assignment.queues[dev]
        assert len(rq.items) == len(gq.items)
        for ri, gi in zip(rq.items, gq.items):
            assert ri.iid == gi.iid
            assert ri.kind == gi.kind and ri.factor == gi.factor
            assert ri.duration == gi.duration
            assert ri.trigger == gi.trigger
            assert ri.segments == gi.segments, ri.iid
    # One-step template timelines, event for event (insertion order).
    for attr in ("base_template", "pf_template"):
        re_ = [(e.device, e.kind, e.start, e.end, e.label)
               for e in getattr(ref, attr).events]
        ge = [(e.device, e.kind, e.start, e.end, e.label)
              for e in getattr(got, attr).events]
        assert re_ == ge, attr


@pytest.fixture(scope="module")
def engine():
    return SweepEngine()


@pytest.mark.parametrize("name", sorted(CASES))
def test_engine_matches_reference(name, engine):
    run = PipeFisherRun(hardware=P100, **CASES[name])
    assert_reports_identical(run.execute(), engine.run(run))


def test_template_reuse_stays_identical(engine):
    """Points sharing one template (only costs differ) must all match the
    per-point reference — the re-timed path, not just the first build."""
    for hw in ("P100", "V100", "RTX3090"):
        for b in (4, 32):
            run = PipeFisherRun(schedule="chimera", arch=BERT_BASE,
                                hardware=HARDWARE[hw], b_micro=b,
                                depth=8, n_micro=8)
            assert_reports_identical(run.execute(), engine.run(run))
    stats = engine.stats()
    assert stats["templates"].hits >= 5  # the 6 points share one template


def test_exact_duration_hit_stays_identical(engine):
    """The timing-cache exact-hit path must rebuild an identical report."""
    run = PipeFisherRun(schedule="1f1b", arch=BERT_BASE, hardware=P100,
                        b_micro=16, depth=4, n_micro=8)
    first = engine.run(run)
    hits_before = engine.timing_hits
    second = engine.run(run)
    assert engine.timing_hits == hits_before + 1
    assert_reports_identical(first, second)
    assert_reports_identical(run.execute(), second)


def test_zb_template_reuse_stays_identical(engine):
    """zb1f1b points sharing one compiled template (only costs differ)
    must all match the per-point reference — the re-timed path."""
    for hw in ("P100", "V100"):
        for b in (8, 32):
            run = PipeFisherRun(schedule="zb1f1b", arch=BERT_BASE,
                                hardware=HARDWARE[hw], b_micro=b,
                                depth=8, n_micro=8)
            assert_reports_identical(run.execute(), engine.run(run))
    assert engine.stats()["templates"].hits >= 3  # the 4 points, 1 template


def test_materialize_window_builds_eagerly(engine):
    run = PipeFisherRun(schedule="gpipe", arch=BERT_BASE, hardware=P100,
                        b_micro=32, depth=4, n_micro=4, layers_per_stage=3,
                        materialize_window=True)
    ref = run.execute()
    got = engine.run(run)
    assert got._baseline_timeline is not None
    assert got._pipefisher_timeline is not None
    r1 = [(e.device, e.kind, e.start, e.end) for e in ref.pipefisher_timeline.events]
    g1 = [(e.device, e.kind, e.start, e.end) for e in got.pipefisher_timeline.events]
    assert r1 == g1
