"""Kronecker factor construction: values, EMA, micro-batch accumulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kfac import KroneckerFactor, compute_factor_from_rows


class TestComputeFactor:
    def test_matches_definition(self):
        rows = np.random.default_rng(0).standard_normal((8, 3)).astype(np.float32)
        f = compute_factor_from_rows(rows)
        np.testing.assert_allclose(f, rows.T @ rows / 8, rtol=1e-5)

    def test_symmetric_psd(self):
        rows = np.random.default_rng(1).standard_normal((16, 5)).astype(np.float32)
        f = compute_factor_from_rows(rows)
        np.testing.assert_allclose(f, f.T, atol=1e-6)
        eig = np.linalg.eigvalsh(f.astype(np.float64))
        assert eig.min() >= -1e-6

    def test_bias_augmentation(self):
        rows = np.ones((4, 2), dtype=np.float32)
        f = compute_factor_from_rows(rows, include_bias=True)
        assert f.shape == (3, 3)
        assert f[2, 2] == pytest.approx(1.0)  # mean of ones^2
        assert f[0, 2] == pytest.approx(1.0)  # cross term with constant 1

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            compute_factor_from_rows(np.zeros(3))


class TestKroneckerFactor:
    def test_first_update_replaces(self):
        kf = KroneckerFactor(2, stat_decay=0.9)
        batch = np.eye(2, dtype=np.float32)
        kf.update(batch)
        np.testing.assert_allclose(kf.value, batch)

    def test_ema_blend(self):
        kf = KroneckerFactor(2, stat_decay=0.5)
        kf.update(np.eye(2, dtype=np.float32) * 2)
        kf.update(np.zeros((2, 2), dtype=np.float32))
        np.testing.assert_allclose(kf.value, np.eye(2))

    def test_zero_decay_replaces_every_time(self):
        kf = KroneckerFactor(2, stat_decay=0.0)
        kf.update(np.eye(2, dtype=np.float32))
        new = np.full((2, 2), 5.0, dtype=np.float32)
        kf.update(new)
        np.testing.assert_allclose(kf.value, new)

    def test_shape_check(self):
        kf = KroneckerFactor(3)
        with pytest.raises(ValueError):
            kf.update(np.zeros((2, 2), dtype=np.float32))

    def test_microbatch_accumulation_equals_full_batch(self):
        """Row-weighted averaging over micro-batches == one big batch."""
        rng = np.random.default_rng(2)
        full = rng.standard_normal((12, 4)).astype(np.float32)
        pieces = [full[:4], full[4:6], full[6:12]]
        kf_full = KroneckerFactor(4)
        kf_full.update_from_rows(full)
        kf_micro = KroneckerFactor(4)
        kf_micro.accumulate_microbatches(pieces)
        np.testing.assert_allclose(kf_micro.value, kf_full.value, rtol=1e-5)

    def test_accumulate_empty_raises(self):
        with pytest.raises(ValueError):
            KroneckerFactor(2).accumulate_microbatches([])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 20),
    d=st.integers(1, 6),
    splits=st.integers(1, 4),
    seed=st.integers(0, 999),
)
def test_microbatch_invariance_property(n, d, splits, seed):
    """Property: any contiguous micro-batching yields the same factor."""
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((n, d)).astype(np.float32)
    cuts = sorted(set(rng.integers(1, n, size=splits - 1).tolist())) if splits > 1 else []
    pieces = np.split(rows, cuts) if cuts else [rows]
    pieces = [p for p in pieces if p.shape[0] > 0]
    a = KroneckerFactor(d)
    a.update_from_rows(rows)
    b = KroneckerFactor(d)
    b.accumulate_microbatches(pieces)
    np.testing.assert_allclose(b.value, a.value, rtol=1e-4, atol=1e-6)
