"""Damped Cholesky inversion and pi-corrected damping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kfac import damped_cholesky_inverse, pi_damping


def random_psd(d, seed=0, rank=None):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((d, rank or d))
    return (u @ u.T).astype(np.float32)


class TestDampedInverse:
    def test_inverse_of_identity(self):
        inv = damped_cholesky_inverse(np.eye(3, dtype=np.float32), 0.0)
        np.testing.assert_allclose(inv, np.eye(3), atol=1e-6)

    def test_matches_numpy_inverse(self):
        m = random_psd(5, 1) + np.eye(5, dtype=np.float32)
        inv = damped_cholesky_inverse(m, 0.0)
        np.testing.assert_allclose(inv, np.linalg.inv(m.astype(np.float64)),
                                    rtol=1e-4)

    def test_damping_added(self):
        m = np.zeros((3, 3), dtype=np.float32)
        inv = damped_cholesky_inverse(m, 0.5)
        np.testing.assert_allclose(inv, np.eye(3) / 0.5, rtol=1e-5)

    def test_singular_matrix_needs_damping(self):
        m = random_psd(6, 2, rank=2)  # rank-deficient
        inv = damped_cholesky_inverse(m, 1e-2)
        assert np.isfinite(inv).all()
        product = (m + 1e-2 * np.eye(6)) @ inv
        np.testing.assert_allclose(product, np.eye(6), atol=1e-3)

    def test_negative_damping_raises(self):
        with pytest.raises(ValueError):
            damped_cholesky_inverse(np.eye(2, dtype=np.float32), -1.0)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            damped_cholesky_inverse(np.zeros((2, 3), dtype=np.float32), 0.1)

    def test_result_symmetric(self):
        m = random_psd(4, 3) + np.eye(4, dtype=np.float32)
        inv = damped_cholesky_inverse(m, 0.1)
        np.testing.assert_allclose(inv, inv.T, atol=1e-6)


class TestPiDamping:
    def test_product_preserved(self):
        """damping_A * damping_B == overall damping (Martens & Grosse §6.2)."""
        a = random_psd(4, 1) + np.eye(4, dtype=np.float32)
        b = random_psd(6, 2) + np.eye(6, dtype=np.float32)
        da, db = pi_damping(a, b, 0.03)
        assert da * db == pytest.approx(0.03, rel=1e-6)

    def test_balanced_for_equal_traces(self):
        da, db = pi_damping(np.eye(3), np.eye(5), 0.04)
        assert da == pytest.approx(db)
        assert da == pytest.approx(np.sqrt(0.04))

    def test_larger_factor_gets_more_damping(self):
        a = np.eye(3, dtype=np.float32) * 100.0
        b = np.eye(3, dtype=np.float32)
        da, db = pi_damping(a, b, 0.01)
        assert da > db

    def test_degenerate_traces_fall_back(self):
        da, db = pi_damping(np.zeros((2, 2)), np.eye(2), 0.04)
        assert da == pytest.approx(np.sqrt(0.04))
        assert db == pytest.approx(np.sqrt(0.04))


@settings(max_examples=25, deadline=None)
@given(d=st.integers(1, 8), seed=st.integers(0, 500),
       damping=st.floats(1e-4, 1.0))
def test_inverse_property(d, seed, damping):
    """Property: (M + damping I) @ damped_inverse(M) ~ I for any PSD M."""
    m = random_psd(d, seed)
    inv = damped_cholesky_inverse(m, damping)
    product = (m.astype(np.float64) + damping * np.eye(d)) @ inv.astype(np.float64)
    np.testing.assert_allclose(product, np.eye(d), atol=5e-3)
