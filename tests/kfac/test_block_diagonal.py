"""Block-diagonal factor approximation (paper Appendix A.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kfac.block_diagonal import (
    BlockDiagonalFactor,
    block_diag_inversion_flops,
    split_dim,
)
from repro.kfac.factors import compute_factor_from_rows


class TestSplitDim:
    def test_even(self):
        assert split_dim(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_front_loaded(self):
        assert split_dim(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_dim(4, 0)
        with pytest.raises(ValueError):
            split_dim(2, 4)


class TestBlockDiagonalFactor:
    def test_blocks_match_full_factor_diagonal(self):
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((64, 8)).astype(np.float32)
        bd = BlockDiagonalFactor(8, 2)
        bd.update_from_rows(rows)
        full = compute_factor_from_rows(rows)
        np.testing.assert_allclose(bd.blocks[0], full[:4, :4], rtol=1e-5)
        np.testing.assert_allclose(bd.blocks[1], full[4:, 4:], rtol=1e-5)

    def test_dense_zeroes_cross_blocks(self):
        rng = np.random.default_rng(1)
        bd = BlockDiagonalFactor(6, 3)
        bd.update_from_rows(rng.standard_normal((32, 6)).astype(np.float32))
        dense = bd.dense()
        np.testing.assert_array_equal(dense[:2, 2:], 0)
        np.testing.assert_array_equal(dense[2:4, 4:], 0)

    def test_one_block_equals_full(self):
        rng = np.random.default_rng(2)
        rows = rng.standard_normal((32, 5)).astype(np.float32)
        bd = BlockDiagonalFactor(5, 1)
        bd.update_from_rows(rows)
        np.testing.assert_allclose(bd.dense(), compute_factor_from_rows(rows),
                                    rtol=1e-5)

    def test_solve_right_matches_dense_inverse(self):
        rng = np.random.default_rng(3)
        bd = BlockDiagonalFactor(6, 2)
        bd.update_from_rows(rng.standard_normal((64, 6)).astype(np.float32))
        g = rng.standard_normal((4, 6)).astype(np.float32)
        out = bd.solve_right(g, damping=0.1)
        dense_inv = np.linalg.inv(bd.dense().astype(np.float64) + 0.1 * np.eye(6))
        np.testing.assert_allclose(out, g.astype(np.float64) @ dense_inv,
                                    rtol=1e-3, atol=1e-5)

    def test_solve_left_matches_dense_inverse(self):
        rng = np.random.default_rng(4)
        bd = BlockDiagonalFactor(6, 3)
        bd.update_from_rows(rng.standard_normal((64, 6)).astype(np.float32))
        g = rng.standard_normal((6, 4)).astype(np.float32)
        out = bd.solve_left(g, damping=0.1)
        dense_inv = np.linalg.inv(bd.dense().astype(np.float64) + 0.1 * np.eye(6))
        np.testing.assert_allclose(out, dense_inv @ g.astype(np.float64),
                                    rtol=1e-3, atol=1e-5)

    def test_shape_validation(self):
        bd = BlockDiagonalFactor(6, 2)
        with pytest.raises(ValueError):
            bd.update_from_rows(np.zeros((4, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            bd.solve_right(np.zeros((2, 5), dtype=np.float32), 0.1)


class TestInverseCaching:
    """Regression: solve_right/solve_left must not re-factorize per call."""

    def _factor(self, dim=8, blocks=2, seed=7):
        rng = np.random.default_rng(seed)
        bd = BlockDiagonalFactor(dim, blocks)
        bd.update_from_rows(rng.standard_normal((48, dim)).astype(np.float32))
        return bd, rng

    def test_repeated_solves_factorize_once(self):
        bd, rng = self._factor()
        g = rng.standard_normal((4, 8)).astype(np.float32)
        for _ in range(5):
            bd.solve_right(g, damping=0.1)
            bd.solve_left(g.T.copy(), damping=0.1)
        assert bd.factorizations == bd.num_blocks

    def test_new_damping_refactorizes_and_is_cached(self):
        bd, rng = self._factor()
        g = rng.standard_normal((4, 8)).astype(np.float32)
        bd.solve_right(g, damping=0.1)
        bd.solve_right(g, damping=0.2)
        bd.solve_right(g, damping=0.1)  # both dampings now cached
        bd.solve_right(g, damping=0.2)
        assert bd.factorizations == 2 * bd.num_blocks

    def test_update_invalidates_cache(self):
        bd, rng = self._factor()
        g = rng.standard_normal((4, 8)).astype(np.float32)
        bd.solve_right(g, damping=0.1)
        bd.update_from_rows(rng.standard_normal((48, 8)).astype(np.float32))
        out = bd.solve_right(g, damping=0.1)
        assert bd.factorizations == 2 * bd.num_blocks
        # The post-update solve must use the NEW factor, not the cache.
        dense_inv = np.linalg.inv(bd.dense().astype(np.float64) + 0.1 * np.eye(8))
        np.testing.assert_allclose(out, g.astype(np.float64) @ dense_inv,
                                    rtol=1e-3, atol=1e-5)

    def test_cache_bounded_across_dampings(self):
        """An adaptive damping schedule must not grow the cache unboundedly."""
        bd, rng = self._factor()
        g = rng.standard_normal((4, 8)).astype(np.float32)
        for step in range(20):
            bd.solve_right(g, damping=0.1 + 0.01 * step)
        assert len(bd._inverse_cache) <= bd._inverse_cache_max

    def test_uneven_blocks_cache_too(self):
        rng = np.random.default_rng(9)
        bd = BlockDiagonalFactor(7, 3)  # ragged 3/2/2 split
        bd.update_from_rows(rng.standard_normal((32, 7)).astype(np.float32))
        g = rng.standard_normal((2, 7)).astype(np.float32)
        bd.solve_right(g, damping=0.05)
        bd.solve_right(g, damping=0.05)
        assert bd.factorizations == 3


class TestInversionFlops:
    def test_k_squared_savings(self):
        """K-block-diagonal cuts inversion FLOPs by ~K^2."""
        full = block_diag_inversion_flops([1024], 1)
        quarter = block_diag_inversion_flops([1024], 4)
        assert full / quarter == pytest.approx(16.0, rel=0.01)

    def test_appendix_a2_ratio_invariance(self):
        """A.2's claim: scale d_model/d_ff by K and use K-block-diagonal
        factors -> the (curv+inv)/bubble ratio matches the unscaled value."""
        from repro.perfmodel import PipelinePerfModel
        from repro.perfmodel.arch import BERT_BASE
        from repro.perfmodel.hardware import P100

        base = PipelinePerfModel(BERT_BASE, P100, "chimera").report(32, 8)
        k = 4
        scaled_arch = BERT_BASE.scaled(k)
        scaled = PipelinePerfModel(
            scaled_arch, P100, "chimera", factor_blocks=k
        ).report(32, 8)
        assert scaled.ratio == pytest.approx(base.ratio, rel=0.15)

    def test_without_blocks_ratio_explodes(self):
        """Sanity check on the same claim: WITHOUT block-diagonal factors,
        scaling by K makes inversion (d^3) outgrow bubbles (d^2)."""
        from repro.perfmodel import PipelinePerfModel
        from repro.perfmodel.arch import BERT_BASE
        from repro.perfmodel.hardware import P100

        base = PipelinePerfModel(BERT_BASE, P100, "chimera").report(32, 8)
        scaled = PipelinePerfModel(
            BERT_BASE.scaled(4), P100, "chimera", factor_blocks=1
        ).report(32, 8)
        assert scaled.ratio > 1.3 * base.ratio


@settings(max_examples=20, deadline=None)
@given(dim=st.integers(2, 16), blocks=st.integers(1, 4), seed=st.integers(0, 99))
def test_block_diagonal_psd_property(dim, blocks, seed):
    """Every block of a block-diagonal factor is symmetric PSD."""
    blocks = min(blocks, dim)
    rng = np.random.default_rng(seed)
    bd = BlockDiagonalFactor(dim, blocks)
    bd.update_from_rows(rng.standard_normal((3 * dim, dim)).astype(np.float32))
    for b in bd.blocks:
        np.testing.assert_allclose(b, b.T, atol=1e-5)
        assert np.linalg.eigvalsh(b.astype(np.float64)).min() >= -1e-5
