"""Batched K-FAC kernels vs the seed per-layer / per-micro-batch loops.

The seed implementations (per-micro-batch float64 factor accumulation,
per-layer SciPy float64 inversion, per-layer preconditioning) are frozen
here as test-local references; the library's batched kernels must match
them across bias/no-bias, ragged micro-batch row counts, stat_decay in
{0, 0.95}, and use_pi on/off.

Documented tolerances (float32 kernels vs float64 seed references):

* curvature factors: ``rtol=5e-5, atol=1e-6`` — the concatenated float32
  matmul vs the float64 row-count-weighted accumulation differ only in
  summation order and the final rounding.
* inverses: ``rtol=2e-4, atol=1e-6`` — float32 ``spotrf``/``spotri`` vs
  float64 ``cho_factor``/``cho_solve``; the error scales with the damped
  factor's condition number, which the damping bounds.
* preconditioned gradients and training losses: ``rtol=1e-3, atol=1e-5``
  — inversion error propagated through two matmuls (and, for losses, a
  handful of optimization steps).
"""

import numpy as np
import pytest

from repro.kfac import KFAC, KFACLayerState
from repro.kfac.factors import compute_factor_from_rows
from repro.kfac.inverse import damped_cholesky_inverse, pi_damping
from repro.nn import Linear, Module
from repro.optim import SGD
from repro.tensor import Tensor, functional as F

CURV_TOL = dict(rtol=5e-5, atol=1e-6)
INV_TOL = dict(rtol=2e-4, atol=1e-6)
PRECOND_TOL = dict(rtol=1e-3, atol=1e-5)


# -- frozen seed loops (the pre-vectorization implementations, verbatim) --------


def seed_accumulate_microbatches(factor, row_batches, include_bias=False):
    """Seed ``KroneckerFactor.accumulate_microbatches``: per-micro-batch
    matmuls through a float64 accumulator."""
    if not row_batches:
        raise ValueError("no micro-batch rows provided")
    total_rows = sum(b.shape[0] for b in row_batches)
    acc = np.zeros((factor.dim, factor.dim), dtype=np.float64)
    for b in row_batches:
        acc += compute_factor_from_rows(b, include_bias=include_bias) * (
            b.shape[0] / total_rows
        )
    factor.update(acc.astype(np.float32))


def seed_update_curvature(state, input_batches, grad_batches, loss_scale=1.0):
    """Seed ``KFACLayerState.update_curvature``: rescale every gradient row,
    then accumulate per micro-batch."""
    seed_accumulate_microbatches(
        state.a_factor, input_batches, include_bias=state.include_bias
    )
    scaled = [g * np.float32(loss_scale) for g in grad_batches]
    seed_accumulate_microbatches(state.b_factor, scaled, include_bias=False)


def seed_update_inverses(state, damping, use_pi=True):
    """Seed ``KFACLayerState.update_inverses``: per-layer float64 SciPy."""
    if use_pi:
        da, db = pi_damping(state.a_factor.value, state.b_factor.value, damping)
    else:
        da = db = float(np.sqrt(damping))
    state.a_inv = damped_cholesky_inverse(state.a_factor.value, da)
    state.b_inv = damped_cholesky_inverse(state.b_factor.value, db)
    state.inverse_staleness = 0


def seed_precondition(state, weight_grad, bias_grad=None):
    """Seed ``KFACLayerState.precondition``: per-layer concat + matmuls."""
    if state.include_bias and bias_grad is not None:
        g = np.concatenate([weight_grad, bias_grad.reshape(-1, 1)], axis=1)
    else:
        g = weight_grad
    nat = state.b_inv @ g @ state.a_inv
    if state.include_bias and bias_grad is not None:
        return nat[:, :-1].astype(np.float32), nat[:, -1].astype(np.float32)
    return nat.astype(np.float32), bias_grad


class SeedKFAC(KFAC):
    """The seed optimizer loops, layer by layer, for end-to-end comparison."""

    def update_curvature(self):
        for layer, state in self.layers:
            inputs, grads = layer.kfac_pop()
            if not inputs or not grads:
                raise RuntimeError(f"layer {state.name}: no captured rows")
            total_rows = sum(g.shape[0] for g in grads)
            seed_update_curvature(state, inputs, grads, loss_scale=float(total_rows))

    def update_inverses(self):
        for _, state in self.layers:
            seed_update_inverses(state, self.damping, use_pi=self.use_pi)
        self._precond_groups = None

    def precondition(self):
        for layer, state in self.layers:
            if not state.ready or layer.weight.grad is None:
                continue
            bias_grad = layer.bias.grad if layer.bias is not None else None
            w_nat, b_nat = seed_precondition(state, layer.weight.grad, bias_grad)
            layer.weight.grad = w_nat
            if layer.bias is not None and b_nat is not None:
                layer.bias.grad = b_nat


# -- fixtures -------------------------------------------------------------------


def rand_batches(rng, counts, dim, scale=1.0):
    return [
        (rng.standard_normal((n, dim)) * scale).astype(np.float32) for n in counts
    ]


def make_models(seed=0, din=6, hidden=5, dout=4):
    class TwoLayer(Module):
        def __init__(self):
            super().__init__()
            rng = np.random.default_rng(seed)
            self.fc1 = Linear(din, hidden, rng=rng)
            self.fc2 = Linear(hidden, dout, rng=rng)

        def forward(self, x):
            return self.fc2(F.gelu(self.fc1(x)))

    return TwoLayer(), TwoLayer()


# -- curvature ------------------------------------------------------------------


@pytest.mark.parametrize("include_bias", [False, True])
@pytest.mark.parametrize("stat_decay", [0.0, 0.95])
@pytest.mark.parametrize("counts", [[8, 8, 8], [5, 11, 2, 14]])
def test_curvature_matches_seed_loop(include_bias, stat_decay, counts):
    """Single-concat + folded loss scale == per-micro-batch fp64 loop."""
    rng = np.random.default_rng(7)
    ref = KFACLayerState("ref", din=6, dout=4, include_bias=include_bias,
                         stat_decay=stat_decay)
    new = KFACLayerState("new", din=6, dout=4, include_bias=include_bias,
                         stat_decay=stat_decay)
    for refresh in range(3):  # several refreshes exercise the EMA blend
        inputs = rand_batches(rng, counts, 6)
        grads = rand_batches(rng, counts, 4, scale=0.05)
        n = float(sum(c for c in counts))
        seed_update_curvature(ref, inputs, grads, loss_scale=n)
        new.update_curvature(inputs, grads, loss_scale=n)
        np.testing.assert_allclose(new.a_factor.value, ref.a_factor.value, **CURV_TOL)
        np.testing.assert_allclose(new.b_factor.value, ref.b_factor.value, **CURV_TOL)


@pytest.mark.parametrize("ragged", [False, True])
def test_kfac_grouped_curvature_matches_seed(ragged):
    """The KFAC-level grouped stacking matches the seed per-layer loop,
    including when layers captured ragged (unequal) row totals."""
    rng = np.random.default_rng(11)
    m_new, m_seed = make_models(seed=3)
    kfac_new = KFAC([("fc1", m_new.fc1), ("fc2", m_new.fc2)],
                    SGD(m_new.parameters(), lr=0.1), damping=0.03)
    kfac_seed = SeedKFAC([("fc1", m_seed.fc1), ("fc2", m_seed.fc2)],
                         SGD(m_seed.parameters(), lr=0.1), damping=0.03)
    # Hand both the identical captured rows. With ragged=True the layers
    # see different micro-batch splits (and fc2 a different row total).
    for mb, (layer_new, layer_seed) in enumerate(
        zip([m_new.fc1, m_new.fc2], [m_seed.fc1, m_seed.fc2])
    ):
        counts = [4, 9, 3] if (ragged and mb == 1) else [8, 8]
        din = layer_new.in_features
        dout = layer_new.out_features
        inputs = rand_batches(rng, counts, din)
        grads = rand_batches(rng, counts, dout, scale=0.1)
        layer_new.captured_inputs = [b.copy() for b in inputs]
        layer_new.captured_output_grads = [g.copy() for g in grads]
        layer_seed.captured_inputs = [b.copy() for b in inputs]
        layer_seed.captured_output_grads = [g.copy() for g in grads]
    kfac_new.update_curvature()
    kfac_seed.update_curvature()
    for (_, s_new), (_, s_seed) in zip(kfac_new.layers, kfac_seed.layers):
        np.testing.assert_allclose(s_new.a_factor.value, s_seed.a_factor.value,
                                   **CURV_TOL)
        np.testing.assert_allclose(s_new.b_factor.value, s_seed.b_factor.value,
                                   **CURV_TOL)


def test_grouped_same_shape_layers_match_per_layer_path():
    """A group of same-shape layers (the batched-stack path) produces the
    same factors as feeding each layer alone (the single-concat path)."""
    rng = np.random.default_rng(13)
    layers = [Linear(6, 5, rng=np.random.default_rng(i)) for i in range(4)]
    inner = SGD([p for l in layers for p in l.parameters()], lr=0.1)
    kfac = KFAC([(f"l{i}", l) for i, l in enumerate(layers)], inner)
    captured = []
    for l in layers:
        inputs = rand_batches(rng, [8, 8], 6)
        grads = rand_batches(rng, [8, 8], 5, scale=0.1)
        l.captured_inputs = [b.copy() for b in inputs]
        l.captured_output_grads = [g.copy() for g in grads]
        captured.append((inputs, grads))
    kfac.update_curvature()
    for (_, state), (inputs, grads) in zip(kfac.layers, captured):
        solo = KFACLayerState("solo", din=6, dout=5)
        solo.update_curvature(inputs, grads, loss_scale=16.0)
        np.testing.assert_allclose(state.a_factor.value, solo.a_factor.value,
                                   **CURV_TOL)
        np.testing.assert_allclose(state.b_factor.value, solo.b_factor.value,
                                   **CURV_TOL)


def test_curvature_workspaces_pruned_on_row_count_change():
    """Workspace keys include row totals; a ragged batch must evict the
    stale key instead of stranding its (potentially huge) buffers."""
    rng = np.random.default_rng(17)
    layers = [Linear(6, 5, rng=np.random.default_rng(i)) for i in range(3)]
    inner = SGD([p for l in layers for p in l.parameters()], lr=0.1)
    kfac = KFAC([(f"l{i}", l) for i, l in enumerate(layers)], inner)
    assert kfac._reuse_curv_buffers
    for counts in ([8, 8], [4, 3], [8, 8]):  # ragged middle refresh
        for l in layers:
            l.captured_inputs = rand_batches(rng, counts, 6)
            l.captured_output_grads = rand_batches(rng, counts, 5, scale=0.1)
        kfac.update_curvature()
        assert len(kfac._curv_workspaces) == 1


# -- inversion ------------------------------------------------------------------


@pytest.mark.parametrize("use_pi", [True, False])
@pytest.mark.parametrize("include_bias", [False, True])
def test_batched_inversion_matches_seed(use_pi, include_bias):
    rng = np.random.default_rng(17)
    m_new, m_seed = make_models(seed=5)
    kw = dict(damping=0.05, use_pi=use_pi)
    kfac_new = KFAC([("fc1", m_new.fc1), ("fc2", m_new.fc2)],
                    SGD(m_new.parameters(), lr=0.1), **kw)
    kfac_seed = SeedKFAC([("fc1", m_seed.fc1), ("fc2", m_seed.fc2)],
                         SGD(m_seed.parameters(), lr=0.1), **kw)
    for kfac in (kfac_new, kfac_seed):
        r = np.random.default_rng(23)
        for _, state in kfac.layers:
            state.include_bias = include_bias
            state.__post_init__()  # resize A for the bias toggle
            inputs = rand_batches(r, [16], state.din)
            grads = rand_batches(r, [16], state.dout, scale=0.1)
            state.update_curvature(inputs, grads, loss_scale=16.0)
    kfac_new.update_inverses()
    kfac_seed.update_inverses()
    for (_, s_new), (_, s_seed) in zip(kfac_new.layers, kfac_seed.layers):
        np.testing.assert_allclose(s_new.a_inv, s_seed.a_inv, **INV_TOL)
        np.testing.assert_allclose(s_new.b_inv, s_seed.b_inv, **INV_TOL)
        assert s_new.inverse_staleness == 0


# -- preconditioning ------------------------------------------------------------


@pytest.mark.parametrize("use_pi", [True, False])
def test_batched_precondition_matches_seed(use_pi):
    rng = np.random.default_rng(29)
    m_new, m_seed = make_models(seed=8)
    kw = dict(damping=0.04, use_pi=use_pi)
    kfac_new = KFAC([("fc1", m_new.fc1), ("fc2", m_new.fc2)],
                    SGD(m_new.parameters(), lr=0.1), **kw)
    kfac_seed = SeedKFAC([("fc1", m_seed.fc1), ("fc2", m_seed.fc2)],
                         SGD(m_seed.parameters(), lr=0.1), **kw)
    grads = {}
    for kfac, model in ((kfac_new, m_new), (kfac_seed, m_seed)):
        r = np.random.default_rng(31)
        for (layer, state), name in zip(kfac.layers, ["fc1", "fc2"]):
            inputs = rand_batches(r, [16], state.din)
            g = rand_batches(r, [16], state.dout, scale=0.1)
            state.update_curvature(inputs, g, loss_scale=16.0)
            seed_update_inverses(state, kfac.damping, use_pi=use_pi)
            wg = r.standard_normal((state.dout, state.din)).astype(np.float32)
            bg = r.standard_normal(state.dout).astype(np.float32)
            layer.weight.grad = wg.copy()
            layer.bias.grad = bg.copy()
            grads[name] = (wg, bg)
    # Both sides precondition through IDENTICAL (seed fp64) inverses, so
    # this isolates the stacked-matmul application and view writeback.
    kfac_new.precondition()
    kfac_seed.precondition()
    for (l_new, _), (l_seed, _) in zip(kfac_new.layers, kfac_seed.layers):
        np.testing.assert_allclose(l_new.weight.grad, l_seed.weight.grad,
                                   rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(l_new.bias.grad, l_seed.bias.grad,
                                   rtol=1e-5, atol=1e-7)


def test_precondition_skips_layers_without_grads():
    m_new, _ = make_models(seed=9)
    kfac = KFAC([("fc1", m_new.fc1), ("fc2", m_new.fc2)],
                SGD(m_new.parameters(), lr=0.1))
    r = np.random.default_rng(37)
    for layer, state in kfac.layers:
        state.update_curvature(
            rand_batches(r, [16], state.din),
            rand_batches(r, [16], state.dout, scale=0.1),
            loss_scale=16.0,
        )
    kfac.update_inverses()
    wg = r.standard_normal((m_new.fc1.out_features, m_new.fc1.in_features))
    m_new.fc1.weight.grad = wg.astype(np.float32)
    m_new.fc1.bias.grad = np.zeros(m_new.fc1.out_features, dtype=np.float32)
    m_new.fc2.weight.grad = None  # e.g. a frozen layer
    kfac.precondition()
    assert m_new.fc2.weight.grad is None
    assert not np.allclose(m_new.fc1.weight.grad, wg)


# -- end-to-end optimizer equivalence -------------------------------------------


@pytest.mark.parametrize("stat_decay", [0.0, 0.95])
def test_full_step_losses_match_seed(stat_decay):
    """Fixed-seed training smoke run: batched KFAC == seed-loop KFAC.

    Same model init, same data, five optimization steps; the loss
    trajectories must agree within the documented float32 tolerance —
    preconditioned training behavior is unchanged.
    """
    m_new, m_seed = make_models(seed=12)
    kw = dict(damping=0.03, stat_decay=stat_decay, curvature_interval=2)
    kfac_new = KFAC([("fc1", m_new.fc1), ("fc2", m_new.fc2)],
                    SGD(m_new.parameters(), lr=0.1), **kw)
    kfac_seed = SeedKFAC([("fc1", m_seed.fc1), ("fc2", m_seed.fc2)],
                         SGD(m_seed.parameters(), lr=0.1), **kw)
    rng = np.random.default_rng(41)
    x = rng.standard_normal((32, 6)).astype(np.float32)
    y = rng.integers(0, 4, 32)
    losses = {"new": [], "seed": []}
    for name, model, opt in (("new", m_new, kfac_new), ("seed", m_seed, kfac_seed)):
        for _ in range(5):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
            losses[name].append(loss.item())
    np.testing.assert_allclose(losses["new"], losses["seed"], **PRECOND_TOL)
    for p_new, p_seed in zip(m_new.parameters(), m_seed.parameters()):
        np.testing.assert_allclose(p_new.data, p_seed.data, **PRECOND_TOL)
