"""The KFAC optimizer wrapper: orchestration, intervals, layer selection."""

import numpy as np
import pytest

from repro.kfac import KFAC
from repro.nn import Linear, Module
from repro.optim import SGD
from repro.tensor import Tensor, functional as F


class TwoLayer(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(6, 5, rng=rng)
        self.fc2 = Linear(5, 4, rng=rng)

    def forward(self, x):
        return self.fc2(F.gelu(self.fc1(x)))


def loss_fn(model, x, y):
    return F.cross_entropy(model(Tensor(x)), y)


def make_kfac(model, **kw):
    inner = SGD(model.parameters(), lr=0.1)
    defaults = dict(damping=0.03)
    defaults.update(kw)
    return KFAC(
        [("fc1", model.fc1), ("fc2", model.fc2)], inner, **defaults
    )


def data(seed=0, n=16):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 6)).astype(np.float32), rng.integers(0, 4, n)


class TestConstruction:
    def test_capture_enabled_on_registration(self):
        model = TwoLayer()
        make_kfac(model)
        assert model.fc1.kfac_capture and model.fc2.kfac_capture

    def test_max_dout_excludes_vocab_head(self):
        model = TwoLayer()
        inner = SGD(model.parameters(), lr=0.1)
        kfac = KFAC([("fc1", model.fc1), ("fc2", model.fc2)], inner, max_dout=4)
        names = [s.name for _, s in kfac.layers]
        assert names == ["fc2"]
        assert kfac.skipped_layers == ["fc1"]

    def test_all_excluded_raises(self):
        model = TwoLayer()
        inner = SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            KFAC([("fc1", model.fc1)], inner, max_dout=1)

    def test_invalid_hyperparams(self):
        model = TwoLayer()
        inner = SGD(model.parameters(), lr=0.1)
        layers = [("fc1", model.fc1)]
        with pytest.raises(ValueError):
            KFAC(layers, inner, damping=0.0)
        with pytest.raises(ValueError):
            KFAC(layers, inner, curvature_interval=0)

    def test_non_linear_rejected(self):
        model = TwoLayer()
        inner = SGD(model.parameters(), lr=0.1)
        with pytest.raises(TypeError):
            KFAC([("m", model)], inner)


class TestStep:
    def test_first_step_refreshes_everything(self):
        model = TwoLayer()
        kfac = make_kfac(model)
        x, y = data()
        loss_fn(model, x, y).backward()
        kfac.step()
        assert all(s.ready for _, s in kfac.layers)
        assert kfac.staleness_report() == {"fc1": 1, "fc2": 1}

    def test_step_without_backward_raises(self):
        model = TwoLayer()
        kfac = make_kfac(model)
        with pytest.raises(RuntimeError):
            kfac.step()

    def test_intervals_respected(self):
        model = TwoLayer()
        kfac = make_kfac(model, curvature_interval=2, inverse_interval=4)
        x, y = data()
        inv_updates = []
        for step in range(4):
            kfac.zero_grad()
            loss_fn(model, x, y).backward()
            kfac.step()
            inv_updates.append(kfac.staleness_report()["fc1"])
        # Inverses refreshed at step 0 only -> staleness counts up.
        assert inv_updates == [1, 2, 3, 4]

    def test_preconditioning_changes_update_direction(self):
        m1, m2 = TwoLayer(), TwoLayer()
        x, y = data()
        sgd = SGD(m1.parameters(), lr=0.1)
        loss_fn(m1, x, y).backward()
        sgd.step()
        kfac = make_kfac(m2)
        loss_fn(m2, x, y).backward()
        kfac.step()
        assert not np.allclose(m1.fc1.weight.data, m2.fc1.weight.data, atol=1e-6)

    def test_loss_decreases_over_steps(self):
        model = TwoLayer()
        kfac = make_kfac(model)
        x, y = data(n=32)
        losses = []
        for _ in range(40):
            kfac.zero_grad()
            loss = loss_fn(model, x, y)
            loss.backward()
            kfac.step()
            losses.append(loss.item())
        # Monotone-ish descent on a fixed batch.
        assert losses[-1] < losses[0] - 0.1
        assert losses[-1] < min(losses[:5])

    def test_lr_proxies_inner(self):
        model = TwoLayer()
        kfac = make_kfac(model)
        kfac.lr = 0.5
        assert kfac.inner.lr == 0.5
        assert kfac.lr == 0.5

    def test_discard_on_non_refresh_steps(self):
        model = TwoLayer()
        kfac = make_kfac(model, curvature_interval=10)
        x, y = data()
        for _ in range(3):
            kfac.zero_grad()
            loss_fn(model, x, y).backward()
            kfac.step()
        # Captures must not accumulate across non-refresh steps.
        assert model.fc1.captured_inputs == []

    def test_fallback_to_raw_gradient_before_first_inverse(self):
        """With inverse_interval > 1... the very first step still inverts;
        but precondition() must skip layers whose inverses do not exist."""
        model = TwoLayer()
        kfac = make_kfac(model)
        x, y = data()
        loss_fn(model, x, y).backward()
        # Call precondition directly before any inversion: no-op, no error.
        kfac.precondition()
