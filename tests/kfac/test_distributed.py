"""Distributed K-FAC emulations: equivalence and staleness semantics."""

import numpy as np
import pytest

from repro.kfac import (
    CPUOffloadKFAC,
    DataInversionParallelKFAC,
    KFACLayerState,
    round_robin_layer_assignment,
)


def make_states(n_layers=3, din=4, dout=3):
    return [
        KFACLayerState(name=f"l{i}", din=din, dout=dout, include_bias=False)
        for i in range(n_layers)
    ]


class TestRoundRobin:
    def test_basic(self):
        assert round_robin_layer_assignment(5, 2) == [[0, 2, 4], [1, 3]]

    def test_more_workers_than_layers(self):
        assignment = round_robin_layer_assignment(2, 4)
        assert assignment == [[0], [1], [], []]

    def test_all_layers_covered_once(self):
        assignment = round_robin_layer_assignment(7, 3)
        flat = sorted(l for w in assignment for l in w)
        assert flat == list(range(7))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            round_robin_layer_assignment(3, 0)


class TestDataInversionParallel:
    def _shards(self, n_workers, n_layers, rows_per_worker=8, seed=0):
        rng = np.random.default_rng(seed)
        win, wg, ls = [], [], []
        for _ in range(n_workers):
            win.append([rng.standard_normal((rows_per_worker, 4)).astype(np.float32)
                        for _ in range(n_layers)])
            wg.append([rng.standard_normal((rows_per_worker, 3)).astype(np.float32)
                       for _ in range(n_layers)])
            ls.append([1.0] * n_layers)
        return win, wg, ls

    def test_equivalent_to_serial_kfac(self):
        """Sharded curvature + allreduce == single-worker full-batch factors."""
        n_workers, n_layers = 3, 2
        win, wg, ls = self._shards(n_workers, n_layers)

        par_states = make_states(n_layers)
        par = DataInversionParallelKFAC(par_states, n_workers, damping=0.05)
        par.curvature_step(win, wg, ls)
        par.inversion_step()

        ser_states = make_states(n_layers)
        for l, s in enumerate(ser_states):
            all_in = [win[w][l] for w in range(n_workers)]
            all_g = [wg[w][l] for w in range(n_workers)]
            s.update_curvature(all_in, all_g, loss_scale=1.0)
            s.update_inverses(0.05)

        for ps, ss in zip(par_states, ser_states):
            np.testing.assert_allclose(ps.a_factor.value, ss.a_factor.value, rtol=1e-4)
            np.testing.assert_allclose(ps.b_factor.value, ss.b_factor.value, rtol=1e-4)
            np.testing.assert_allclose(ps.a_inv, ss.a_inv, rtol=1e-3, atol=1e-5)

    def test_inversion_split_covers_all_layers(self):
        states = make_states(5)
        par = DataInversionParallelKFAC(states, 2, damping=0.05)
        win, wg, ls = self._shards(2, 5)
        par.curvature_step(win, wg, ls)
        done = par.inversion_step()
        assert sorted(l for ls_ in done.values() for l in ls_) == list(range(5))
        assert all(s.ready for s in states)

    def test_wrong_shard_count_raises(self):
        par = DataInversionParallelKFAC(make_states(2), 3)
        win, wg, ls = self._shards(2, 2)
        with pytest.raises(ValueError):
            par.curvature_step(win, wg, ls)

    def test_allreduce_bytes_tracked(self):
        states = make_states(2)
        par = DataInversionParallelKFAC(states, 2)
        win, wg, ls = self._shards(2, 2)
        par.curvature_step(win, wg, ls)
        # 2 layers * (4x4 + 3x3) fp32 * (workers-1).
        assert par.last_allreduce_bytes == 2 * 4 * (16 + 9) * 1


class TestCPUOffload:
    def _feed(self, states, seed):
        rng = np.random.default_rng(seed)
        for s in states:
            s.update_curvature(
                [rng.standard_normal((8, 4)).astype(np.float32)],
                [rng.standard_normal((8, 3)).astype(np.float32)],
                loss_scale=1.0,
            )

    def test_lag_semantics(self):
        """Inverses become available only after `lag` further submissions."""
        states = make_states(1)
        off = CPUOffloadKFAC(states, lag=2, damping=0.05)
        self._feed(states, 0)
        off.submit_factors()
        assert not off.poll_inverses()
        self._feed(states, 1)
        off.submit_factors()
        assert not off.poll_inverses()
        self._feed(states, 2)
        off.submit_factors()
        assert off.poll_inverses()
        assert states[0].ready
        assert states[0].inverse_staleness == 2

    def test_lag_zero_immediate(self):
        states = make_states(1)
        off = CPUOffloadKFAC(states, lag=0, damping=0.05)
        self._feed(states, 0)
        off.submit_factors()
        assert off.poll_inverses()

    def test_inverses_come_from_old_snapshot(self):
        states = make_states(1)
        off = CPUOffloadKFAC(states, lag=1, damping=0.05)
        self._feed(states, 0)
        snapshot_a = states[0].a_factor.value.copy()
        off.submit_factors()
        self._feed(states, 99)  # factors change after snapshot
        off.submit_factors()
        off.poll_inverses()
        from repro.kfac import damped_cholesky_inverse, pi_damping

        da, _ = pi_damping(snapshot_a, states[0].b_factor.value, 0.05)
        # The installed inverse corresponds to the OLD snapshot of A.
        expected = damped_cholesky_inverse(snapshot_a, da)
        # (B also changed; only verify A side which isolates the snapshot.)
        assert states[0].a_inv.shape == expected.shape

    def test_negative_lag_raises(self):
        with pytest.raises(ValueError):
            CPUOffloadKFAC(make_states(1), lag=-1)
