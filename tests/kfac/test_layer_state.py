"""Per-layer K-FAC state: curvature, inversion, preconditioning math."""

import numpy as np
import pytest

from repro.kfac import KFACLayerState


def make_state(din=3, dout=2, include_bias=False):
    return KFACLayerState(name="test", din=din, dout=dout, include_bias=include_bias)


def feed(state, n=32, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((n, state.din)).astype(np.float32)]
    grads = [rng.standard_normal((n, state.dout)).astype(np.float32) * scale]
    state.update_curvature(inputs, grads, loss_scale=1.0)
    return inputs, grads


class TestCurvature:
    def test_factors_populated(self):
        s = make_state()
        feed(s)
        assert s.a_factor.updates == 1 and s.b_factor.updates == 1
        assert s.a_factor.value.shape == (3, 3)
        assert s.b_factor.value.shape == (2, 2)

    def test_bias_augments_a_only(self):
        s = make_state(include_bias=True)
        feed(s)
        assert s.a_factor.value.shape == (4, 4)
        assert s.b_factor.value.shape == (2, 2)

    def test_loss_scale_applied_quadratically(self):
        s1, s2 = make_state(), make_state()
        rng = np.random.default_rng(0)
        inputs = [rng.standard_normal((8, 3)).astype(np.float32)]
        grads = [rng.standard_normal((8, 2)).astype(np.float32)]
        s1.update_curvature(inputs, grads, loss_scale=1.0)
        s2.update_curvature(inputs, grads, loss_scale=8.0)
        np.testing.assert_allclose(s2.b_factor.value, 64.0 * s1.b_factor.value,
                                    rtol=1e-4)

    def test_empty_captures_raise(self):
        with pytest.raises(ValueError):
            make_state().update_curvature([], [])


class TestInversion:
    def test_inversion_before_curvature_raises(self):
        with pytest.raises(RuntimeError):
            make_state().update_inverses(0.01)

    def test_inverses_set_and_fresh(self):
        s = make_state()
        feed(s)
        s.update_inverses(0.01)
        assert s.ready
        assert s.inverse_staleness == 0

    def test_staleness_ticks(self):
        s = make_state()
        feed(s)
        s.update_inverses(0.01)
        s.tick_staleness()
        s.tick_staleness()
        assert s.inverse_staleness == 2
        s.update_inverses(0.01)
        assert s.inverse_staleness == 0

    def test_staleness_untracked_before_first_inverse(self):
        s = make_state()
        s.tick_staleness()
        assert s.inverse_staleness == -1


class TestPrecondition:
    def test_identity_factors_with_damping_shrink_uniformly(self):
        """With A=B=I, preconditioning is a uniform rescale by the damping."""
        s = make_state()
        n = 20000
        rng = np.random.default_rng(1)
        # Near-isotropic inputs/grads -> factors ~ I.
        s.update_curvature(
            [rng.standard_normal((n, 3)).astype(np.float32)],
            [rng.standard_normal((n, 2)).astype(np.float32)],
        )
        s.update_inverses(0.0001, use_pi=False)
        g = np.ones((2, 3), dtype=np.float32)
        nat, _ = s.precondition(g)
        ratio = nat / g
        assert np.allclose(ratio, ratio[0, 0], rtol=0.15)

    def test_matches_explicit_kronecker_inverse(self):
        """B^{-1} G A^{-1} == unvec((A (x) B)^{-1} vec(G))."""
        s = make_state(din=3, dout=2)
        feed(s, n=64, seed=3)
        damping = 0.1
        s.update_inverses(damping, use_pi=False)
        g = np.random.default_rng(4).standard_normal((2, 3)).astype(np.float32)
        nat, _ = s.precondition(g)

        root = np.sqrt(damping)
        a_d = s.a_factor.value.astype(np.float64) + root * np.eye(3)
        b_d = s.b_factor.value.astype(np.float64) + root * np.eye(2)
        kron = np.kron(a_d, b_d)  # vec(G) stacks columns: G[:, j] blocks
        vec_g = g.T.reshape(-1)  # column-major vectorization
        vec_nat = np.linalg.solve(kron, vec_g)
        expected = vec_nat.reshape(3, 2).T
        np.testing.assert_allclose(nat, expected, rtol=5e-3, atol=1e-4)

    def test_bias_folded_and_returned(self):
        s = make_state(include_bias=True)
        feed(s, n=64)
        s.update_inverses(0.01)
        w = np.ones((2, 3), dtype=np.float32)
        b = np.ones(2, dtype=np.float32)
        nat_w, nat_b = s.precondition(w, b)
        assert nat_w.shape == (2, 3)
        assert nat_b.shape == (2,)
        assert not np.allclose(nat_b, b)

    def test_precondition_before_inverse_raises(self):
        s = make_state()
        feed(s)
        with pytest.raises(RuntimeError):
            s.precondition(np.ones((2, 3), dtype=np.float32))

    def test_wrong_grad_shape_raises(self):
        s = make_state()
        feed(s)
        s.update_inverses(0.01)
        with pytest.raises(ValueError):
            s.precondition(np.ones((3, 2), dtype=np.float32))

    def test_preconditioning_whitens_dominant_direction(self):
        """Directions with large curvature are shrunk relative to flat ones."""
        s = make_state(din=2, dout=2)
        rng = np.random.default_rng(5)
        inputs = rng.standard_normal((4096, 2)).astype(np.float32)
        inputs[:, 0] *= 10.0  # strong curvature along input dim 0
        grads = rng.standard_normal((4096, 2)).astype(np.float32)
        s.update_curvature([inputs], [grads], loss_scale=1.0)
        s.update_inverses(1e-3, use_pi=False)
        g = np.ones((2, 2), dtype=np.float32)
        nat, _ = s.precondition(g)
        # Column 0 (high-curvature input direction) shrunk more than col 1.
        assert abs(nat[0, 0]) < abs(nat[0, 1])
