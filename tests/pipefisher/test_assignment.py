"""The §3.1 automatic work assignment: correctness invariants."""

import numpy as np
import pytest

from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipefisher import BubbleFiller, build_device_queues
from repro.pipeline import GPipeSchedule, PipelineConfig, simulate_tasks
from repro.pipeline.bubbles import OCCUPYING_KINDS
from repro.profiler import Timeline


def setup(tf=1.0, tb=2.0, curv=0.2, inv=0.6, overhead=1.0, depth=4, n_micro=4,
          layers=1, steady_state=True):
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=curv, t_curv_b=curv,
                      t_inv=inv, t_prec=0.05)
    costs = StageCosts(block=block, layers_per_stage=layers,
                       t_overhead=overhead, kernel_density=1.0)
    cfg = PipelineConfig(depth=depth, n_micro=n_micro, costs=costs,
                         precondition=True)
    builder = GPipeSchedule(cfg)
    template = simulate_tasks(builder.build(), builder.num_devices)
    queues = build_device_queues(builder, costs)
    filler = BubbleFiller(template, queues, steady_state=steady_state)
    return builder, template, queues, filler


class TestFilling:
    def test_everything_assigned(self):
        _, _, queues, filler = setup()
        result = filler.fill()
        for q in queues.values():
            assert q.unassigned() == []
        assert result.refresh_steps >= 1

    def test_no_overlap_with_base_schedule(self):
        """Assigned K-FAC work must live strictly inside bubbles."""
        builder, template, _, filler = setup()
        result = filler.fill()
        span = template.makespan
        combined = Timeline(builder.num_devices)
        for k in range(result.refresh_steps):
            combined.extend([e.shifted(k * span) for e in template.timeline.events])
        combined.extend(result.events())
        combined.verify_no_overlap(kinds=OCCUPYING_KINDS)

    def test_duration_conserved(self):
        _, _, queues, filler = setup()
        total_before = sum(q.total_duration for q in queues.values())
        result = filler.fill()
        placed = sum(e.duration for e in result.events())
        assert placed == pytest.approx(total_before, rel=1e-9)

    def test_rule1_curvature_a_after_forward(self):
        """Non-steady mode: A-curvature never precedes its forward."""
        _, template, queues, filler = setup(steady_state=False)
        filler.fill()
        for q in queues.values():
            for item in q.items:
                if item.kind == "curvature" and item.factor == "A":
                    key = ("forward", item.stage, item.micro_batch, None, 0)
                    assert item.start >= filler._event_end[key] - 1e-9

    def test_rule1_curvature_b_after_backward(self):
        _, template, queues, filler = setup(steady_state=False)
        filler.fill()
        for q in queues.values():
            for item in q.items:
                if item.kind == "curvature" and item.factor == "B":
                    key = ("backward", item.stage, item.micro_batch, None, 0)
                    assert item.start >= filler._event_end[key] - 1e-9

    def test_rule2_inversion_after_all_curvature(self):
        _, _, queues, filler = setup()
        filler.fill()
        for q in queues.values():
            by_id = q.by_id()
            for inv in (i for i in q.items if i.kind == "inversion"):
                dep_end = max(by_id[d].end for d in inv.trigger[1])
                assert inv.start >= dep_end - 1e-9

    def test_steady_state_uses_early_bubbles(self):
        """Steady-state readiness drains the queue in fewer steps."""
        *_, f_cold = setup(steady_state=False, curv=0.5, inv=1.5)
        cold = f_cold.fill().refresh_steps
        *_, f_ss = setup(steady_state=True, curv=0.5, inv=1.5)
        warm = f_ss.fill().refresh_steps
        assert warm <= cold

    def test_work_splitting_across_bubbles(self):
        """A work longer than any single bubble still gets placed."""
        _, _, queues, filler = setup(inv=20.0)  # inversion >> any bubble
        result = filler.fill()
        inv_items = [i for q in queues.values() for i in q.items
                     if i.kind == "inversion"]
        assert all(i.assigned for i in inv_items)
        assert any(len(i.segments) > 1 for i in inv_items)

    def test_refresh_steps_scale_with_work(self):
        # Per-device bubble per step is ~10 time units in this setup; the
        # big case carries ~22 units of K-FAC work per device.
        *_, f_small = setup(curv=0.05, inv=0.1)
        *_, f_big = setup(curv=2.0, inv=6.0)
        small = f_small.fill().refresh_steps
        big = f_big.fill().refresh_steps
        assert small == 1
        assert big >= 3

    def test_impossible_fill_raises(self):
        # Zero-bubble schedule cannot host K-FAC work: force tiny max_steps
        # with massive work.
        *_, filler = setup(curv=5.0, inv=20.0)
        filler.max_steps = 2
        with pytest.raises(RuntimeError):
            filler.fill()

    def test_device_refresh_reported(self):
        _, _, _, filler = setup()
        result = filler.fill()
        assert set(result.device_refresh_steps) == {0, 1, 2, 3}
        assert result.refresh_steps == max(result.device_refresh_steps.values())

    def test_events_have_step_metadata(self):
        _, _, _, filler = setup()
        result = filler.fill()
        for e in result.events():
            assert 0 <= e.meta["step"] < result.refresh_steps


class TestFillTimeValidation:
    """A bad fill must fail at assignment time, not when reporting."""

    def test_fill_raises_on_unassigned_items(self):
        """If a device's items somehow escape placement, fill() itself
        raises instead of handing back a result whose events() blows up."""
        _, _, _, filler = setup()
        filler._fill_device = lambda device: 1  # placement silently skipped
        with pytest.raises(RuntimeError, match="unassigned"):
            filler.fill()

    def test_events_reports_partial_segments_without_raising(self):
        """events() is a pure reporter now: it renders whatever segments
        exist (fill() already guarantees completeness for real results)."""
        from repro.pipefisher.assignment import AssignmentResult
        from repro.pipefisher.workqueue import KFACWorkItem, KFACWorkQueue

        item = KFACWorkItem(
            iid="kfac0.d0", device=0, kind="curvature", factor="A", stage=0,
            block=0, micro_batch=0, pipeline=None, duration=1.0,
            trigger=("forward", 0, 0, None),
            segments=[(0.0, 0.25)],  # partially placed: not assigned
        )
        assert not item.assigned
        result = AssignmentResult(
            queues={0: KFACWorkQueue(device=0, items=[item])},
            refresh_steps=1, span=2.0,
        )
        events = result.events()
        assert [(e.start, e.end) for e in events] == [(0.0, 0.25)]


class TestReadinessIndex:
    """The dependency-counter index must match on-demand readiness."""

    def test_inversion_ready_exactly_at_last_curvature_end(self):
        _, _, queues, filler = setup()
        filler.fill()
        for q in queues.values():
            by_id = q.by_id()
            for inv in (i for i in q.items if i.kind == "inversion"):
                dep_ends = [by_id[d].end for d in inv.trigger[1]]
                # the indexed rt is max(dep ends); start can never precede it
                assert inv.start >= max(dep_ends) - 1e-12

    def test_chained_items_triggers(self):
        """sync_curv depends on ALL curvature; inversions depend on their
        curvature AND the sync item — a two-level counter chain."""
        block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.2, t_curv_b=0.2,
                          t_inv=0.6, t_prec=0.05)
        costs = StageCosts(block=block, layers_per_stage=1, t_overhead=1.0,
                           kernel_density=1.0)
        cfg = PipelineConfig(depth=4, n_micro=8, costs=costs, dp=2,
                             precondition=True, stage_param_bytes=1e8)
        from repro.pipeline import make_schedule
        builder = make_schedule("1f1b", cfg)
        template = simulate_tasks(builder.build(), builder.num_devices)
        queues = build_device_queues(builder, costs, inversion_parallel=True,
                                     sync_curv_seconds=0.05)
        result = BubbleFiller(template, queues, dp=2).fill()
        for q in queues.values():
            by_id = q.by_id()
            syncs = [i for i in q.items if i.kind == "sync_curv"]
            assert syncs, "inversion_parallel run must carry sync items"
            for sync in syncs:
                assert sync.start >= max(
                    by_id[d].end for d in sync.trigger[1]) - 1e-12
            for inv in (i for i in q.items if i.kind == "inversion"):
                assert sync.iid in inv.trigger[1]
        assert result.refresh_steps >= 1
