"""K-FAC work inventory construction (§3.1 granularity)."""

import pytest

from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipefisher import BubbleFiller, build_device_queues
from repro.pipeline import (
    ChimeraSchedule,
    GPipeSchedule,
    InterleavedSchedule,
    PipelineConfig,
    simulate_tasks,
)


def costs(layers=3):
    block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.2, t_curv_b=0.25,
                      t_inv=0.6, t_prec=0.1)
    return StageCosts(block=block, layers_per_stage=layers, t_overhead=0.1,
                      kernel_density=1.0)


def gpipe_builder(depth=4, n_micro=4, layers=3, dp=1):
    cfg = PipelineConfig(depth=depth, n_micro=n_micro, costs=costs(layers), dp=dp)
    return GPipeSchedule(cfg), costs(layers)


class TestInventoryCounts:
    def test_curvature_items_per_device(self):
        b, c = gpipe_builder()
        queues = build_device_queues(b, c)
        for q in queues.values():
            curv = [i for i in q.items if i.kind == "curvature"]
            # N_micro * layers * 2 factors = 4 * 3 * 2.
            assert len(curv) == 24

    def test_inversion_items_per_device(self):
        b, c = gpipe_builder()
        queues = build_device_queues(b, c)
        for q in queues.values():
            inv = [i for i in q.items if i.kind == "inversion"]
            assert len(inv) == 6  # layers * 2 factors

    def test_durations_from_block_costs(self):
        b, c = gpipe_builder()
        q = build_device_queues(b, c)[0]
        curv_a = [i for i in q.items if i.kind == "curvature" and i.factor == "A"]
        assert all(i.duration == pytest.approx(0.2) for i in curv_a)
        inv = [i for i in q.items if i.kind == "inversion"]
        assert all(i.duration == pytest.approx(0.3) for i in inv)

    def test_total_work_formula(self):
        """Total per device = N*Tcurv + Tinv (the §3.3 quantities)."""
        b, c = gpipe_builder()
        q = build_device_queues(b, c)[0]
        expected = 4 * c.t_curv + c.t_inv
        assert q.total_duration == pytest.approx(expected)


class TestTriggers:
    def test_curvature_a_after_forward(self):
        b, c = gpipe_builder()
        q = build_device_queues(b, c)[0]
        a_items = [i for i in q.items if i.factor == "A" and i.kind == "curvature"]
        assert all(i.trigger[0] == "forward" for i in a_items)

    def test_curvature_b_after_backward(self):
        b, c = gpipe_builder()
        q = build_device_queues(b, c)[0]
        b_items = [i for i in q.items if i.factor == "B" and i.kind == "curvature"]
        assert all(i.trigger[0] == "backward" for i in b_items)

    def test_inversion_depends_on_all_its_curvature(self):
        b, c = gpipe_builder()
        q = build_device_queues(b, c)[0]
        by_id = q.by_id()
        for inv in (i for i in q.items if i.kind == "inversion"):
            deps = inv.trigger[1]
            assert len(deps) == 4  # one per micro-batch
            for d in deps:
                dep = by_id[d]
                assert dep.kind == "curvature"
                assert dep.factor == inv.factor
                assert (dep.stage, dep.block) == (inv.stage, inv.block)


class TestChimeraQueues:
    def test_both_stages_covered(self):
        cfg = PipelineConfig(depth=4, n_micro=4, costs=costs(2))
        b = ChimeraSchedule(cfg)
        queues = build_device_queues(b, costs(2))
        stages = {i.stage for i in queues[0].items}
        assert stages == {0, 3}

    def test_item_count_doubles_with_two_stages(self):
        cfg = PipelineConfig(depth=4, n_micro=4, costs=costs(2))
        b = ChimeraSchedule(cfg)
        q = build_device_queues(b, costs(2))[0]
        curv = [i for i in q.items if i.kind == "curvature"]
        # 2 stages * (N/2 micro-batches) * 2 layers * 2 factors = 16.
        assert len(curv) == 16


class TestInterleavedQueues:
    """Virtual-stage chunks flow through the K-FAC inventory and the
    bubble filler exactly like Chimera's two stages per device."""

    def builder(self, layers=2):
        cfg = PipelineConfig(depth=8, n_micro=4, costs=costs(layers),
                             virtual_chunks=2)
        return InterleavedSchedule(cfg)

    def test_all_chunk_stages_covered(self):
        b = self.builder()
        queues = build_device_queues(b, costs(2))
        for dev in range(b.num_devices):
            stages = {i.stage for i in queues[dev].items}
            assert stages == set(b.stages_of_device(dev))

    def test_item_count_scales_with_chunks(self):
        b = self.builder()
        q = build_device_queues(b, costs(2))[0]
        curv = [i for i in q.items if i.kind == "curvature"]
        # 2 chunk stages * 4 micro-batches * 2 layers * 2 factors.
        assert len(curv) == 32
        inv = [i for i in q.items if i.kind == "inversion"]
        assert len(inv) == 8  # 2 stages * 2 layers * 2 factors

    def test_bubble_filler_drains_interleaved_queues(self):
        b = self.builder(layers=1)
        template = simulate_tasks(b.build(steps=1), b.num_devices)
        queues = build_device_queues(b, costs(1))
        result = BubbleFiller(template, queues).fill()
        assert result.refresh_steps >= 1
        for q in result.queues.values():
            assert all(i.assigned for i in q.items)
        # Placed K-FAC segments only ever occupy bubbles: overlaying them
        # on the template timeline must not double-book any device.
        overlay = simulate_tasks(b.build(steps=1), b.num_devices).timeline
        for c in range(result.refresh_steps - 1):
            for e in template.timeline.events:
                overlay.add(e.shifted((c + 1) * template.makespan))
        overlay.extend(result.events())
        overlay.verify_no_overlap(
            kinds={"forward", "backward", "curvature", "inversion",
                   "precondition", "sync_grad", "sync_curv"})


class TestInversionParallel:
    def test_inversions_split_across_group(self):
        b, c = gpipe_builder(dp=2)
        queues = build_device_queues(b, c, inversion_parallel=True)
        # Devices 0 and 1 share stage 0: each gets half of the 6 items.
        inv0 = [i for i in queues[0].items if i.kind == "inversion"]
        inv1 = [i for i in queues[1].items if i.kind == "inversion"]
        assert len(inv0) == 3 and len(inv1) == 3
        keys0 = {(i.stage, i.block, i.factor) for i in inv0}
        keys1 = {(i.stage, i.block, i.factor) for i in inv1}
        assert keys0.isdisjoint(keys1)
        assert len(keys0 | keys1) == 6

    def test_sync_curv_item_added(self):
        b, c = gpipe_builder(dp=2)
        queues = build_device_queues(b, c, inversion_parallel=True,
                                     sync_curv_seconds=0.5)
        sync = [i for i in queues[0].items if i.kind == "sync_curv"]
        assert len(sync) == 1
        assert sync[0].duration == pytest.approx(0.5)

    def test_no_sync_curv_without_dp(self):
        b, c = gpipe_builder(dp=1)
        queues = build_device_queues(b, c, inversion_parallel=True,
                                     sync_curv_seconds=0.5)
        assert [i for i in queues[0].items if i.kind == "sync_curv"] == []

    def test_inversion_waits_for_sync(self):
        b, c = gpipe_builder(dp=2)
        queues = build_device_queues(b, c, inversion_parallel=True,
                                     sync_curv_seconds=0.5)
        q = queues[0]
        sync_id = next(i.iid for i in q.items if i.kind == "sync_curv")
        for inv in (i for i in q.items if i.kind == "inversion"):
            assert sync_id in inv.trigger[1]
