"""End-to-end PipeFisher runs: the paper's headline claims as invariants."""

import pytest

from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.hardware import P100
from repro.pipefisher import PipeFisherRun
from repro.sweep.cache import BoundedCache


@pytest.fixture(scope="module")
def gpipe_report():
    return PipeFisherRun(
        schedule="gpipe", arch=BERT_BASE, hardware=P100, b_micro=32,
        depth=4, n_micro=4, layers_per_stage=3,
    ).execute()


@pytest.fixture(scope="module")
def chimera_report():
    return PipeFisherRun(
        schedule="chimera", arch=BERT_BASE, hardware=P100, b_micro=32,
        depth=4, n_micro=4, layers_per_stage=3, inversion_parallel=True,
    ).execute()


class TestHeadlineClaims:
    def test_pipefisher_lifts_utilization(self, gpipe_report):
        r = gpipe_report
        assert r.pipefisher_utilization > r.baseline_utilization + 0.25

    def test_precondition_is_only_overhead(self, gpipe_report):
        """Step-time overhead must be small (paper: ~4-6.5%)."""
        assert 0.0 < gpipe_report.step_time_overhead < 0.10

    def test_refresh_within_few_steps(self, gpipe_report):
        assert 1 <= gpipe_report.refresh_steps <= 3

    def test_baseline_unaffected_by_kfac(self, gpipe_report):
        """Baseline timeline contains no K-FAC work."""
        kinds = {e.kind for e in gpipe_report.baseline_timeline.events}
        assert "curvature" not in kinds and "inversion" not in kinds

    def test_pipefisher_timeline_contains_kfac(self, gpipe_report):
        kinds = {e.kind for e in gpipe_report.pipefisher_timeline.events}
        assert {"curvature", "inversion", "precondition"} <= kinds

    def test_chimera_baseline_beats_gpipe(self, gpipe_report, chimera_report):
        assert (chimera_report.baseline_utilization
                > gpipe_report.baseline_utilization)

    def test_chimera_step_faster_than_gpipe(self, gpipe_report, chimera_report):
        assert chimera_report.baseline_step_time < gpipe_report.baseline_step_time

    def test_chimera_refresh_slower_than_gpipe(self, gpipe_report, chimera_report):
        """§3.3 tradeoff: fewer bubbles -> less frequent curvature refresh."""
        assert chimera_report.refresh_steps >= gpipe_report.refresh_steps

    def test_device_refresh_consistent(self, gpipe_report):
        assert gpipe_report.refresh_steps == max(
            gpipe_report.device_refresh_steps.values()
        )


class TestUtilizationAccounting:
    def test_utilization_bounded(self, gpipe_report, chimera_report):
        for r in (gpipe_report, chimera_report):
            assert 0.0 < r.baseline_utilization < 1.0
            assert 0.0 < r.pipefisher_utilization <= 1.0

    def test_window_spans_refresh_cycle(self, gpipe_report):
        r = gpipe_report
        t0, t1 = r.pipefisher_timeline.span
        assert t1 >= r.refresh_steps * r.pipefisher_step_time - 1e-6


class TestLazyWindowTimelines:
    def test_timelines_are_lazy_by_default(self):
        r = PipeFisherRun(
            schedule="gpipe", arch=BERT_BASE, hardware=P100, b_micro=32,
            depth=4, n_micro=4, layers_per_stage=3,
        ).execute()
        assert r._baseline_timeline is None
        assert r._pipefisher_timeline is None
        # first access materializes and caches
        tl = r.pipefisher_timeline
        assert tl is r.pipefisher_timeline
        assert r._pipefisher_timeline is tl

    def test_materialize_window_flag_builds_eagerly(self):
        r = PipeFisherRun(
            schedule="gpipe", arch=BERT_BASE, hardware=P100, b_micro=32,
            depth=4, n_micro=4, layers_per_stage=3, materialize_window=True,
        ).execute()
        assert r._baseline_timeline is not None
        assert r._pipefisher_timeline is not None

    def test_lazy_and_eager_runs_agree(self):
        kwargs = dict(schedule="gpipe", arch=BERT_BASE, hardware=P100,
                      b_micro=32, depth=4, n_micro=4, layers_per_stage=3)
        lazy = PipeFisherRun(**kwargs).execute()
        eager = PipeFisherRun(materialize_window=True, **kwargs).execute()
        assert lazy.pipefisher_utilization == pytest.approx(
            eager.pipefisher_utilization, abs=1e-12)
        assert lazy.baseline_utilization == pytest.approx(
            eager.baseline_utilization, abs=1e-12)
        for a, b in ((lazy.baseline_timeline, eager.baseline_timeline),
                     (lazy.pipefisher_timeline, eager.pipefisher_timeline)):
            assert len(a.events) == len(b.events)
            assert a.span == b.span

    def test_arithmetic_utilization_matches_measured_window(self, gpipe_report):
        """The one-cycle arithmetic utilization must equal utilization()
        measured over the materialized whole-cycle window."""
        from repro.profiler import utilization

        r = gpipe_report
        tl = r.pipefisher_timeline
        n_cycles = max(1, -(-r.window_steps // r.refresh_steps))
        cycle_steps = n_cycles * r.refresh_steps
        window = (0.0, cycle_steps * r.pipefisher_step_time)
        assert r.pipefisher_utilization == pytest.approx(
            utilization(tl, window), abs=1e-9)


class TestStageCostCaching:
    """The baseline and precondition configs share one cost model, and
    sweeps memoize it on (arch, hardware, b_micro, layers_per_stage,
    schedule)."""

    def test_execute_computes_costs_once(self, monkeypatch):
        from repro.pipefisher import runner as runner_mod

        calls = []
        real = runner_mod.compute_stage_costs

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "compute_stage_costs", counting)
        monkeypatch.setattr(runner_mod, "_STAGE_COSTS_MEMO",
                            BoundedCache(maxsize=512))
        run = PipeFisherRun(schedule="gpipe", arch=BERT_BASE, hardware=P100,
                            b_micro=32, depth=4, n_micro=4, layers_per_stage=3)
        run.execute()
        assert len(calls) == 1  # baseline + precondition share the result

    def test_sweep_reuses_memoized_costs(self, monkeypatch):
        from repro.pipefisher import runner as runner_mod

        calls = []
        real = runner_mod.compute_stage_costs

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "compute_stage_costs", counting)
        monkeypatch.setattr(runner_mod, "_STAGE_COSTS_MEMO",
                            BoundedCache(maxsize=512))
        for n_micro in (4, 6, 8):  # sweep dimension not in the memo key
            PipeFisherRun(schedule="gpipe", arch=BERT_BASE, hardware=P100,
                          b_micro=32, depth=4, n_micro=n_micro,
                          layers_per_stage=3).execute()
        assert len(calls) == 1

    def test_memoized_run_matches_fresh(self, gpipe_report):
        from repro.pipefisher.runner import _STAGE_COSTS_MEMO

        _STAGE_COSTS_MEMO.clear()
        fresh = PipeFisherRun(schedule="gpipe", arch=BERT_BASE, hardware=P100,
                              b_micro=32, depth=4, n_micro=4,
                              layers_per_stage=3).execute()
        assert fresh.pipefisher_utilization == pytest.approx(
            gpipe_report.pipefisher_utilization, abs=1e-12)
        assert fresh.baseline_step_time == pytest.approx(
            gpipe_report.baseline_step_time, abs=1e-12)
