"""The capacity-planner search and its pinned best-point ordering.

The seed example picked the best feasible configuration with ``max()``
over raw result tuples whose second element was the schedule *name* —
throughput ties broke lexicographically, so registering a new schedule
could silently flip the reported best.  :func:`best_point` pins the
ordering: throughput, then lower memory, then registration order.
"""

import pytest

from repro.pipeline.spec import get_spec, schedule_names
from repro.service import planner
from repro.service.planner import Plan, PlanPoint, best_point, plan


def _pt(schedule="chimera", thr=100.0, mem=4.0, fits=True, **over):
    fields = dict(schedule=schedule, depth=4, b_micro=8, recompute=False,
                  mem_gb=mem, throughput=thr, throughput_pipeline=thr,
                  refresh_steps=5, fits=fits)
    fields.update(over)
    return PlanPoint(**fields)


def _analytic():
    return [s for s in schedule_names()
            if get_spec(s).critical_path is not None]


_CACHE: dict = {}


def once(key, fn):
    """Compute an expensive search once per test module."""
    if key not in _CACHE:
        _CACHE[key] = fn()
    return _CACHE[key]


class TestPlanSearch:
    def test_covers_the_seed_grid(self):
        p = once("plan-bert-p100", lambda: plan("BERT-Large", "P100",
                                                budget_gb=16.0))
        # schedules x depths(3) x b_micros(4) x recompute(2)
        assert len(p.points) == len(_analytic()) * 3 * 4 * 2
        assert p.budget_gb == 16.0
        assert p.best is not None and p.best.fits
        assert p.best.throughput == max(q.throughput for q in p.feasible())

    def test_budget_defaults_to_device_memory(self):
        p = once("plan-default-budget",
                 lambda: plan("BERT-Large", "P100", depths=(4,),
                              b_micros=(8,), recompute_options=(False,)))
        from repro.perfmodel.hardware import HARDWARE

        assert p.budget_gb == HARDWARE["P100"].memory_gb

    def test_impossible_budget_has_no_best(self):
        p = once("plan-tiny-budget",
                 lambda: plan("BERT-Large", "P100", budget_gb=0.01,
                              depths=(4,), b_micros=(8,)))
        assert p.feasible() == ()
        assert p.best is None

    def test_unknown_names_are_value_errors(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            plan("GPT-17", "P100")
        with pytest.raises(ValueError, match="unknown hardware"):
            plan("BERT-Large", "Q100")
        with pytest.raises(ValueError, match="unknown schedule"):
            plan("BERT-Large", "P100", schedules=["nope"],
                 depths=(4,), b_micros=(8,))


class TestBestPointOrdering:
    def test_no_feasible_points_is_none(self):
        assert best_point([_pt(fits=False)]) is None
        assert best_point([]) is None

    def test_highest_throughput_wins(self):
        best = best_point([_pt(thr=100.0), _pt(thr=200.0, depth=8),
                           _pt(thr=150.0, depth=16)])
        assert best.throughput == 200.0

    def test_infeasible_points_never_win(self):
        best = best_point([_pt(thr=100.0), _pt(thr=999.0, fits=False)])
        assert best.throughput == 100.0

    def test_throughput_tie_prefers_lower_memory(self):
        lean = _pt(thr=100.0, mem=2.0)
        fat = _pt(thr=100.0, mem=8.0, depth=8)
        assert best_point([fat, lean]) is lean
        assert best_point([lean, fat]) is lean

    def test_full_tie_resolves_by_registration_order(self, monkeypatch):
        # Simulate a schedule registered *after* chimera whose name sorts
        # lexicographically after it — the seed's max()-over-tuples pick.
        order = list(planner.schedule_specs())
        assert "chimera" in order
        monkeypatch.setattr(planner, "schedule_specs",
                            lambda: dict.fromkeys([*order, "zzz_new"]))
        old = _pt(schedule="chimera", thr=100.0, mem=4.0)
        new = _pt(schedule="zzz_new", thr=100.0, mem=4.0)
        # The seed ordering (throughput, then name) flips to the newcomer...
        assert max([(old.throughput, old.schedule), (new.throughput,
                    new.schedule)])[1] == "zzz_new"
        # ...the pinned ordering does not.
        assert best_point([new, old]).schedule == "chimera"
        assert best_point([old, new]).schedule == "chimera"

    def test_new_schedule_must_actually_be_better_to_win(self, monkeypatch):
        order = list(planner.schedule_specs())
        monkeypatch.setattr(planner, "schedule_specs",
                            lambda: dict.fromkeys([*order, "zzz_new"]))
        incumbent = _pt(schedule="chimera", thr=100.0, mem=4.0)
        assert best_point(
            [incumbent, _pt(schedule="zzz_new", thr=100.0, mem=3.0)]
        ).schedule == "zzz_new"  # leaner at equal speed: a real win
        assert best_point(
            [incumbent, _pt(schedule="zzz_new", thr=100.0, mem=4.0)]
        ).schedule == "chimera"  # identical point: incumbency holds


class TestPlanSerialization:
    def test_to_dict_round_trips_the_best(self):
        p: Plan = once("plan-bert-p100", lambda: plan("BERT-Large", "P100",
                                                      budget_gb=16.0))
        d = p.to_dict()
        assert d["feasible"] == len(p.feasible())
        assert d["best"] == p.best.to_dict()
        assert len(d["points"]) == len(p.points)
        assert set(d["points"][0]) == {
            "schedule", "depth", "b_micro", "recompute", "mem_gb",
            "throughput", "throughput_pipeline", "refresh_steps", "fits"}
