"""Engine-pool concurrency, bearer-token auth, and worker-shard kinds.

Three service behaviors this file pins down:

* A pooled service (``engine_pool > 1``) answers byte-identically to
  the single-engine serial pass — slot routing is a lock-contention
  detail, never a results detail — and concurrent cold misses from
  many client threads still agree.
* Bearer-token auth: every endpoint 401s without the exact token,
  the reject counter ticks, and :class:`ServiceClient` sends the
  header when constructed with ``token=``.
* Worker-shard subprocesses can execute *registered* (non-generic)
  unit kinds: ``worker_jobs=2`` over a ``stochastic`` grid must
  produce the same records as an in-process campaign run.  Fresh
  subprocesses only inherit the generic kinds unless the shard worker
  re-imports the experiment modules — the regression this guards.
"""

import threading

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import canonical_json
from repro.service import (
    PlanningService,
    ServiceClient,
    ServiceHTTPError,
    ServiceServer,
)
from repro.service.app import EnginePool
from repro.service.jobs import spec_from_request, sweep_request
from repro.stochastic.model import StochasticModel
from repro.sweep import SweepEngine

FIXED = {"arch": "BERT-Large", "hardware": "P100", "schedule": "chimera"}


def _sweep_body(grid, **over):
    body = {"kind": "perf_report", "fixed": dict(FIXED), "grid": grid}
    body.update(over)
    return body


def _stochastic_body(**over):
    """A ``stochastic``-kind grid: a registered, non-generic unit kind."""
    model = StochasticModel(jitter_sigma=0.02, preemption_rate=0.5,
                            restart_delay_frac=0.05,
                            checkpoint_interval_frac=0.1)
    body = {
        "kind": "stochastic",
        "fixed": {"arch": "BERT-Base", "hardware": "P100",
                  "schedule": "1f1b", "b_micro": 32, "depth": 4,
                  "n_micro": 8, "layers_per_stage": 3,
                  **model.as_params()},
        "grid": {"seed": [0, 1, 2, 3]},
    }
    body.update(over)
    return body


def _values(out):
    return {u["key"]: canonical_json(u["value"]) for u in out["units"]}


def _campaign_values(body):
    spec = spec_from_request(sweep_request(
        {k: v for k, v in body.items() if k != "inline"}))
    result = CampaignRunner(engine=SweepEngine()).run(spec)
    return {k: canonical_json(rec["value"])
            for k, rec in result.records.items()}


class TestEnginePool:
    def test_default_service_gets_a_pool(self):
        svc = PlanningService()
        assert len(svc.pool) > 1
        assert svc.metrics_snapshot()["engine_pool"] == len(svc.pool)

    def test_explicit_engine_means_single_slot(self):
        # The pre-pool constructor contract: tests and benchmarks that
        # hand in one engine observe exactly that engine's counters.
        engine = SweepEngine()
        svc = PlanningService(engine=engine)
        assert len(svc.pool) == 1
        assert svc.pool.slots[0].engine is engine
        assert svc.engine is engine

    def test_pooled_sweep_is_byte_identical_to_serial(self):
        body = _sweep_body({"depth": [4, 8], "b_micro": [8, 16]})
        pooled = PlanningService(engine_pool=4).sweep(dict(body))
        assert pooled["mode"] == "inline" and pooled["executed"] == 4
        assert _values(pooled) == _campaign_values(body)

    def test_concurrent_cold_misses_agree_with_serial(self):
        # Distinct single-unit grids land on different slots and
        # evaluate concurrently; every response must still match the
        # one-engine serial pass bit for bit.
        bodies = [_sweep_body({"depth": [d], "b_micro": [b]})
                  for d in (4, 8) for b in (8, 16)]
        svc = PlanningService(engine_pool=4)
        outs = [None] * len(bodies)

        def hit(i):
            outs[i] = svc.sweep(dict(bodies[i]))

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(len(bodies))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for body, out in zip(bodies, outs):
            assert _values(out) == _campaign_values(body)

    def test_pool_counters_aggregate_across_slots(self):
        svc = PlanningService(engine_pool=3)
        svc.sweep(_sweep_body({"depth": [4, 8], "b_micro": [8, 16]}))
        from repro.campaign.runner import _engine_counters

        merged = svc.pool.counters()
        per_slot = [_engine_counters(s.engine) for s in svc.pool.slots]
        for key, total in merged.items():
            assert total == pytest.approx(sum(s[key] for s in per_slot))
        assert any(v > 0 for v in merged.values()), merged

    def test_slot_routing_is_deterministic(self):
        pool = EnginePool([SweepEngine() for _ in range(4)])
        picks = {pool.slot("plan:xyz") for _ in range(8)}
        assert len(picks) == 1


class TestWorkerShardKinds:
    def test_worker_jobs_run_registered_kinds(self, tmp_path):
        """The satellite regression: ``worker_jobs=2`` + a non-generic
        kind.  Shard subprocesses start from a blank registry; without
        the shard worker loading the builtin campaigns the job dies
        with an unknown-kind error instead of producing records."""
        body = _stochastic_body(inline=False)
        svc = PlanningService(state_dir=tmp_path / "state",
                              engine=SweepEngine(), worker_jobs=2)
        out = svc.sweep(dict(body))
        assert out["mode"] == "job"
        svc.jobs.wait(out["job"])
        job = svc.job_status(out["job"])
        assert job["status"] == "done", job.get("error")
        assert job["done_units"] == job["units"] == 4
        served = {key: canonical_json(svc.store.get(key)["value"])
                  for key in job["unit_keys"]}
        assert served == _campaign_values(body)

    def test_inline_stochastic_sweep_still_works(self):
        # The in-process path never lost kind registrations; pin it so
        # the shard fix is comparable against a passing baseline.
        out = PlanningService(engine=SweepEngine()).sweep(
            _stochastic_body())
        assert out["mode"] == "inline" and out["executed"] == 4


class TestBearerAuth:
    @pytest.fixture(scope="class")
    def live(self):
        svc = PlanningService(engine=SweepEngine(), token="s3cret")
        with ServiceServer(svc) as server:
            yield svc, server

    def test_missing_token_is_401(self, live):
        svc, server = live
        with pytest.raises(ServiceHTTPError) as err:
            ServiceClient(server.url).metrics()
        assert err.value.status == 401
        assert "Bearer" in err.value.body["error"]

    def test_wrong_token_is_401_even_on_post(self, live):
        svc, server = live
        client = ServiceClient(server.url, token="wrong")
        with pytest.raises(ServiceHTTPError) as err:
            client.post("/sweep", _sweep_body({"depth": [4], "b_micro": [8]}))
        assert err.value.status == 401

    def test_correct_token_serves_and_rejects_are_counted(self, live):
        svc, server = live
        client = ServiceClient(server.url, token="s3cret")
        out = client.post("/sweep", _sweep_body({"depth": [4], "b_micro": [8]}))
        assert out["mode"] == "inline" and len(out["units"]) == 1
        snap = client.metrics()
        # Both 401s above were counted; authorized traffic was not.
        assert snap["auth_rejects"] == 2
        assert svc.metrics.auth_rejects == 2

    def test_tokenless_service_accepts_anonymous_requests(self):
        svc = PlanningService(engine=SweepEngine())
        with ServiceServer(svc) as server:
            assert "requests" in ServiceClient(server.url).metrics()
        assert svc.metrics.auth_rejects == 0
