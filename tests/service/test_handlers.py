"""Service endpoint behavior: routing, validation, idempotency, metrics.

Exercises :class:`PlanningService` both directly (endpoint logic) and
through a live :class:`ServiceServer` + :class:`ServiceClient` pair
(HTTP routing and status codes).  Everything runs on a private
in-memory service with its own engine, so tests are hermetic.
"""

import json
import urllib.request

import pytest

from repro.service import (
    PlanningService,
    ServiceClient,
    ServiceError,
    ServiceHTTPError,
    ServiceServer,
)
from repro.service.jobs import job_id_for, sweep_request
from repro.sweep import SweepEngine

FIXED = {"arch": "BERT-Large", "hardware": "P100", "schedule": "chimera"}


def _sweep_body(grid, **over):
    body = {"kind": "perf_report", "fixed": dict(FIXED), "grid": grid}
    body.update(over)
    return body


@pytest.fixture()
def svc():
    return PlanningService(engine=SweepEngine())


@pytest.fixture(scope="module")
def live():
    with ServiceServer(PlanningService(engine=SweepEngine())) as server:
        yield ServiceClient(server.url)


class TestPlanEndpoint:
    def test_plan_returns_points_and_pinned_best(self, svc):
        out = svc.plan({"arch": "BERT-Large", "hardware": "P100",
                        "depths": [4], "b_micros": [8, 16]})
        assert len(out["points"]) == out["cost_units"] > 0
        assert out["best"]["fits"] is True

    def test_missing_required_fields_are_400(self, svc):
        for body in ({}, {"arch": "BERT-Large"}, {"hardware": "P100"}):
            with pytest.raises(ServiceError) as exc:
                svc.plan(body)
            assert exc.value.status == 400

    def test_unknown_fields_and_values_are_400(self, svc):
        for body in (
            {"arch": "BERT-Large", "hardware": "P100", "bogus": 1},
            {"arch": "Nope", "hardware": "P100"},
            {"arch": "BERT-Large", "hardware": "P100", "depths": []},
            {"arch": "BERT-Large", "hardware": "P100", "depths": 4},
            {"arch": "BERT-Large", "hardware": "P100",
             "schedules": ["nope"]},
        ):
            with pytest.raises(ServiceError) as exc:
                svc.plan(body)
            assert exc.value.status == 400

    def test_rejected_plan_refunds_its_charge(self, svc):
        with pytest.raises(ServiceError):
            svc.plan({"arch": "BERT-Large", "hardware": "P100",
                      "schedules": ["nope"]})
        assert svc.metrics.charged_units == 0


class TestSweepEndpoint:
    def test_inline_sweep_executes_each_unit_once(self, svc):
        out = svc.sweep(_sweep_body({"depth": [4, 8], "b_micro": [8]}))
        assert out["mode"] == "inline"
        assert out["executed"] == 2 and out["cached"] == 0
        assert all(u["status"] == "done" for u in out["units"])

    def test_repeat_sweep_is_fully_cached(self, svc):
        body = _sweep_body({"depth": [4], "b_micro": [8, 16]})
        first = svc.sweep(body)
        again = svc.sweep(body)
        assert first["executed"] == 2
        assert again["executed"] == 0 and again["cached"] == 2
        assert again["cost_units"] == 0
        assert again["units"] == first["units"]

    def test_axis_order_does_not_change_unit_identity(self, svc):
        a = svc.sweep(_sweep_body({"depth": [4, 8], "b_micro": [8, 16]}))
        b = svc.sweep(_sweep_body({"b_micro": [8, 16], "depth": [4, 8]}))
        assert {u["key"] for u in a["units"]} == {u["key"] for u in b["units"]}
        assert b["executed"] == 0  # permuted axes are the same four points

    def test_axis_order_does_not_change_job_identity(self):
        fwd = sweep_request(_sweep_body({"depth": [4], "b_micro": [8]}))
        rev = sweep_request({"kind": "perf_report", "fixed": dict(FIXED),
                             "grid": {"b_micro": [8], "depth": [4]}})
        assert job_id_for(fwd) == job_id_for(rev)
        # ...but different *content* is a different job.
        other = sweep_request(_sweep_body({"depth": [8], "b_micro": [8]}))
        assert job_id_for(fwd) != job_id_for(other)

    def test_malformed_sweeps_are_400(self, svc):
        for body in (
            _sweep_body({"depth": []}),                 # empty axis
            _sweep_body({"depth": 4}),                  # not a list
            _sweep_body({}, bogus=1),                   # unknown field
            _sweep_body({}, kind="no_such_kind"),       # unknown unit kind
            {"kind": "perf_report", "fixed": [1]},      # fixed not an object
        ):
            with pytest.raises(ServiceError) as exc:
                svc.sweep(body)
            assert exc.value.status == 400

    def test_unit_execution_errors_are_400_not_500(self, svc):
        # A structurally valid grid whose params the unit kind rejects.
        with pytest.raises(ServiceError) as exc:
            svc.sweep({"kind": "perf_report",
                       "fixed": {"arch": "BERT-Large", "hardware": "P100",
                                 "schedule": "chimera"},
                       "grid": {"depth": [4]}})  # b_micro missing
        assert exc.value.status == 400
        assert "rejected" in exc.value.message

    def test_oversized_grids_are_refused_up_front(self, svc):
        with pytest.raises(ServiceError) as exc:
            svc.sweep(_sweep_body({"depth": list(range(70)),
                                   "b_micro": list(range(70))}))
        assert exc.value.status == 400
        assert "4096" in exc.value.message

    def test_forced_job_mode_round_trips(self, svc):
        out = svc.sweep(_sweep_body({"depth": [4], "b_micro": [32]},
                                    inline=False))
        assert out["mode"] == "job"
        done = svc.jobs.wait(out["job"])
        assert done["status"] == "done"
        status = svc.job_status(out["job"])
        assert status["done_units"] == status["units"] == 1
        rec = svc.result(status["unit_keys"][0])
        assert rec["status"] == "done" and rec["kind"] == "perf_report"

    def test_resubmitting_a_finished_job_answers_instantly(self, svc):
        body = _sweep_body({"depth": [4], "b_micro": [64]}, inline=False)
        first = svc.sweep(body)
        svc.jobs.wait(first["job"])
        again = svc.sweep(body)
        assert again["job"] == first["job"]
        assert again["status"] == "done"


class TestBudget:
    def test_budget_gates_work_with_429(self):
        svc = PlanningService(engine=SweepEngine(), budget_units=2)
        body = _sweep_body({"depth": [4], "b_micro": [8, 16]})
        svc.sweep(body)  # exactly the budget
        with pytest.raises(ServiceError) as exc:
            svc.sweep(_sweep_body({"depth": [8], "b_micro": [8]}))
        assert exc.value.status == 429
        # Cache hits are free: the exhausted budget still serves repeats.
        again = svc.sweep(body)
        assert again["cached"] == 2 and again["cost_units"] == 0

    def test_budget_appears_in_metrics(self):
        svc = PlanningService(engine=SweepEngine(), budget_units=10)
        svc.sweep(_sweep_body({"depth": [4], "b_micro": [8]}))
        snap = svc.metrics_snapshot()
        assert snap["budget"] == {"limit_units": 10, "charged_units": 1,
                                  "remaining_units": 9}


class TestHTTPRouting:
    def test_index_lists_the_endpoints(self, live):
        idx = live.get("/")
        assert idx["service"] == "repro-capacity-planner"
        assert "POST /plan" in idx["endpoints"]

    def test_unknown_path_is_404(self, live):
        with pytest.raises(ServiceHTTPError) as exc:
            live.get("/nope")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, live):
        with pytest.raises(ServiceHTTPError) as exc:
            live.get("/plan")
        assert exc.value.status == 405
        with pytest.raises(ServiceHTTPError) as exc:
            live.post("/metrics", {})
        assert exc.value.status == 405

    def test_unknown_result_and_job_are_404(self, live):
        for path in ("/results/ffffffffffffffff", "/jobs/ffffffffffffffff"):
            with pytest.raises(ServiceHTTPError) as exc:
                live.get(path)
            assert exc.value.status == 404

    def test_invalid_json_body_is_400(self, live):
        req = urllib.request.Request(
            live.url + "/plan", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400
        assert "invalid JSON" in json.loads(exc.value.read())["error"]

    def test_service_errors_carry_json_bodies(self, live):
        with pytest.raises(ServiceHTTPError) as exc:
            live.plan("Nope", "P100")
        assert exc.value.status == 400
        assert "unknown architecture" in exc.value.body["error"]


class TestMetrics:
    def test_counters_reflect_traffic(self, live):
        before = live.metrics()["requests"].get("sweep", {}).get("count", 0)
        live.sweep({"depth": [4], "b_micro": [8]}, fixed=dict(FIXED))
        live.sweep({"depth": [4], "b_micro": [8]}, fixed=dict(FIXED))
        snap = live.metrics()
        sweep = snap["requests"]["sweep"]
        assert sweep["count"] == before + 2
        assert sweep["p50_ms"] >= 0.0 and sweep["p99_ms"] >= sweep["p50_ms"]
        assert snap["store"]["hits"] >= 1  # the repeat request
        assert 0.0 <= snap["store"]["hit_rate"] <= 1.0
        assert "runs" in snap["engine"]
        assert snap["engine"]["stage_costs_misses"] >= 1
        assert snap["charged_units"] >= 1

    def test_errors_are_counted_per_endpoint(self, live):
        before = live.metrics()["requests"].get("plan", {}).get("errors", 0)
        with pytest.raises(ServiceHTTPError):
            live.plan("Nope", "P100")
        assert live.metrics()["requests"]["plan"]["errors"] == before + 1
