"""Service results are bit-identical to the campaign CLI's.

The tentpole guarantee: a grid answered by ``POST /sweep`` — inline or
through the job queue, over HTTP or not — records exactly the values a
``repro campaign run`` of the equivalent spec records, unit key by unit
key, byte for byte in canonical JSON.  Each comparison runs the two
paths on *separate* engines, so agreement is computed, not cached.
"""

import json

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.registry import _CAMPAIGNS, register_campaign
from repro.campaign.rundb import RunDB
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import canonical_json
from repro.service import PlanningService, ServiceClient, ServiceServer
from repro.service.jobs import spec_from_request, sweep_request
from repro.sweep import SweepEngine

GRID_BODY = {
    "kind": "perf_report",
    "fixed": {"arch": "BERT-Large", "hardware": "P100",
              "schedule": "chimera"},
    "grid": {"depth": [4, 8], "b_micro": [8, 16]},
}


def _campaign_values(spec, engine=None, run_dir=None):
    runner = CampaignRunner(engine=engine or SweepEngine(), run_dir=run_dir)
    result = runner.run(spec)
    return {k: rec["value"] for k, rec in result.records.items()}


def _assert_bit_identical(service_units, campaign_values):
    assert {u["key"] for u in service_units} == set(campaign_values)
    for unit in service_units:
        assert canonical_json(unit["value"]) == \
            canonical_json(campaign_values[unit["key"]]), unit["key"]


def test_inline_sweep_matches_campaign_runner():
    svc = PlanningService(engine=SweepEngine())
    out = svc.sweep(dict(GRID_BODY))
    assert out["mode"] == "inline" and out["executed"] == 4
    spec = spec_from_request(sweep_request(dict(GRID_BODY)))
    _assert_bit_identical(out["units"], _campaign_values(spec))


def test_sweep_matches_the_campaign_cli_bit_for_bit(tmp_path, capsys):
    """The literal ``repro campaign run`` path against the same grid."""
    spec = spec_from_request(sweep_request(dict(GRID_BODY)))
    register_campaign(spec)
    try:
        run_dir = tmp_path / "cli-run"
        assert campaign_main(["run", spec.name,
                              "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        cli_values = RunDB.open(run_dir).values()
    finally:
        _CAMPAIGNS.pop(spec.name, None)

    svc = PlanningService(engine=SweepEngine())
    out = svc.sweep(dict(GRID_BODY))
    _assert_bit_identical(out["units"], cli_values)


def test_job_path_over_http_matches_campaign_runner(tmp_path):
    state = tmp_path / "state"
    svc = PlanningService(state_dir=state, engine=SweepEngine())
    with ServiceServer(svc) as server:
        client = ServiceClient(server.url)
        submitted = client.post("/sweep", {**GRID_BODY, "inline": False})
        assert submitted["mode"] == "job"
        done = client.wait_for_job(submitted["job"], timeout=60.0)
        assert done["status"] == "done"
        assert done["done_units"] == done["units"] == 4
        served = [client.result(key) for key in done["unit_keys"]]

    spec = spec_from_request(sweep_request(dict(GRID_BODY)))
    _assert_bit_identical(served, _campaign_values(spec))


def test_persistent_service_survives_restart(tmp_path):
    state = tmp_path / "state"
    first = PlanningService(state_dir=state, engine=SweepEngine())
    out = first.sweep({**GRID_BODY, "inline": False})
    first.jobs.wait(out["job"])

    # A fresh process over the same state dir: results and the finished
    # job are already there, and the repeat grid costs nothing.
    reborn = PlanningService(state_dir=state, engine=SweepEngine())
    assert reborn.jobs.counts() == {"done": 1}
    assert reborn.job_status(out["job"])["done_units"] == 4
    again = reborn.sweep(dict(GRID_BODY))
    assert again["mode"] == "inline"
    assert again["executed"] == 0 and again["cached"] == 4
    spec = spec_from_request(sweep_request(dict(GRID_BODY)))
    _assert_bit_identical(again["units"], _campaign_values(spec))


def test_job_results_are_real_campaign_run_dirs(tmp_path):
    """Persistent jobs leave an auditable campaign run DB behind."""
    state = tmp_path / "state"
    svc = PlanningService(state_dir=state, engine=SweepEngine())
    out = svc.sweep({**GRID_BODY, "inline": False})
    svc.jobs.wait(out["job"])

    run_dir = state / "jobs" / out["job"]
    db = RunDB.open(run_dir)
    meta = db.read_meta()
    assert meta is not None
    assert meta["campaign"] == f"service-{out['job']}"
    assert set(db.values()) == set(out["unit_keys"])
