"""GPipe / 1F1B / Chimera schedule structure against the paper's model.

Uses symmetric unit costs so spans can be compared to the Table 1
critical-path constants: with N_micro = D,
GPipe/1F1B span = (2D-1)(Tf+Tb); Chimera span = D*Tf + (2D-2)*Tb.
"""

import numpy as np
import pytest

from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import (
    ChimeraSchedule,
    GPipeSchedule,
    OneFOneBSchedule,
    PipelineConfig,
    make_schedule,
    simulate_tasks,
)
from repro.pipeline.bubbles import bubble_fraction, bubble_time


def unit_costs(tf=1.0, tb=2.0, overhead=0.0):
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=1, t_overhead=overhead,
                      kernel_density=1.0)


def config(depth=4, n_micro=4, tf=1.0, tb=2.0, overhead=0.0, **kw):
    return PipelineConfig(depth=depth, n_micro=n_micro,
                          costs=unit_costs(tf, tb, overhead), **kw)


def simulate(name, cfg, steps=1):
    b = make_schedule(name, cfg)
    return b, simulate_tasks(b.build(steps=steps), b.num_devices)


class TestGPipe:
    def test_span_matches_critical_path(self):
        _, res = simulate("gpipe", config())
        # (N + D - 1) * (Tf + Tb) = 7 * 3.
        assert res.makespan == pytest.approx(21.0)

    def test_span_general_n_micro(self):
        _, res = simulate("gpipe", config(n_micro=8))
        assert res.makespan == pytest.approx((8 + 3) * 3.0)

    def test_bubble_time_matches_formula(self):
        b, res = simulate("gpipe", config())
        # Per device: span - N(Tf+Tb) = 21 - 12 = 9; x4 devices.
        assert bubble_time(res.timeline) == pytest.approx(36.0)

    def test_backwards_in_reverse_order_last_stage(self):
        b, res = simulate("gpipe", config())
        last = b.config.depth - 1
        bwd = [e for e in res.timeline.device_events(last)
               if e.kind == "backward"]
        order = [e.meta["micro_batch"] for e in sorted(bwd, key=lambda e: e.start)]
        assert order == [3, 2, 1, 0]

    def test_all_microbatches_in_flight(self):
        _, res = simulate("gpipe", config())
        assert max(res.peak_inflight.values()) == 4

    def test_two_steps_serialized_by_flush(self):
        _, res1 = simulate("gpipe", config(overhead=0.5))
        _, res2 = simulate("gpipe", config(overhead=0.5), steps=2)
        assert res2.makespan == pytest.approx(2 * res1.makespan)


class TestOneFOneB:
    def test_same_span_as_gpipe_at_n_equals_d(self):
        """Paper §3.3: time identical to GPipe when N_micro = D."""
        _, g = simulate("gpipe", config())
        _, f = simulate("1f1b", config())
        assert f.makespan == pytest.approx(g.makespan)

    def test_memory_advantage_peak_inflight(self):
        """1F1B caps in-flight micro-batches at D - stage."""
        b, res = simulate("1f1b", config(n_micro=8))
        for (r, _, stage), peak in res.peak_inflight.items():
            assert peak <= b.config.depth - stage

    def test_gpipe_higher_peak_than_1f1b_when_n_gt_d(self):
        _, g = simulate("gpipe", config(n_micro=8))
        _, f = simulate("1f1b", config(n_micro=8))
        assert max(g.peak_inflight.values()) > max(f.peak_inflight.values())

    def test_steady_state_alternation(self):
        """In steady state the middle of the schedule alternates 1F1B."""
        b, res = simulate("1f1b", config(n_micro=8))
        evs = sorted(res.timeline.device_events(0), key=lambda e: e.start)
        kinds = [e.kind for e in evs if e.kind in ("forward", "backward")]
        # After the D warmup forwards, forwards and backwards alternate.
        middle = kinds[4:-4]
        alternations = sum(1 for a, b2 in zip(middle, middle[1:]) if a != b2)
        assert alternations >= len(middle) - 2


class TestChimera:
    def test_span_matches_critical_path(self):
        _, res = simulate("chimera", config())
        # D*Tf + (2D-2)*Tb = 4 + 12 = 16 with Tf=1, Tb=2.
        assert res.makespan == pytest.approx(16.0, rel=0.07)

    def test_fewer_bubbles_than_gpipe(self):
        _, g = simulate("gpipe", config())
        _, c = simulate("chimera", config())
        assert bubble_fraction(c.timeline) < bubble_fraction(g.timeline)

    def test_each_device_hosts_two_stages(self):
        cfg = config()
        b = ChimeraSchedule(cfg)
        assert b.stages_of_device(0) == [0, 3]
        assert b.stages_of_device(1) == [1, 2]

    def test_dp_group_is_pipeline_pair(self):
        b = ChimeraSchedule(config())
        assert b.dp_group(0) == [0, 3]
        assert b.dp_group(1) == [1, 2]

    def test_every_device_processes_n_micro(self):
        cfg = config()
        b = ChimeraSchedule(cfg)
        res = simulate_tasks(b.build(), b.num_devices)
        for d in range(b.num_devices):
            fwd = [e for e in res.timeline.device_events(d) if e.kind == "forward"]
            assert len(fwd) == cfg.n_micro

    def test_odd_depth_rejected(self):
        with pytest.raises(ValueError):
            ChimeraSchedule(config(depth=3, n_micro=4))

    def test_odd_micro_batches_rejected(self):
        with pytest.raises(ValueError):
            ChimeraSchedule(config(depth=4, n_micro=3))

    def test_higher_utilization_than_1f1b(self):
        from repro.profiler import utilization

        _, c = simulate("chimera", config())
        _, f = simulate("1f1b", config())
        u = {"chimera": utilization(c.timeline), "1f1b": utilization(f.timeline)}
        assert u["chimera"] > u["1f1b"]


class TestInterleaved:
    """Interleaved 1F1B: v virtual stage chunks per device (Megatron)."""

    def icfg(self, P=4, v=2, n_micro=8, tf=1.0, tb=2.0, **kw):
        # Per-virtual-stage costs scaled by 1/v: same total model as a
        # plain depth-P pipeline with per-stage costs (tf, tb).
        return config(depth=P * v, n_micro=n_micro, tf=tf / v, tb=tb / v,
                      virtual_chunks=v, **kw)

    def test_stage_to_device_round_robin(self):
        b = make_schedule("interleaved", self.icfg(P=4, v=2))
        assert b.num_devices == 4
        assert b.stages_of_device(0) == [0, 4]
        assert b.stages_of_device(3) == [3, 7]
        assert b.device(5, 0) == 1

    def test_span_matches_interleaved_bubble(self):
        """Bubble shrinks to (P-1)(Tf+Tb)/v: span = N(Tf+Tb) + that."""
        b, res = simulate("interleaved", self.icfg(P=4, v=2, n_micro=8))
        assert res.makespan == pytest.approx(8 * 3.0 + 3 * 3.0 / 2)

    def test_beats_plain_1f1b_same_model_same_devices(self):
        _, plain = simulate("1f1b", config(depth=4, n_micro=8))
        for v in (2, 4):
            _, inter = simulate("interleaved",
                                self.icfg(P=4, v=v, n_micro=8))
            assert inter.makespan < plain.makespan
        from repro.pipeline.bubbles import bubble_fraction
        _, inter = simulate("interleaved", self.icfg(P=4, v=2, n_micro=8))
        assert bubble_fraction(inter.timeline) < bubble_fraction(plain.timeline)

    def test_every_device_runs_all_chunks(self):
        cfg = self.icfg(P=4, v=2, n_micro=8)
        b = make_schedule("interleaved", cfg)
        res = simulate_tasks(b.build(), b.num_devices)
        for d in range(b.num_devices):
            fwd = [e for e in res.timeline.device_events(d)
                   if e.kind == "forward"]
            assert len(fwd) == cfg.n_micro * 2  # n_micro per chunk
            assert {e.meta["stage"] for e in fwd} == set(b.stages_of_device(d))

    def test_dp_group_and_sync_grad(self):
        cfg = self.icfg(P=4, v=2, dp=2, stage_param_bytes=1e8)
        b = make_schedule("interleaved", cfg)
        assert b.num_devices == 8
        assert b.dp_group(0) == [0, 1]
        res = simulate_tasks(b.build(), b.num_devices)
        syncs = [e for e in res.timeline.events if e.kind == "sync_grad"]
        assert len(syncs) == 8  # one per device

    def test_inflight_capped_by_virtual_depth(self):
        b, res = simulate("interleaved", self.icfg(P=4, v=2, n_micro=8))
        for (r, _, stage), peak in res.peak_inflight.items():
            assert peak <= b.config.depth - stage

    def test_invalid_chunking_rejected(self):
        with pytest.raises(ValueError, match="virtual_chunks"):
            make_schedule("interleaved",
                          config(depth=4, n_micro=4, virtual_chunks=1))
        with pytest.raises(ValueError, match="divisible"):
            make_schedule("interleaved",
                          config(depth=6, n_micro=4, virtual_chunks=4))
        with pytest.raises(ValueError, match="fewer than 2"):
            make_schedule("interleaved",
                          config(depth=4, n_micro=4, virtual_chunks=4))
        with pytest.raises(ValueError):
            PipelineConfig(depth=4, n_micro=4, costs=unit_costs(),
                           virtual_chunks=0)


class TestZeroBubble:
    """ZB-H1: split backward, weight-grads deferred into the bubbles."""

    def test_backward_is_split(self):
        b, res = simulate("zb1f1b", config(n_micro=8))
        kinds = [e.kind for e in res.timeline.events]
        assert "backward" not in kinds
        n_tasks = 4 * 8  # depth * n_micro
        assert kinds.count("backward_input") == n_tasks
        assert kinds.count("backward_weight") == n_tasks

    def test_split_durations_sum_to_full_backward(self):
        c = unit_costs()
        assert c.t_bwd_input + c.t_bwd_weight == c.t_bwd
        b, res = simulate("zb1f1b", config(n_micro=4))
        for e in res.timeline.events:
            if e.kind == "backward_input":
                assert e.duration == pytest.approx(1.0)  # Tb/2
            elif e.kind == "backward_weight":
                assert e.duration == pytest.approx(1.0)

    def test_weight_grad_follows_own_input_grad(self):
        b, res = simulate("zb1f1b", config(n_micro=8))
        b_end = {}
        for e in res.timeline.events:
            key = (e.meta.get("micro_batch"), e.meta.get("stage"))
            if e.kind == "backward_input":
                b_end[key] = e.end
        for e in res.timeline.events:
            if e.kind == "backward_weight":
                key = (e.meta["micro_batch"], e.meta["stage"])
                assert e.start >= b_end[key] - 1e-9

    def test_span_matches_zero_bubble_closed_form(self):
        """Symmetric costs: span = N (Tf + Tb) + (D - 1) Tf — the W-filled
        cooldown leaves only the warmup ramp as bubble."""
        _, res = simulate("zb1f1b", config(n_micro=8))
        assert res.makespan == pytest.approx(8 * 3.0 + 3 * 1.0)

    def test_beats_plain_1f1b_span_and_bubble(self):
        _, plain = simulate("1f1b", config(n_micro=8))
        _, zb = simulate("zb1f1b", config(n_micro=8))
        assert zb.makespan < plain.makespan
        assert (bubble_fraction(zb.timeline, (0.0, zb.makespan))
                < bubble_fraction(plain.timeline, (0.0, plain.makespan)))

    def test_same_activation_memory_as_1f1b(self):
        """The H1 variant: in-flight cap D - stage, released at the
        input-grad's end, exactly like 1F1B."""
        b, res = simulate("zb1f1b", config(n_micro=8))
        for (r, _, stage), peak in res.peak_inflight.items():
            assert peak <= b.config.depth - stage

    def test_weight_grads_deferred_below_forwards(self):
        """On the last-stage device, at least one weight-grad runs after
        a later micro-batch's forward — the deferral that fills bubbles."""
        b, res = simulate("zb1f1b", config(n_micro=8))
        last = b.config.depth - 1
        evs = sorted(res.timeline.device_events(last), key=lambda e: e.start)
        deferred = 0
        fwd_seen: list[int] = []
        for e in evs:
            if e.kind == "forward":
                fwd_seen.append(e.meta["micro_batch"])
            elif e.kind == "backward_weight":
                if any(m > e.meta["micro_batch"] for m in fwd_seen):
                    deferred += 1
        assert deferred > 0

    def test_sync_grad_waits_for_weight_grads(self):
        cfg = config(n_micro=4, dp=2, stage_param_bytes=1e8)
        b = make_schedule("zb1f1b", cfg)
        tasks = {t.tid: t for t in b.build(steps=1)}
        sync = [t for t in tasks.values() if t.kind.value == "sync_grad"]
        assert len(sync) == 8
        for t in sync:
            assert t.deps
            assert all(d.startswith("W.") for d in t.deps)


class TestDataParallel:
    def test_device_count(self):
        cfg = config(dp=2)
        assert GPipeSchedule(cfg).num_devices == 8

    def test_sync_grad_emitted_with_dp(self):
        cfg = config(dp=2, stage_param_bytes=1e8)
        b, res = GPipeSchedule(cfg), None
        res = simulate_tasks(b.build(), b.num_devices)
        syncs = [e for e in res.timeline.events if e.kind == "sync_grad"]
        assert len(syncs) == 8  # one per device

    def test_no_sync_without_dp(self):
        cfg = config(stage_param_bytes=1e8)
        b = GPipeSchedule(cfg)
        res = simulate_tasks(b.build(), b.num_devices)
        assert [e for e in res.timeline.events if e.kind == "sync_grad"] == []

    def test_chimera_sync_even_without_outer_dp(self):
        """Chimera's pipeline pair replicates weights -> sync always needed."""
        cfg = config(stage_param_bytes=1e8)
        b = ChimeraSchedule(cfg)
        res = simulate_tasks(b.build(), b.num_devices)
        syncs = [e for e in res.timeline.events if e.kind == "sync_grad"]
        assert len(syncs) == 4

    def test_dp_group_across_replicas(self):
        cfg = config(dp=2)
        b = GPipeSchedule(cfg)
        assert b.dp_group(0) == [0, 1]
        assert b.dp_group(5) == [4, 5]

    def test_replicas_independent_until_sync(self):
        cfg = config(dp=2)
        b = GPipeSchedule(cfg)
        res = simulate_tasks(b.build(), b.num_devices)
        # Same per-replica span as a single pipeline.
        assert res.makespan == pytest.approx(21.0)


class TestRecompute:
    def test_backward_includes_extra_forward(self):
        _, plain = simulate("gpipe", config())
        _, rec = simulate("gpipe", config(recompute=True))
        # Backward slots grow from Tb to Tb+Tf: span (2D-1)(Tf + Tb+Tf).
        assert rec.makespan == pytest.approx(7 * 4.0)
        assert rec.makespan > plain.makespan

    def test_bubble_grows_with_recompute(self):
        """§3.3: activation recomputation increases T_bubble."""
        _, plain = simulate("gpipe", config())
        _, rec = simulate("gpipe", config(recompute=True))
        assert bubble_time(rec.timeline) > bubble_time(plain.timeline)


class TestValidation:
    def test_unknown_schedule_lists_registry(self):
        """The error names every registered schedule (sourced from the
        registry, so new specs appear without touching make_schedule)."""
        with pytest.raises(ValueError, match="zb1f1b"):
            make_schedule("pipedream", config())
        with pytest.raises(ValueError, match="interleaved"):
            make_schedule("pipedream", config())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(depth=1, n_micro=1, costs=unit_costs())
        with pytest.raises(ValueError):
            PipelineConfig(depth=4, n_micro=0, costs=unit_costs())
        with pytest.raises(ValueError):
            PipelineConfig(depth=4, n_micro=4, costs=unit_costs(), dp=0)

    def test_build_steps_validation(self):
        b = GPipeSchedule(config())
        with pytest.raises(ValueError):
            b.build(steps=0)

    def test_precondition_task_appended(self):
        cfg = config(precondition=True)
        b = GPipeSchedule(cfg)
        res = simulate_tasks(b.build(), b.num_devices)
        precs = [e for e in res.timeline.events if e.kind == "precondition"]
        assert len(precs) == 4
        # Precondition is after the device's last backward.
        for d in range(4):
            bwd_end = max(e.end for e in res.timeline.device_events(d)
                          if e.kind == "backward")
            prec = [e for e in res.timeline.device_events(d)
                    if e.kind == "precondition"][0]
            assert prec.start >= bwd_end - 1e-9
