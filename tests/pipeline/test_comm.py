"""Communication cost model."""

import pytest

from repro.pipeline import CommModel


class TestAllreduce:
    def test_world_one_free(self):
        assert CommModel().allreduce_time(1e9, 1) == 0.0

    def test_ring_formula_large_world(self):
        cm = CommModel(allreduce_gbs=1.0, latency_s=0.0, intra_node_world=1)
        # 2(W-1)/W * bytes / bw.
        assert cm.allreduce_time(1e9, 4) == pytest.approx(2 * 3 / 4 * 1.0)

    def test_intra_node_fast_path(self):
        cm = CommModel(allreduce_gbs=1.0, intra_node_gbs=10.0,
                       intra_node_world=4, latency_s=0.0)
        fast = cm.allreduce_time(1e9, 2)
        slow = cm.allreduce_time(1e9, 8)
        assert fast < slow / 4

    def test_latency_scales_with_world(self):
        cm = CommModel(latency_s=1e-3)
        t2 = cm.allreduce_time(0, 2)
        t8 = cm.allreduce_time(0, 8)
        assert t8 == pytest.approx(7 * t2)

    def test_monotone_in_bytes(self):
        cm = CommModel()
        assert cm.allreduce_time(2e9, 8) > cm.allreduce_time(1e9, 8)

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            CommModel().allreduce_time(1e9, 0)


class TestP2P:
    def test_bandwidth_term(self):
        cm = CommModel(p2p_gbs=8.0, latency_s=0.0)
        assert cm.p2p_time(8e9) == pytest.approx(1.0)

    def test_latency_floor(self):
        cm = CommModel(latency_s=1e-4)
        assert cm.p2p_time(0) == pytest.approx(1e-4)
