"""Discrete-event executor: dependencies, priorities, admission control."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline import Task, WorkKind, simulate_tasks


def task(tid, device, dur, deps=(), priority=(0,), kind=WorkKind.FORWARD, meta=None):
    return Task(tid=tid, device=device, kind=kind, duration=dur,
                deps=tuple(deps), priority=priority, meta=meta or {})


class TestBasics:
    def test_chain_on_one_device(self):
        res = simulate_tasks(
            [task("a", 0, 1.0), task("b", 0, 2.0, deps=["a"])], 1
        )
        assert res.start_times["b"] == pytest.approx(1.0)
        assert res.makespan == pytest.approx(3.0)

    def test_cross_device_dependency(self):
        res = simulate_tasks(
            [task("a", 0, 1.0), task("b", 1, 1.0, deps=["a"])], 2
        )
        assert res.start_times["b"] == pytest.approx(1.0)

    def test_independent_tasks_parallel(self):
        res = simulate_tasks([task("a", 0, 2.0), task("b", 1, 2.0)], 2)
        assert res.makespan == pytest.approx(2.0)

    def test_priority_order_on_device(self):
        res = simulate_tasks(
            [task("low", 0, 1.0, priority=(5,)), task("high", 0, 1.0, priority=(1,))],
            1,
        )
        assert res.start_times["high"] < res.start_times["low"]

    def test_device_waits_for_ready(self):
        # b (high priority) not ready until a completes on other device;
        # c runs first because it is ready immediately.
        res = simulate_tasks(
            [
                task("a", 1, 5.0),
                task("b", 0, 1.0, deps=["a"], priority=(0,)),
                task("c", 0, 1.0, priority=(9,)),
            ],
            2,
        )
        assert res.start_times["c"] == pytest.approx(0.0)
        assert res.start_times["b"] == pytest.approx(5.0)

    def test_zero_duration_control_task(self):
        barrier = Task(tid="bar", device=None, kind=WorkKind.BARRIER, duration=0.0,
                       deps=("a",))
        res = simulate_tasks(
            [task("a", 0, 2.0), barrier, task("b", 0, 1.0, deps=["bar"])], 1
        )
        assert res.end_times["bar"] == pytest.approx(2.0)
        assert res.start_times["b"] == pytest.approx(2.0)

    def test_timeline_events_emitted(self):
        res = simulate_tasks([task("a", 0, 1.0)], 1)
        assert len(res.timeline.events) == 1
        assert res.timeline.events[0].kind == "forward"


class TestErrors:
    def test_duplicate_id(self):
        with pytest.raises(ValueError):
            simulate_tasks([task("a", 0, 1.0), task("a", 0, 1.0)], 1)

    def test_unknown_dep(self):
        with pytest.raises(RuntimeError):
            simulate_tasks([task("a", 0, 1.0, deps=["ghost"])], 1)

    def test_cycle_detected_as_deadlock(self):
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate_tasks(
                [task("a", 0, 1.0, deps=["b"]), task("b", 0, 1.0, deps=["a"])], 1
            )

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            task("a", 0, -1.0)

    def test_control_task_needs_barrier_kind(self):
        with pytest.raises(ValueError):
            Task(tid="x", device=None, kind=WorkKind.FORWARD, duration=0.0)


class TestInflightControl:
    def test_limit_blocks_forward(self):
        """With limit 1, the second forward waits for the first backward."""
        fwd_meta = {"inflight_key": "s0", "inflight_limit": 1}
        bwd_meta = {"inflight_release": "s0"}
        tasks = [
            task("f0", 0, 1.0, priority=(1, 0), meta=dict(fwd_meta)),
            task("f1", 0, 1.0, priority=(1, 1), meta=dict(fwd_meta)),
            task("b0", 0, 1.0, deps=["f0"], priority=(0, 0),
                 kind=WorkKind.BACKWARD, meta=dict(bwd_meta)),
            task("b1", 0, 1.0, deps=["f1"], priority=(0, 1),
                 kind=WorkKind.BACKWARD, meta=dict(bwd_meta)),
        ]
        res = simulate_tasks(tasks, 1)
        assert res.start_times["f1"] >= res.end_times["b0"] - 1e-9
        assert res.peak_inflight["s0"] == 1

    def test_unbounded_without_key(self):
        tasks = [task(f"f{i}", 0, 1.0, priority=(i,)) for i in range(4)]
        res = simulate_tasks(tasks, 1)
        assert res.makespan == pytest.approx(4.0)

    def test_peak_inflight_tracked(self):
        fwd = {"inflight_key": "k", "inflight_limit": 3}
        tasks = [task(f"f{i}", 0, 1.0, priority=(i,), meta=dict(fwd)) for i in range(3)]
        res = simulate_tasks(tasks, 1)
        assert res.peak_inflight["k"] == 3


class TestAdmissionTiming:
    """Regression: in-flight slots must be released at the releasing
    backward's simulated *end* time, not when it is picked.

    The pre-rewrite executor applied a backward's release as soon as the
    scheduler chose it (``complete()`` ran at pick time), so a forward on
    *another* device sharing the in-flight key could be admitted at a
    simulated time before the backward freeing its slot had ended —
    overstating overlap and understating ``peak_inflight``.
    """

    def test_cross_device_forward_waits_for_release_end(self):
        # dev0: f0 takes the only slot; b0 (5s) releases it.
        # dev1: f1 wants the same slot and is otherwise free at t=0.
        # The old executor started f1 at t=0 (b0 picked, slot "freed");
        # the slot is genuinely free only at b0's end, t=6.
        fwd = {"inflight_key": "K", "inflight_limit": 1}
        tasks = [
            task("f0", 0, 1.0, priority=(0,), meta=dict(fwd)),
            task("b0", 0, 5.0, deps=["f0"], priority=(1,),
                 kind=WorkKind.BACKWARD, meta={"inflight_release": "K"}),
            task("f1", 1, 1.0, priority=(2,), meta=dict(fwd)),
        ]
        res = simulate_tasks(tasks, 2)
        assert res.end_times["b0"] == pytest.approx(6.0)
        assert res.start_times["f1"] >= res.end_times["b0"] - 1e-9
        assert res.peak_inflight["K"] == 1

    def test_release_chain_preserves_limit(self):
        """Two devices ping-pong one slot; occupancy never exceeds 1."""
        fwd = {"inflight_key": "K", "inflight_limit": 1}
        rel = {"inflight_release": "K"}
        tasks = []
        for i in range(4):
            dev = i % 2
            deps = [f"b{i - 1}"] if i else []
            tasks.append(task(f"f{i}", dev, 1.0, deps=deps, priority=(0, i),
                              meta=dict(fwd)))
            tasks.append(task(f"b{i}", dev, 2.0, deps=[f"f{i}"], priority=(1, i),
                              kind=WorkKind.BACKWARD, meta=dict(rel)))
        res = simulate_tasks(tasks, 2)
        assert res.peak_inflight["K"] == 1
        for i in range(1, 4):
            assert res.start_times[f"f{i}"] >= res.end_times[f"b{i - 1}"] - 1e-9


class TestDeterminism:
    """Timelines must not depend on hash order (PYTHONHASHSEED)."""

    @staticmethod
    def _chimera_events():
        from repro.perfmodel.costs import StageCosts, WorkCosts
        from repro.pipeline import PipelineConfig, make_schedule

        block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.1, t_curv_b=0.1,
                          t_inv=0.3, t_prec=0.05)
        costs = StageCosts(block=block, layers_per_stage=1, t_overhead=0.1,
                           kernel_density=1.0)
        cfg = PipelineConfig(depth=4, n_micro=8, costs=costs, dp=2,
                             stage_param_bytes=1e8, precondition=True)
        b = make_schedule("chimera", cfg)
        res = simulate_tasks(b.build(steps=2), b.num_devices)
        return [(e.device, e.kind, e.start, e.end, e.label)
                for e in res.timeline.events]

    def test_repeated_runs_identical_event_lists(self):
        assert self._chimera_events() == self._chimera_events()

    def test_event_list_stable_across_hash_seeds(self):
        """Same Chimera config under different PYTHONHASHSEED values must
        produce byte-identical event lists (the old executor broke ties by
        ``set`` iteration order, which varies with the seed)."""
        import os
        import subprocess
        import sys

        script = (
            "import hashlib\n"
            "from repro.perfmodel.costs import StageCosts, WorkCosts\n"
            "from repro.pipeline import PipelineConfig, make_schedule, "
            "simulate_tasks\n"
            "block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.1, "
            "t_curv_b=0.1, t_inv=0.3, t_prec=0.05)\n"
            "costs = StageCosts(block=block, layers_per_stage=1, "
            "t_overhead=0.1, kernel_density=1.0)\n"
            "cfg = PipelineConfig(depth=4, n_micro=8, costs=costs, dp=2, "
            "stage_param_bytes=1e8, precondition=True)\n"
            "b = make_schedule('chimera', cfg)\n"
            "res = simulate_tasks(b.build(steps=2), b.num_devices)\n"
            "evs = [(e.device, e.kind, e.start, e.end, e.label) "
            "for e in res.timeline.events]\n"
            "print(hashlib.sha256(repr(evs).encode()).hexdigest())\n"
        )
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        digests = set()
        for seed in ("0", "424242"):
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1, f"hash-seed-dependent timelines: {digests}"


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 12),
    n_devices=st.integers(1, 4),
    seed=st.integers(0, 999),
)
def test_random_dag_completes_and_respects_deps(n, n_devices, seed):
    """Property: any forward-edge DAG simulates without deadlock, every task
    runs after its dependencies, and same-device tasks never overlap."""
    import numpy as np

    rng = np.random.default_rng(seed)
    tasks = []
    for i in range(n):
        deps = [f"t{j}" for j in range(i) if rng.random() < 0.3]
        tasks.append(
            task(f"t{i}", int(rng.integers(n_devices)), float(rng.random()) + 0.01,
                 deps=deps, priority=(int(rng.integers(10)),))
        )
    res = simulate_tasks(tasks, n_devices)
    for t in tasks:
        for d in t.deps:
            assert res.start_times[t.tid] >= res.end_times[d] - 1e-9
    res.timeline.verify_no_overlap()
