"""Numeric pipeline: pipelined gradients are exact.

Synchronous pipeline parallelism must compute the same gradients as
monolithic training; micro-batch accumulation must equal the full-batch
gradient.  These tests anchor the simulation work to real math.
"""

import numpy as np
import pytest

from repro.models import BertConfig, BertForPreTraining
from repro.pipeline import NumericPipeline
from tests.conftest import make_batch


@pytest.fixture
def model():
    cfg = BertConfig.tiny(vocab_size=64, num_hidden_layers=4,
                          max_position_embeddings=16)
    return BertForPreTraining(cfg)


def batch(rng, n=8):
    return make_batch(rng, batch=n, seq=8, vocab=64)


class TestStageForwarding:
    def test_matches_monolithic_forward(self, model, rng):
        ids, _, _ = batch(rng)
        pipe = NumericPipeline(model, num_stages=2)
        mlm_p, nsp_p = pipe.forward(ids)
        mlm_m, nsp_m = model(ids)
        np.testing.assert_allclose(mlm_p.numpy(), mlm_m.numpy(), atol=1e-6)
        np.testing.assert_allclose(nsp_p.numpy(), nsp_m.numpy(), atol=1e-6)

    def test_any_stage_count_same_output(self, model, rng):
        ids, _, _ = batch(rng)
        outs = []
        for stages in (1, 2, 4):
            pipe = NumericPipeline(model, num_stages=stages)
            outs.append(pipe.forward(ids)[0].numpy())
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-6)
        np.testing.assert_allclose(outs[0], outs[2], atol=1e-6)


class TestGradientExactness:
    def test_pipelined_grads_equal_full_batch(self, model, rng):
        """Micro-batched pipeline step == monolithic mean-loss backward."""
        ids, mlm, nsp = batch(rng)

        # Monolithic reference.
        loss, _ = model.loss(ids, mlm, nsp)
        loss.backward()
        ref = {n: p.grad.copy() for n, p in model.named_parameters()}
        model.zero_grad()

        pipe = NumericPipeline(model, num_stages=2)
        pipe_loss = pipe.run_step(ids, mlm, nsp, n_micro=4)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(
                p.grad, ref[name], rtol=2e-3, atol=2e-5,
                err_msg=f"gradient mismatch for {name}",
            )
        assert pipe_loss == pytest.approx(loss.item(), rel=2e-3)

    def test_micro_batch_count_invariance(self, model, rng):
        ids, mlm, nsp = batch(rng)
        grads = []
        for n_micro in (1, 2, 4):
            model.zero_grad()
            NumericPipeline(model, num_stages=2).run_step(ids, mlm, nsp, n_micro)
            grads.append(model.embeddings.word_embeddings.weight.grad.copy())
        np.testing.assert_allclose(grads[0], grads[1], rtol=2e-3, atol=2e-5)
        np.testing.assert_allclose(grads[0], grads[2], rtol=2e-3, atol=2e-5)

    def test_indivisible_batch_raises(self, model, rng):
        ids, mlm, nsp = batch(rng, n=6)
        with pytest.raises(ValueError):
            NumericPipeline(model, num_stages=2).run_step(ids, mlm, nsp, n_micro=4)

    def test_mean_loss_note(self, model, rng):
        """Unequal MLM mask counts make 1/n_micro weighting approximate for
        the MLM term; with equal counts (ours: one mask per row) it is exact
        up to fp noise — asserted above with tight tolerances."""
        ids, mlm, nsp = batch(rng)
        assert ((mlm != -100).sum(axis=1) == 1).all()
