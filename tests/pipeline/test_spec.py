"""The schedule registry: completeness and dispatch-site contracts.

Every string-compare dispatch the codebase used to scatter across six
layers now resolves through :mod:`repro.pipeline.spec`; these tests pin
the contract every registered spec must satisfy so that adding a
schedule is *one* ``register_schedule`` call — if a field is missing or
inconsistent with the generated builder, the failure happens here, not
deep inside the sweep engine or an experiment.
"""

import pytest

from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import (
    PipelineConfig,
    ScheduleSpec,
    get_spec,
    make_schedule,
    register_schedule,
    schedule_names,
    schedule_specs,
)
from repro.pipeline.spec import _REGISTRY
from repro.sweep.template import stages_per_device, structural_group_size

EXPECTED = {"gpipe", "1f1b", "chimera", "interleaved", "zb1f1b"}


def costs(tf=1.0, tb=2.0):
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=1, t_overhead=0.0,
                      kernel_density=1.0)


def valid_config(name: str) -> PipelineConfig:
    """A small config satisfying every family's structural constraints."""
    return PipelineConfig(depth=4, n_micro=4, costs=costs(), dp=2,
                          virtual_chunks=2)


class TestRegistry:
    def test_paper_schedules_registered(self):
        assert EXPECTED <= set(schedule_names())

    def test_get_spec_unknown_lists_registered_names(self):
        with pytest.raises(ValueError) as err:
            get_spec("pipedream")
        for name in schedule_names():
            assert name in str(err.value)

    def test_make_schedule_unknown_lists_registered_names(self):
        with pytest.raises(ValueError) as err:
            make_schedule("pipedream", valid_config("gpipe"))
        for name in schedule_names():
            assert name in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_schedule(get_spec("gpipe"))

    def test_split_backward_requires_wgt_priority(self):
        with pytest.raises(ValueError, match="weight-grad priority"):
            register_schedule(ScheduleSpec(
                name="zb-broken",
                description="split backward without a W rule",
                fwd_priority=lambda cfg, m, s: (1, m),
                bwd_priority=lambda cfg, m, s: (0, m),
                inflight_limit=lambda cfg, s: cfg.depth - s,
                split_backward=True,
            ))
        assert "zb-broken" not in _REGISTRY


class TestEverySpecIsComplete:
    """Per-spec contract: all dispatch sites must find what they need."""

    @pytest.fixture(params=sorted(EXPECTED))
    def named(self, request):
        return request.param, get_spec(request.param)

    def test_host_overhead_defined(self, named):
        """Regression: ``runner``/``perfmodel`` read the host overhead
        from the spec — every registered schedule must declare it."""
        name, spec = named
        assert isinstance(spec.host_overhead_s, float)
        assert spec.host_overhead_s >= 0.0
        assert host_overhead(name) == spec.host_overhead_s

    def test_span_bounds_declared_and_ordered(self, named):
        name, spec = named
        assert spec.span_bounds is not None
        lo, hi = spec.span_bounds(valid_config(name))
        assert 0.0 < lo <= hi

    def test_structural_keys_match_built_builder(self, named):
        """The sweep engine's structural canonicalization
        (stages-per-device, allreduce group size) must agree with what
        the generated builder actually constructs."""
        name, spec = named
        cfg = valid_config(name)
        builder = make_schedule(name, cfg)
        assert (len(builder.stages_of_device(0))
                == stages_per_device(name, cfg.virtual_chunks))
        assert (len(builder.dp_group(0))
                == structural_group_size(name, cfg.dp))

    def test_priorities_are_comparable_int_pairs(self, named):
        """The compiled-template order-key packing assumes uniform
        non-negative int pairs; specs must keep priorities in that shape."""
        name, spec = named
        cfg = valid_config(name)
        for m in range(cfg.n_micro):
            for s in range(cfg.depth):
                for rule in filter(None, (spec.fwd_priority,
                                          spec.bwd_priority,
                                          spec.wgt_priority)):
                    p = rule(cfg, m, s)
                    assert len(p) == 2
                    assert all(type(x) is int and x >= 0 for x in p)

    def test_pipelines_and_microbatches_consistent(self, named):
        """Total emitted (pipe, micro) slots must cover n_micro once."""
        name, spec = named
        cfg = valid_config(name)
        pipes = spec.pipelines(cfg)
        micro = spec.microbatches(cfg)
        assert len(pipes) * len(micro) == cfg.n_micro

    def test_host_overhead_unknown_schedule_raises(self):
        with pytest.raises(ValueError):
            host_overhead("no-such-schedule")


class TestRegisteredEndToEnd:
    """A registry entry alone must be enough to build and simulate."""

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_builds_and_simulates(self, name):
        from repro.pipeline import simulate_tasks

        cfg = valid_config(name)
        builder = make_schedule(name, cfg)
        res = simulate_tasks(builder.build(steps=1), builder.num_devices)
        assert res.makespan > 0.0
        assert len(res.end_times) == len(builder.build(steps=1))

    def test_specs_snapshot_is_copy(self):
        snap = schedule_specs()
        snap["bogus"] = None
        assert "bogus" not in schedule_names()
