"""Executor invariants, checked across every schedule family.

For each schedule the simulated timeline must satisfy, independent of
policy details:

* no two occupying events overlap on one device;
* every task starts at or after the end of each of its dependencies;
* per-key in-flight occupancy never exceeds the configured limit (checked
  both via ``peak_inflight`` and by replaying the event intervals).
"""

import pytest

from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks
from repro.pipeline.bubbles import OCCUPYING_KINDS


def costs(tf=1.0, tb=2.0, overhead=0.1):
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=1, t_overhead=overhead,
                      kernel_density=1.0)


#: name -> (schedule, config) covering one- and multi-stage-per-device
#: topologies, data parallelism, and multi-step flushes.
CASES = {
    "gpipe": ("gpipe", dict(depth=4, n_micro=6)),
    "gpipe-dp": ("gpipe", dict(depth=4, n_micro=4, dp=2,
                               stage_param_bytes=1e8)),
    "1f1b": ("1f1b", dict(depth=4, n_micro=8)),
    "1f1b-precond": ("1f1b", dict(depth=4, n_micro=4, precondition=True)),
    "chimera": ("chimera", dict(depth=4, n_micro=8,
                                stage_param_bytes=1e8)),
    "chimera-dp": ("chimera", dict(depth=4, n_micro=4, dp=2,
                                   stage_param_bytes=1e8)),
    "interleaved-v2": ("interleaved", dict(depth=8, n_micro=8,
                                           virtual_chunks=2)),
    "interleaved-v3": ("interleaved", dict(depth=6, n_micro=6,
                                           virtual_chunks=3,
                                           stage_param_bytes=1e8, dp=2)),
}


@pytest.fixture(params=sorted(CASES), scope="module")
def simulated(request):
    name, kwargs = CASES[request.param]
    cfg = PipelineConfig(costs=costs(), **kwargs)
    builder = make_schedule(name, cfg)
    tasks = builder.build(steps=2)
    res = simulate_tasks(tasks, builder.num_devices)
    return tasks, res


def test_no_device_overlap(simulated):
    _, res = simulated
    res.timeline.verify_no_overlap(kinds=OCCUPYING_KINDS)


def test_every_task_starts_after_deps(simulated):
    tasks, res = simulated
    for t in tasks:
        for d in t.deps:
            assert res.start_times[t.tid] >= res.end_times[d] - 1e-9, (
                f"{t.tid} started at {res.start_times[t.tid]} before dep "
                f"{d} ended at {res.end_times[d]}"
            )


def test_peak_inflight_within_limits(simulated):
    tasks, res = simulated
    limits = {}
    for t in tasks:
        key = t.meta.get("inflight_key")
        if key is not None:
            limits[key] = t.meta["inflight_limit"]
    assert limits, "schedule emitted no admission-controlled forwards"
    for key, peak in res.peak_inflight.items():
        assert peak <= limits[key], (
            f"key {key}: peak in-flight {peak} exceeds limit {limits[key]}"
        )


def test_inflight_intervals_never_exceed_limit(simulated):
    """Replay (forward start, releasing backward end) occupancy intervals:
    the *simulated-time* overlap per key must stay within the limit — this
    is the invariant the pre-rewrite pick-time release violated."""
    tasks, res = simulated
    by_key: dict = {}
    release_end: dict = {}
    limits = {}
    for t in tasks:
        key = t.meta.get("inflight_key")
        if key is not None:
            limits[key] = t.meta["inflight_limit"]
            by_key.setdefault(key, []).append(t.tid)
        rel = t.meta.get("inflight_release")
        if rel is not None:
            release_end.setdefault(rel, []).append(res.end_times[t.tid])
    for key, fwd_ids in by_key.items():
        # Pair forwards with releases in start/end order (FIFO slots).
        starts = sorted(res.start_times[tid] for tid in fwd_ids)
        ends = sorted(release_end.get(key, []))
        if len(ends) < len(starts):
            continue  # unreleased keys (e.g. GPipe tail) checked via peak
        marks = [(s, +1) for s in starts] + [(e - 1e-12, -1) for e in ends]
        occupancy = peak = 0
        for _, delta in sorted(marks):
            occupancy += delta
            peak = max(peak, occupancy)
        assert peak <= limits[key], (
            f"key {key}: simulated-time occupancy {peak} > {limits[key]}"
        )
