"""Executor invariants, checked across every schedule family.

For each schedule the simulated timeline must satisfy, independent of
policy details:

* no two occupying events overlap on one device;
* every task starts at or after the end of each of its dependencies;
* per-key in-flight occupancy never exceeds the configured limit (checked
  both via ``peak_inflight`` and by replaying the event intervals).

The fixed named CASES below pin known-interesting topologies; the
seeded-random fuzz section then sweeps randomized configurations
(depth, N_micro, virtual chunks, data parallelism, ragged costs) through
the same invariants plus schedule-specific bubble bounds, so executor or
schedule-builder refactors are exercised far beyond the hand-picked
examples.  Seeds are fixed — every CI run checks the same configs.
"""

import dataclasses
import random

import pytest

from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks
from repro.pipeline.bubbles import OCCUPYING_KINDS
from repro.pipeline.spec import get_spec, schedule_names
from repro.stochastic import (
    Perturbation,
    StochasticModel,
    perturbed_durations,
    sample_perturbation,
)
from repro.sweep.retime import simulate_compiled
from repro.sweep.template import compile_graph

#: Every registered schedule family, in registry order — fuzzing is
#: spec-driven, so a newly registered schedule is covered automatically.
FAMILIES = tuple(schedule_names())


def costs(tf=1.0, tb=2.0, overhead=0.1):
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=1, t_overhead=overhead,
                      kernel_density=1.0)


#: name -> (schedule, config) covering one- and multi-stage-per-device
#: topologies, data parallelism, and multi-step flushes.
CASES = {
    "gpipe": ("gpipe", dict(depth=4, n_micro=6)),
    "gpipe-dp": ("gpipe", dict(depth=4, n_micro=4, dp=2,
                               stage_param_bytes=1e8)),
    "1f1b": ("1f1b", dict(depth=4, n_micro=8)),
    "1f1b-precond": ("1f1b", dict(depth=4, n_micro=4, precondition=True)),
    "chimera": ("chimera", dict(depth=4, n_micro=8,
                                stage_param_bytes=1e8)),
    "chimera-dp": ("chimera", dict(depth=4, n_micro=4, dp=2,
                                   stage_param_bytes=1e8)),
    "interleaved-v2": ("interleaved", dict(depth=8, n_micro=8,
                                           virtual_chunks=2)),
    "interleaved-v3": ("interleaved", dict(depth=6, n_micro=6,
                                           virtual_chunks=3,
                                           stage_param_bytes=1e8, dp=2)),
    "zb1f1b": ("zb1f1b", dict(depth=4, n_micro=8)),
    "zb1f1b-dp": ("zb1f1b", dict(depth=4, n_micro=4, dp=2,
                                 stage_param_bytes=1e8, precondition=True)),
}


@pytest.fixture(params=sorted(CASES), scope="module")
def simulated(request):
    name, kwargs = CASES[request.param]
    cfg = PipelineConfig(costs=costs(), **kwargs)
    builder = make_schedule(name, cfg)
    tasks = builder.build(steps=2)
    res = simulate_tasks(tasks, builder.num_devices)
    return tasks, res


def test_no_device_overlap(simulated):
    _, res = simulated
    res.timeline.verify_no_overlap(kinds=OCCUPYING_KINDS)


def test_every_task_starts_after_deps(simulated):
    tasks, res = simulated
    for t in tasks:
        for d in t.deps:
            assert res.start_times[t.tid] >= res.end_times[d] - 1e-9, (
                f"{t.tid} started at {res.start_times[t.tid]} before dep "
                f"{d} ended at {res.end_times[d]}"
            )


def test_peak_inflight_within_limits(simulated):
    tasks, res = simulated
    limits = {}
    for t in tasks:
        key = t.meta.get("inflight_key")
        if key is not None:
            limits[key] = t.meta["inflight_limit"]
    assert limits, "schedule emitted no admission-controlled forwards"
    for key, peak in res.peak_inflight.items():
        assert peak <= limits[key], (
            f"key {key}: peak in-flight {peak} exceeds limit {limits[key]}"
        )


def test_inflight_intervals_never_exceed_limit(simulated):
    """Replay (forward start, releasing backward end) occupancy intervals:
    the *simulated-time* overlap per key must stay within the limit — this
    is the invariant the pre-rewrite pick-time release violated."""
    tasks, res = simulated
    by_key: dict = {}
    release_end: dict = {}
    limits = {}
    for t in tasks:
        key = t.meta.get("inflight_key")
        if key is not None:
            limits[key] = t.meta["inflight_limit"]
            by_key.setdefault(key, []).append(t.tid)
        rel = t.meta.get("inflight_release")
        if rel is not None:
            release_end.setdefault(rel, []).append(res.end_times[t.tid])
    for key, fwd_ids in by_key.items():
        # Pair forwards with releases in start/end order (FIFO slots).
        starts = sorted(res.start_times[tid] for tid in fwd_ids)
        ends = sorted(release_end.get(key, []))
        if len(ends) < len(starts):
            continue  # unreleased keys (e.g. GPipe tail) checked via peak
        marks = [(s, +1) for s in starts] + [(e - 1e-12, -1) for e in ends]
        occupancy = peak = 0
        for _, delta in sorted(marks):
            occupancy += delta
            peak = max(peak, occupancy)
        assert peak <= limits[key], (
            f"key {key}: simulated-time occupancy {peak} > {limits[key]}"
        )


# -- seeded-random fuzzing -------------------------------------------------------

FUZZ_SEEDS = range(20)


def random_topology(rng: random.Random, name: str) -> tuple[int, int, int]:
    """Draw (depth, n_micro, virtual_chunks) for one schedule family,
    respecting its structural constraints (Chimera evenness, interleaved
    divisibility).  Shared by the invariant and bubble-bound fuzzers so
    both always sample the same configuration distribution."""
    virtual_chunks = 2
    if name == "chimera":
        depth = rng.choice([2, 4, 6, 8])
        n_micro = depth + 2 * rng.randint(0, 4)
    elif name == "interleaved":
        virtual_chunks = rng.randint(2, 3)
        depth = virtual_chunks * rng.randint(2, 4)
        n_micro = depth + rng.randint(0, 6)
    else:
        depth = rng.randint(2, 8)
        n_micro = depth + rng.randint(0, 6)
    return depth, n_micro, virtual_chunks


def random_config(seed: int):
    """One randomized (schedule, PipelineConfig) pair, fully seed-determined.

    Ragged costs (independent uniform Tf/Tb, varying layers per stage and
    host overhead), random topology per schedule family, and occasional
    data parallelism with sync-grad traffic.
    """
    rng = random.Random(seed)
    name = FAMILIES[seed % len(FAMILIES)]
    tf = rng.uniform(0.2, 3.0)
    tb = rng.uniform(0.2, 3.0)
    layers = rng.randint(1, 3)
    overhead = rng.choice([0.0, rng.uniform(0.01, 0.3)])
    depth, n_micro, virtual_chunks = random_topology(rng, name)
    dp = rng.choice([1, 1, 2])
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    cfg = PipelineConfig(
        depth=depth,
        n_micro=n_micro,
        costs=StageCosts(block=block, layers_per_stage=layers,
                         t_overhead=overhead, kernel_density=1.0),
        dp=dp,
        stage_param_bytes=rng.choice([0.0, 1e8]) if dp > 1 else 0.0,
        virtual_chunks=virtual_chunks,
    )
    return name, cfg


@pytest.fixture(params=FUZZ_SEEDS, scope="module",
                ids=lambda s: f"seed{s}")
def fuzzed(request):
    name, cfg = random_config(request.param)
    builder = make_schedule(name, cfg)
    tasks = builder.build(steps=2)
    res = simulate_tasks(tasks, builder.num_devices)
    return name, cfg, tasks, res


class TestFuzzedInvariants:
    def test_everything_completes_once(self, fuzzed):
        """Slot accounting: every task ran; per (replica, micro, stage)
        there is exactly one forward and one backward — or one input-grad
        plus one weight-grad for split-backward schedules — per step."""
        name, cfg, tasks, res = fuzzed
        assert len(res.end_times) == len(tasks)
        expected = 2 * cfg.dp * cfg.depth * cfg.n_micro  # 2 steps
        counts: dict[str, int] = {}
        for e in res.timeline.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        assert counts["forward"] == expected
        if get_spec(name).split_backward:
            assert counts["backward_input"] == expected
            assert counts["backward_weight"] == expected
            assert "backward" not in counts
        else:
            assert counts["backward"] == expected

    def test_no_device_overlap(self, fuzzed):
        _, _, _, res = fuzzed
        res.timeline.verify_no_overlap(kinds=OCCUPYING_KINDS)

    def test_dependency_order(self, fuzzed):
        _, _, tasks, res = fuzzed
        for t in tasks:
            for d in t.deps:
                assert res.start_times[t.tid] >= res.end_times[d] - 1e-9, (
                    f"{t.tid} started before dep {d} ended"
                )

    def test_inflight_slots_never_exceed_limits(self, fuzzed):
        """Replay (forward start, releasing backward end) occupancy per
        key — the simulated-time slot accounting."""
        _, _, tasks, res = fuzzed
        limits = {}
        by_key: dict = {}
        release_end: dict = {}
        for t in tasks:
            key = t.meta.get("inflight_key")
            if key is not None:
                limits[key] = t.meta["inflight_limit"]
                by_key.setdefault(key, []).append(t.tid)
            rel = t.meta.get("inflight_release")
            if rel is not None:
                release_end.setdefault(rel, []).append(res.end_times[t.tid])
        assert limits, "schedule emitted no admission-controlled forwards"
        for key, peak in res.peak_inflight.items():
            assert peak <= limits[key]
        for key, fwd_ids in by_key.items():
            starts = sorted(res.start_times[tid] for tid in fwd_ids)
            ends = sorted(release_end.get(key, []))
            if len(ends) < len(starts):
                continue
            marks = [(s, +1) for s in starts] + [(e - 1e-12, -1) for e in ends]
            occupancy = peak = 0
            for _, delta in sorted(marks):
                occupancy += delta
                peak = max(peak, occupancy)
            assert peak <= limits[key]


class TestFuzzedBubbleBounds:
    """Spec-declared span/bubble bounds under randomized ragged costs.

    Every registered :class:`~repro.pipeline.spec.ScheduleSpec` declares
    closed-form bounds on its one-step span (``span_bounds``), evaluated
    on the pure schedule shape: one step, no host overhead, no data
    parallelism — the same regime as the paper's Table 1 critical paths.
    ``lo == hi`` pins an exact closed form (GPipe and 1F1B hit
    (N + D - 1)(Tf + Tb) exactly); otherwise the simulated span must stay
    inside [lo, hi] (Chimera between its Table 1 critical path and a
    generously slacked GPipe-like flush; interleaved-1F1B reaching the
    theoretical (P-1)(Tf+Tb) chunk bubble from above with at most
    ``depth`` chunk slots of asymmetric-cost slack; ZB-H1 between its
    device-occupancy bound and 1F1B's flush plus weight-grad
    non-preemption slack).
    """

    def _simulate(self, seed, name):
        rng = random.Random(10_000 + seed)
        tf = rng.uniform(0.2, 3.0)
        tb = rng.uniform(0.2, 3.0)
        layers = rng.randint(1, 3)
        depth, n_micro, virtual_chunks = random_topology(rng, name)
        block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                          t_inv=0.3, t_prec=0.05)
        cfg = PipelineConfig(
            depth=depth,
            n_micro=n_micro,
            costs=StageCosts(block=block, layers_per_stage=layers,
                             t_overhead=0.0, kernel_density=1.0),
            virtual_chunks=virtual_chunks,
        )
        builder = make_schedule(name, cfg)
        res = simulate_tasks(builder.build(steps=1), builder.num_devices)
        return cfg, res.makespan

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("name", FAMILIES)
    def test_span_within_spec_bounds(self, name, seed):
        cfg, span = self._simulate(seed, name)
        lo, hi = get_spec(name).span_bounds(cfg)
        assert lo <= hi
        if lo == hi:
            assert span == pytest.approx(lo, rel=1e-9)
        else:
            assert lo - 1e-9 <= span <= hi + 1e-9


# -- stochastic re-timing fuzzing ------------------------------------------------

#: 20 stochastic seeds x every registered schedule family.
STOCH_SEEDS = range(20)

#: Every stochastic fuzz replicate mixes all three perturbation families.
STOCH_MODEL = StochasticModel(jitter_sigma=0.03, straggler_count=1,
                              straggler_slowdown=1.2, preemption_rate=0.5,
                              restart_delay_frac=0.02,
                              checkpoint_interval_frac=0.1)


@pytest.fixture(params=[(n, s) for n in FAMILIES for s in STOCH_SEEDS],
                scope="module", ids=lambda p: f"{p[0]}-seed{p[1]}")
def stochastic_fuzzed(request):
    """One schedule compiled once, timed clean and under a seeded
    perturbation (jitter + straggler + preemptions) — the Monte Carlo
    replicate path, over the same topology distribution as the
    deterministic fuzzers."""
    name, seed = request.param
    rng = random.Random(20_000 + seed)
    tf = rng.uniform(0.2, 3.0)
    tb = rng.uniform(0.2, 3.0)
    depth, n_micro, virtual_chunks = random_topology(rng, name)
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    cfg = PipelineConfig(
        depth=depth,
        n_micro=n_micro,
        costs=StageCosts(block=block, layers_per_stage=rng.randint(1, 3),
                         t_overhead=0.0, kernel_density=1.0),
        virtual_chunks=virtual_chunks,
    )
    builder = make_schedule(name, cfg)
    tasks = builder.build(steps=1)
    graph = compile_graph(tasks, builder.num_devices)
    clean_durs = [t.duration for t in tasks]
    clean = simulate_compiled(graph, None, task_durs=clean_durs)
    p = sample_perturbation(STOCH_MODEL, seed, graph.num_devices,
                            clean.makespan)
    durs = perturbed_durations(graph, clean_durs, p)
    sim = simulate_compiled(graph, None, task_durs=durs, faults=p.faults())
    return dict(name=name, tasks=tasks, graph=graph, clean=clean, p=p,
                durs=durs, sim=sim, clean_durs=clean_durs)


class TestStochasticFuzzedInvariants:
    """The deterministic invariants must survive seeded re-timing."""

    def test_no_device_overlap(self, stochastic_fuzzed):
        f = stochastic_fuzzed
        g, sim = f["graph"], f["sim"]
        by_dev: dict = {}
        for i in range(g.n):
            if g.device[i] is not None and g.kind[i] in OCCUPYING_KINDS:
                by_dev.setdefault(g.device[i], []).append(
                    (sim.start[i], sim.ev_end[i]))
        for dev, ivals in by_dev.items():
            ivals.sort()
            for (s0, e0), (s1, e1) in zip(ivals, ivals[1:]):
                assert s1 >= e0 - 1e-9, (
                    f"device {dev}: [{s0}, {e0}) overlaps [{s1}, {e1})")

    def test_dependency_order(self, stochastic_fuzzed):
        f = stochastic_fuzzed
        sim = f["sim"]
        idx = {t.tid: i for i, t in enumerate(f["tasks"])}
        for t in f["tasks"]:
            for d in t.deps:
                assert sim.start[idx[t.tid]] >= sim.ev_end[idx[d]] - 1e-9, (
                    f"{t.tid} started before dep {d} ended under faults")

    def test_inflight_slots_never_exceed_limits(self, stochastic_fuzzed):
        f = stochastic_fuzzed
        sim = f["sim"]
        idx = {t.tid: i for i, t in enumerate(f["tasks"])}
        limits: dict = {}
        by_key: dict = {}
        release_end: dict = {}
        for t in f["tasks"]:
            key = t.meta.get("inflight_key")
            if key is not None:
                limits[key] = t.meta["inflight_limit"]
                by_key.setdefault(key, []).append(sim.start[idx[t.tid]])
            rel = t.meta.get("inflight_release")
            if rel is not None:
                release_end.setdefault(rel, []).append(
                    sim.ev_end[idx[t.tid]])
        assert limits, "schedule emitted no admission-controlled forwards"
        for key, starts in by_key.items():
            ends = sorted(release_end.get(key, []))
            if len(ends) < len(starts):
                continue
            marks = ([(s, +1) for s in sorted(starts)]
                     + [(e - 1e-12, -1) for e in ends])
            occupancy = peak = 0
            for _, delta in sorted(marks):
                occupancy += delta
                peak = max(peak, occupancy)
            assert peak <= limits[key]

    def test_restarts_well_formed(self, stochastic_fuzzed):
        f = stochastic_fuzzed
        g, sim, p = f["graph"], f["sim"], f["p"]
        delay = p.restart_delay
        for dev, idx, fail, resume, lost in sim.restarts:
            assert g.device[idx] == dev
            assert 0.0 <= fail < resume
            assert resume == pytest.approx(fail + delay)
            assert lost >= 0.0
            assert sim.ev_end[idx] >= resume

    @staticmethod
    def _require_monotone_family(name):
        # Chimera and interleaved run several stages per device; a delay
        # can reorder the ready queue into a *shorter* overall span (the
        # classic Graham scheduling anomaly), so span monotonicity is
        # only an invariant for the single-stage-per-device families.
        if name in ("chimera", "interleaved"):
            pytest.skip(f"{name}: multi-stage-per-device, span not "
                        f"monotone under delays (Graham anomalies)")

    def test_span_monotone_under_pure_slowdown(self, stochastic_fuzzed):
        """All device factors >= 1 and no faults: the perturbed span can
        only grow when each device runs a single stage."""
        f = stochastic_fuzzed
        self._require_monotone_family(f["name"])
        p = f["p"]
        slow = Perturbation(
            seed=p.seed,
            device_factor=tuple(max(1.0, x) for x in p.device_factor),
            failure_times=((),) * f["graph"].num_devices,
            restart_delay=0.0,
            checkpoint_every=0.0,
        )
        durs = perturbed_durations(f["graph"], f["clean_durs"], slow)
        sim = simulate_compiled(f["graph"], None, task_durs=durs)
        assert sim.makespan >= f["clean"].makespan - 1e-9

    def test_span_monotone_under_added_faults(self, stochastic_fuzzed):
        """Same durations, faults added: the span never shrinks."""
        f = stochastic_fuzzed
        self._require_monotone_family(f["name"])
        no_faults = simulate_compiled(f["graph"], None, task_durs=f["durs"])
        assert f["sim"].makespan >= no_faults.makespan - 1e-9
        if any(f["p"].failure_times):
            assert f["sim"].makespan >= no_faults.makespan

    def test_faultless_path_matches_reference_executor(
            self, stochastic_fuzzed):
        """A jitter-only replicate is just a re-timing: it must agree bit
        for bit with the reference simulate_tasks on the re-priced tasks."""
        f = stochastic_fuzzed
        repriced = [dataclasses.replace(t, duration=d)
                    for t, d in zip(f["tasks"], f["durs"])]
        ref = simulate_tasks(repriced, f["graph"].num_devices)
        sim = simulate_compiled(f["graph"], None, task_durs=f["durs"])
        assert sim.makespan == ref.makespan
        for i, t in enumerate(f["tasks"]):
            assert sim.start[i] == ref.start_times[t.tid]
            assert sim.ev_end[i] == ref.end_times[t.tid]
