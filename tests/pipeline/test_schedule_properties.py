"""Property-based schedule invariants over the (depth, N_micro) grid."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks
from repro.pipeline.bubbles import OCCUPYING_KINDS


def costs(tf, tb):
    block = WorkCosts(t_fwd=tf, t_bwd=tb, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=1, t_overhead=0.1,
                      kernel_density=1.0)


@settings(max_examples=20, deadline=None)
@given(
    depth=st.sampled_from([2, 4, 6]),
    extra=st.integers(0, 2),
    tf=st.floats(0.5, 2.0),
    tb_ratio=st.floats(1.0, 3.0),
    name=st.sampled_from(["gpipe", "1f1b", "chimera"]),
)
def test_schedule_invariants(depth, extra, tf, tb_ratio, name):
    """For any config: simulation completes, every (micro-batch, stage) runs
    forward exactly once and backward exactly once, backwards follow their
    forwards, no device double-books, and the span is at least the
    theoretical lower bound N*(Tf+Tb)."""
    n_micro = depth + 2 * extra  # keeps Chimera's even requirement
    tb = tf * tb_ratio
    cfg = PipelineConfig(depth=depth, n_micro=n_micro, costs=costs(tf, tb))
    builder = make_schedule(name, cfg)
    res = simulate_tasks(builder.build(), builder.num_devices)

    res.timeline.verify_no_overlap(kinds=OCCUPYING_KINDS)

    fwd = [e for e in res.timeline.events if e.kind == "forward"]
    bwd = [e for e in res.timeline.events if e.kind == "backward"]
    expected = depth * n_micro
    assert len(fwd) == expected
    assert len(bwd) == expected

    # Per device, span >= busy time; overall span >= per-device work.
    per_device_work = n_micro * (tf + tb)
    assert res.makespan >= per_device_work - 1e-9

    # Every backward starts after its own forward.
    fwd_end = {}
    for e in fwd:
        key = (e.meta.get("pipeline"), e.meta["micro_batch"], e.meta["stage"])
        fwd_end[key] = e.end
    for e in bwd:
        key = (e.meta.get("pipeline"), e.meta["micro_batch"], e.meta["stage"])
        assert e.start >= fwd_end[key] - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    depth=st.sampled_from([2, 4]),
    extra=st.integers(0, 2),
    seed_tf=st.floats(0.5, 1.5),
)
def test_gpipe_matches_closed_form(depth, extra, seed_tf):
    """GPipe span == (N + D - 1) * (Tf + Tb) for any N >= D."""
    n_micro = depth + extra
    tf, tb = seed_tf, 2 * seed_tf
    cfg = PipelineConfig(depth=depth, n_micro=n_micro, costs=costs(tf, tb))
    builder = make_schedule("gpipe", cfg)
    res = simulate_tasks(builder.build(), builder.num_devices)
    span_no_tail = res.makespan - 0.1  # subtract overhead tail
    expected = (n_micro + depth - 1) * (tf + tb)
    assert span_no_tail == pytest.approx(expected, rel=1e-6)


@settings(max_examples=10, deadline=None)
@given(depth=st.sampled_from([2, 4]), extra=st.integers(0, 1))
def test_multistep_spans_additive(depth, extra):
    """Synchronous flush makes k steps cost exactly k * one-step span."""
    n_micro = depth + 2 * extra
    cfg = PipelineConfig(depth=depth, n_micro=n_micro, costs=costs(1.0, 2.0))
    builder = make_schedule("1f1b", cfg)
    one = simulate_tasks(builder.build(steps=1), builder.num_devices).makespan
    three = simulate_tasks(builder.build(steps=3), builder.num_devices).makespan
    assert three == pytest.approx(3 * one, rel=1e-9)
