"""Architecture FLOP/memory inventories (Table 3)."""

import pytest

from repro.perfmodel.arch import (
    ARCHITECTURES,
    BERT_BASE,
    BERT_LARGE,
    OPT_125M,
    T5_BASE,
)


class TestPresets:
    def test_six_architectures(self):
        assert len(ARCHITECTURES) == 6

    def test_bert_base_block_params(self):
        """BERT-Base block ~ 7.1M params (4 attn + 2 FF linears + LNs)."""
        p = BERT_BASE.params_per_block
        assert 7.0e6 < p < 7.2e6

    def test_bert_large_block_params(self):
        p = BERT_LARGE.params_per_block
        assert 12.5e6 < p < 12.8e6

    def test_twelve_blocks_approximate_bert_base_encoder(self):
        assert 84e6 < 12 * BERT_BASE.params_per_block < 87e6

    def test_linear_dims_inventory(self):
        dims = BERT_BASE.linear_dims
        assert len(dims) == 6
        assert dims.count((768, 768)) == 4
        assert (768, 3072) in dims and (3072, 768) in dims


class TestFlops:
    def test_forward_scales_linearly_with_batch(self):
        assert BERT_BASE.forward_flops(64) == pytest.approx(
            2 * BERT_BASE.forward_flops(32), rel=1e-6
        )

    def test_backward_twice_forward(self):
        assert BERT_BASE.backward_flops(32) == pytest.approx(
            2 * BERT_BASE.forward_flops(32)
        )

    def test_inversion_independent_of_batch(self):
        """§3.3: T_inv is constant regardless of B_micro."""
        assert BERT_BASE.inversion_flops() == BERT_BASE.inversion_flops()
        import inspect

        sig = inspect.signature(BERT_BASE.inversion_flops)
        assert "batch" not in sig.parameters

    def test_curvature_splits_a_b(self):
        a = BERT_BASE.curvature_flops_a(32)
        b = BERT_BASE.curvature_flops_b(32)
        assert BERT_BASE.curvature_flops(32) == pytest.approx(a + b)
        # Symmetric linear dims -> equal A and B cost for BERT.
        assert a == pytest.approx(b)

    def test_larger_arch_costs_more(self):
        assert BERT_LARGE.forward_flops(32) > BERT_BASE.forward_flops(32)
        assert BERT_LARGE.inversion_flops() > BERT_BASE.inversion_flops()

    def test_longer_sequences_cost_more(self):
        """OPT (S=2048) >> BERT (S=128) per sequence."""
        assert OPT_125M.forward_flops(1) > 10 * BERT_BASE.forward_flops(1)

    def test_t5_matches_bert_dims_longer_seq(self):
        assert T5_BASE.d_model == BERT_BASE.d_model
        assert T5_BASE.seq_len == 512


class TestMemory:
    def test_activation_bytes_scale_with_batch(self):
        assert BERT_BASE.activation_bytes(16) == pytest.approx(
            2 * BERT_BASE.activation_bytes(8)
        )

    def test_boundary_smaller_than_full_activations(self):
        assert (BERT_BASE.boundary_activation_bytes(32)
                < BERT_BASE.activation_bytes(32) / 5)

    def test_factor_bytes_batch_independent(self):
        import inspect

        assert "batch" not in inspect.signature(BERT_BASE.factor_bytes).parameters

    def test_factor_bytes_value(self):
        # A factors: 4*768^2 + 768^2 + 3072^2; B same (no bias columns).
        expected = 4.0 * 2 * (5 * 768**2 + 3072**2)
        assert BERT_BASE.factor_bytes() == pytest.approx(expected)

    def test_saved_error_bytes(self):
        # Sum of d_out over 6 linears = 4*768 + 3072 + 768.
        t = 32 * 128
        assert BERT_BASE.saved_error_bytes(32) == pytest.approx(
            4.0 * t * (4 * 768 + 3072 + 768)
        )
