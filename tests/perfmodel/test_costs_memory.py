"""Work-cost and memory models."""

import pytest

from repro.perfmodel import MemoryModel, compute_stage_costs
from repro.perfmodel.arch import BERT_BASE, BERT_LARGE
from repro.perfmodel.costs import compute_block_costs
from repro.perfmodel.hardware import P100, RTX3090, V100


class TestBlockCosts:
    def test_faster_hardware_shorter_times(self):
        slow = compute_block_costs(BERT_BASE, P100, 32)
        fast = compute_block_costs(BERT_BASE, RTX3090, 32)
        assert fast.t_fwd < slow.t_fwd
        assert fast.t_inv < slow.t_inv

    def test_backward_twice_forward(self):
        # Up to the kernel-launch floor, backward costs 2x forward.
        c = compute_block_costs(BERT_BASE, P100, 32)
        assert c.t_bwd == pytest.approx(2 * c.t_fwd, rel=0.05)

    def test_curvature_scales_with_batch_inversion_does_not(self):
        c8 = compute_block_costs(BERT_BASE, P100, 8)
        c32 = compute_block_costs(BERT_BASE, P100, 32)
        assert c32.t_curv == pytest.approx(4 * c8.t_curv, rel=0.05)
        assert c32.t_inv == pytest.approx(c8.t_inv)

    def test_launch_floor_dominates_tiny_batches(self):
        """Fig. 6 shape: per-sequence time rises sharply below B_micro~4."""
        c1 = compute_block_costs(BERT_BASE, P100, 1)
        c32 = compute_block_costs(BERT_BASE, P100, 32)
        per_seq_1 = c1.t_fwd / 1
        per_seq_32 = c32.t_fwd / 32
        assert per_seq_1 > 1.5 * per_seq_32

    def test_fig3_magnitude_anchor(self):
        """Calibration check: a 3-layer BERT-Base stage forward at
        B_micro=32 on P100 is ~25-35 ms (Fig. 3's ~87 ms fwd+bwd slot)."""
        c = compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=3)
        assert 0.025 < c.t_fwd < 0.035
        assert 0.075 < c.t_fwd + c.t_bwd < 0.105

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            compute_block_costs(BERT_BASE, P100, 0)
        with pytest.raises(ValueError):
            compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=0)

    def test_stage_scales_with_layers(self):
        c1 = compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=1)
        c3 = compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=3)
        assert c3.t_fwd == pytest.approx(3 * c1.t_fwd)
        assert c3.t_inv == pytest.approx(3 * c1.t_inv)


class TestMemoryModel:
    def test_fig5_magnitude(self):
        """Fig. 5a: one BERT-Base block/stage, B=32, D=8 -> a few GB."""
        mm = MemoryModel(BERT_BASE, layers_per_stage=1, stages_per_device=2)
        bd = mm.breakdown(b_micro=32, n_micro=8)
        assert 1.0 < bd.total_gb() < 8.0

    def test_recompute_reduces_activations(self):
        mm = MemoryModel(BERT_BASE)
        plain = mm.breakdown(32, 8)
        rec = mm.breakdown(32, 8, recompute=True)
        assert rec.act < plain.act
        assert rec.total < plain.total

    def test_kfac_extra_components(self):
        mm = MemoryModel(BERT_BASE)
        bd = mm.breakdown(32, 8)
        assert bd.kfac_extra == pytest.approx(bd.curv_inv + bd.save_err)
        no_kfac = mm.breakdown(32, 8, with_kfac=False)
        assert no_kfac.kfac_extra == 0.0
        assert no_kfac.pipeline_total == pytest.approx(bd.pipeline_total)

    def test_activations_dominate_at_large_n_micro(self):
        """§3.3: N*M_act accounts for most memory when N is large."""
        mm = MemoryModel(BERT_BASE)
        bd = mm.breakdown(32, 48)
        assert bd.act > 0.5 * bd.total

    def test_save_err_dominates_kfac_extra_under_recompute(self):
        """§3.3: with R, N*M_err^save + factors are the bottleneck."""
        mm = MemoryModel(BERT_BASE)
        bd = mm.breakdown(32, 16, recompute=True)
        assert bd.kfac_extra > bd.act

    def test_curv_inv_constant_in_batch(self):
        mm = MemoryModel(BERT_BASE)
        assert mm.breakdown(8, 8).curv_inv == mm.breakdown(64, 8).curv_inv

    def test_fits_check(self):
        mm = MemoryModel(BERT_LARGE, layers_per_stage=3, stages_per_device=2)
        assert mm.fits(P100.memory_gb, b_micro=8, n_micro=8, recompute=True)
        assert not mm.fits(1.0, b_micro=32, n_micro=32)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MemoryModel(BERT_BASE).breakdown(0, 4)


class TestHardware:
    def test_effective_flops_ordering(self):
        for hw in (P100, V100, RTX3090):
            assert hw.flops_inv < hw.flops_gemm
            assert hw.flops_fwd < hw.fp32_tflops * 1e12

    def test_presets_distinct(self):
        assert P100.fp32_tflops < V100.fp32_tflops < RTX3090.fp32_tflops
