"""The §3.3 analytic model: every scaling observation the paper lists.

The paper's bullet list under Fig. 6 is reproduced as assertions:
* larger B_micro -> smaller (curv+inv)/bubble ratio;
* deeper pipelines -> smaller ratio;
* more micro-batches (N_micro) -> larger ratio;
* longer sequences -> larger bubbles, smaller ratio;
* ratio mostly in 2-10;
* PipeFisher throughput ~= vanilla pipeline (precondition is small);
* PipeFisher >= K-FAC+skip >= naive K-FAC.
"""

import pytest

from repro.perfmodel import PipelinePerfModel
from repro.perfmodel.arch import BERT_BASE, BERT_LARGE, T5_BASE
from repro.perfmodel.hardware import P100, RTX3090, V100


@pytest.fixture(scope="module")
def chimera_base():
    return PipelinePerfModel(BERT_BASE, P100, "chimera")


class TestCriticalPath:
    def test_gpipe_equals_1f1b(self):
        g = PipelinePerfModel(BERT_BASE, P100, "gpipe").report(32, 8)
        f = PipelinePerfModel(BERT_BASE, P100, "1f1b").report(32, 8)
        assert g.t_pipe == pytest.approx(f.t_pipe)

    def test_chimera_faster_than_gpipe(self, chimera_base):
        g = PipelinePerfModel(BERT_BASE, P100, "gpipe").report(32, 8)
        c = chimera_base.report(32, 8)
        assert c.t_pipe < g.t_pipe

    def test_gpipe_constants_at_n_equals_d(self):
        m = PipelinePerfModel(BERT_BASE, P100, "gpipe")
        r = m.report(32, 8)
        assert r.t_pipe == pytest.approx(15 * r.t_fwd + 15 * r.t_bwd)

    def test_chimera_constants_at_n_equals_d(self, chimera_base):
        r = chimera_base.report(32, 8)
        assert r.t_pipe == pytest.approx(8 * r.t_fwd + 14 * r.t_bwd)

    def test_extra_micro_batches_add_slots(self, chimera_base):
        r1 = chimera_base.report(32, 8, n_micro=8)
        r2 = chimera_base.report(32, 8, n_micro=16)
        assert r2.t_pipe == pytest.approx(r1.t_pipe + 8 * (r1.t_fwd + r1.t_bwd))

    def test_n_micro_below_depth_rejected(self, chimera_base):
        with pytest.raises(ValueError):
            chimera_base.report(32, 8, n_micro=4)

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            PipelinePerfModel(BERT_BASE, P100, "gpipe2")


class TestPaperScalingObservations:
    def test_ratio_decreases_with_b_micro(self, chimera_base):
        ratios = [chimera_base.report(b, 8).ratio for b in (1, 4, 16, 64)]
        assert ratios == sorted(ratios, reverse=True)

    def test_ratio_decreases_with_depth(self, chimera_base):
        ratios = [chimera_base.report(32, d).ratio for d in (4, 8, 16, 32)]
        assert ratios == sorted(ratios, reverse=True)

    def test_ratio_increases_with_n_micro(self, chimera_base):
        r1 = chimera_base.report(32, 8, n_micro=8).ratio
        r3 = chimera_base.report(32, 8, n_micro=24).ratio
        assert r3 > r1

    def test_longer_sequences_reduce_ratio(self):
        bert = PipelinePerfModel(BERT_BASE, P100, "chimera").report(8, 8)
        t5 = PipelinePerfModel(T5_BASE, P100, "chimera").report(8, 8)
        assert t5.ratio < bert.ratio

    def test_ratio_in_2_to_10_band_typical(self, chimera_base):
        """'In most cases the ratio is in the range of 2-10'."""
        inside = 0
        total = 0
        for b in (8, 16, 32, 64):
            for d in (8, 16, 32):
                total += 1
                if 1.0 <= chimera_base.report(b, d).ratio <= 12.0:
                    inside += 1
        assert inside / total >= 0.75

    def test_small_batch_many_micro_batches_high_ratio(self, chimera_base):
        """The paper's exception: B_micro in {1,2} and N=3D -> big ratio."""
        r = chimera_base.report(1, 8, n_micro=24)
        assert r.ratio > 10


class TestThroughputStrategies:
    def test_pipefisher_close_to_vanilla(self, chimera_base):
        r = chimera_base.report(32, 8)
        assert r.throughput_pipefisher > 0.90 * r.throughput_pipeline

    def test_strategy_ordering(self, chimera_base):
        for b in (4, 32):
            r = chimera_base.report(b, 8)
            assert (r.throughput_pipefisher >= r.throughput_kfac_skip
                    >= r.throughput_kfac_naive)

    def test_speedup_vs_skip_bounds(self, chimera_base):
        """Paper: up to ~1.4x at N=D and large B; ~1.1x otherwise."""
        big = chimera_base.report(64, 8).speedup_vs_kfac_skip
        small = chimera_base.report(2, 8, n_micro=24).speedup_vs_kfac_skip
        assert 1.0 < big < 1.6
        assert 1.0 <= small < big

    def test_throughput_increases_with_batch(self, chimera_base):
        t8 = chimera_base.report(8, 8).throughput_pipeline
        t32 = chimera_base.report(32, 8).throughput_pipeline
        assert t32 > t8

    def test_fig5_throughput_magnitude(self, chimera_base):
        """Fig. 5b: Chimera BERT-Base D=8, B=32 -> ~500 seqs/s region."""
        thr = chimera_base.report(32, 8).throughput_pipeline
        assert 400 < thr < 900


class TestRecomputation:
    def test_recompute_lowers_throughput(self, chimera_base):
        plain = chimera_base.report(32, 8)
        rec = chimera_base.report(32, 8, recompute=True)
        assert rec.throughput_pipeline < plain.throughput_pipeline

    def test_recompute_grows_bubble_and_cuts_ratio(self, chimera_base):
        """§3.3: 'As T_bubble is increased by activation recomputation,
        curvature information is updated at a higher frequency.'"""
        plain = chimera_base.report(32, 8)
        rec = chimera_base.report(32, 8, recompute=True)
        assert rec.t_bubble > plain.t_bubble
        assert rec.ratio < plain.ratio

    def test_recompute_reduces_memory(self, chimera_base):
        plain = chimera_base.report(32, 8)
        rec = chimera_base.report(32, 8, recompute=True)
        assert rec.memory.total < plain.memory.total


class TestHardwareSweep:
    def test_faster_gpu_more_throughput(self):
        thr = {}
        for hw in (P100, V100, RTX3090):
            thr[hw.name] = PipelinePerfModel(BERT_BASE, hw, "chimera").report(
                32, 8
            ).throughput_pipeline
        assert thr["P100"] < thr["V100"] < thr["RTX3090"]

    def test_bert_large_slower_than_base(self):
        base = PipelinePerfModel(BERT_BASE, P100, "chimera").report(32, 8)
        large = PipelinePerfModel(BERT_LARGE, P100, "chimera").report(32, 8)
        assert large.throughput_pipeline < base.throughput_pipeline


class TestSweepAPI:
    def test_grid_keys(self, chimera_base):
        grid = chimera_base.sweep([8, 16], [4, 8])
        assert set(grid) == {(8, 4), (8, 8), (16, 4), (16, 8)}

    def test_refresh_steps_is_ceil_ratio(self, chimera_base):
        import math

        r = chimera_base.report(16, 8)
        assert r.refresh_steps == max(1, math.ceil(r.ratio))
