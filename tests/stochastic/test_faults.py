"""Restart semantics of simulate_compiled under a DeviceFaults plan.

Hand-built graphs with hand-computable timings: every scenario's start,
end, and lost-work numbers are derived on paper in the test body.
"""

import pytest

from repro.pipeline.work import Task, WorkKind
from repro.sweep.retime import DeviceFaults, simulate_compiled
from repro.sweep.template import compile_graph


def chain_graph(durations, device=0, num_devices=None):
    """A linear chain of forward tasks on one device."""
    tasks = []
    for i, d in enumerate(durations):
        tasks.append(Task(
            tid=f"t{i}",
            device=device,
            kind=WorkKind.FORWARD,
            duration=d,
            deps=(f"t{i - 1}",) if i else (),
            priority=(i,),
            meta={"stage": device, "micro_batch": i},
        ))
    return compile_graph(tasks, num_devices or device + 1)


def faults(times, delay=0.0, ckpt=0.0, num_devices=1, device=0):
    ft = [()] * num_devices
    ft[device] = tuple(times)
    return DeviceFaults(failure_times=tuple(ft), restart_delay=delay,
                        checkpoint_every=ckpt)


class TestNoFaults:
    def test_task_durs_path_matches_table_path(self):
        g = chain_graph([1.0, 2.0, 0.5])
        by_table = simulate_compiled(g, tuple(float(c + 1) for c in range(8)))
        by_tasks = simulate_compiled(
            g, None, task_durs=[float(c + 1) for c in g.dur_code])
        assert by_tasks.start == by_table.start
        assert by_tasks.ev_end == by_table.ev_end
        assert by_tasks.makespan == by_table.makespan
        assert by_tasks.restarts == ()

    def test_failure_after_makespan_is_ignored(self):
        g = chain_graph([1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0],
                                faults=faults([5.0], delay=1.0))
        assert sim.makespan == 1.0
        assert sim.restarts == ()


class TestIdleFailure:
    def test_failure_before_start_delays_start(self):
        g = chain_graph([1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0],
                                faults=faults([0.0], delay=0.5))
        assert list(sim.start) == [0.5]
        assert sim.makespan == 1.5
        # Idle restarts lose no work.
        assert sim.restarts == ((0, 0, 0.0, 0.5, 0.0),)


class TestInAttemptFailure:
    def test_whole_attempt_lost_without_checkpoints(self):
        g = chain_graph([1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0],
                                faults=faults([0.6], delay=0.2))
        # 0.6s of work lost, resume at 0.8, full redo => end 1.8.
        assert sim.makespan == pytest.approx(1.8)
        assert sim.restarts == ((0, 0, 0.6, pytest.approx(0.8),
                                 pytest.approx(0.6)),)

    def test_checkpoint_preserves_completed_intervals(self):
        g = chain_graph([1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0],
                                faults=faults([0.6], delay=0.2, ckpt=0.25))
        # Checkpoints at 0.25/0.5: failing at 0.6 keeps 0.5s, loses 0.1s;
        # resume 0.8 with 0.5s left => end 1.3.
        assert sim.makespan == pytest.approx(1.3)
        (dev, idx, fail, resume, lost), = sim.restarts
        assert (dev, idx, fail) == (0, 0, 0.6)
        assert resume == pytest.approx(0.8)
        assert lost == pytest.approx(0.1)

    def test_two_failures_in_one_attempt(self):
        g = chain_graph([1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0],
                                faults=faults([0.3, 0.9], delay=0.1))
        # Lose 0.3 (resume 0.4), lose 0.5 (resume 1.0), finish at 2.0.
        assert sim.makespan == pytest.approx(2.0)
        assert len(sim.restarts) == 2
        assert sum(r[4] for r in sim.restarts) == pytest.approx(0.8)

    def test_failure_during_downtime_extends_outage(self):
        g = chain_graph([1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0],
                                faults=faults([0.5, 0.6], delay=0.5))
        # 0.5: lose 0.5s, down until 1.0.  0.6 strikes a dead device:
        # the outage extends to 1.1, nothing new is lost.
        assert sim.makespan == pytest.approx(2.1)
        assert [r[4] for r in sim.restarts] == [pytest.approx(0.5), 0.0]

    def test_downstream_tasks_shift(self):
        g = chain_graph([1.0, 1.0])
        sim = simulate_compiled(g, None, task_durs=[1.0, 1.0],
                                faults=faults([0.5], delay=0.5))
        # t0 redone after the failure: 0.5 lost + 0.5 downtime => ends 2.0;
        # t1 rides behind untouched.
        assert list(sim.ev_end) == [pytest.approx(2.0), pytest.approx(3.0)]
        assert sim.start[1] == pytest.approx(2.0)

    def test_fault_free_devices_unaffected(self):
        tasks = [
            Task(tid="a", device=0, kind=WorkKind.FORWARD, duration=1.0,
                 priority=(0,), meta={"stage": 0, "micro_batch": 0}),
            Task(tid="b", device=1, kind=WorkKind.FORWARD, duration=1.0,
                 priority=(0,), meta={"stage": 1, "micro_batch": 0}),
        ]
        g = compile_graph(tasks, 2)
        sim = simulate_compiled(g, None, task_durs=[1.0, 1.0],
                                faults=faults([0.5], delay=0.5,
                                              num_devices=2, device=1))
        by_dev = {g.device[i]: sim.ev_end[i] for i in range(2)}
        assert by_dev[0] == 1.0
        assert by_dev[1] == pytest.approx(2.0)

    def test_faulty_span_never_beats_fault_free(self):
        g = chain_graph([0.5, 1.0, 0.75])
        clean = simulate_compiled(g, None, task_durs=[0.5, 1.0, 0.75])
        for times in ([0.1], [0.6, 1.2], [0.0, 0.3, 1.9]):
            for ckpt in (0.0, 0.25):
                sim = simulate_compiled(
                    g, None, task_durs=[0.5, 1.0, 0.75],
                    faults=faults(times, delay=0.2, ckpt=ckpt))
                assert sim.makespan >= clean.makespan
