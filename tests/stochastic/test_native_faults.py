"""The native fault-replay core must be bit-identical to the reference.

``repro_sim_fault_batch`` transliterates the DeviceFaults restart-replay
of :func:`~repro.sweep.retime.simulate_compiled`; these tests fuzz the
whole surface — every registered schedule, mixed jitter/straggler/
preemption perturbations, hand-built edge cases including the
negative-lost-work regression PR 7 fixed — comparing with ``==`` on
floats (no tolerances) including the restart rows, plus the laziness of
restart materialization and the engine counters the batched MC path
feeds.
"""

import pytest

from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE, P100
from repro.pipefisher.runner import PipeFisherRun
from repro.stochastic import StochasticModel, monte_carlo
from repro.stochastic.perturb import (
    perturbed_durations,
    sample_perturbation,
    table_durations,
)
from repro.sweep import SweepEngine
from repro.sweep import batch as sweep_batch
from repro.sweep import native
from repro.sweep.retime import simulate_compiled
from tests.stochastic.test_faults import faults
from tests.sweep.test_engine_equivalence import CASES

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: One representative case per registered schedule family.
SCHEDULE_CASES = ("gpipe", "1f1b", "chimera", "interleaved", "zb1f1b")
FUZZ_SEEDS = 24

#: Heavy preemption on top of jitter + a straggler: every draw category
#: the perturbation sampler has, mixed in one model.
MODEL = StochasticModel(jitter_sigma=0.03, straggler_count=1,
                        straggler_slowdown=1.08, preemption_rate=0.8,
                        restart_delay_frac=0.05,
                        checkpoint_interval_frac=0.1)

pytestmark = pytest.mark.skipif(
    not native.available(),
    reason="native core unavailable (the python reference is the "
           "fallback these tests compare against)")


def _point(name):
    run = PipeFisherRun(hardware=P100, **CASES[name])
    return SweepEngine().compiled_point(run)


def chain_graph(durations, device=0, num_devices=None):
    """test_faults.py's linear chain, with int-packable priorities.

    The hand-built scenarios there use 1-tuple priorities, which keep
    the graph on tuple order keys — fine for the python reference, but
    the native lowering only accepts int keys.  Two-int priorities pack
    (see ``_pack_order_keys``), and ``simulate_compiled`` orders both
    spellings identically, so the scenarios transfer unchanged.
    """
    from repro.pipeline.work import Task, WorkKind
    from repro.sweep.template import compile_graph

    tasks = [Task(tid=f"t{i}", device=device, kind=WorkKind.FORWARD,
                  duration=d, deps=(f"t{i - 1}",) if i else (),
                  priority=(i, 0),
                  meta={"stage": device, "micro_batch": i})
             for i, d in enumerate(durations)]
    return compile_graph(tasks, num_devices or device + 1)


def _perturbation_rows(point, graph, durs, seeds):
    """Per-seed (task_durs, faults) pairs sampled exactly like MC."""
    template = point.template
    nominal = simulate_compiled(graph, durs)
    rows = []
    for seed in seeds:
        p = sample_perturbation(MODEL, seed, template.num_devices,
                                nominal.makespan)
        td = perturbed_durations(graph, table_durations(graph, durs), p)
        rows.append((td, p.faults()))
    return rows


def _assert_fault_sims_equal(ref, got):
    assert ref.start == got.start
    assert ref.end == got.end
    assert ref.ev_end == got.ev_end
    assert ref.ev_order == got.ev_order
    assert ref.makespan == got.makespan
    assert got.restarts == ref.restarts
    assert ref.restarts == got.restarts  # reflected comparison too


@pytest.mark.parametrize("name", SCHEDULE_CASES)
def test_fault_batch_matches_reference(name):
    """≥20 seeds × every schedule, preemption/straggler/jitter mixed."""
    point = _point(name)
    template = point.template
    for graph, durs in ((template.base_graph, point.base_durs),
                        (template.pf_graph, point.pf_durs)):
        rows = _perturbation_rows(point, graph, durs, range(FUZZ_SEEDS))
        matrix = np.asarray([td for td, _ in rows], np.float64)
        fb = sweep_batch.simulate_graph_batch(
            graph, task_durs=matrix, faults=[f for _, f in rows])
        assert isinstance(fb, sweep_batch.FaultBatch)
        n_faulty = 0
        for i, (td, f) in enumerate(rows):
            assert fb.ok(i)
            ref = simulate_compiled(graph, None, task_durs=list(td),
                                    faults=f)
            _assert_fault_sims_equal(ref, fb.sim(i))
            n, down, lost = fb.restart_stats(i)
            assert n == len(ref.restarts)
            ref_down = 0.0
            ref_lost = 0.0
            for _, _, fail, resume, lw in ref.restarts:
                ref_down += resume - fail
                ref_lost += lw
            assert down == ref_down
            assert lost == ref_lost
            n_faulty += bool(ref.restarts)
        assert n_faulty > 0, "fuzz model never produced a restart"


def test_mixed_none_and_fault_rows_in_one_batch():
    """``faults=None`` rows ride the fault core bit-identically."""
    point = _point("1f1b")
    graph, durs = point.template.base_graph, point.base_durs
    rows = _perturbation_rows(point, graph, durs, range(8))
    fault_list = [f if i % 2 else None for i, (_, f) in enumerate(rows)]
    matrix = np.asarray([td for td, _ in rows], np.float64)
    fb = sweep_batch.simulate_graph_batch(graph, task_durs=matrix,
                                          faults=fault_list)
    for i, (td, _) in enumerate(rows):
        ref = simulate_compiled(graph, None, task_durs=list(td),
                                faults=fault_list[i])
        _assert_fault_sims_equal(ref, fb.sim(i))
        if fault_list[i] is None:
            assert fb.restart_stats(i) == (0, 0.0, 0.0)


class TestEdgeCases:
    """The hand-computed scenarios of test_faults.py through the core."""

    def _native_sim(self, g, task_durs, f):
        fb = sweep_batch.simulate_graph_batch(
            g, task_durs=np.asarray([task_durs], np.float64), faults=[f])
        assert fb is not None and fb.ok(0)
        return fb.sim(0)

    def test_downtime_failure_negative_lost_work_regression(self):
        # The PR 7 fix: 0.5 loses 0.5s (down to 1.0), 0.6 strikes the
        # dead device — outage extends to 1.1, lost work must be 0.0,
        # never negative.
        g = chain_graph([1.0])
        f = faults([0.5, 0.6], delay=0.5)
        sim = self._native_sim(g, [1.0], f)
        ref = simulate_compiled(g, None, task_durs=[1.0], faults=f)
        _assert_fault_sims_equal(ref, sim)
        assert sim.makespan == pytest.approx(2.1)
        assert [r[4] for r in sim.restarts] == [pytest.approx(0.5), 0.0]

    def test_idle_failure_delays_start(self):
        g = chain_graph([1.0])
        f = faults([0.0], delay=0.5)
        sim = self._native_sim(g, [1.0], f)
        assert list(sim.start) == [0.5]
        assert sim.restarts == ((0, 0, 0.0, 0.5, 0.0),)

    def test_checkpoint_preserves_completed_intervals(self):
        g = chain_graph([1.0])
        f = faults([0.6], delay=0.2, ckpt=0.25)
        sim = self._native_sim(g, [1.0], f)
        ref = simulate_compiled(g, None, task_durs=[1.0], faults=f)
        _assert_fault_sims_equal(ref, sim)
        assert sim.makespan == pytest.approx(1.3)

    def test_failure_after_makespan_is_ignored(self):
        g = chain_graph([1.0])
        sim = self._native_sim(g, [1.0], faults([5.0], delay=1.0))
        assert sim.makespan == 1.0
        assert len(sim.restarts) == 0
        assert sim.restarts == ()

    def test_checkpoint_floordiv_bit_identity_fuzz(self):
        # (f // ckpt) * ckpt must round exactly like CPython floordiv;
        # hammer awkward ratios through both paths.
        import random

        rng = random.Random(7)
        g = chain_graph([1.0, 1.0, 1.0])
        for _ in range(50):
            times = sorted(rng.uniform(0.0, 3.0) for _ in range(3))
            ckpt = rng.choice([0.1, 0.3, 1.0 / 3.0, 0.07, 1e-3])
            delay = rng.uniform(0.0, 0.3)
            f = faults(times, delay=delay, ckpt=ckpt)
            ref = simulate_compiled(g, None, task_durs=[1.0, 1.0, 1.0],
                                    faults=f)
            _assert_fault_sims_equal(
                ref, self._native_sim(g, [1.0, 1.0, 1.0], f))


class TestLaziness:
    def _fault_batch(self):
        g = chain_graph([1.0, 1.0])
        return sweep_batch.simulate_graph_batch(
            g, task_durs=np.asarray([[1.0, 1.0]], np.float64),
            faults=[faults([0.5], delay=0.5)])

    def test_restarts_materialize_lazily(self):
        fb = self._fault_batch()
        nr = fb.restarts(0)
        assert isinstance(nr, sweep_batch.NativeRestarts)
        assert not nr.materialized
        assert len(nr) == 1          # len() needs no materialization
        assert not nr.materialized
        assert nr[0][2] == 0.5       # first touch materializes
        assert nr.materialized

    def test_restart_stats_do_not_materialize_rows(self):
        fb = self._fault_batch()
        n, down, lost = fb.restart_stats(0)
        assert (n, down, lost) == (1, 0.5, 0.5)
        # stats fold straight off the arrays: a fresh restarts() view of
        # the same row is still unmaterialized.
        assert not fb.restarts(0).materialized

    def test_restart_rows_are_python_scalars(self):
        rows = tuple(self._fault_batch().restarts(0))
        (dev, task, fail, resume, lost), = rows
        assert isinstance(dev, int) and isinstance(task, int)
        assert isinstance(fail, float) and isinstance(resume, float)
        assert isinstance(lost, float)


class TestCounters:
    def _run(self):
        return PipeFisherRun(schedule="1f1b",
                             arch=ARCHITECTURES["BERT-Base"],
                             hardware=HARDWARE["P100"], b_micro=32,
                             depth=4, n_micro=8, layers_per_stage=3)

    def test_batched_mc_counters_tick(self):
        engine = SweepEngine()
        before = engine.stats()
        assert before["mc_batched_replicates"] == 0
        assert before["mc_faulty_batched"] == 0
        n = 12
        monte_carlo(self._run(), MODEL, range(n), engine=engine,
                    batch=True)
        after = engine.stats()
        assert after["mc_batched_replicates"] == n
        assert 0 < after["mc_faulty_batched"] <= n
        # Each batched replicate is also a native batched evaluation.
        assert after["native_evals"] - before["native_evals"] >= n
        assert after["batched_points"] - before["batched_points"] >= n

    def test_scalar_mc_leaves_counters_alone(self):
        engine = SweepEngine()
        monte_carlo(self._run(), MODEL, range(4), engine=engine,
                    batch=False)
        assert engine.stats()["mc_batched_replicates"] == 0
        assert engine.stats()["mc_faulty_batched"] == 0

    def test_counters_survive_clear(self):
        engine = SweepEngine()
        monte_carlo(self._run(), MODEL, range(4), engine=engine,
                    batch=True)
        engine.clear()
        assert engine.stats()["mc_batched_replicates"] == 0
        assert engine.stats()["mc_faulty_batched"] == 0
