"""Batched / pooled Monte Carlo must equal the scalar replicate loop.

``monte_carlo(batch=True)`` vectorizes fault-free replicates through
the native core and ``jobs=N`` splits seed blocks across processes;
both are pure execution modes — every replicate record must compare
``==`` to the scalar ``replicate_from_point`` path, including
fault-carrying seeds that fall back to it row by row.
"""

import pytest

from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.pipefisher.runner import PipeFisherRun
from repro.stochastic import StochasticModel, monte_carlo
from repro.sweep import native
from repro.sweep.engine import SweepEngine

JITTER = StochasticModel(jitter_sigma=0.03)
STRAGGLER = StochasticModel(straggler_count=1, straggler_slowdown=1.1)
#: Moderate preemption: some seeds draw faults (scalar fallback rows),
#: some don't (native rows) — the mixed batch is the interesting case.
MIXED = StochasticModel(jitter_sigma=0.02, preemption_rate=0.3,
                        restart_delay_frac=0.05,
                        checkpoint_interval_frac=0.1)
FAULTY = StochasticModel(jitter_sigma=0.02, preemption_rate=1.0,
                         restart_delay_frac=0.05,
                         checkpoint_interval_frac=0.1)

SEEDS = range(24)


@pytest.fixture(scope="module")
def run():
    return PipeFisherRun(schedule="1f1b", arch=ARCHITECTURES["BERT-Base"],
                         hardware=HARDWARE["P100"], b_micro=32, depth=4,
                         n_micro=8, layers_per_stage=3)


def _scalar(run, model, seeds):
    return monte_carlo(run, model, seeds, engine=SweepEngine(),
                       batch=False).replicates


@pytest.mark.parametrize("model", [JITTER, STRAGGLER, MIXED, FAULTY],
                         ids=["jitter", "straggler", "mixed", "faulty"])
def test_batch_matches_scalar(run, model):
    ref = _scalar(run, model, SEEDS)
    got = monte_carlo(run, model, SEEDS, engine=SweepEngine(),
                      batch=True).replicates
    assert got == ref


def test_mixed_model_actually_mixes(run):
    """The MIXED fixture must exercise both the native rows and the
    scalar fault fallback within one batch."""
    reps = _scalar(run, MIXED, SEEDS)
    faulty = sum(1 for r in reps if r["n_restarts"] > 0)
    assert 0 < faulty < len(reps)


@pytest.mark.parametrize("model", [JITTER, MIXED],
                         ids=["jitter", "mixed"])
def test_pool_matches_scalar(run, model):
    ref = _scalar(run, model, SEEDS)
    got = monte_carlo(run, model, SEEDS, engine=SweepEngine(),
                      batch=True, jobs=2).replicates
    assert got == ref


def test_batch_without_native_matches(run, monkeypatch):
    monkeypatch.setenv(native.DISABLE_ENV, "1")
    assert not native.available()
    ref = _scalar(run, JITTER, range(6))
    got = monte_carlo(run, JITTER, range(6), engine=SweepEngine(),
                      batch=True).replicates
    assert got == ref
