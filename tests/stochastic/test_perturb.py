"""Perturbation sampling: the pinned determinism contract."""

import pytest

from repro.stochastic.model import StochasticModel
from repro.stochastic.perturb import (
    FAILURE_HORIZON_STEPS,
    replicate_rng,
    sample_perturbation,
)

JITTER = StochasticModel(jitter_sigma=0.05)
STRAGGLER = StochasticModel(straggler_count=1, straggler_slowdown=1.05)
FAULTY = StochasticModel(preemption_rate=1.0, restart_delay_frac=0.1,
                         checkpoint_interval_frac=0.2)


class TestStream:
    def test_same_seed_same_perturbation(self):
        a = sample_perturbation(FAULTY, 7, 4, 2.0)
        b = sample_perturbation(FAULTY, 7, 4, 2.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = sample_perturbation(JITTER, 0, 4, 1.0)
        b = sample_perturbation(JITTER, 1, 4, 1.0)
        assert a.device_factor != b.device_factor

    def test_stream_is_namespaced(self):
        # The raw stream must not collide with a bare Random(seed).
        import random

        assert replicate_rng(3).random() != random.Random(3).random()

    def test_straggler_choice_invariant_across_slowdown(self):
        # Common random numbers: changing the slowdown knob must not
        # change *which* device straggles under a given seed.
        mild = StochasticModel(straggler_count=1, straggler_slowdown=1.05)
        harsh = StochasticModel(straggler_count=1, straggler_slowdown=2.0)
        for seed in range(10):
            a = sample_perturbation(mild, seed, 8, 1.0).device_factor
            b = sample_perturbation(harsh, seed, 8, 1.0).device_factor
            assert [i for i, f in enumerate(a) if f != 1.0] == \
                   [i for i, f in enumerate(b) if f != 1.0]

    def test_identity_model_is_all_nominal(self):
        p = sample_perturbation(StochasticModel(), 5, 4, 1.0)
        assert p.device_factor == (1.0, 1.0, 1.0, 1.0)
        assert not p.has_faults
        assert p.faults() is None


class TestKnobs:
    def test_jitter_factors_positive(self):
        p = sample_perturbation(JITTER, 0, 16, 1.0)
        assert all(f > 0.0 for f in p.device_factor)
        assert any(f != 1.0 for f in p.device_factor)

    def test_straggler_count_capped_at_devices(self):
        m = StochasticModel(straggler_count=10, straggler_slowdown=1.5)
        p = sample_perturbation(m, 0, 4, 1.0)
        assert all(f == 1.5 for f in p.device_factor)

    def test_exactly_count_stragglers(self):
        m = StochasticModel(straggler_count=2, straggler_slowdown=1.5)
        p = sample_perturbation(m, 0, 8, 1.0)
        assert sum(1 for f in p.device_factor if f == 1.5) == 2

    def test_failure_times_ascending_within_horizon(self):
        p = sample_perturbation(FAULTY, 3, 4, 2.0)
        horizon = FAILURE_HORIZON_STEPS * 2.0
        assert p.has_faults
        for times in p.failure_times:
            assert list(times) == sorted(times)
            assert all(0.0 < t < horizon for t in times)

    def test_fault_scales_follow_time_unit(self):
        p = sample_perturbation(FAULTY, 3, 4, 2.0)
        assert p.restart_delay == pytest.approx(0.2)
        assert p.checkpoint_every == pytest.approx(0.4)

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError, match="num_devices"):
            sample_perturbation(JITTER, 0, 0, 1.0)
        with pytest.raises(ValueError, match="time_unit"):
            sample_perturbation(JITTER, 0, 4, 0.0)
