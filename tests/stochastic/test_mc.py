"""Monte Carlo replication through the shared sweep engine."""

import pytest

from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.pipefisher.runner import PipeFisherRun
from repro.stochastic import (
    METRICS,
    StochasticModel,
    monte_carlo,
    run_replicate,
)
from repro.sweep.engine import SweepEngine


@pytest.fixture(scope="module")
def engine():
    return SweepEngine()


@pytest.fixture(scope="module")
def run():
    return PipeFisherRun(schedule="1f1b", arch=ARCHITECTURES["BERT-Base"],
                         hardware=HARDWARE["P100"], b_micro=32, depth=4,
                         n_micro=8, layers_per_stage=3)


STRAGGLER = StochasticModel(straggler_count=1, straggler_slowdown=1.05)
FAULTY = StochasticModel(jitter_sigma=0.02, preemption_rate=1.0,
                         restart_delay_frac=0.05,
                         checkpoint_interval_frac=0.1)


class TestReplicate:
    def test_identity_model_reproduces_nominal(self, run, engine):
        r = run_replicate(run, StochasticModel(), 0, engine=engine)
        assert r["span"] == r["nominal_span"]
        assert r["pf_span"] == r["nominal_pf_span"]
        assert r["span_degradation"] == 1.0
        assert r["n_restarts"] == 0

    def test_same_seed_bit_identical(self, run, engine):
        a = run_replicate(run, FAULTY, 3, engine=engine)
        b = run_replicate(run, FAULTY, 3, engine=engine)
        assert a == b

    def test_fresh_engine_bit_identical(self, run, engine):
        a = run_replicate(run, STRAGGLER, 1, engine=engine)
        b = run_replicate(run, STRAGGLER, 1, engine=SweepEngine())
        assert a == b

    def test_straggler_never_speeds_up(self, run, engine):
        for seed in range(5):
            r = run_replicate(run, STRAGGLER, seed, engine=engine)
            assert r["span"] >= r["nominal_span"]
            assert r["span_degradation"] >= 1.0

    def test_faulty_replicate_records_restart_costs(self, run, engine):
        rows = [run_replicate(run, FAULTY, s, engine=engine)
                for s in range(5)]
        assert any(r["n_restarts"] > 0 for r in rows)
        for r in rows:
            if r["n_restarts"] == 0:
                assert r["downtime_s"] == 0.0 and r["lost_work_s"] == 0.0
            else:
                assert r["downtime_s"] >= 0.0
                assert r["lost_work_s"] >= 0.0

    def test_replicate_values_are_json_scalars(self, run, engine):
        r = run_replicate(run, FAULTY, 0, engine=engine)
        assert all(isinstance(v, (int, float)) for v in r.values())

    def test_bubble_and_utilization_in_range(self, run, engine):
        r = run_replicate(run, STRAGGLER, 2, engine=engine)
        assert 0.0 <= r["bubble_fraction"] < 1.0
        assert 0.0 < r["utilization"] <= 1.0


class TestMonteCarlo:
    def test_replicates_match_single_runs(self, run, engine):
        mc = monte_carlo(run, STRAGGLER, range(4), engine=engine)
        assert mc.seeds == (0, 1, 2, 3)
        for seed, rep in zip(mc.seeds, mc.replicates):
            assert rep == run_replicate(run, STRAGGLER, seed, engine=engine)

    def test_summaries_cover_all_metrics(self, run, engine):
        mc = monte_carlo(run, STRAGGLER, range(4), engine=engine)
        summaries = mc.summaries()
        assert set(summaries) == set(METRICS)
        for s in summaries.values():
            assert s.n == 4
            assert s.ci95_lo <= s.mean <= s.ci95_hi
            assert s.lo <= s.p5 <= s.p50 <= s.p95 <= s.hi

    def test_degradation_summary_is_anchored_at_nominal(self, run, engine):
        mc = monte_carlo(run, STRAGGLER, range(6), engine=engine)
        s = mc.summary("span_degradation")
        assert s.lo >= 1.0
