"""StochasticModel: validation, round-trip, canonical keying."""

import pytest

from repro.stochastic.model import StochasticModel


class TestValidation:
    def test_defaults_are_identity(self):
        m = StochasticModel()
        assert m.is_identity
        assert not m.has_faults

    def test_straggler_only_at_unit_slowdown_is_identity(self):
        assert StochasticModel(straggler_count=2).is_identity
        assert not StochasticModel(
            straggler_count=2, straggler_slowdown=1.05).is_identity

    def test_preemption_means_faults(self):
        assert StochasticModel(preemption_rate=0.5).has_faults

    @pytest.mark.parametrize("field", [
        "jitter_sigma", "preemption_rate", "restart_delay_frac",
        "checkpoint_interval_frac",
    ])
    def test_negative_fractions_rejected(self, field):
        with pytest.raises(ValueError, match=">= 0"):
            StochasticModel(**{field: -0.1})

    def test_nonpositive_slowdown_rejected(self):
        with pytest.raises(ValueError, match="straggler_slowdown"):
            StochasticModel(straggler_slowdown=0.0)

    def test_fractional_straggler_count_rejected(self):
        with pytest.raises(ValueError, match="straggler_count"):
            StochasticModel(straggler_count=1.5)

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            StochasticModel(straggler_count=True)
        with pytest.raises(ValueError):
            StochasticModel(jitter_sigma=True)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            StochasticModel(jitter_sigma=float("inf"))


class TestSerialization:
    def test_json_round_trip(self):
        m = StochasticModel(jitter_sigma=0.02, straggler_count=1,
                            straggler_slowdown=1.05, preemption_rate=0.5,
                            restart_delay_frac=0.1,
                            checkpoint_interval_frac=0.25)
        assert StochasticModel.from_json(m.to_json()) == m

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            StochasticModel.from_dict({"jitter": 0.1})

    def test_int_float_normalization_gives_same_key(self):
        # 2 and 2.0 must address the same campaign unit.
        a = StochasticModel(straggler_slowdown=2)
        b = StochasticModel(straggler_slowdown=2.0)
        assert a == b
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_distinguishes_models(self):
        keys = {
            StochasticModel().canonical_key(),
            StochasticModel(jitter_sigma=0.01).canonical_key(),
            StochasticModel(straggler_count=1,
                            straggler_slowdown=1.05).canonical_key(),
        }
        assert len(keys) == 3
        for k in keys:
            assert len(k) == 16

    def test_from_params_pops_model_fields_only(self):
        params = {"schedule": "1f1b", "depth": 4, "jitter_sigma": 0.02,
                  "straggler_count": 1, "straggler_slowdown": 1.05}
        m = StochasticModel.from_params(params)
        assert m.jitter_sigma == 0.02
        assert m.straggler_count == 1
        assert params == {"schedule": "1f1b", "depth": 4}

    def test_as_params_from_params_round_trip(self):
        m = StochasticModel(preemption_rate=1.0, restart_delay_frac=0.05)
        assert StochasticModel.from_params(dict(m.as_params())) == m
