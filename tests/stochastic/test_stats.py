"""Replicate reduction: percentile interpolation and Summary fields."""

import pytest

from repro.stochastic.stats import Summary, percentile, summarize


class TestPercentile:
    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0

    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.std == pytest.approx((5.0 / 3.0) ** 0.5)
        assert (s.lo, s.hi) == (1.0, 4.0)
        assert s.p50 == 2.5
        assert s.ci95_lo < s.mean < s.ci95_hi

    def test_order_invariant_value_sensitive_fold(self):
        # Same multiset, same order => bit-identical summary.
        assert summarize([3.0, 1.0, 2.0]) == summarize([3.0, 1.0, 2.0])

    def test_single_replicate_collapses(self):
        s = summarize([5.0])
        assert s == Summary(n=1, mean=5.0, std=0.0, lo=5.0, hi=5.0,
                            p5=5.0, p50=5.0, p95=5.0,
                            ci95_lo=5.0, ci95_hi=5.0)

    def test_as_list_matches_field_order(self):
        s = summarize([1.0, 3.0])
        assert s.as_list() == [s.n, s.mean, s.std, s.lo, s.hi,
                               s.p5, s.p50, s.p95, s.ci95_lo, s.ci95_hi]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
