"""Timeline data structure: intervals, windows, overlap detection."""

import pytest

from repro.profiler import Timeline, TimelineEvent


def ev(device, kind, start, end, label=""):
    return TimelineEvent(device, kind, start, end, label)


class TestBasics:
    def test_add_and_span(self):
        tl = Timeline(2)
        tl.add(ev(0, "forward", 1.0, 2.0))
        tl.add(ev(1, "backward", 0.5, 3.0))
        assert tl.span == (0.5, 3.0)

    def test_empty_span(self):
        assert Timeline(1).span == (0.0, 0.0)

    def test_device_range_check(self):
        tl = Timeline(2)
        with pytest.raises(ValueError):
            tl.add(ev(2, "forward", 0, 1))

    def test_reversed_interval_rejected(self):
        tl = Timeline(1)
        with pytest.raises(ValueError):
            tl.add(ev(0, "forward", 2.0, 1.0))

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            Timeline(0)

    def test_event_duration_and_shift(self):
        e = ev(0, "forward", 1.0, 2.5)
        assert e.duration == pytest.approx(1.5)
        s = e.shifted(10.0)
        assert (s.start, s.end) == (11.0, 12.5)

    def test_shifted_does_not_share_meta(self):
        """Tiled replicas must not alias one mutable meta dict: mutating
        one shifted copy's meta used to silently edit every replica."""
        e = TimelineEvent(0, "forward", 0.0, 1.0, meta={"stage": 1})
        a, b = e.shifted(1.0), e.shifted(2.0)
        a.meta["stage"] = 99
        assert b.meta["stage"] == 1
        assert e.meta["stage"] == 1


class TestQueries:
    def make(self):
        tl = Timeline(2)
        tl.extend([
            ev(0, "forward", 0.0, 1.0),
            ev(0, "backward", 2.0, 4.0),
            ev(0, "overhead", 4.0, 5.0),
            ev(1, "forward", 1.0, 2.0),
        ])
        return tl

    def test_device_events_sorted(self):
        tl = Timeline(1)
        tl.add(ev(0, "backward", 2.0, 3.0))
        tl.add(ev(0, "forward", 0.0, 1.0))
        starts = [e.start for e in tl.device_events(0)]
        assert starts == [0.0, 2.0]

    def test_kind_filter(self):
        tl = self.make()
        evs = tl.device_events(0, kinds={"forward"})
        assert len(evs) == 1

    def test_busy_intervals_merge_adjacent(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 1.0))
        tl.add(ev(0, "forward", 1.0, 2.0))
        assert tl.busy_intervals(0) == [(0.0, 2.0)]

    def test_idle_intervals(self):
        tl = self.make()
        idle = tl.idle_intervals(0, (0.0, 5.0), kinds={"forward", "backward"})
        assert idle == [(1.0, 2.0), (4.0, 5.0)]

    def test_idle_min_duration_filter(self):
        tl = self.make()
        idle = tl.idle_intervals(0, (0.0, 5.0), kinds={"forward", "backward"},
                                 min_duration=1.5)
        assert idle == []

    def test_idle_fully_idle_device(self):
        tl = Timeline(2)
        tl.add(ev(0, "forward", 0.0, 1.0))
        assert tl.idle_intervals(1, (0.0, 1.0)) == [(0.0, 1.0)]

    def test_window_clips_events(self):
        tl = self.make()
        sub = tl.window(0.5, 2.5)
        evs = sub.device_events(0)
        assert evs[0].start == 0.5
        assert evs[-1].end == 2.5

    def test_verify_no_overlap_passes(self):
        self.make().verify_no_overlap()

    def test_verify_no_overlap_detects(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 2.0))
        tl.add(ev(0, "backward", 1.0, 3.0))
        with pytest.raises(AssertionError):
            tl.verify_no_overlap()


class TestIdleEdgeCases:
    """Boundary contract the cached interval index must honor."""

    def test_event_straddling_window_start(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", -1.0, 1.0))
        assert tl.idle_intervals(0, (0.0, 3.0)) == [(1.0, 3.0)]

    def test_event_straddling_window_end(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 2.0, 5.0))
        assert tl.idle_intervals(0, (0.0, 3.0)) == [(0.0, 2.0)]

    def test_event_covering_whole_window(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", -1.0, 4.0))
        assert tl.idle_intervals(0, (0.0, 3.0)) == []

    def test_event_ending_exactly_at_window_start(self):
        """An event with end == w0 is outside the window."""
        tl = Timeline(1)
        tl.add(ev(0, "forward", -1.0, 0.0))
        assert tl.idle_intervals(0, (0.0, 2.0)) == [(0.0, 2.0)]

    def test_zero_length_event_splits_idle(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 2.0, 2.0))
        assert tl.idle_intervals(0, (0.0, 4.0)) == [(0.0, 2.0), (2.0, 4.0)]
        assert tl.busy_intervals(0) == [(2.0, 2.0)]

    def test_fully_busy_window(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 2.0))
        tl.add(ev(0, "backward", 2.0, 4.0))
        assert tl.idle_intervals(0, (0.0, 4.0)) == []

    def test_min_duration_is_strict(self):
        """An idle gap exactly min_duration long is filtered out."""
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 1.0))
        tl.add(ev(0, "forward", 2.0, 3.0))
        assert tl.idle_intervals(0, (0.0, 3.0), min_duration=1.0) == []
        assert tl.idle_intervals(0, (0.0, 3.0), min_duration=0.5) == [(1.0, 2.0)]

    def test_many_intervals_before_window(self):
        """The bisection must skip busy intervals entirely before w0."""
        tl = Timeline(1)
        for k in range(10):
            tl.add(ev(0, "forward", float(k), k + 0.5))
        assert tl.idle_intervals(0, (8.6, 9.0)) == [(8.6, 9.0)]
        assert tl.idle_intervals(0, (7.0, 8.25)) == [(7.5, 8.0)]


class TestCacheInvalidation:
    """Queries must reflect mutations made after a cache was built."""

    def test_add_after_query_updates_results(self):
        tl = Timeline(2)
        tl.add(ev(0, "forward", 0.0, 1.0))
        assert tl.busy_intervals(0) == [(0.0, 1.0)]
        assert tl.idle_intervals(0, (0.0, 3.0)) == [(1.0, 3.0)]
        tl.add(ev(0, "backward", 2.0, 3.0))
        assert tl.busy_intervals(0) == [(0.0, 1.0), (2.0, 3.0)]
        assert tl.idle_intervals(0, (0.0, 3.0)) == [(1.0, 2.0)]
        assert [e.kind for e in tl.device_events(0)] == ["forward", "backward"]

    def test_mutating_one_device_keeps_other_queries_fresh(self):
        tl = Timeline(2)
        tl.add(ev(0, "forward", 0.0, 1.0))
        tl.add(ev(1, "forward", 0.0, 2.0))
        assert tl.busy_intervals(1) == [(0.0, 2.0)]
        tl.add(ev(1, "backward", 3.0, 4.0))
        assert tl.busy_intervals(0) == [(0.0, 1.0)]
        assert tl.busy_intervals(1) == [(0.0, 2.0), (3.0, 4.0)]

    def test_returned_lists_are_copies(self):
        """Callers mutating a query result must not corrupt the cache."""
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 1.0))
        tl.device_events(0).clear()
        tl.busy_intervals(0).clear()
        assert len(tl.device_events(0)) == 1
        assert tl.busy_intervals(0) == [(0.0, 1.0)]

    def test_span_tracks_additions(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 1.0, 2.0))
        assert tl.span == (1.0, 2.0)
        tl.add(ev(0, "forward", -1.0, 0.5))
        assert tl.span == (-1.0, 2.0)

    def test_out_of_range_device_queries_are_empty(self):
        tl = Timeline(2)
        tl.add(ev(0, "forward", 0.0, 1.0))
        assert tl.device_events(5) == []
        assert tl.busy_intervals(5) == []
        assert tl.idle_intervals(5, (0.0, 1.0)) == [(0.0, 1.0)]
