"""GPU-utilization metric and ASCII rendering."""

import pytest

from repro.profiler import (
    COLOR_DENSITY,
    Timeline,
    TimelineEvent,
    colored_time,
    render_timeline,
    utilization,
)


def ev(device, kind, start, end):
    return TimelineEvent(device, kind, start, end)


class TestUtilization:
    def test_fully_busy_dense_work(self):
        tl = Timeline(1)
        tl.add(ev(0, "curvature", 0.0, 10.0))  # density 1.0
        assert utilization(tl) == pytest.approx(1.0)

    def test_forward_density_applied(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 10.0))
        assert utilization(tl) == pytest.approx(COLOR_DENSITY["forward"])

    def test_overhead_uncolored(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 5.0))
        tl.add(ev(0, "overhead", 5.0, 10.0))
        assert utilization(tl) == pytest.approx(COLOR_DENSITY["forward"] / 2)

    def test_multi_device_average(self):
        tl = Timeline(2)
        tl.add(ev(0, "curvature", 0.0, 10.0))
        # Device 1 idle.
        assert utilization(tl, window=(0.0, 10.0)) == pytest.approx(0.5)

    def test_window_restricts(self):
        tl = Timeline(1)
        tl.add(ev(0, "inversion", 0.0, 5.0))
        assert utilization(tl, window=(0.0, 10.0)) == pytest.approx(0.5)

    def test_empty_window_raises(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 1.0))
        with pytest.raises(ValueError):
            utilization(tl, window=(1.0, 1.0))

    def test_custom_density(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 4.0))
        assert utilization(tl, density={"forward": 0.5}) == pytest.approx(0.5)

    def test_colored_time_sums_devices(self):
        tl = Timeline(2)
        tl.add(ev(0, "curvature", 0.0, 2.0))
        tl.add(ev(1, "curvature", 0.0, 3.0))
        assert colored_time(tl) == pytest.approx(5.0)


class TestAsciiRendering:
    def make(self):
        tl = Timeline(2)
        tl.add(ev(0, "forward", 0.0, 5.0))
        tl.add(ev(0, "backward", 5.0, 10.0))
        tl.add(ev(1, "curvature", 2.0, 8.0))
        return tl

    def test_glyphs_present(self):
        art = render_timeline(self.make(), width=20)
        assert "F" in art and "B" in art and "c" in art

    def test_row_per_device(self):
        art = render_timeline(self.make(), width=20, show_legend=False)
        assert len(art.splitlines()) == 2
        assert art.splitlines()[0].startswith("GPU  1 |")

    def test_width_respected(self):
        art = render_timeline(self.make(), width=30, show_legend=False)
        for line in art.splitlines():
            assert len(line) == 30 + len("GPU  1 |")

    def test_idle_shown_as_dots(self):
        tl = Timeline(1)
        tl.add(ev(0, "forward", 0.0, 1.0))
        tl.add(ev(0, "forward", 9.0, 10.0))
        art = render_timeline(tl, width=20, show_legend=False)
        assert "." in art

    def test_legend_toggle(self):
        assert "legend:" in render_timeline(self.make(), width=10)
        assert "legend:" not in render_timeline(self.make(), width=10,
                                                show_legend=False)

    def test_empty_timeline(self):
        assert render_timeline(Timeline(1)) == "(empty timeline)"
