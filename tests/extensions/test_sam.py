"""SAM wrapper and its bubble work (paper §5)."""

import numpy as np
import pytest

from repro.extensions import SAM, build_sam_queues
from repro.nn.module import Parameter
from repro.optim import SGD
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import GPipeSchedule, PipelineConfig


def quadratic_loss_grad(p: Parameter, eigs: np.ndarray) -> float:
    p.grad = (eigs * p.data).astype(np.float32)
    return 0.5 * float(np.sum(eigs * p.data**2))


class TestSAMOptimizer:
    def test_two_phase_protocol(self):
        p = Parameter(np.array([1.0, 1.0], dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1), rho=0.05)
        eigs = np.array([1.0, 4.0])
        quadratic_loss_grad(p, eigs)
        original = p.data.copy()
        sam.first_step()
        # Perturbed along the gradient direction by rho.
        assert float(np.linalg.norm(p.data - original)) == pytest.approx(
            0.05, rel=1e-4
        )
        quadratic_loss_grad(p, eigs)
        sam.second_step()
        # Restored, then stepped: not equal to the perturbed point.
        assert not np.allclose(p.data, original)

    def test_second_without_first_raises(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1))
        with pytest.raises(RuntimeError):
            sam.second_step()

    def test_invalid_rho(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        with pytest.raises(ValueError):
            SAM([p], SGD([p], lr=0.1), rho=0.0)

    def test_converges_on_quadratic(self):
        p = Parameter(np.full(4, 3.0, dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.2), rho=0.01)
        eigs = np.ones(4)
        for _ in range(60):
            sam.zero_grad()
            quadratic_loss_grad(p, eigs)
            sam.first_step()
            quadratic_loss_grad(p, eigs)
            sam.second_step()
        assert float(np.abs(p.data).max()) < 0.05

    def test_sharpness_sensitivity(self):
        """SAM's effective gradient on a quadratic with curvature c is
        c * (x + rho * c * x / ||c x||): the *sharper* the direction, the
        larger the extra push relative to SGD — the mechanism that steers
        SAM toward flat minima."""
        eigs = np.array([25.0, 1.0])  # sharp and flat directions
        x0 = np.array([1.0, 1.0], dtype=np.float32)

        p = Parameter(x0.copy())
        sam = SAM([p], SGD([p], lr=0.1), rho=0.5)
        quadratic_loss_grad(p, eigs)
        sam.first_step()
        quadratic_loss_grad(p, eigs)
        sam.second_step()
        sam_step = x0 - p.data

        p2 = Parameter(x0.copy())
        sgd = SGD([p2], lr=0.1)
        quadratic_loss_grad(p2, eigs)
        sgd.step()
        sgd_step = x0 - p2.data

        boost = sam_step / sgd_step  # per-direction amplification
        assert boost[0] > boost[1] > 1.0  # sharp direction boosted more

    def test_lr_proxy(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        sam = SAM([p], SGD([p], lr=0.1))
        sam.lr = 0.5
        assert sam.inner.lr == 0.5 and sam.lr == 0.5


class TestSAMBubbleWork:
    def _builder(self):
        block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.2, t_curv_b=0.2,
                          t_inv=0.6, t_prec=0.05)
        costs = StageCosts(block=block, layers_per_stage=1, t_overhead=0.5,
                           kernel_density=1.0)
        cfg = PipelineConfig(depth=4, n_micro=4, costs=costs, precondition=True)
        return GPipeSchedule(cfg), costs

    def test_twice_the_work(self):
        """§5: SAM 'contains twice the work of regular SGD'."""
        b, costs = self._builder()
        queues = build_sam_queues(b, costs)
        per_device = queues[0].total_duration
        base_work = b.config.n_micro * (costs.t_fwd + costs.t_bwd)
        assert per_device == pytest.approx(base_work)

    def test_extra_backward_follows_extra_forward(self):
        b, costs = self._builder()
        q = build_sam_queues(b, costs)[0]
        by_id = q.by_id()
        for item in q.items:
            if item.kind == "inversion":  # the extra backward
                dep = by_id[item.trigger[1][0]]
                assert dep.kind == "curvature"
                assert dep.micro_batch == item.micro_batch

    def test_fills_bubbles_and_raises_refresh(self):
        """SAM's doubled work mostly fits: the potential to 'double the
        accelerator utilization'."""
        from repro.pipefisher import BubbleFiller
        from repro.pipeline import simulate_tasks
        from repro.profiler import Timeline, utilization

        b, costs = self._builder()
        template = simulate_tasks(b.build(), b.num_devices)
        queues = build_sam_queues(b, costs)
        result = BubbleFiller(template, queues).fill()
        span = template.makespan
        combined = Timeline(b.num_devices)
        for k in range(result.refresh_steps):
            combined.extend([e.shifted(k * span)
                             for e in template.timeline.events])
        combined.extend(result.events())
        base_util = utilization(template.timeline, (0.0, span))
        sam_util = utilization(combined, (0.0, result.refresh_steps * span))
        assert sam_util > base_util * 1.4
