"""Shampoo optimizer and its bubble-work inventory (paper §5)."""

import numpy as np
import pytest

from repro.extensions import Shampoo, build_shampoo_queues
from repro.extensions.shampoo import EIG_OVER_CHOLESKY, matrix_inverse_root
from repro.nn.module import Parameter
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import GPipeSchedule, PipelineConfig


class TestMatrixInverseRoot:
    def test_identity(self):
        out = matrix_inverse_root(np.eye(3, dtype=np.float32), 4, 0.0)
        np.testing.assert_allclose(out, np.eye(3), atol=1e-5)

    def test_diagonal_known_value(self):
        m = np.diag([16.0, 1.0]).astype(np.float32)
        out = matrix_inverse_root(m, 4, 0.0)
        np.testing.assert_allclose(np.diag(out), [0.5, 1.0], rtol=1e-5)

    def test_root_two_is_inverse_sqrt(self):
        m = np.diag([4.0]).astype(np.float32)
        assert matrix_inverse_root(m, 2, 0.0)[0, 0] == pytest.approx(0.5)

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            matrix_inverse_root(np.eye(2), 0, 0.0)

    def test_degenerate_matrix_damped(self):
        out = matrix_inverse_root(np.zeros((3, 3), dtype=np.float32), 4, 1.0)
        assert np.isfinite(out).all()


class TestShampooOptimizer:
    def test_converges_on_quadratic(self):
        p = Parameter(np.full((3, 4), 5.0, dtype=np.float32))
        opt = Shampoo([p], lr=0.5)
        for _ in range(80):
            p.grad = p.data.copy()
            opt.step()
        assert float(np.abs(p.data).max()) < 1.0

    def test_vector_params_adagrad_path(self):
        p = Parameter(np.full(4, 5.0, dtype=np.float32))
        opt = Shampoo([p], lr=0.5, momentum=0.0)
        for _ in range(60):
            p.grad = p.data.copy()
            opt.step()
        assert float(np.abs(p.data).max()) < 2.0

    def test_update_interval_amortizes_roots(self):
        p = Parameter(np.ones((2, 2), dtype=np.float32))
        opt = Shampoo([p], lr=0.1, update_interval=5)
        p.grad = np.ones((2, 2), dtype=np.float32)
        opt.step()
        root_after_first = opt.state[0]["L_root"].copy()
        for _ in range(3):
            p.grad = np.ones((2, 2), dtype=np.float32)
            opt.step()
        # Roots unchanged between refreshes (L itself keeps accumulating).
        np.testing.assert_array_equal(opt.state[0]["L_root"], root_after_first)

    def test_preconditioner_equalizes_scales(self):
        """Shampoo shrinks high-variance directions relative to plain SGD."""
        rng = np.random.default_rng(0)
        p = Parameter(np.zeros((2, 2), dtype=np.float32))
        opt = Shampoo([p], lr=1.0, momentum=0.0)
        for _ in range(50):
            g = rng.standard_normal((2, 2)).astype(np.float32)
            g[0] *= 100.0  # row 0 has huge gradients
            p.grad = g
            opt.step()
        # Updates in both rows end up comparable (within ~101x raw scale gap).
        assert float(np.abs(p.data[0]).mean()) < 10 * float(np.abs(p.data[1]).mean())

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Shampoo([Parameter(np.zeros(1))], update_interval=0)


class TestShampooBubbleWork:
    def _builder(self):
        block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.2, t_curv_b=0.2,
                          t_inv=0.6, t_prec=0.05)
        costs = StageCosts(block=block, layers_per_stage=2, t_overhead=0.5,
                           kernel_density=1.0)
        cfg = PipelineConfig(depth=4, n_micro=4, costs=costs, precondition=True)
        return GPipeSchedule(cfg), costs

    def test_inventory_counts(self):
        b, costs = self._builder()
        queues = build_shampoo_queues(b, costs)
        q = queues[0]
        stats = [i for i in q.items if i.kind == "curvature"]
        eigs = [i for i in q.items if i.kind == "inversion"]
        assert len(stats) == 4 * 2 * 2  # micro-batches * layers * {L, R}
        assert len(eigs) == 2 * 2

    def test_eig_items_cost_more_than_cholesky(self):
        b, costs = self._builder()
        q = build_shampoo_queues(b, costs)[0]
        eig = next(i for i in q.items if i.kind == "inversion")
        assert eig.duration == pytest.approx(
            costs.block.t_inv / 2 * EIG_OVER_CHOLESKY
        )

    def test_statistics_wait_for_backward(self):
        b, costs = self._builder()
        q = build_shampoo_queues(b, costs)[0]
        for item in q.items:
            if item.kind == "curvature":
                assert item.trigger[0] == "backward"

    def test_assignable_into_bubbles(self):
        """The paper's §5 point: eig work must be split to fit bubbles."""
        from repro.pipefisher import BubbleFiller
        from repro.pipeline import simulate_tasks

        b, costs = self._builder()
        template = simulate_tasks(b.build(), b.num_devices)
        queues = build_shampoo_queues(b, costs)
        result = BubbleFiller(template, queues).fill()
        assert result.refresh_steps >= 1
        eig_items = [i for q in queues.values() for i in q.items
                     if i.kind == "inversion"]
        assert all(i.assigned for i in eig_items)
        # At least one eigendecomposition had to split across bubbles.
        assert any(len(i.segments) > 1 for i in eig_items)
