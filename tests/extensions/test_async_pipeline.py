"""Asynchronous pipeline (Appendix C.1): throughput vs staleness."""

import numpy as np
import pytest

from repro.extensions import AsyncOneFOneBSchedule, stale_gradient_descent
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import OneFOneBSchedule, PipelineConfig, simulate_tasks
from repro.profiler import utilization


def config(overhead=0.0):
    block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    costs = StageCosts(block=block, layers_per_stage=1, t_overhead=overhead,
                       kernel_density=1.0)
    return PipelineConfig(depth=4, n_micro=4, costs=costs)


class TestAsyncSchedule:
    def test_steady_state_faster_than_sync(self):
        """Without the flush, k steps take far less than k * sync-span."""
        steps = 6
        sync = OneFOneBSchedule(config())
        sync_res = simulate_tasks(sync.build(steps=steps), sync.num_devices)
        async_b = AsyncOneFOneBSchedule(config())
        async_res = simulate_tasks(async_b.build(steps=steps), async_b.num_devices)
        assert async_res.makespan < 0.85 * sync_res.makespan

    def test_bubbles_nearly_eliminated(self):
        """'Pipeline bubbles are almost non-existent in asynchronous
        pipelines' — steady-state utilization approaches 100%."""
        async_b = AsyncOneFOneBSchedule(config())
        res = simulate_tasks(async_b.build(steps=8), async_b.num_devices)
        # Measure utilization over the steady-state middle.
        t0, t1 = res.makespan * 0.3, res.makespan * 0.8
        u = utilization(res.timeline, (t0, t1))
        assert u > 0.85

    def test_weight_version_dependency(self):
        """Step k+1's forward of (m, s) waits for step k's backward of
        (m, s) — the PipeDream weight-version rule."""
        async_b = AsyncOneFOneBSchedule(config())
        res = simulate_tasks(async_b.build(steps=3), async_b.num_devices)
        for k in (1, 2):
            for m in range(4):
                for s in range(4):
                    f = res.start_times[f"F.{k}.0.{m}.{s}"]
                    b = res.end_times[f"B.{k - 1}.0.{m}.{s}"]
                    assert f >= b - 1e-9

    def test_sync_semantics_unchanged_for_one_step(self):
        sync = OneFOneBSchedule(config())
        asyn = AsyncOneFOneBSchedule(config())
        s1 = simulate_tasks(sync.build(steps=1), sync.num_devices)
        a1 = simulate_tasks(asyn.build(steps=1), asyn.num_devices)
        # One async step has no flush/overhead tail, otherwise same span.
        assert a1.makespan <= s1.makespan


class TestStaleGradients:
    def test_fresh_converges(self):
        losses = stale_gradient_descent(staleness=0)
        assert losses[-1] < 1e-2 * losses[0]

    def test_moderate_staleness_slower(self):
        fresh = stale_gradient_descent(staleness=0, steps=120)
        stale = stale_gradient_descent(staleness=6, steps=120)
        # Compare area under the loss curve: staleness delays progress.
        assert stale.sum() > fresh.sum()

    def test_large_staleness_diverges(self):
        """The convergence cost async pipelines pay (why the paper fills
        bubbles with K-FAC work instead)."""
        losses = stale_gradient_descent(staleness=16)
        assert losses[-1] > losses[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            stale_gradient_descent(staleness=-1)
