"""Linear (with K-FAC capture), LayerNorm, Embedding, Dropout, activations."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, GELU, LayerNorm, Linear, ReLU, Tanh
from repro.nn.activations import get_activation
from repro.tensor import Tensor


class TestLinear:
    def test_forward_matches_numpy(self):
        lin = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((4, 3)).astype(np.float32)
        y = lin(Tensor(x)).numpy()
        np.testing.assert_allclose(
            y, x @ lin.weight.data.T + lin.bias.data, rtol=1e-5
        )

    def test_no_bias(self):
        lin = Linear(3, 2, bias=False)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_3d_input(self):
        lin = Linear(4, 5)
        y = lin(Tensor(np.zeros((2, 3, 4), dtype=np.float32)))
        assert y.shape == (2, 3, 5)

    def test_kfac_capture_disabled_by_default(self):
        lin = Linear(3, 2)
        lin(Tensor(np.ones((2, 3), dtype=np.float32)))
        assert lin.captured_inputs == []

    def test_kfac_capture_inputs_and_grads(self):
        lin = Linear(3, 2, rng=np.random.default_rng(0))
        lin.kfac_capture = True
        x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        lin(x).sum().backward()
        inputs, grads = lin.kfac_pop()
        assert len(inputs) == 1 and inputs[0].shape == (4, 3)
        assert len(grads) == 1 and grads[0].shape == (4, 2)
        np.testing.assert_allclose(grads[0], np.ones((4, 2)))

    def test_kfac_capture_flattens_batch_dims(self):
        lin = Linear(3, 2)
        lin.kfac_capture = True
        x = Tensor(np.ones((2, 5, 3), dtype=np.float32), requires_grad=True)
        lin(x).sum().backward()
        inputs, grads = lin.kfac_pop()
        assert inputs[0].shape == (10, 3)
        assert grads[0].shape == (10, 2)

    def test_kfac_pop_clears(self):
        lin = Linear(3, 2)
        lin.kfac_capture = True
        x = Tensor(np.ones((1, 3), dtype=np.float32), requires_grad=True)
        lin(x).sum().backward()
        lin.kfac_pop()
        assert lin.captured_inputs == [] and lin.captured_output_grads == []

    def test_capture_accumulates_micro_batches(self):
        lin = Linear(3, 2)
        lin.kfac_capture = True
        for _ in range(3):
            x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
            lin(x).sum().backward()
        inputs, grads = lin.kfac_pop()
        assert len(inputs) == 3 and len(grads) == 3

    def test_kfac_clear_reuses_lists(self):
        """Discarding captures must clear in place, not rebuild the lists."""
        lin = Linear(3, 2)
        lin.kfac_capture = True
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        lin(x).sum().backward()
        inputs_list = lin.captured_inputs
        grads_list = lin.captured_output_grads
        lin.kfac_clear()
        assert lin.captured_inputs is inputs_list
        assert lin.captured_output_grads is grads_list
        assert inputs_list == [] and grads_list == []


class TestLayerNorm:
    def test_params(self):
        ln = LayerNorm(8)
        np.testing.assert_array_equal(ln.weight.data, np.ones(8))
        np.testing.assert_array_equal(ln.bias.data, np.zeros(8))

    def test_output_normalized(self):
        ln = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 16)).astype(np.float32) * 4)
        y = ln(x).numpy()
        np.testing.assert_allclose(y.mean(-1), 0, atol=1e-5)

    def test_learnable(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 4)).astype(np.float32))
        ln(x).sum().backward()
        assert ln.weight.grad is not None and ln.bias.grad is not None


class TestEmbedding:
    def test_shapes(self):
        emb = Embedding(10, 4)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_flows_to_table(self):
        emb = Embedding(5, 3)
        emb(np.array([0, 1])).sum().backward()
        assert emb.weight.grad is not None


class TestDropout:
    def test_train_vs_eval(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones(1000, dtype=np.float32))
        assert (d(x).numpy() == 0).sum() > 300
        d.eval()
        np.testing.assert_array_equal(d(x).numpy(), x.numpy())

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(-0.1)
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestActivations:
    def test_modules_match_functional(self):
        x = Tensor(np.array([-1.0, 0.5], dtype=np.float32))
        assert GELU()(x).shape == (2,)
        np.testing.assert_allclose(ReLU()(x).numpy(), [0.0, 0.5])
        np.testing.assert_allclose(Tanh()(x).numpy(), np.tanh([-1.0, 0.5]), rtol=1e-6)

    def test_get_activation(self):
        assert isinstance(get_activation("gelu"), GELU)
        assert isinstance(get_activation("relu"), ReLU)
        with pytest.raises(ValueError):
            get_activation("swish")
