"""MLM and NSP losses."""

import numpy as np
import pytest

from repro.nn.losses import IGNORE_INDEX, masked_lm_loss, next_sentence_loss
from repro.tensor import Tensor


class TestMaskedLMLoss:
    def test_only_masked_positions_count(self):
        b, s, v = 2, 4, 8
        logits = Tensor(np.zeros((b, s, v), dtype=np.float32), requires_grad=True)
        labels = np.full((b, s), IGNORE_INDEX)
        labels[0, 1] = 3
        loss = masked_lm_loss(logits, labels)
        assert loss.item() == pytest.approx(np.log(v), rel=1e-5)
        loss.backward()
        grads = logits.grad.reshape(b, s, v)
        assert not np.allclose(grads[0, 1], 0)
        np.testing.assert_allclose(grads[0, 0], np.zeros(v))
        np.testing.assert_allclose(grads[1], np.zeros((s, v)))

    def test_perfect_prediction(self):
        logits = np.full((1, 2, 4), -30.0, dtype=np.float32)
        logits[0, 0, 2] = 30.0
        labels = np.array([[2, IGNORE_INDEX]])
        assert masked_lm_loss(Tensor(logits), labels).item() == pytest.approx(0.0, abs=1e-5)


class TestNextSentenceLoss:
    def test_binary_uniform(self):
        logits = Tensor(np.zeros((4, 2), dtype=np.float32))
        loss = next_sentence_loss(logits, np.array([0, 1, 0, 1]))
        assert loss.item() == pytest.approx(np.log(2), rel=1e-5)

    def test_confident_correct(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        loss = next_sentence_loss(Tensor(logits), np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_confident_wrong_is_expensive(self):
        logits = np.array([[10.0, -10.0]], dtype=np.float32)
        loss = next_sentence_loss(Tensor(logits), np.array([1]))
        assert loss.item() > 5.0
