"""Module/Parameter registration, traversal, modes, and state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter
from repro.tensor import Tensor


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_named_parameters_paths(self):
        names = dict(Net().named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names

    def test_parameter_count(self):
        net = Net()
        assert net.num_parameters() == (4 * 3 + 3) + (3 * 2 + 2) + 1

    def test_reassignment_replaces(self):
        net = Net()
        net.fc1 = Linear(4, 3, rng=np.random.default_rng(2))
        assert len(list(net.parameters())) == 5

    def test_parameter_replaced_by_module(self):
        net = Net()
        net.scale = Linear(1, 1)
        assert "scale.weight" in dict(net.named_parameters())
        assert "scale" not in dict(net.named_parameters())

    def test_named_modules(self):
        mods = dict(Net().named_modules())
        assert "fc1" in mods and "fc2" in mods
        assert "" in mods  # the root

    def test_children(self):
        assert len(list(Net().children())) == 2


class TestModes:
    def test_train_eval_propagates(self):
        net = Net()
        net.eval()
        assert not net.training
        assert not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_zero_grad(self):
        net = Net()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        net(x).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_roundtrip(self):
        a, b = Net(), Net()
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((1, 4), dtype=np.float32))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_copies(self):
        net = Net()
        sd = net.state_dict()
        sd["fc1.weight"][:] = 0
        assert not np.allclose(net.fc1.weight.data, 0)

    def test_missing_key_raises(self):
        net = Net()
        sd = net.state_dict()
        del sd["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(sd)

    def test_unexpected_key_raises(self):
        net = Net()
        sd = net.state_dict()
        sd["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        net = Net()
        sd = net.state_dict()
        sd["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            net.load_state_dict(sd)


class TestModuleList:
    def test_iteration_and_len(self):
        ml = ModuleList(Linear(2, 2) for _ in range(3))
        assert len(ml) == 3
        assert len(list(ml)) == 3

    def test_params_registered(self):
        ml = ModuleList([Linear(2, 2, bias=False)])
        assert len(list(ml.parameters())) == 1

    def test_indexing_and_slicing(self):
        ml = ModuleList(Linear(2, 2) for _ in range(4))
        assert isinstance(ml[1], Linear)
        assert len(ml[1:3]) == 2

    def test_forward_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(1)
