"""Multi-head self-attention: shapes, masking, causality, gradients."""

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention
from repro.tensor import Tensor


def make_attn(d=8, h=2, causal=False, dropout=0.0):
    return MultiHeadSelfAttention(
        d, h, dropout=dropout, causal=causal, rng=np.random.default_rng(0)
    )


def x_input(b=2, s=5, d=8, seed=1):
    return Tensor(
        np.random.default_rng(seed).standard_normal((b, s, d)).astype(np.float32),
        requires_grad=True,
    )


class TestShapes:
    def test_output_shape(self):
        assert make_attn()(x_input()).shape == (2, 5, 8)

    def test_head_divisibility_check(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_single_head(self):
        attn = MultiHeadSelfAttention(8, 1, dropout=0.0, rng=np.random.default_rng(0))
        assert attn(x_input()).shape == (2, 5, 8)

    def test_gradients_reach_all_projections(self):
        attn = make_attn()
        attn(x_input()).sum().backward()
        for proj in (attn.query, attn.key, attn.value, attn.output):
            assert proj.weight.grad is not None


class TestMasking:
    def test_padding_mask_blocks_keys(self):
        """Masked key positions must not influence the output."""
        attn = make_attn()
        x = x_input()
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]])
        base = attn(x, attention_mask=mask).numpy()
        # Perturb the masked positions of example 0: output rows of the
        # unmasked positions must be unchanged.
        x2 = Tensor(x.numpy().copy())
        x2.data[0, 3:] += 100.0
        pert = attn(x2, attention_mask=mask).numpy()
        np.testing.assert_allclose(base[0, :3], pert[0, :3], atol=1e-4)
        # The fully-unmasked example is sensitive to its own perturbation.
        x3 = Tensor(x.numpy().copy())
        x3.data[1, 3:] += 100.0
        pert2 = attn(x3, attention_mask=mask).numpy()
        assert not np.allclose(base[1, :3], pert2[1, :3], atol=1e-3)

    def test_causal_mask_blocks_future(self):
        attn = make_attn(causal=True)
        x = x_input()
        base = attn(x).numpy()
        x2 = Tensor(x.numpy().copy())
        x2.data[:, -1, :] += 50.0  # perturb only the last position
        pert = attn(x2).numpy()
        # Earlier positions cannot see the future token.
        np.testing.assert_allclose(base[:, :-1], pert[:, :-1], atol=1e-4)

    def test_no_mask_equals_all_ones_mask(self):
        """The maskless fast path (no bias tensor at all) must match an
        explicit all-ones mask bit for bit."""
        attn = make_attn()
        x = x_input()
        mask = np.ones((2, 5), dtype=np.int64)
        np.testing.assert_array_equal(
            attn(x).numpy(), attn(x, attention_mask=mask).numpy()
        )

    def test_causal_without_mask_matches_causal_with_all_ones(self):
        attn = make_attn(causal=True)
        x = x_input()
        mask = np.ones((2, 5), dtype=np.int64)
        np.testing.assert_allclose(
            attn(x).numpy(), attn(x, attention_mask=mask).numpy(),
            atol=1e-6,
        )

    def test_non_causal_sees_everything(self):
        attn = make_attn(causal=False)
        x = x_input()
        base = attn(x).numpy()
        x2 = Tensor(x.numpy().copy())
        x2.data[:, -1, :] += 50.0
        pert = attn(x2).numpy()
        assert not np.allclose(base[:, 0], pert[:, 0], atol=1e-3)


class TestNumerics:
    def test_deterministic_without_dropout(self):
        attn = make_attn()
        x = x_input()
        np.testing.assert_array_equal(attn(x).numpy(), attn(x).numpy())

    def test_finite_with_extreme_inputs(self):
        attn = make_attn()
        x = Tensor(np.full((1, 4, 8), 50.0, dtype=np.float32))
        assert np.isfinite(attn(x).numpy()).all()
