"""BertLayer / T5Block / OPTDecoderLayer forward-backward behaviour."""

import numpy as np
import pytest

from repro.nn import BertLayer, FeedForward, OPTDecoderLayer, T5Block
from repro.nn.linear import Linear
from repro.tensor import Tensor

D, H, FF = 16, 4, 32


def x_input(b=2, s=6, seed=0):
    return Tensor(
        np.random.default_rng(seed).standard_normal((b, s, D)).astype(np.float32),
        requires_grad=True,
    )


@pytest.fixture(params=[BertLayer, T5Block, OPTDecoderLayer])
def block(request):
    return request.param(D, H, FF, dropout=0.0, rng=np.random.default_rng(0))


class TestBlocks:
    def test_shape_preserved(self, block):
        assert block(x_input()).shape == (2, 6, D)

    def test_gradients_flow_to_every_param(self, block):
        block(x_input()).sum().backward()
        missing = [n for n, p in block.named_parameters() if p.grad is None]
        assert missing == []

    def test_six_linear_layers_per_block(self, block):
        """Table 3 block inventory: q, k, v, o, ff-in, ff-out."""
        linears = [m for m in block.modules() if isinstance(m, Linear)]
        assert len(linears) == 6

    def test_attention_mask_accepted(self, block):
        mask = np.ones((2, 6), dtype=np.int64)
        mask[:, -2:] = 0
        out = block(x_input(), attention_mask=mask)
        assert np.isfinite(out.numpy()).all()

    def test_deterministic_eval(self, block):
        block.eval()
        x = x_input()
        np.testing.assert_array_equal(block(x).numpy(), block(x).numpy())


class TestBlockSpecifics:
    def test_opt_block_is_causal(self):
        assert OPTDecoderLayer(D, H, FF, rng=np.random.default_rng(0)).attention.causal

    def test_bert_block_not_causal(self):
        assert not BertLayer(D, H, FF, rng=np.random.default_rng(0)).attention.causal

    def test_t5_uses_relu(self):
        from repro.nn.activations import ReLU

        assert isinstance(T5Block(D, H, FF, rng=np.random.default_rng(0)).ffn.act, ReLU)

    def test_bert_uses_gelu(self):
        from repro.nn.activations import GELU

        assert isinstance(BertLayer(D, H, FF, rng=np.random.default_rng(0)).ffn.act, GELU)

    def test_residual_connection_bert(self):
        """Zeroing attention+FFN weights must reduce to (normalized) input."""
        block = BertLayer(D, H, FF, dropout=0.0, rng=np.random.default_rng(0))
        for _, p in block.attention.output.named_parameters():
            p.data = np.zeros_like(p.data)
        for _, p in block.ffn.dense_out.named_parameters():
            p.data = np.zeros_like(p.data)
        x = x_input()
        out = block(x).numpy()
        # With zero sublayer outputs the block is LayerNorm(LayerNorm(x)):
        # row means ~0 under default affine params.
        np.testing.assert_allclose(out.mean(-1), 0, atol=1e-4)


class TestFeedForward:
    def test_shapes(self):
        ff = FeedForward(D, FF, dropout=0.0, rng=np.random.default_rng(0))
        assert ff(x_input()).shape == (2, 6, D)

    def test_activation_choice(self):
        with pytest.raises(ValueError):
            FeedForward(D, FF, activation="nope")
