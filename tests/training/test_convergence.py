"""Convergence metrics: smoothing (Fig. 7 caption) and steps-to-target."""

import numpy as np
import pytest

from repro.training import (
    LossCurve,
    simulated_minutes,
    smooth_loss,
    steps_to_target,
    time_to_target,
)


class TestSmoothing:
    def test_preserves_length(self):
        y = np.linspace(10, 3, 500)
        assert smooth_loss(y).shape == y.shape

    def test_reduces_noise(self):
        rng = np.random.default_rng(0)
        y = np.linspace(10, 3, 500) + rng.standard_normal(500)
        s = smooth_loss(y)
        assert np.std(np.diff(s)) < np.std(np.diff(y)) / 3

    def test_short_signal_passthrough(self):
        y = np.array([3.0, 2.0, 1.0])
        np.testing.assert_array_equal(smooth_loss(y), y)

    def test_zero_phase_no_lag(self):
        """filtfilt is zero phase: the knee position must not shift much."""
        y = np.concatenate([np.full(200, 10.0), np.full(200, 2.0)])
        s = smooth_loss(y)
        knee = int(np.argmin(np.abs(s - 6.0)))
        assert abs(knee - 200) < 20


class TestStepsToTarget:
    def test_basic_crossing(self):
        y = np.linspace(10, 0, 101)  # hits 5.0 at index 50
        s = steps_to_target(y, 5.0, smooth=False)
        assert s == 51

    def test_never_reached(self):
        assert steps_to_target(np.full(50, 9.0), 1.0, smooth=False) is None

    def test_skip_initial_ignores_early_dip(self):
        y = np.concatenate([[0.1], np.full(99, 8.0)])
        assert steps_to_target(y, 5.0, smooth=False) == 1
        assert steps_to_target(y, 5.0, smooth=False, skip_initial=10) is None

    def test_one_based_indexing(self):
        y = np.array([1.0, 9.0, 9.0])
        assert steps_to_target(y, 2.0, smooth=False) == 1


class TestLossCurve:
    def test_final_losses(self):
        y = np.linspace(8, 3, 400)
        c = LossCurve("x", y)
        assert c.final_loss == pytest.approx(3.0, abs=0.1)
        assert c.raw_final_loss == pytest.approx(y[-1])

    def test_minutes_to(self):
        y = np.linspace(8, 3, 400)
        c = LossCurve("x", y, time_per_step_s=60.0)
        m = c.minutes_to(5.0)
        assert m == pytest.approx(c.steps_to(5.0) * 1.0)

    def test_minutes_requires_step_time(self):
        with pytest.raises(ValueError):
            LossCurve("x", np.zeros(10)).minutes_to(1.0)


class TestWallclock:
    def test_simulated_minutes(self):
        # The paper's own arithmetic: 7038 steps x 847.8 ms = 99.4 min.
        assert simulated_minutes(7038, 0.8478) == pytest.approx(99.4, abs=0.1)

    def test_table2_arithmetic(self):
        assert simulated_minutes(7038, 2.3456) == pytest.approx(275.1, abs=0.2)
        assert simulated_minutes(5000, 2.4995) == pytest.approx(208.3, abs=0.2)

    def test_time_to_target(self):
        assert time_to_target(2961, 0.9802) == pytest.approx(48.4, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulated_minutes(-1, 1.0)
