"""Training loop: descent, accumulation, schedule integration."""

import numpy as np
import pytest

from repro.kfac import KFAC
from repro.models import BertConfig, BertForPreTraining
from repro.optim import NVLAMB, SGD, PolyWarmupSchedule
from repro.training import TrainConfig, Trainer


@pytest.fixture
def setup(tiny_loader):
    cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                          max_position_embeddings=32)
    model = BertForPreTraining(cfg)
    return model, tiny_loader


class TestTrainStep:
    def test_records_state(self, setup):
        model, data = setup
        tr = Trainer(model, SGD(model.parameters(), lr=0.01), data,
                     config=TrainConfig(batch_size=4))
        tr.train(3)
        assert tr.state.step == 3
        assert len(tr.state.losses) == 3
        assert len(tr.state.lrs) == 3

    def test_loss_decreases_short_run(self, setup):
        model, data = setup
        opt = NVLAMB(model.parameters(), lr=0.02)
        tr = Trainer(model, opt, data, config=TrainConfig(batch_size=8))
        tr.train(20)
        first = np.mean(tr.losses[:4])
        last = np.mean(tr.losses[-4:])
        assert last < first

    def test_schedule_drives_lr(self, setup):
        model, data = setup
        opt = SGD(model.parameters(), lr=123.0)
        sched = PolyWarmupSchedule(1.0, warmup_steps=4, total_steps=10,
                                   optimizer=opt)
        tr = Trainer(model, opt, data, schedule=sched,
                     config=TrainConfig(batch_size=2))
        tr.train(2)
        assert tr.state.lrs == [pytest.approx(0.25), pytest.approx(0.5)]

    def test_kfac_stepper_supported(self, setup):
        model, data = setup
        inner = NVLAMB(model.parameters(), lr=0.01)
        kfac = KFAC(model.encoder_linear_layers(), inner, damping=0.03)
        tr = Trainer(model, kfac, data, config=TrainConfig(batch_size=4))
        tr.train(2)
        assert all(s.ready for _, s in kfac.layers)

    def test_kfac_losses_match_seed_loop_implementation(self):
        """Fixed-seed smoke run: the batched K-FAC kernels leave
        Trainer.train_step's loss trajectory unchanged vs the seed
        per-layer / per-micro-batch loops (float32 tolerance, documented
        in tests/kfac/test_batched_equivalence.py)."""
        from repro.data.corpus import CorpusConfig
        from repro.data.dataloader import PretrainDataLoader
        from repro.kfac.factors import compute_factor_from_rows

        class SeedLoopKFAC(KFAC):
            """Seed orchestration: per-layer loops, fp64 accumulation."""

            def update_curvature(self):
                for layer, state in self.layers:
                    inputs, grads = layer.kfac_pop()
                    scale = float(sum(g.shape[0] for g in grads))
                    for factor, batches, bias in (
                        (state.a_factor, inputs, state.include_bias),
                        (state.b_factor,
                         [g * np.float32(scale) for g in grads], False),
                    ):
                        total = sum(b.shape[0] for b in batches)
                        acc = np.zeros((factor.dim, factor.dim), np.float64)
                        for b in batches:
                            acc += compute_factor_from_rows(
                                b, include_bias=bias) * (b.shape[0] / total)
                        factor.update(acc.astype(np.float32))

            def update_inverses(self):
                for _, state in self.layers:
                    state.update_inverses(self.damping, use_pi=self.use_pi)

            def precondition(self):
                for layer, state in self.layers:
                    if not state.ready or layer.weight.grad is None:
                        continue
                    bias_grad = layer.bias.grad if layer.bias is not None else None
                    w_nat, b_nat = state.precondition(layer.weight.grad, bias_grad)
                    layer.weight.grad = w_nat
                    if layer.bias is not None and b_nat is not None:
                        layer.bias.grad = b_nat

        def run(kfac_cls):
            loader = PretrainDataLoader(
                vocab_size=200, seq_len=32, num_documents=60,
                corpus_config=CorpusConfig(seed=3, num_word_types=400), seed=3,
            )
            cfg = BertConfig.tiny(vocab_size=200, max_position_embeddings=32)
            model = BertForPreTraining(cfg)
            inner = SGD(model.parameters(), lr=0.05)
            kfac = kfac_cls(model.encoder_linear_layers(), inner,
                            damping=0.03, curvature_interval=2)
            tr = Trainer(model, kfac, loader, config=TrainConfig(batch_size=4))
            tr.train(4)
            return tr.losses

        np.testing.assert_allclose(run(KFAC), run(SeedLoopKFAC),
                                   rtol=1e-3, atol=1e-5)

    def test_grad_accumulation_equivalent(self, tiny_loader):
        """accum=2 with batch B/2 ~ accum=1 with batch B (same loss scale)."""
        losses = {}
        for accum, bs in ((1, 8), (2, 4)):
            cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                                  max_position_embeddings=32, seed=0)
            model = BertForPreTraining(cfg)
            tr = Trainer(model, SGD(model.parameters(), lr=0.0), tiny_loader,
                         config=TrainConfig(batch_size=bs, grad_accumulation=accum))
            tr.train_step()
            # Zero LR: compare the accumulated gradient magnitudes.
            g = model.embeddings.word_embeddings.weight.grad
            losses[accum] = float(np.abs(g).mean())
        # Same order of magnitude (different random batches, same scaling).
        assert losses[1] == pytest.approx(losses[2], rel=1.0)

    def test_clipping_applied(self, setup):
        model, data = setup
        from repro.optim import global_grad_norm

        tr = Trainer(model, SGD(model.parameters(), lr=0.0), data,
                     config=TrainConfig(batch_size=4, clip_norm=1e-6))
        tr.train_step()
        assert global_grad_norm(list(model.parameters())) <= 1.1e-6
