"""Training loop: descent, accumulation, schedule integration."""

import numpy as np
import pytest

from repro.kfac import KFAC
from repro.models import BertConfig, BertForPreTraining
from repro.optim import NVLAMB, SGD, PolyWarmupSchedule
from repro.training import TrainConfig, Trainer


@pytest.fixture
def setup(tiny_loader):
    cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                          max_position_embeddings=32)
    model = BertForPreTraining(cfg)
    return model, tiny_loader


class TestTrainStep:
    def test_records_state(self, setup):
        model, data = setup
        tr = Trainer(model, SGD(model.parameters(), lr=0.01), data,
                     config=TrainConfig(batch_size=4))
        tr.train(3)
        assert tr.state.step == 3
        assert len(tr.state.losses) == 3
        assert len(tr.state.lrs) == 3

    def test_loss_decreases_short_run(self, setup):
        model, data = setup
        opt = NVLAMB(model.parameters(), lr=0.02)
        tr = Trainer(model, opt, data, config=TrainConfig(batch_size=8))
        tr.train(20)
        first = np.mean(tr.losses[:4])
        last = np.mean(tr.losses[-4:])
        assert last < first

    def test_schedule_drives_lr(self, setup):
        model, data = setup
        opt = SGD(model.parameters(), lr=123.0)
        sched = PolyWarmupSchedule(1.0, warmup_steps=4, total_steps=10,
                                   optimizer=opt)
        tr = Trainer(model, opt, data, schedule=sched,
                     config=TrainConfig(batch_size=2))
        tr.train(2)
        assert tr.state.lrs == [pytest.approx(0.25), pytest.approx(0.5)]

    def test_kfac_stepper_supported(self, setup):
        model, data = setup
        inner = NVLAMB(model.parameters(), lr=0.01)
        kfac = KFAC(model.encoder_linear_layers(), inner, damping=0.03)
        tr = Trainer(model, kfac, data, config=TrainConfig(batch_size=4))
        tr.train(2)
        assert all(s.ready for _, s in kfac.layers)

    def test_grad_accumulation_equivalent(self, tiny_loader):
        """accum=2 with batch B/2 ~ accum=1 with batch B (same loss scale)."""
        losses = {}
        for accum, bs in ((1, 8), (2, 4)):
            cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                                  max_position_embeddings=32, seed=0)
            model = BertForPreTraining(cfg)
            tr = Trainer(model, SGD(model.parameters(), lr=0.0), tiny_loader,
                         config=TrainConfig(batch_size=bs, grad_accumulation=accum))
            tr.train_step()
            # Zero LR: compare the accumulated gradient magnitudes.
            g = model.embeddings.word_embeddings.weight.grad
            losses[accum] = float(np.abs(g).mean())
        # Same order of magnitude (different random batches, same scaling).
        assert losses[1] == pytest.approx(losses[2], rel=1.0)

    def test_clipping_applied(self, setup):
        model, data = setup
        from repro.optim import global_grad_norm

        tr = Trainer(model, SGD(model.parameters(), lr=0.0), data,
                     config=TrainConfig(batch_size=4, clip_norm=1e-6))
        tr.train_step()
        assert global_grad_norm(list(model.parameters())) <= 1.1e-6
