"""CLI reproduction runner."""

import pytest

from repro.cli import EXPERIMENTS, FAST, main


class TestCLI:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9-10", "table2", "table3", "interleaved", "zb", "schedule",
            "robustness",
        }

    def test_fast_excludes_training(self):
        assert "fig7" not in FAST
        assert "fig3" in FAST

    def test_zb_runs(self, capsys):
        assert main(["zb"]) == 0
        out = capsys.readouterr().out
        assert "ZB-H1" in out and "1f1b bub" in out

    def test_schedule_choices_come_from_registry(self, capsys):
        """--schedule accepts exactly the registered schedule names."""
        from repro.pipeline.spec import schedule_names

        for name in schedule_names():
            assert main(["schedule", "--schedule", name]) == 0
            out = capsys.readouterr().out
            assert f"schedule {name}" in out
        with pytest.raises(SystemExit):
            main(["schedule", "--schedule", "pipedream"])

    def test_table3_runs(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "BERT-Base" in out and "matches paper Table 3: True" in out

    def test_fig8_runs(self, capsys):
        assert main(["fig8"]) == 0
        assert "crossover" in capsys.readouterr().out

    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "gpipe_baseline" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
