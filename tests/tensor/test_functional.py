"""Functional ops: values, numerical properties, and edge cases."""

import numpy as np
import pytest

from repro.nn.losses import IGNORE_INDEX
from repro.tensor import Tensor, functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)).astype(np.float32))
        s = F.softmax(x).numpy()
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), rtol=1e-5)
        assert np.all(s >= 0)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).standard_normal((3, 5)).astype(np.float32)
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_large_values_stable(self):
        s = F.softmax(Tensor(np.array([[1e4, 0.0]], dtype=np.float32))).numpy()
        assert np.isfinite(s).all()
        assert s[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).standard_normal((2, 6)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy()), atol=1e-5
        )

    def test_softmax_grad_zero_for_uniform_upstream(self):
        # d/dx softmax with constant upstream gradient is zero.
        x = Tensor(np.random.default_rng(3).standard_normal((2, 5)).astype(np.float32),
                   requires_grad=True)
        F.softmax(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros((2, 5)), atol=1e-6)


class TestActivations:
    def test_relu_values(self):
        y = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(y.numpy(), [0.0, 0.0, 2.0])

    def test_relu_grad_mask(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_gelu_known_values(self):
        y = F.gelu(Tensor([0.0])).numpy()
        assert y[0] == pytest.approx(0.0, abs=1e-6)
        # gelu(1) ~ 0.8412 (tanh approximation)
        assert F.gelu(Tensor([1.0])).numpy()[0] == pytest.approx(0.8412, abs=1e-3)

    def test_gelu_asymptotes(self):
        assert F.gelu(Tensor([10.0])).numpy()[0] == pytest.approx(10.0, rel=1e-4)
        assert F.gelu(Tensor([-10.0])).numpy()[0] == pytest.approx(0.0, abs=1e-4)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32) * 5 + 3)
        w = Tensor(np.ones(8, dtype=np.float32))
        b = Tensor(np.zeros(8, dtype=np.float32))
        y = F.layer_norm(x, w, b).numpy()
        np.testing.assert_allclose(y.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(y.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_params_applied(self):
        x = Tensor(np.random.default_rng(1).standard_normal((2, 4)).astype(np.float32))
        w = Tensor(np.full(4, 2.0, dtype=np.float32))
        b = Tensor(np.full(4, 1.0, dtype=np.float32))
        y = F.layer_norm(x, w, b).numpy()
        np.testing.assert_allclose(y.mean(axis=-1), np.ones(2), atol=1e-4)

    def test_constant_input_stable(self):
        x = Tensor(np.full((2, 4), 7.0, dtype=np.float32))
        w = Tensor(np.ones(4, dtype=np.float32))
        b = Tensor(np.zeros(4, dtype=np.float32))
        y = F.layer_norm(x, w, b).numpy()
        assert np.isfinite(y).all()
        np.testing.assert_allclose(y, np.zeros((2, 4)), atol=1e-3)


class TestEmbedding:
    def test_lookup(self):
        table = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = F.embedding(table, np.array([[0, 2], [3, 3]]))
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.numpy()[0, 1], [6, 7, 8])

    def test_scatter_add_grad(self):
        table = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        F.embedding(table, np.array([1, 1, 3])).sum().backward()
        np.testing.assert_allclose(table.grad[1], [2.0, 2.0])  # id 1 used twice
        np.testing.assert_allclose(table.grad[3], [1.0, 1.0])
        np.testing.assert_allclose(table.grad[0], [0.0, 0.0])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100, dtype=np.float32))
        y = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert y is x

    def test_zero_p_identity(self):
        x = Tensor(np.ones(10, dtype=np.float32))
        assert F.dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_scaling_preserves_mean(self):
        x = Tensor(np.ones(200_000, dtype=np.float32))
        y = F.dropout(x, 0.3, np.random.default_rng(0)).numpy()
        assert float(y.mean()) == pytest.approx(1.0, abs=0.02)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, np.random.default_rng(0))

    def test_mask_consistent_in_backward(self):
        x = Tensor(np.ones(1000, dtype=np.float32), requires_grad=True)
        y = F.dropout(x, 0.5, np.random.default_rng(0))
        y.sum().backward()
        # Gradient is zero exactly where the output was zeroed.
        np.testing.assert_array_equal(x.grad == 0, y.numpy() == 0)


class TestWhere:
    def test_select(self):
        cond = np.array([True, False])
        y = F.where(cond, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(y.numpy(), [1.0, 2.0])

    def test_grad_routing(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        F.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestConcatenate:
    def test_forward_backward(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        c = F.concatenate([a, b], axis=0)
        assert c.shape == (5, 2)
        c.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_c(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -100.0, dtype=np.float32)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_ignore_index_excluded(self):
        logits = Tensor(np.zeros((3, 5), dtype=np.float32))
        targets = np.array([1, IGNORE_INDEX, 2])
        loss = F.cross_entropy(logits, targets, ignore_index=IGNORE_INDEX)
        assert loss.item() == pytest.approx(np.log(5), rel=1e-5)

    def test_ignored_positions_zero_grad(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32), requires_grad=True)
        F.cross_entropy(logits, np.array([0, IGNORE_INDEX]),
                        ignore_index=IGNORE_INDEX).backward()
        np.testing.assert_allclose(logits.grad[1], np.zeros(4))
        assert not np.allclose(logits.grad[0], 0)

    def test_grad_sums_to_zero_per_row(self):
        logits = Tensor(
            np.random.default_rng(0).standard_normal((3, 6)).astype(np.float32),
            requires_grad=True,
        )
        F.cross_entropy(logits, np.array([0, 1, 2])).backward()
        np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(3), atol=1e-6)

    def test_sum_reduction(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=np.int64), reduction="sum")
        assert loss.item() == pytest.approx(4 * np.log(10), rel=1e-5)

    def test_bad_reduction_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((1, 2), dtype=np.float32)),
                            np.array([0]), reduction="prod")

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(4, dtype=np.float32)), np.array([0]))
