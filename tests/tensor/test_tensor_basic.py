"""Tensor construction, properties, and forward arithmetic."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_float64_downcast_to_float32(self):
        t = Tensor(np.arange(4, dtype=np.float64))
        assert t.dtype == np.float32

    def test_explicit_dtype_preserved(self):
        t = Tensor(np.arange(4, dtype=np.int64))
        assert t.dtype == np.int64

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros(2, 3).numpy() == 0)
        assert np.all(Tensor.ones(2, 3).numpy() == 1)
        assert Tensor.zeros(2, 3).shape == (2, 3)

    def test_randn_seeded(self):
        a = Tensor.randn(4, rng=np.random.default_rng(1))
        b = Tensor.randn(4, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.numpy(), b.numpy())

    def test_randn_scale(self):
        t = Tensor.randn(10_000, rng=np.random.default_rng(0), scale=0.01)
        assert float(np.std(t.numpy())) < 0.02

    def test_properties(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor(np.float32(2.5)).item() == pytest.approx(2.5)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad


class TestArithmetic:
    def test_add(self):
        c = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(c.numpy(), [4.0, 6.0])

    def test_add_scalar_and_radd(self):
        np.testing.assert_allclose((Tensor([1.0]) + 2).numpy(), [3.0])
        np.testing.assert_allclose((2 + Tensor([1.0])).numpy(), [3.0])

    def test_sub_rsub(self):
        np.testing.assert_allclose((Tensor([5.0]) - 2).numpy(), [3.0])
        np.testing.assert_allclose((2 - Tensor([5.0])).numpy(), [-3.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([3.0]) * Tensor([4.0])).numpy(), [12.0])
        np.testing.assert_allclose((Tensor([8.0]) / 2).numpy(), [4.0])
        np.testing.assert_allclose((8 / Tensor([2.0])).numpy(), [4.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).numpy(), [-2.0])
        np.testing.assert_allclose((Tensor([3.0]) ** 2).numpy(), [9.0])

    def test_pow_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])  # type: ignore[operator]

    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose((a @ b).numpy(), a.numpy() @ b.numpy())

    def test_matmul_batched(self):
        a = Tensor(np.random.default_rng(0).standard_normal((2, 5, 3, 4)).astype(np.float32))
        b = Tensor(np.random.default_rng(1).standard_normal((2, 5, 4, 6)).astype(np.float32))
        np.testing.assert_allclose((a @ b).numpy(), a.numpy() @ b.numpy(), rtol=1e-5)

    def test_broadcast_add(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32))
        b = Tensor(np.ones((3,), dtype=np.float32))
        assert (a + b).shape == (2, 3)

    def test_comparisons_return_arrays(self):
        m = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(m, np.ndarray)
        np.testing.assert_array_equal(m, [False, True])


class TestShapeOps:
    def test_reshape(self):
        t = Tensor(np.arange(6, dtype=np.float32))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.transpose().shape == (4, 3, 2)
        assert t.T.shape == (4, 3, 2)

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.transpose(0, 2, 1).shape == (2, 4, 3)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3), dtype=np.float32))
        assert t.swapaxes(0, 1).shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose(t[1].numpy(), [4, 5, 6, 7])
        np.testing.assert_allclose(t[:, 0].numpy(), [0, 4, 8])


class TestReductions:
    def test_sum_all(self):
        assert Tensor(np.ones((2, 3), dtype=np.float32)).sum().item() == 6.0

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32))
        assert t.sum(axis=1).shape == (2,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        t = Tensor(np.arange(4, dtype=np.float32))
        assert t.mean().item() == pytest.approx(1.5)
        assert Tensor(np.ones((2, 4), dtype=np.float32)).mean(axis=0).shape == (4,)

    def test_elementwise_math(self):
        t = Tensor([0.0, 1.0])
        np.testing.assert_allclose(t.exp().numpy(), np.exp([0.0, 1.0]), rtol=1e-6)
        np.testing.assert_allclose(Tensor([1.0, np.e]).log().numpy(), [0.0, 1.0], rtol=1e-5)
        np.testing.assert_allclose(Tensor([4.0]).sqrt().numpy(), [2.0])
        np.testing.assert_allclose(t.tanh().numpy(), np.tanh([0.0, 1.0]), rtol=1e-6)


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
