"""Backward-pass mechanics: accumulation, topology, broadcasting VJPs."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor.tensor import _unbroadcast, stack_tensors


class TestBackwardBasics:
    def test_scalar_backward(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_backward_requires_grad_error(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulation(self):
        # y = x*2; z = y + y  =>  dz/dx = 4.
        x = Tensor([1.0], requires_grad=True)
        y = x * 2
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_reused_leaf_in_two_branches(self):
        x = Tensor([3.0], requires_grad=True)
        ((x * x) + x).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])  # 2x + 1

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.1**50], rtol=1e-4)

    def test_non_grad_parent_skipped(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # no grad
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0])
        assert b.grad is None


class TestBroadcastVJP:
    def test_unbroadcast_prepend(self):
        g = np.ones((4, 3))
        np.testing.assert_allclose(_unbroadcast(g, (3,)), [4.0, 4.0, 4.0])

    def test_unbroadcast_singleton(self):
        g = np.ones((4, 3))
        np.testing.assert_allclose(_unbroadcast(g, (4, 1)), [[3.0]] * 4)

    def test_unbroadcast_identity(self):
        g = np.ones((2, 2))
        assert _unbroadcast(g, (2, 2)) is g

    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3,), dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_broadcast_grad(self):
        a = Tensor(np.full((2, 3), 2.0, dtype=np.float32), requires_grad=True)
        b = Tensor(np.full((1, 3), 3.0, dtype=np.float32), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))

    def test_matmul_vector_grad(self):
        a = Tensor(np.eye(3, dtype=np.float32), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(v.grad, [1.0, 1.0, 1.0])
        np.testing.assert_allclose(a.grad, np.tile([1.0, 2.0, 3.0], (3, 1)))


class TestShapeOpGrads:
    def test_reshape_grad(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_grad(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        x.transpose().sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.zeros((3, 2), dtype=np.float32), requires_grad=True)
        x[1].sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [1, 1], [0, 0]])

    def test_sum_axis_grad(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))


class TestHooks:
    def test_grad_hook_called_with_grad(self):
        captured = []
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.with_grad_hook(captured.append)
        (y * 3).sum().backward()
        assert len(captured) == 1
        np.testing.assert_allclose(captured[0], [3.0, 3.0])
        np.testing.assert_allclose(x.grad, [3.0, 3.0])

    def test_hook_identity_forward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.with_grad_hook(lambda g: None)
        np.testing.assert_array_equal(y.numpy(), x.numpy())


class TestStack:
    def test_stack_forward_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        s = stack_tensors([a, b])
        assert s.shape == (2, 2)
        s.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])
