"""Finite-difference validation of every op's hand-written VJP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, functional as F, gradcheck


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestArithmeticGrads:
    def test_add(self):
        gradcheck(lambda a, b: a + b, [t((3, 4)), t((3, 4), 1)])

    def test_add_broadcast(self):
        gradcheck(lambda a, b: a + b, [t((3, 4)), t((4,), 1)])

    def test_mul(self):
        gradcheck(lambda a, b: a * b, [t((2, 3)), t((2, 3), 1)])

    def test_mul_broadcast(self):
        gradcheck(lambda a, b: a * b, [t((2, 3)), t((1, 3), 1)])

    def test_div(self):
        b = t((2, 3), 1)
        b.data = b.data + 3.0  # keep away from zero
        gradcheck(lambda a, b: a / b, [t((2, 3)), b])

    def test_pow(self):
        x = t((3,), 2)
        x.data = np.abs(x.data) + 0.5
        gradcheck(lambda a: a**3, [x])

    def test_matmul(self):
        gradcheck(lambda a, b: a @ b, [t((3, 4)), t((4, 2), 1)])

    def test_matmul_batched(self):
        gradcheck(lambda a, b: a @ b, [t((2, 3, 4)), t((2, 4, 2), 1)])

    def test_matmul_vector(self):
        gradcheck(lambda a, b: a @ b, [t((3, 4)), t((4,), 1)])


class TestShapeGrads:
    def test_reshape(self):
        gradcheck(lambda a: a.reshape(6), [t((2, 3))])

    def test_transpose(self):
        gradcheck(lambda a: a.transpose(1, 0), [t((2, 3))])

    def test_swapaxes(self):
        gradcheck(lambda a: a.swapaxes(0, 2), [t((2, 3, 4))])

    def test_getitem(self):
        gradcheck(lambda a: a[1:3], [t((4, 2))])

    def test_sum_axis(self):
        gradcheck(lambda a: a.sum(axis=1), [t((3, 4))])

    def test_mean(self):
        gradcheck(lambda a: a.mean(axis=0, keepdims=True), [t((3, 4))])


class TestElementwiseGrads:
    def test_exp(self):
        gradcheck(lambda a: a.exp(), [t((3, 3), scale=0.5)])

    def test_log(self):
        x = t((4,), 1)
        x.data = np.abs(x.data) + 1.0
        gradcheck(lambda a: a.log(), [x])

    def test_sqrt(self):
        x = t((4,), 2)
        x.data = np.abs(x.data) + 1.0
        gradcheck(lambda a: a.sqrt(), [x])

    def test_tanh(self):
        gradcheck(lambda a: a.tanh(), [t((3, 3))])

    def test_relu(self):
        x = t((4, 4), 3)
        x.data = x.data + 0.1 * np.sign(x.data)  # avoid kink at 0
        gradcheck(F.relu, [x])

    def test_gelu(self):
        gradcheck(F.gelu, [t((3, 3), 4)])


class TestCompositeGrads:
    def test_softmax(self):
        # Use a non-uniform upstream weighting to exercise the Jacobian.
        w = np.random.default_rng(9).standard_normal((2, 5))
        gradcheck(lambda a: F.softmax(a) * Tensor(w), [t((2, 5), 5)])

    def test_log_softmax(self):
        w = np.random.default_rng(10).standard_normal((2, 5))
        gradcheck(lambda a: F.log_softmax(a) * Tensor(w), [t((2, 5), 6)])

    def test_layer_norm_all_params(self):
        x = t((3, 6), 7)
        w = Tensor(np.random.default_rng(8).standard_normal(6) + 1.0,
                   requires_grad=True)
        b = t((6,), 9)
        gradcheck(lambda x, w, b: F.layer_norm(x, w, b), [x, w, b])

    def test_embedding(self):
        table = t((5, 3), 11)
        ids = np.array([0, 2, 2, 4])
        gradcheck(lambda tab: F.embedding(tab, ids), [table])

    def test_cross_entropy(self):
        logits = t((4, 6), 12)
        targets = np.array([0, 5, 2, 3])
        gradcheck(lambda lg: F.cross_entropy(lg, targets), [logits])

    def test_cross_entropy_with_ignore(self):
        logits = t((4, 6), 13)
        targets = np.array([0, -100, 2, -100])
        gradcheck(lambda lg: F.cross_entropy(lg, targets, ignore_index=-100),
                  [logits])

    def test_where(self):
        cond = np.random.default_rng(14).random((3, 3)) > 0.5
        gradcheck(lambda a, b: F.where(cond, a, b), [t((3, 3), 15), t((3, 3), 16)])

    def test_concatenate(self):
        gradcheck(lambda a, b: F.concatenate([a, b], axis=1),
                  [t((2, 3), 17), t((2, 2), 18)])

    def test_two_layer_mlp(self):
        w1, w2 = t((4, 5), 19, 0.5), t((5, 2), 20, 0.5)
        x = t((3, 4), 21)
        gradcheck(lambda x, w1, w2: F.gelu(x @ w1) @ w2, [x, w1, w2])


class TestGradcheckUtility:
    def test_detects_wrong_gradient(self):
        from repro.tensor.tensor import Tensor as T

        def bad_op(x):
            # Forward = x * 2 but backward claims gradient 3.
            return T._make(x.data * 2, (x,), lambda g: (g * 3,))

        with pytest.raises(AssertionError):
            gradcheck(bad_op, [t((2, 2), 22)])


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 4),
    inner=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_matmul_grad_property(rows, inner, cols, seed):
    """Property: matmul VJP matches finite differences for any small shape."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal((rows, inner)), requires_grad=True)
    b = Tensor(rng.standard_normal((inner, cols)), requires_grad=True)
    gradcheck(lambda a, b: a @ b, [a, b])
