"""BertForPreTraining: structure, forward, loss, weight tying."""

import numpy as np
import pytest

from repro.models import BertConfig, BertForPreTraining
from tests.conftest import make_batch


class TestConfig:
    def test_base_preset(self):
        c = BertConfig.bert_base()
        assert (c.hidden_size, c.num_hidden_layers) == (768, 12)
        assert c.vocab_size == 30522

    def test_large_preset(self):
        c = BertConfig.bert_large()
        assert (c.hidden_size, c.num_hidden_layers, c.num_attention_heads,
                c.intermediate_size) == (1024, 24, 16, 4096)

    def test_tiny_overrides(self):
        c = BertConfig.tiny(vocab_size=99, num_hidden_layers=3)
        assert c.vocab_size == 99 and c.num_hidden_layers == 3


class TestForward:
    def test_output_shapes(self, tiny_model, rng):
        ids, _, _ = make_batch(rng)
        mlm, nsp = tiny_model(ids)
        assert mlm.shape == (4, 16, 128)
        assert nsp.shape == (4, 2)

    def test_attention_mask_and_segments(self, tiny_model, rng):
        ids, _, _ = make_batch(rng)
        mask = np.ones_like(ids)
        mask[:, -4:] = 0
        segs = np.zeros_like(ids)
        segs[:, 8:] = 1
        mlm, nsp = tiny_model(ids, token_type_ids=segs, attention_mask=mask)
        assert np.isfinite(mlm.numpy()).all()

    def test_loss_returns_metrics(self, tiny_model, rng):
        ids, mlm, nsp = make_batch(rng)
        loss, metrics = tiny_model.loss(ids, mlm, nsp)
        assert set(metrics) == {"loss", "mlm_loss", "nsp_loss"}
        assert metrics["loss"] == pytest.approx(
            metrics["mlm_loss"] + metrics["nsp_loss"], rel=1e-5
        )

    def test_initial_mlm_loss_near_uniform(self, tiny_model, rng):
        """Random init should predict ~uniformly: loss ~ ln(vocab)."""
        ids, mlm, nsp = make_batch(rng)
        _, metrics = tiny_model.loss(ids, mlm, nsp)
        assert abs(metrics["mlm_loss"] - np.log(128)) < 1.0


class TestWeightTying:
    def test_decoder_tied_to_embeddings(self, tiny_model):
        assert tiny_model.heads.decoder_weight is tiny_model.embeddings.word_embeddings.weight

    def test_tied_gradient_accumulates_both_paths(self, tiny_model, rng):
        ids, mlm, nsp = make_batch(rng)
        loss, _ = tiny_model.loss(ids, mlm, nsp)
        loss.backward()
        assert tiny_model.embeddings.word_embeddings.weight.grad is not None

    def test_tied_weight_counted_once(self, tiny_model):
        names = [n for n, _ in tiny_model.named_parameters()]
        assert len(names) == len(set(names))


class TestKFACLayerSelection:
    def test_all_linears_listed(self, tiny_model):
        from repro.nn.linear import Linear

        layers = tiny_model.encoder_linear_layers()
        assert all(isinstance(m, Linear) for _, m in layers)
        # 2 blocks * 6 + pooler + MLM transform + NSP head = 15.
        assert len(layers) == 2 * 6 + 3

    def test_vocab_head_not_a_linear(self, tiny_model):
        """The tied vocab projection must not appear (paper §4 exclusion)."""
        for name, m in tiny_model.encoder_linear_layers():
            assert m.out_features != tiny_model.config.vocab_size


class TestTrainability:
    def test_loss_decreases_with_sgd(self, tiny_model, rng):
        from repro.optim import SGD

        opt = SGD(tiny_model.parameters(), lr=0.1, momentum=0.9)
        ids, mlm, nsp = make_batch(rng, batch=8)
        losses = []
        for _ in range(8):
            opt.zero_grad()
            loss, _ = tiny_model.loss(ids, mlm, nsp)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] - 0.5  # overfits a fixed batch
