"""Stage partitioning properties."""

import pytest
from hypothesis import given, strategies as st

from repro.models import partition_layers


class TestPartition:
    def test_even_split(self):
        p = partition_layers(12, 4)
        assert p.layers_per_stage == (3, 3, 3, 3)
        assert p.stage_layers[0] == (0, 1, 2)
        assert p.stage_layers[3] == (9, 10, 11)

    def test_uneven_split_front_loaded(self):
        p = partition_layers(10, 4)
        assert p.layers_per_stage == (3, 3, 2, 2)

    def test_single_stage(self):
        p = partition_layers(5, 1)
        assert p.stage_layers == ((0, 1, 2, 3, 4),)

    def test_stage_of_layer(self):
        p = partition_layers(12, 4)
        assert p.stage_of_layer(0) == 0
        assert p.stage_of_layer(11) == 3
        with pytest.raises(IndexError):
            p.stage_of_layer(12)

    def test_too_many_stages(self):
        with pytest.raises(ValueError):
            partition_layers(3, 4)

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            partition_layers(4, 0)


@given(layers=st.integers(1, 64), stages=st.integers(1, 16))
def test_partition_properties(layers, stages):
    """Every layer appears exactly once, in order, balanced within 1."""
    if stages > layers:
        with pytest.raises(ValueError):
            partition_layers(layers, stages)
        return
    p = partition_layers(layers, stages)
    flat = [l for s in p.stage_layers for l in s]
    assert flat == list(range(layers))
    sizes = p.layers_per_stage
    assert max(sizes) - min(sizes) <= 1
    assert len(p.stage_layers) == stages
