"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.corpus import CorpusConfig
from repro.data.dataloader import PretrainDataLoader
from repro.models.bert import BertConfig, BertForPreTraining
from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.perfmodel.hardware import P100


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_config() -> BertConfig:
    return BertConfig.tiny(vocab_size=128, max_position_embeddings=32)


@pytest.fixture
def tiny_model(tiny_config) -> BertForPreTraining:
    return BertForPreTraining(tiny_config)


@pytest.fixture(scope="session")
def tiny_loader() -> PretrainDataLoader:
    return PretrainDataLoader(
        vocab_size=200,
        seq_len=32,
        num_documents=60,
        corpus_config=CorpusConfig(seed=3, num_word_types=400),
        seed=3,
    )


@pytest.fixture(scope="session")
def base_stage_costs():
    """BERT-Base 3-layer stage costs at B_micro=32 on P100 (the Fig. 3 unit)."""
    return compute_stage_costs(
        BERT_BASE, P100, 32, layers_per_stage=3, overhead_s=host_overhead("gpipe")
    )


def make_batch(rng: np.random.Generator, batch: int = 4, seq: int = 16,
               vocab: int = 128):
    """Random pretraining inputs for the tiny model."""
    ids = rng.integers(5, vocab, (batch, seq))
    mlm = np.full((batch, seq), -100, dtype=np.int64)
    positions = rng.integers(1, seq, batch)
    for i, p in enumerate(positions):
        mlm[i, p] = ids[i, p]
    nsp = rng.integers(0, 2, batch)
    return ids, mlm, nsp
