"""Cross-module integration: the full system working together."""

import numpy as np
import pytest

from repro.data import PretrainDataLoader
from repro.kfac import KFAC, DataInversionParallelKFAC, KFACLayerState
from repro.models import BertConfig, BertForPreTraining
from repro.optim import NVLAMB, PolyWarmupSchedule
from repro.pipeline import NumericPipeline
from repro.training import TrainConfig, Trainer


class TestKFACTrainingPipeline:
    """Data pipeline -> BERT -> K-FAC -> NVLAMB, end to end."""

    @pytest.fixture(scope="class")
    def run(self, tiny_loader):
        cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                              max_position_embeddings=32, seed=1)
        model = BertForPreTraining(cfg)
        inner = NVLAMB(model.parameters(), lr=2e-2)
        kfac = KFAC(model.encoder_linear_layers(), inner, damping=0.03,
                    curvature_interval=2, inverse_interval=2)
        sched = PolyWarmupSchedule(2e-2, warmup_steps=4, total_steps=30,
                                   optimizer=kfac)
        tr = Trainer(model, kfac, tiny_loader, sched,
                     TrainConfig(batch_size=8))
        tr.train(30)
        return tr, kfac

    def test_loss_descends(self, run):
        tr, _ = run
        assert np.mean(tr.losses[-5:]) < np.mean(tr.losses[:5])

    def test_inverses_refreshed_on_interval(self, run):
        _, kfac = run
        # interval 2, 30 steps -> staleness at the end is 2.
        assert all(v == 2 for v in kfac.staleness_report().values())

    def test_all_layers_have_factors(self, run):
        _, kfac = run
        for _, state in kfac.layers:
            assert state.a_factor.updates >= 14
            assert np.isfinite(state.a_factor.value).all()
            assert np.isfinite(state.b_inv).all()


class TestPipelineKFACConsistency:
    """Gradients captured through the numeric pipeline feed K-FAC exactly as
    monolithic execution does: factors from both paths must agree."""

    def test_factors_match_monolithic(self, tiny_loader, rng):
        cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                              max_position_embeddings=32, seed=2)
        batch = tiny_loader.next_batch(8)

        def capture(n_micro):
            model = BertForPreTraining(cfg)
            inner = NVLAMB(model.parameters(), lr=0.0)
            kfac = KFAC(model.encoder_linear_layers(), inner, damping=0.03)
            pipe = NumericPipeline(model, num_stages=2)
            pipe.run_step(batch.input_ids, batch.mlm_labels, batch.nsp_labels,
                          n_micro=n_micro, token_type_ids=batch.token_type_ids,
                          attention_mask=batch.attention_mask)
            kfac.update_curvature()
            return {s.name: s.a_factor.value.copy() for _, s in kfac.layers}

        mono = capture(n_micro=1)
        piped = capture(n_micro=4)
        for name in mono:
            np.testing.assert_allclose(piped[name], mono[name], rtol=2e-3,
                                       atol=1e-5, err_msg=name)


class TestDistributedEquivalence:
    """Emulated data+inversion-parallel K-FAC equals serial K-FAC when fed
    the same captured rows, end to end through a real model."""

    def test_sharded_equals_serial(self, tiny_loader):
        cfg = BertConfig.tiny(vocab_size=tiny_loader.vocab_size,
                              max_position_embeddings=32, seed=3)
        model = BertForPreTraining(cfg)
        layers = model.encoder_linear_layers()[:4]
        for _, l in layers:
            l.kfac_capture = True

        batch = tiny_loader.next_batch(8)
        loss, _ = model.loss(batch.input_ids, batch.mlm_labels,
                             batch.nsp_labels,
                             token_type_ids=batch.token_type_ids,
                             attention_mask=batch.attention_mask)
        loss.backward()

        captured = [l.kfac_pop() for _, l in layers]
        n_workers = 2

        # Serial reference.
        serial = [KFACLayerState(n, l.in_features, l.out_features)
                  for (n, l) in layers]
        for st, (ins, gs) in zip(serial, captured):
            rows = sum(g.shape[0] for g in gs)
            st.update_curvature(ins, gs, loss_scale=float(rows))
            st.update_inverses(0.03)

        # Sharded: split each layer's rows across workers.
        par_states = [KFACLayerState(n, l.in_features, l.out_features)
                      for (n, l) in layers]
        par = DataInversionParallelKFAC(par_states, n_workers, damping=0.03)
        win, wg, ls = [], [], []
        for w in range(n_workers):
            wi, wgrads, wls = [], [], []
            for ins, gs in captured:
                rows = ins[0].shape[0]
                half = rows // n_workers
                sl = slice(w * half, (w + 1) * half)
                wi.append(ins[0][sl])
                total_rows = gs[0].shape[0]
                wgrads.append(gs[0][sl])
                wls.append(float(total_rows))
            win.append(wi)
            wg.append(wgrads)
            ls.append(wls)
        par.curvature_step(win, wg, ls)
        par.inversion_step()

        for ser, p in zip(serial, par_states):
            np.testing.assert_allclose(p.a_factor.value, ser.a_factor.value,
                                       rtol=1e-4, atol=1e-6)
            np.testing.assert_allclose(p.a_inv, ser.a_inv, rtol=1e-3, atol=1e-4)
