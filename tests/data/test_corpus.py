"""Synthetic corpus: determinism, structure, language statistics."""

import numpy as np
import pytest

from repro.data import CorpusConfig, SyntheticCorpus


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(CorpusConfig(seed=1, num_word_types=500))


class TestDeterminism:
    def test_same_seed_same_language(self):
        a = SyntheticCorpus(CorpusConfig(seed=5))
        b = SyntheticCorpus(CorpusConfig(seed=5))
        assert a.words == b.words
        np.testing.assert_array_equal(a.successors, b.successors)

    def test_different_seed_different_language(self):
        a = SyntheticCorpus(CorpusConfig(seed=5, num_word_types=200))
        b = SyntheticCorpus(CorpusConfig(seed=6, num_word_types=200))
        assert a.words != b.words

    def test_documents_deterministic(self, corpus):
        d1 = corpus.documents(5, seed=9)
        d2 = corpus.documents(5, seed=9)
        assert d1 == d2


class TestStructure:
    def test_vocabulary_size(self, corpus):
        assert len(corpus.words) == 500
        assert len(set(corpus.words)) == 500

    def test_document_shape(self, corpus):
        docs = corpus.documents(10, seed=2)
        assert len(docs) == 10
        for doc in docs:
            assert len(doc) >= 2
            for sent in doc:
                assert len(sent) >= 2
                assert all(isinstance(w, str) for w in sent)

    def test_text_format(self, corpus):
        text = corpus.text(3, seed=2)
        assert "\n\n" in text  # document separator
        assert len(text.split()) > 10

    def test_minimum_vocab_enforced(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(CorpusConfig(num_word_types=5))


class TestLanguageStatistics:
    def test_unigram_is_zipfian(self, corpus):
        u = corpus.unigram
        assert u[0] > u[10] > u[100]
        assert u.sum() == pytest.approx(1.0)

    def test_generated_frequencies_follow_zipf(self, corpus):
        text = corpus.text(300, seed=4)
        from collections import Counter

        counts = Counter(text.split())
        freqs = np.array(sorted(counts.values(), reverse=True), dtype=float)
        # Top word much more frequent than the 50th.
        assert freqs[0] > 5 * freqs[min(50, len(freqs) - 1)]

    def test_bigram_structure_predictive(self, corpus):
        """Successors are a small subset: the bigram entropy is far below
        the unigram entropy, which is what makes MLM learnable."""
        assert corpus.successors.shape[1] == corpus.config.branching
        assert corpus.config.branching < corpus.config.num_word_types / 10

    def test_short_words_common(self, corpus):
        """Zipf's law of abbreviation: frequent words are shorter."""
        top = np.mean([len(w) for w in corpus.words[:50]])
        tail = np.mean([len(w) for w in corpus.words[-100:]])
        assert top < tail
