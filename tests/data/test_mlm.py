"""MLM masking and NSP example construction."""

import numpy as np
import pytest

from repro.data import MLMExampleBuilder, PretrainDataLoader
from repro.nn.losses import IGNORE_INDEX


@pytest.fixture(scope="module")
def loader():
    return PretrainDataLoader(vocab_size=200, seq_len=32, num_documents=80, seed=11)


@pytest.fixture
def builder(loader):
    return MLMExampleBuilder(loader.tokenizer, seq_len=32, seed=0)


class TestExampleStructure:
    def test_cls_first(self, builder, loader):
        ids, types, attn, labels = builder.build_example([10, 11], [12, 13], False)
        assert ids[0] == builder.cls_id

    def test_sep_separates_segments(self, builder):
        ids, types, attn, labels = builder.build_example([10, 11], [12, 13], False)
        n = int(attn.sum())
        assert ids[n - 1] == builder.sep_id
        assert (ids[:n] == builder.sep_id).sum() == 2

    def test_segment_ids(self, builder):
        ids, types, attn, labels = builder.build_example([10, 11, 12], [13, 14], False)
        # Segment A (incl [CLS] and first [SEP]) has type 0; B has type 1.
        assert types[0] == 0 and types[4] == 0
        assert types[5] == 1

    def test_padding_after_content(self, builder):
        ids, types, attn, labels = builder.build_example([10], [11], False)
        n = int(attn.sum())
        assert (ids[n:] == builder.pad_id).all()
        assert (attn[n:] == 0).all()

    def test_long_pair_truncated(self, builder):
        a = list(range(10, 60))
        b = list(range(60, 100))
        ids, types, attn, labels = builder.build_example(a, b, False)
        assert int(attn.sum()) == 32


class TestMasking:
    def test_mask_rate_about_15_percent(self, builder):
        rng = np.random.default_rng(0)
        rates = []
        for _ in range(50):
            a = list(rng.integers(10, 150, 12))
            b = list(rng.integers(10, 150, 12))
            ids, types, attn, labels = builder.build_example(a, b, False)
            real = int(attn.sum()) - 3  # minus specials
            rates.append((labels != IGNORE_INDEX).sum() / real)
        assert 0.10 < np.mean(rates) < 0.20

    def test_specials_never_masked(self, builder):
        for seed in range(20):
            a, b = [10, 11, 12], [13, 14, 15]
            ids, types, attn, labels = builder.build_example(a, b, False)
            n = int(attn.sum())
            assert labels[0] == IGNORE_INDEX  # [CLS]
            assert labels[n - 1] == IGNORE_INDEX  # final [SEP]

    def test_labels_hold_original_ids(self, builder):
        a, b = [10, 11, 12, 13], [14, 15, 16, 17]
        ids, types, attn, labels = builder.build_example(a, b, False)
        seq = [builder.cls_id, *a, builder.sep_id, *b, builder.sep_id]
        for pos in np.nonzero(labels != IGNORE_INDEX)[0]:
            assert labels[pos] == seq[pos]

    def test_invalid_mask_prob(self, loader):
        with pytest.raises(ValueError):
            MLMExampleBuilder(loader.tokenizer, mask_prob=0.0)


class TestBatches:
    def test_batch_shapes(self, loader):
        b = loader.next_batch(8)
        assert b.input_ids.shape == (8, 32)
        assert b.nsp_labels.shape == (8,)
        assert len(b) == 8

    def test_nsp_roughly_balanced(self, loader):
        labels = np.concatenate([loader.next_batch(32).nsp_labels for _ in range(8)])
        rate = labels.mean()
        assert 0.3 < rate < 0.7

    def test_ids_within_vocab(self, loader):
        b = loader.next_batch(16)
        assert b.input_ids.max() < loader.vocab_size
        assert b.input_ids.min() >= 0

    def test_every_example_has_masked_positions(self, loader):
        b = loader.next_batch(16)
        assert ((b.mlm_labels != IGNORE_INDEX).sum(axis=1) >= 1).all()

    def test_empty_documents_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build_batch([], 4)
