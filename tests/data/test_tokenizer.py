"""WordPiece tokenizer: training, encoding, decoding."""

import pytest

from repro.data import SPECIAL_TOKENS, WordPieceTokenizer


@pytest.fixture(scope="module")
def tok():
    t = WordPieceTokenizer()
    text = " ".join(
        ["banana apple grape"] * 50 + ["bananas apples grapes"] * 20
        + ["pineapple grapefruit"] * 10
    )
    t.train(text, vocab_size=120)
    return t


class TestTraining:
    def test_special_tokens_fixed_ids(self, tok):
        for name, idx in SPECIAL_TOKENS.items():
            assert tok.vocab[name] == idx

    def test_vocab_size_capped(self, tok):
        assert tok.vocab_size <= 120

    def test_vocab_size_too_small_raises(self):
        with pytest.raises(ValueError):
            WordPieceTokenizer().train("a b c", vocab_size=5)

    def test_frequent_words_become_single_pieces(self, tok):
        assert len(tok.tokenize_word("banana")) <= 2


class TestEncoding:
    def test_roundtrip_known_words(self, tok):
        text = "banana apple grape"
        assert tok.decode(tok.encode(text)) == text

    def test_subword_continuation_prefix(self, tok):
        pieces = tok.tokenize_word("bananas")
        if len(pieces) > 1:
            assert all(p.startswith("##") for p in pieces[1:])
            assert not pieces[0].startswith("##")

    def test_unknown_chars_unk(self, tok):
        assert tok.tokenize_word("xyzzy123") == ["[UNK]"] or all(
            p in tok.vocab for p in tok.tokenize_word("xyzzy123")
        )

    def test_encode_returns_valid_ids(self, tok):
        ids = tok.encode("banana apples pineapple")
        assert all(0 <= i < tok.vocab_size for i in ids)

    def test_decode_handles_unk(self, tok):
        assert "[UNK]" in tok.decode([SPECIAL_TOKENS["[UNK]"]])

    def test_empty_text(self, tok):
        assert tok.encode("") == []


class TestLongestMatch:
    def test_greedy_longest_first(self):
        t = WordPieceTokenizer()
        t.train("abc abc abc ab ab a b c", vocab_size=30)
        # 'abc' merged as a piece: whole-word match preferred over chars.
        pieces = t.tokenize_word("abc")
        assert len(pieces) <= 2
