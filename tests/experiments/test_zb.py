"""ZB-H1 acceptance: the zero-bubble schedule must earn its registry row.

The issue's bar: at the paper's BERT-Base Fig. 6 configuration, ZB-H1's
*measured* bubble fraction (simulated baseline timeline, no K-FAC) beats
plain 1F1B's — and the whole grid runs end-to-end through the sweep
engine with reports bit-identical to per-point ``PipeFisherRun.execute``.
"""

import pytest

from repro.experiments.zb import (
    baseline_bubble_fraction,
    run_schedule_panel,
    run_zb_sweep,
)
from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.hardware import P100
from repro.pipefisher.runner import PipeFisherRun
from repro.pipeline.spec import schedule_names
from repro.sweep import SweepEngine


@pytest.fixture(scope="module")
def sweep():
    return run_zb_sweep(engine=SweepEngine())


class TestZeroBubbleSweep:
    def test_zb_beats_1f1b_bubble_fraction_everywhere(self, sweep):
        """The headline claim, at every fig6 grid point."""
        for key, row in sweep.rows.items():
            assert row.bubble_zb < row.bubble_1f1b, key

    def test_zb_is_faster_and_better_utilized(self, sweep):
        for key, row in sweep.rows.items():
            f, z = row.one_f_one_b, row.zero_bubble
            assert z.baseline_step_time < f.baseline_step_time, key
            assert z.baseline_utilization > f.baseline_utilization, key
            assert row.step_speedup > 1.0, key

    def test_pipefisher_still_fills_the_smaller_bubbles(self, sweep):
        """K-FAC work still drains into what ZB-H1 leaves idle, at a
        refresh no faster than bubblier 1F1B's (the §3.3 tradeoff)."""
        for key, row in sweep.rows.items():
            z = row.zero_bubble
            assert z.pipefisher_utilization > z.baseline_utilization + 0.10, key
            assert 0.0 < z.step_time_overhead < 0.15, key
            assert z.refresh_steps >= row.one_f_one_b.refresh_steps, key

    def test_fig6_headline_point(self, sweep):
        """B_micro=32, D=16 — the deepest fig6 column: a >= 10-point
        bubble-fraction win at identical activation memory."""
        row = sweep.rows[(32, 16)]
        assert row.bubble_1f1b - row.bubble_zb > 0.10
        assert row.zero_bubble.num_devices == row.one_f_one_b.num_devices

    def test_engine_reports_match_reference(self, sweep):
        """Template-reused rows must equal the per-point runner exactly."""
        row = sweep.rows[(32, 8)]
        ref = PipeFisherRun(schedule="zb1f1b", arch=BERT_BASE, hardware=P100,
                            b_micro=32, depth=8, n_micro=8).execute()
        got = row.zero_bubble
        assert got.baseline_step_time == ref.baseline_step_time
        assert got.pipefisher_step_time == ref.pipefisher_step_time
        assert got.baseline_utilization == ref.baseline_utilization
        assert got.pipefisher_utilization == ref.pipefisher_utilization
        assert got.refresh_steps == ref.refresh_steps
        assert (baseline_bubble_fraction(got)
                == baseline_bubble_fraction(ref))


class TestSchedulePanel:
    @pytest.mark.parametrize("name", schedule_names())
    def test_every_registered_schedule_runs(self, name):
        """The CLI's --schedule panel works for any registry entry."""
        panel = run_schedule_panel(name, engine=SweepEngine())
        assert panel.schedule == name
        assert panel.report.baseline_step_time > 0
        assert 0.0 < panel.baseline_bubble < 1.0

    def test_zb_panel_beats_1f1b_panel(self):
        engine = SweepEngine()
        zb = run_schedule_panel("zb1f1b", engine=engine)
        f = run_schedule_panel("1f1b", engine=engine)
        assert zb.baseline_bubble < f.baseline_bubble
        assert (zb.report.baseline_step_time
                < f.report.baseline_step_time)
