"""Golden-value regression tests for the reported experiment outputs.

Each golden file pins the *exact* numbers (floats stored as ``float.hex()``
strings, so comparisons are bit-exact, not approximate) that an experiment
reported when the golden was generated.  The sweep-engine rewiring — and
any future refactor of the simulator, cost model, executor, or bubble
filler — must preserve these outputs exactly; a diff here means reported
results changed, which is never an incidental side effect.

Regenerate deliberately (after a change that is *supposed* to move the
numbers) with either of the equivalent paths (both produce identical
bytes through :mod:`repro.campaign.goldens`)::

    PYTHONPATH=src python -m repro.cli campaign regen-goldens
    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/experiments/test_goldens.py -q

and review the JSON diff like any other result change.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign.goldens import exact_encode, read_golden, write_golden

REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"


def check(name: str, payload) -> None:
    """Compare ``payload`` against ``goldens/<name>.json`` (or regenerate)."""
    if REGEN:
        write_golden(name, payload)
        return
    expected = read_golden(name)
    if expected is None:
        pytest.fail(
            f"missing golden {name}.json; generate with REPRO_REGEN_GOLDENS=1 "
            "or 'repro campaign regen-goldens'"
        )
    assert exact_encode(payload) == expected, (
        f"{name}: reported values diverged from the committed golden. If the "
        "change is intentional, regenerate with REPRO_REGEN_GOLDENS=1 (or "
        "'repro campaign regen-goldens') and review the JSON diff; "
        "'repro campaign diff' prints per-value deltas."
    )


def _perf_cell(r) -> list:
    return [
        r.t_fwd, r.t_bwd, r.t_pipe, r.t_bubble, r.t_curv_total, r.t_inv,
        r.t_prec, r.ratio, r.refresh_steps, r.throughput_pipeline,
        r.throughput_pipefisher, r.throughput_kfac_skip,
        r.throughput_kfac_naive, r.memory.total_gb(),
    ]


def _pf_report(r) -> list:
    return [
        r.baseline_step_time, r.baseline_utilization, r.pipefisher_step_time,
        r.pipefisher_utilization, r.refresh_steps,
        sorted(r.device_refresh_steps.items()),
    ]


def test_fig5_golden():
    from repro.experiments.perfmodel_figs import run_fig5

    fig = run_fig5()
    check("fig5", [[list(k), _perf_cell(r)] for k, r in sorted(fig.grid.items())])


def test_fig6_golden():
    from repro.experiments.perfmodel_figs import run_fig6_sweep

    out = run_fig6_sweep(b_micro_values=(1, 4, 16, 64), depth_values=(4, 8, 16))
    payload = []
    for (hw, factor), fig in sorted(out.items()):
        cells = [[list(k), _perf_cell(r)] for k, r in sorted(fig.grid.items())]
        payload.append([[hw, factor], cells])
    check("fig6", payload)


def test_fig9_golden():
    from repro.experiments.perfmodel_figs import run_fig9_10

    payload = []
    for arch in ("BERT-Base", "BERT-Large"):
        for sched in ("gpipe", "chimera"):
            fig = run_fig9_10(arch, sched)
            cells = [[list(k), _perf_cell(r)] for k, r in sorted(fig.grid.items())]
            payload.append([[arch, sched], cells])
    check("fig9", payload)


def test_table2_golden():
    from repro.experiments.table2 import run_table2

    r = run_table2()
    check("table2", [
        r.nvlamb_step_s, r.kfac_step_s, r.nvlamb_minutes, r.kfac_minutes,
        r.time_fraction, r.step_overhead,
    ])


def test_table3_golden():
    from repro.experiments.table3 import run_table3

    r = run_table3()
    check("table3", [
        [[name, list(row)] for name, row in sorted(r.rows.items())],
        r.matches_paper,
        r.runnable_blocks,
    ])


def test_zb_sweep_golden():
    """The zero-bubble fig6-style grid (1F1B vs ZB-H1 per point)."""
    from repro.experiments.zb import run_zb_sweep

    result = run_zb_sweep()
    payload = []
    for key, row in sorted(result.rows.items()):
        payload.append([
            list(key),
            _pf_report(row.one_f_one_b),
            _pf_report(row.zero_bubble),
            row.bubble_1f1b,
            row.bubble_zb,
            row.step_speedup,
        ])
    check("zb", payload)


def test_interleaved_sweep_golden():
    from repro.experiments.interleaved import run_interleaved_sweep

    result = run_interleaved_sweep()
    payload = []
    for key, row in sorted(result.rows.items()):
        payload.append([
            list(key),
            _pf_report(row.one_f_one_b),
            _pf_report(row.interleaved),
            row.step_speedup,
        ])
    check("interleaved", payload)
