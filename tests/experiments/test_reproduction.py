"""Reproduction invariants: measured values near the paper's.

These are the repository's acceptance tests — each figure's *shape* claims
(who wins, rough factors, orderings) asserted with tolerances.  The heavy
convergence run (Fig. 7) lives in benchmarks/, not here.
"""

import pytest

from repro.experiments import (
    FIG3_PAPER,
    FIG4_PAPER,
    TABLE2_PAPER,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig8,
    run_table2,
    run_table3,
)
from repro.experiments.perfmodel_figs import run_fig6_sweep, run_fig9_10


@pytest.fixture(scope="module")
def fig3():
    return run_fig3()


@pytest.fixture(scope="module")
def fig4():
    return run_fig4()


class TestFig1:
    def test_schematic_structure(self):
        r = run_fig1(width=60)
        assert "GPU  1" in r.gpipe_art
        # PipeFisher art contains curvature/inversion glyphs; GPipe does not.
        assert "c" in r.pipefisher_art and "i" in r.pipefisher_art
        assert "c" not in r.gpipe_art.replace("legend", "").split("\n")[0]


class TestFig3:
    def test_baseline_utilizations_close(self, fig3):
        m = fig3.utilizations()
        for key in ("gpipe_baseline", "1f1b_baseline"):
            assert m[key] == pytest.approx(FIG3_PAPER[key], abs=0.05)

    def test_pipefisher_utilizations_close(self, fig3):
        m = fig3.utilizations()
        for key in ("gpipe_pipefisher", "1f1b_pipefisher"):
            assert m[key] == pytest.approx(FIG3_PAPER[key], abs=0.07)

    def test_dp_variant_close(self, fig3):
        m = fig3.utilizations()
        for key in ("gpipe_pipefisher_dp", "1f1b_pipefisher_dp"):
            assert m[key] == pytest.approx(FIG3_PAPER[key], abs=0.07)

    def test_dp_slightly_below_plain_pipefisher(self, fig3):
        """Paper: 86.2% (dp) < 89.0% (plain) for GPipe."""
        m = fig3.utilizations()
        assert m["gpipe_pipefisher_dp"] < m["gpipe_pipefisher"]

    def test_refresh_within_two_steps(self, fig3):
        for sched in ("gpipe", "1f1b"):
            assert fig3.panels[sched].refresh_steps <= FIG3_PAPER["max_refresh_steps"]


class TestFig4:
    def test_baseline_utilization(self, fig4):
        assert fig4.report.baseline_utilization == pytest.approx(
            FIG4_PAPER["baseline_utilization"], abs=0.06
        )

    def test_pipefisher_utilization_high(self, fig4):
        """Paper 97.6%; we accept >= 85% (shape: near-full utilization)."""
        assert fig4.report.pipefisher_utilization > 0.85

    def test_step_times_near_paper(self, fig4):
        assert fig4.report.baseline_step_time == pytest.approx(
            FIG4_PAPER["baseline_step_time_s"], rel=0.15
        )
        assert fig4.report.pipefisher_step_time == pytest.approx(
            FIG4_PAPER["pipefisher_step_time_s"], rel=0.15
        )

    def test_refresh_in_paper_range(self, fig4):
        lo, hi = FIG4_PAPER["refresh_steps_range"]
        assert lo <= fig4.report.refresh_steps <= hi + 1


class TestFig5:
    def test_grid_complete(self):
        fig = run_fig5()
        assert len(fig.grid) == 9

    def test_ratio_series_shape(self):
        fig = run_fig5(b_micro_values=(8, 32), depth_values=(4, 8, 16))
        # Ratio falls with depth at fixed B (paper Fig. 5b bottom).
        for b in (8, 32):
            series = [fig.grid[(b, d)].ratio for d in (4, 8, 16)]
            assert series == sorted(series, reverse=True)


class TestFig6:
    def test_sweep_structure(self):
        out = run_fig6_sweep(b_micro_values=(8, 32), depth_values=(8,),
                             hardware_names=("P100", "V100"),
                             n_micro_factors=(1, 2))
        assert set(out) == {("P100", 1), ("P100", 2), ("V100", 1), ("V100", 2)}

    def test_throughput_vs_kfac_skip_above_one(self):
        out = run_fig6_sweep(b_micro_values=(32,), depth_values=(8,),
                             hardware_names=("P100",), n_micro_factors=(1,))
        r = out[("P100", 1)].grid[(32, 8)]
        assert r.speedup_vs_kfac_skip > 1.0


class TestFig9_10:
    def test_chimera_vs_gpipe_tradeoff(self):
        """Paper: Chimera consistently higher throughput but less frequent
        curvature refresh (higher ratio of work to bubble)."""
        g = run_fig9_10("BERT-Base", "gpipe", b_micro_values=(32,),
                        depth_values=(8,)).grid[(32, 8)]
        c = run_fig9_10("BERT-Base", "chimera", b_micro_values=(32,),
                        depth_values=(8,)).grid[(32, 8)]
        assert c.throughput_pipeline > g.throughput_pipeline
        assert c.ratio > g.ratio

    def test_bert_large_scales_down_throughput(self):
        b = run_fig9_10("BERT-Base", "chimera", b_micro_values=(32,),
                        depth_values=(8,)).grid[(32, 8)]
        l = run_fig9_10("BERT-Large", "chimera", b_micro_values=(32,),
                        depth_values=(8,)).grid[(32, 8)]
        assert l.throughput_pipeline < b.throughput_pipeline


class TestFig8:
    def test_crossover_near_2000(self):
        r = run_fig8()
        assert 1500 < r.crossover_step <= 2000

    def test_peaks(self):
        r = run_fig8()
        assert r.kfac_lr.max() == pytest.approx(6e-3, rel=1e-6)
        assert int(r.kfac_lr.argmax()) + 1 == 600
        assert int(r.nvlamb_lr.argmax()) + 1 == 2000


class TestTable2:
    def test_time_fraction_near_paper(self):
        r = run_table2()
        assert r.time_fraction == pytest.approx(TABLE2_PAPER["time_fraction"],
                                                abs=0.05)

    def test_minutes_magnitudes(self):
        r = run_table2()
        assert r.nvlamb_minutes == pytest.approx(TABLE2_PAPER["nvlamb_minutes"],
                                                 rel=0.15)
        assert r.kfac_minutes == pytest.approx(TABLE2_PAPER["kfac_minutes"],
                                               rel=0.15)

    def test_step_overhead_small(self):
        """Paper: ~6.5% per-step overhead from preconditioning."""
        r = run_table2()
        assert 0.0 < r.step_overhead < 0.10


class TestTable3:
    def test_exact_match(self):
        r = run_table3()
        assert r.matches_paper
        assert r.runnable_blocks
