"""Robustness experiment: golden pin + shard/merge replicate invariance.

The golden locks the full Monte Carlo report — per-schedule span /
bubble / utilization / degradation summaries and the degradation
ranking — so the "which schedule degrades least" answer is
regression-locked.  The shard tests assert the acceptance criterion
that the same seed produces bit-identical replicates no matter how the
campaign is split across workers.
"""

from __future__ import annotations

from repro.campaign.registry import golden_payload
from repro.campaign.rundb import merge_run_dbs
from repro.campaign.runner import CampaignRunner
from repro.experiments.robustness import (
    DEFAULT_MODEL,
    format_robustness,
    robustness_spec,
    run_robustness,
)
from tests.experiments.test_goldens import check


def test_robustness_golden():
    check("robustness", golden_payload("robustness"))


def test_run_robustness_agrees_with_payload():
    # The live-object wrapper and the run-DB payload path reduce the
    # same replicates: the ranking must match value for value.
    result = run_robustness()
    payload_ranking = golden_payload("robustness")[1]
    live_ranking = [[r.schedule, r.mean_degradation]
                    for r in result.ranking()]
    assert live_ranking == payload_ranking


def test_report_names_least_degraded_schedule():
    result = run_robustness()
    text = format_robustness(result)
    assert f"least degraded: {result.ranking()[0].schedule}" in text
    # All five registered schedules are ranked.
    assert len(result.rows) == 5


def test_sharded_replicates_bit_identical(tmp_path):
    spec = robustness_spec(model=DEFAULT_MODEL, seeds=(0, 1, 2))
    whole = CampaignRunner(run_dir=tmp_path / "whole").run(spec)

    for i in (1, 2, 3):
        CampaignRunner(run_dir=tmp_path / f"s{i}").run(spec, shard=(i - 1, 3))
    merged = merge_run_dbs(
        [tmp_path / "s1", tmp_path / "s2", tmp_path / "s3"],
        tmp_path / "merged")

    assert merged.values() == whole.values()
    # Resuming the merged DB re-executes nothing.
    resumed = CampaignRunner(run_dir=tmp_path / "merged").run(spec)
    assert resumed.summary()["executed"] == 0
    assert resumed.summary()["reused"] == len(spec.units())
