"""Run-DB durability: append-only JSONL, truncation tolerance, merging."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.rundb import DONE, RunDB, merge_run_dbs
from repro.campaign.spec import CampaignSpec, CampaignValidationError


def _spec(name: str = "demo") -> CampaignSpec:
    return CampaignSpec(
        name=name, title="t", kind="perf_report",
        grid=(("b_micro", (1, 2)),),
    )


def _rec(key: str, value, status: str = DONE) -> dict:
    return {"key": key, "status": status, "value": value}


def test_append_reload_last_record_wins(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.append(_rec("k1", 1))
    db.append(_rec("k2", 2, status="failed"))
    db.append(_rec("k2", 3))  # retry after failure: last record wins
    fresh = RunDB.open(tmp_path / "run")
    assert fresh.values() == {"k1": 1, "k2": 3}
    assert fresh.done("k1")["value"] == 1
    assert fresh.done("k2")["value"] == 3
    assert fresh.status_counts() == {"done": 2}


def test_truncated_trailing_line_tolerated(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.append(_rec("k1", 1))
    db.append(_rec("k2", 2))
    # A killed writer leaves a partial final line; completed records survive.
    with db.units_path.open("a") as f:
        f.write('{"key": "k3", "status": "do')
    fresh = RunDB.open(tmp_path / "run")
    assert fresh.values() == {"k1": 1, "k2": 2}
    assert fresh.skipped_lines == 1
    # Appending after the corruption starts a clean line again.
    fresh.append(_rec("k3", 3))
    again = RunDB.open(tmp_path / "run")
    assert again.values() == {"k1": 1, "k2": 2, "k3": 3}


def test_non_record_lines_tolerated(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.units_path.write_text('42\n{"no_key": true}\n\n')
    db.reload()
    assert db.records == {}
    assert db.skipped_lines == 2


def test_bind_pins_the_spec(tmp_path):
    db = RunDB.open(tmp_path / "run")
    spec = _spec()
    db.bind(spec)
    meta = db.read_meta()
    assert meta["campaign"] == "demo"
    assert CampaignSpec.from_dict(meta["spec"]) == spec
    db.bind(spec)  # idempotent
    with pytest.raises(CampaignValidationError, match="belongs to campaign"):
        db.bind(_spec(name="other"))
    different = CampaignSpec(name="demo", title="t", kind="perf_report",
                             grid=(("b_micro", (1, 2, 3)),))
    with pytest.raises(CampaignValidationError, match="different"):
        db.bind(different)


def test_merge_disjoint_sources(tmp_path):
    spec = _spec()
    for i, key in enumerate(("k1", "k2")):
        db = RunDB.open(tmp_path / f"shard{i}")
        db.bind(spec)
        db.append(_rec(key, i))
    out = merge_run_dbs([tmp_path / "shard0", tmp_path / "shard1"],
                        tmp_path / "merged")
    assert out.values() == {"k1": 0, "k2": 1}
    assert out.read_meta()["campaign"] == "demo"


def test_merge_conflict_aborts(tmp_path):
    for i, value in enumerate((1, 2)):
        db = RunDB.open(tmp_path / f"src{i}")
        db.append(_rec("k1", value))
    with pytest.raises(CampaignValidationError, match="merge conflict"):
        merge_run_dbs([tmp_path / "src0", tmp_path / "src1"],
                      tmp_path / "merged")


def test_merge_rejects_mixed_campaigns(tmp_path):
    a = RunDB.open(tmp_path / "a")
    a.bind(_spec(name="one"))
    b = RunDB.open(tmp_path / "b")
    b.bind(_spec(name="two"))
    with pytest.raises(CampaignValidationError, match="different campaigns"):
        merge_run_dbs([tmp_path / "a", tmp_path / "b"], tmp_path / "merged")


class _ReadCountingFile:
    """Wraps a binary file handle, counting bytes returned by read()."""

    def __init__(self, fh, counts):
        self._fh = fh
        self._counts = counts

    def read(self, n=-1):
        data = self._fh.read(n)
        self._counts.append(len(data))
        return data

    def __getattr__(self, name):
        return getattr(self._fh, name)

    def __enter__(self):
        self._fh.__enter__()
        return self

    def __exit__(self, *exc):
        return self._fh.__exit__(*exc)


def test_append_cost_does_not_scale_with_file_size(tmp_path, monkeypatch):
    """Append reads O(1) bytes however large units.jsonl has grown.

    The seed implementation re-read the whole file (``read_bytes``) per
    append just to check the trailing newline — O(n^2) over a campaign.
    """
    db = RunDB.open(tmp_path / "run")
    # ~1 MB of records: any whole-file read is instantly visible below.
    pad = "x" * 1000
    for i in range(1000):
        db.append({"key": f"k{i}", "status": DONE, "value": pad})
    assert db.units_path.stat().st_size > 1_000_000

    read_sizes: list[int] = []
    real_open = Path.open

    def spy_open(self, mode="r", *args, **kwargs):
        fh = real_open(self, mode, *args, **kwargs)
        if self.name == "units.jsonl" and "r" in mode and "b" in mode:
            return _ReadCountingFile(fh, read_sizes)
        return fh

    monkeypatch.setattr(Path, "open", spy_open)
    monkeypatch.setattr(
        Path, "read_bytes",
        lambda self: pytest.fail("append re-read the whole units file"))
    db.append(_rec("tail", 1))
    assert sum(read_sizes) <= 1  # the trailing-newline probe byte
    monkeypatch.undo()
    assert RunDB.open(tmp_path / "run").done("tail")["value"] == 1


def test_append_still_heals_truncation_with_tail_probe(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.append(_rec("k1", 1))
    with db.units_path.open("a") as f:
        f.write('{"key": "k2", "status": "do')  # killed mid-append
    db.append(_rec("k3", 3))
    fresh = RunDB.open(tmp_path / "run")
    assert fresh.values() == {"k1": 1, "k3": 3}
    assert fresh.skipped_lines == 1


def test_meta_written_atomically(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.bind(_spec())
    # No temporary residue: the tmp file was renamed into place.
    leftovers = [p.name for p in (tmp_path / "run").iterdir()
                 if p.name not in ("meta.json", "units.jsonl")]
    assert leftovers == []
    assert db.read_meta()["campaign"] == "demo"


def test_corrupt_meta_is_a_clear_error(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.bind(_spec())
    db.meta_path.write_text('{"campaign": "demo", "spec": {"na')  # truncated
    with pytest.raises(CampaignValidationError, match="corrupt campaign meta"):
        db.read_meta()
    with pytest.raises(CampaignValidationError, match="corrupt campaign meta"):
        db.bind(_spec())
    with pytest.raises(CampaignValidationError, match="corrupt campaign meta"):
        merge_run_dbs([tmp_path / "run"], tmp_path / "merged")


def test_non_object_meta_is_a_clear_error(tmp_path):
    db = RunDB.open(tmp_path / "run")
    db.meta_path.write_text('[1, 2]\n')  # valid JSON, wrong shape
    with pytest.raises(CampaignValidationError, match="expected a JSON"):
        db.read_meta()


def test_records_are_plain_jsonl(tmp_path):
    """Each line is one self-contained JSON object (greppable, tail-able)."""
    db = RunDB.open(tmp_path / "run")
    db.append(_rec("k1", {"x": 1.5}))
    lines = db.units_path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["value"] == {"x": 1.5}
