"""Seed plumbing: declared seeds must reach an executor that reads them."""

import warnings

import pytest

from repro.campaign.registry import (
    SeedPlumbingWarning,
    campaign_names,
    get_campaign,
    register_campaign,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.units import kind_seed_aware


def _unregister(name):
    from repro.campaign import registry

    registry._CAMPAIGNS.pop(name, None)


class TestKindSeedAwareness:
    def test_stochastic_kind_reads_seeds(self):
        import repro.stochastic  # noqa: F401  (registers the kind)

        assert kind_seed_aware("stochastic") is True

    def test_pipefisher_kind_does_not(self):
        assert kind_seed_aware("pipefisher") is False

    def test_unknown_kind_is_none(self):
        assert kind_seed_aware("no_such_kind") is None


class TestRegistrationAudit:
    def test_seeds_over_deaf_kind_warns(self):
        spec = CampaignSpec(
            name="seedaudit_deaf",
            title="t",
            kind="pipefisher",
            fixed=(("arch", "BERT-Base"), ("b_micro", 4), ("depth", 4),
                   ("hardware", "P100"), ("n_micro", 4),
                   ("schedule", "1f1b")),
            seeds=(0, 1),
        )
        try:
            with pytest.warns(SeedPlumbingWarning, match="no unit kind"):
                register_campaign(spec)
        finally:
            _unregister("seedaudit_deaf")

    def test_seeds_over_seed_aware_kind_is_silent(self):
        import repro.stochastic  # noqa: F401

        spec = CampaignSpec(
            name="seedaudit_aware",
            title="t",
            kind="stochastic",
            fixed=(("arch", "BERT-Base"), ("b_micro", 4), ("depth", 4),
                   ("hardware", "P100"), ("n_micro", 4),
                   ("schedule", "1f1b")),
            seeds=(0, 1),
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", SeedPlumbingWarning)
                register_campaign(spec)
        finally:
            _unregister("seedaudit_aware")

    def test_no_seeds_never_warns(self):
        spec = CampaignSpec(
            name="seedaudit_noseeds",
            title="t",
            kind="pipefisher",
            fixed=(("arch", "BERT-Base"), ("b_micro", 4), ("depth", 4),
                   ("hardware", "P100"), ("n_micro", 4),
                   ("schedule", "1f1b")),
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", SeedPlumbingWarning)
                register_campaign(spec)
        finally:
            _unregister("seedaudit_noseeds")


class TestRegisteredSpecsPlumbSeeds:
    def test_every_seeded_campaign_reaches_unit_params(self):
        # For every registered spec that declares seeds: each expanded
        # unit carries the seed param, and its kind actually reads it.
        for name in campaign_names():
            spec = get_campaign(name).spec
            if not spec.seeds:
                continue
            for u in spec.units():
                assert "seed" in u.params_dict(), (
                    f"{name}: unit {u.key} lost the seed param")
                assert kind_seed_aware(u.kind) is True, (
                    f"{name}: kind {u.kind!r} ignores declared seeds")

    def test_registered_specs_reimport_cleanly(self):
        # The audit must stay silent for everything shipped in-tree.
        with warnings.catch_warnings():
            warnings.simplefilter("error", SeedPlumbingWarning)
            for name in campaign_names():
                get_campaign(name)
