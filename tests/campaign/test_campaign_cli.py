"""The ``repro campaign`` CLI family, end to end through ``repro.cli.main``."""

from __future__ import annotations

import pytest

from repro.cli import main


def _run(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_campaign_list(capsys):
    code, out = _run(capsys, "campaign", "list")
    assert code == 0
    for name in ("fig5", "fig6", "zb", "interleaved", "table2", "table3",
                 "schedule_panel"):
        assert name in out


def test_experiment_dispatch_still_works(capsys):
    code, out = _run(capsys, "table3")
    assert code == 0
    assert "matches paper Table 3: True" in out


def test_campaign_run_resume_status_diff(capsys, tmp_path):
    run_dir = str(tmp_path / "zb")
    code, out = _run(capsys, "campaign", "run", "zb", "--run-dir", run_dir)
    assert code == 0
    assert "executed 18, reused 0/18" in out

    # Second invocation: everything served from the run DB.
    code, out = _run(capsys, "campaign", "run", "zb", "--run-dir", run_dir)
    assert code == 0
    assert "executed 0, reused 18/18" in out

    code, out = _run(capsys, "campaign", "status", "--run-dir", run_dir)
    assert code == 0
    assert "done 18/18" in out

    code, out = _run(capsys, "campaign", "diff", "zb", "--run-dir", run_dir)
    assert code == 0
    assert "bit-exact" in out


def test_campaign_diff_detects_divergence(capsys, tmp_path, monkeypatch):
    import json

    from repro.campaign.goldens import golden_path, read_golden

    committed = read_golden("table2")
    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    tampered = json.loads(json.dumps(committed))
    tampered[0] = {"float": (1e9).hex()}
    golden_path("table2").write_text(json.dumps(tampered))
    code, out = _run(capsys, "campaign", "diff", "table2")
    assert code == 1
    assert "diverge" in out and "delta" in out


def test_campaign_diff_missing_golden(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    code, out = _run(capsys, "campaign", "diff", "table3")
    assert code == 2
    assert "missing" in out


def test_campaign_regen_goldens_matches_committed_bytes(
        capsys, tmp_path, monkeypatch):
    """First-class regen writes byte-identical files to the env-var path."""
    from repro.campaign.goldens import golden_dir

    committed = (golden_dir() / "table3.json").read_bytes()
    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    code, out = _run(capsys, "campaign", "regen-goldens", "table3")
    assert code == 0
    assert (tmp_path / "table3.json").read_bytes() == committed


def test_campaign_shard_and_merge(capsys, tmp_path):
    for i in (1, 2):
        code, out = _run(capsys, "campaign", "run", "table3",
                         "--run-dir", str(tmp_path / f"s{i}"),
                         "--shard", f"{i}/2")
        assert code == 0
    code, out = _run(capsys, "campaign", "merge",
                     str(tmp_path / "s1"), str(tmp_path / "s2"),
                     "--out", str(tmp_path / "merged"))
    assert code == 0
    code, out = _run(capsys, "campaign", "diff", "table3",
                     "--run-dir", str(tmp_path / "merged"))
    assert code == 0


def test_campaign_status_on_non_run_dir(capsys, tmp_path):
    code, out = _run(capsys, "campaign", "status", "--run-dir",
                     str(tmp_path / "nothing"))
    assert code == 2


def test_campaign_unknown_name(capsys):
    code = main(["campaign", "run", "does_not_exist"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown campaign" in err


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["not_an_experiment"])
