"""Golden encoding/diffing, and campaign payloads vs the committed files.

``test_campaign_payloads_match_committed_goldens`` is the keystone: for
every golden-bound campaign, the payload rebuilt from *recorded unit
values* (the run-DB path ``campaign diff`` uses) must be bit-identical to
the committed golden that the pytest regression layer pins through the
live-object ``run_*`` wrappers — proving the two paths agree.
"""

from __future__ import annotations

import pytest

from repro.campaign.goldens import (
    count_values,
    diff_payloads,
    exact_decode,
    exact_encode,
    read_golden,
    write_golden,
)
from repro.campaign.registry import campaign_names, get_campaign, golden_payload


def test_exact_encode_decode_round_trip():
    payload = [1, 2.5, "s", None, True, {"a": 1.25, 2: [3.5]}, [0.1]]
    encoded = exact_encode(payload)
    assert encoded[1] == {"float": 2.5.hex()}
    assert exact_decode(encoded) == payload


def test_exact_encode_rejects_unknown_types():
    with pytest.raises(TypeError):
        exact_encode(object())


def test_write_and_read_golden_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    payload = [1.5, ["x", 2]]
    path = write_golden("demo", payload)
    assert path.parent == tmp_path
    assert read_golden("demo") == exact_encode(payload)
    assert read_golden("missing") is None


def test_diff_payloads_reports_per_value_deltas():
    golden = exact_encode([1.0, [2.0, "x"], {"a": 3}])
    assert diff_payloads(golden, [1.0, [2.0, "x"], {"a": 3}]) == []
    deltas = diff_payloads(golden, [1.0, [2.5, "x"], {"a": 4}])
    assert len(deltas) == 2
    assert deltas[0].path == "[1][0]"
    assert deltas[0].expected == 2.0 and deltas[0].actual == 2.5
    assert "delta" in deltas[0].describe()
    # Length mismatches surface as deltas too, not as crashes.
    assert diff_payloads(golden, [1.0, [2.0, "x"]])
    assert count_values(golden) == 5


class TestDiffTolerance:
    GOLDEN = exact_encode([1.0, [100.0, "x"], {"a": 3}])

    def test_default_stays_bit_exact(self):
        nudged = [1.0 + 1e-12, [100.0, "x"], {"a": 3}]
        assert len(diff_payloads(self.GOLDEN, nudged)) == 1
        assert diff_payloads(self.GOLDEN, nudged, rtol=1e-9) == []

    def test_atol_absorbs_absolute_drift(self):
        drifted = [1.05, [100.0, "x"], {"a": 3}]
        assert diff_payloads(self.GOLDEN, drifted, atol=0.1) == []
        assert len(diff_payloads(self.GOLDEN, drifted, atol=0.01)) == 1

    def test_rtol_scales_with_expected_value(self):
        # 1% drift on both floats: rtol=0.02 clears both, atol=0.02 only
        # the small one.
        drifted = [1.01, [101.0, "x"], {"a": 3}]
        assert diff_payloads(self.GOLDEN, drifted, rtol=0.02) == []
        assert len(diff_payloads(self.GOLDEN, drifted, atol=0.02)) == 1

    def test_tolerance_never_excuses_non_floats(self):
        assert len(diff_payloads(self.GOLDEN, [1.0, [100.0, "y"], {"a": 4}],
                                 rtol=10.0, atol=10.0)) == 2
        # Float-vs-int type drift is structural, not a tolerance matter.
        assert len(diff_payloads(self.GOLDEN, [1.0, [100.0, "x"], {"a": 3.0}],
                                 rtol=10.0, atol=10.0)) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_payloads(self.GOLDEN, [1.0], rtol=-1.0)


def test_every_bound_campaign_declares_a_payload_builder():
    for name in campaign_names():
        entry = get_campaign(name)
        assert (entry.spec.golden is None) == (entry.golden_payload is None)


def test_campaign_payloads_match_committed_goldens():
    """Run-DB-derived payloads are bit-identical to the committed goldens."""
    bound = [n for n in campaign_names()
             if get_campaign(n).spec.golden is not None]
    assert sorted(get_campaign(n).spec.golden for n in bound) == [
        "fig5", "fig6", "fig9", "interleaved", "robustness", "table2",
        "table3", "zb",
    ]
    for name in bound:
        entry = get_campaign(name)
        committed = read_golden(entry.spec.golden)
        assert committed is not None, f"{name}: golden file missing"
        deltas = diff_payloads(committed, golden_payload(name))
        assert deltas == [], (
            f"{name}: {len(deltas)} value(s) diverge, e.g. "
            f"{deltas[0].describe() if deltas else ''}")


def test_golden_payload_reports_missing_units():
    with pytest.raises(ValueError, match="no recorded value"):
        golden_payload("zb", values={})
    with pytest.raises(ValueError, match="no golden binding"):
        golden_payload("fig4")
