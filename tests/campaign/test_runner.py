"""Runner semantics: resume without re-execution, sharding, counter deltas.

The resumability and sharding tests drive a spy unit kind whose executor
counts every invocation, so "resume re-executes zero completed units" is
asserted on actual execution counts, not on runner bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.campaign.rundb import DONE, FAILED, RunDB, merge_run_dbs
from repro.campaign.runner import CampaignRunner, parse_shard, shard_units
from repro.campaign.spec import CampaignSpec, CampaignValidationError
from repro.campaign.units import register_unit_kind

#: Execution spy state, reset per test by the ``spy`` fixture.
SPY = {"calls": [], "fail_on": None}


def _execute_spy(params, ctx):
    if SPY["fail_on"] is not None and params["i"] == SPY["fail_on"]:
        raise RuntimeError(f"injected failure at unit {params['i']}")
    SPY["calls"].append(params["i"])
    return {"i": params["i"], "squared": params["i"] ** 2}


register_unit_kind("test_spy", _execute_spy, lambda obj, params: obj)


@pytest.fixture
def spy():
    SPY["calls"] = []
    SPY["fail_on"] = None
    return SPY


def _spy_spec(n: int = 6) -> CampaignSpec:
    return CampaignSpec(
        name="spy_demo", title="execution-count spy campaign",
        kind="test_spy", grid=(("i", tuple(range(n))),),
    )


# -- ephemeral mode -------------------------------------------------------------


def test_ephemeral_run_keeps_live_objects(spy):
    spec = _spy_spec(3)
    result = CampaignRunner().run(spec)
    assert spy["calls"] == [0, 1, 2]
    assert [o["i"] for o in result.object_list()] == [0, 1, 2]
    assert len(result.executed) == 3 and not result.reused
    assert result.summary()["resume_hit_rate"] == 0.0


# -- resumability ---------------------------------------------------------------


def test_interrupted_campaign_resumes_with_zero_reexecution(spy, tmp_path):
    spec = _spy_spec(6)
    run_dir = tmp_path / "run"

    # Reference: a clean uninterrupted run (no DB).
    reference = CampaignRunner().run(spec).values()
    spy["calls"] = []

    # Interrupted run: unit 3 dies mid-campaign.
    spy["fail_on"] = 3
    with pytest.raises(RuntimeError, match="injected failure"):
        CampaignRunner(run_dir=run_dir).run(spec)
    assert spy["calls"] == [0, 1, 2]
    db = RunDB.open(run_dir)
    assert db.status_counts() == {DONE: 3, FAILED: 1}

    # Resume: only the failed and never-started units execute.
    spy["fail_on"] = None
    spy["calls"] = []
    result = CampaignRunner(run_dir=run_dir).run(spec)
    assert spy["calls"] == [3, 4, 5], "completed units must not re-execute"
    assert len(result.reused) == 3 and len(result.executed) == 3
    assert result.resume_hit_rate == 0.5

    # The combined record set is bit-identical to the clean run.
    assert result.values() == reference
    assert RunDB.open(run_dir).values() == reference

    # A second resume re-executes nothing at all.
    spy["calls"] = []
    again = CampaignRunner(run_dir=run_dir).run(spec)
    assert spy["calls"] == []
    assert again.resume_hit_rate == 1.0
    assert again.values() == reference


def test_resume_survives_a_truncated_trailing_record(spy, tmp_path):
    spec = _spy_spec(4)
    run_dir = tmp_path / "run"
    reference = CampaignRunner().run(spec).values()
    spy["calls"] = []

    CampaignRunner(run_dir=run_dir).run(spec)
    assert spy["calls"] == [0, 1, 2, 3]

    # Chop the DB mid-record, as a kill -9 during the final append would.
    db = RunDB.open(run_dir)
    text = db.units_path.read_text()
    lines = text.splitlines(keepends=True)
    db.units_path.write_text("".join(lines[:-1]) + lines[-1][:20])

    spy["calls"] = []
    result = CampaignRunner(run_dir=run_dir).run(spec)
    assert spy["calls"] == [3], "only the truncated unit re-executes"
    assert result.values() == reference
    # The on-disk DB healed too: the re-appended record starts a clean line.
    assert RunDB.open(run_dir).values() == reference


def test_no_resume_reexecutes_everything(spy, tmp_path):
    spec = _spy_spec(3)
    run_dir = tmp_path / "run"
    CampaignRunner(run_dir=run_dir).run(spec)
    spy["calls"] = []
    result = CampaignRunner(run_dir=run_dir).run(spec, resume=False)
    assert spy["calls"] == [0, 1, 2]
    assert not result.reused


def test_run_dir_rejects_a_different_spec(spy, tmp_path):
    run_dir = tmp_path / "run"
    CampaignRunner(run_dir=run_dir).run(_spy_spec(3))
    with pytest.raises(CampaignValidationError, match="different"):
        CampaignRunner(run_dir=run_dir).run(_spy_spec(4))


# -- sharding -------------------------------------------------------------------


def test_parse_shard():
    assert parse_shard("1/3") == (0, 3)
    assert parse_shard("3/3") == (2, 3)
    for bad in ("0/3", "4/3", "x/3", "3", "1/0"):
        with pytest.raises(CampaignValidationError):
            parse_shard(bad)


def test_shard_sets_are_disjoint_and_complete():
    units = _spy_spec(7).units()
    n = 3
    seen = []
    for i in range(n):
        assigned = shard_units(units, (i, n))
        keys = [u.key for u, _ in assigned]
        assert not set(keys) & set(seen)
        seen.extend(keys)
    assert sorted(seen) == sorted(u.key for u in units)


def test_sharded_runs_merge_to_the_single_worker_result(spy, tmp_path):
    spec = _spy_spec(7)
    single = CampaignRunner(run_dir=tmp_path / "single").run(spec)
    spy["calls"] = []

    executed_per_shard = []
    for i in range(3):
        CampaignRunner(run_dir=tmp_path / f"shard{i}").run(
            spec, shard=(i, 3))
        executed_per_shard.append(list(spy["calls"]))
        spy["calls"] = []
    # Every unit executed exactly once across the three workers.
    flat = [i for calls in executed_per_shard for i in calls]
    assert sorted(flat) == list(range(7))

    merged = merge_run_dbs(
        [tmp_path / f"shard{i}" for i in range(3)], tmp_path / "merged")
    assert merged.values() == RunDB.open(tmp_path / "single").values()
    assert merged.values() == single.values()

    # Resuming the full campaign from the merged DB re-executes nothing.
    result = CampaignRunner(run_dir=tmp_path / "merged").run(spec)
    assert spy["calls"] == []
    assert result.resume_hit_rate == 1.0


# -- engine counter surfacing ---------------------------------------------------


def test_records_carry_engine_cache_deltas(tmp_path):
    from repro.sweep.engine import SweepEngine

    spec = CampaignSpec(
        name="counters", title="engine counter surfacing",
        kind="pipefisher",
        fixed=(("arch", "BERT-Base"), ("b_micro", 4), ("depth", 4),
               ("hardware", "P100"), ("n_micro", 4)),
        grid=(("schedule", ("gpipe", "1f1b")),),
    )
    result = CampaignRunner(engine=SweepEngine(),
                            run_dir=tmp_path / "run").run(spec)
    for record in result.records.values():
        eng = record["engine"]
        assert eng["runs"] == 1
        for cache in ("templates", "stage_costs"):
            for counter in ("hits", "misses", "evictions"):
                assert f"{cache}_{counter}" in eng
    # Both schedules share stage costs: the second unit hits that cache.
    second = result.records[spec.units()[1].key]["engine"]
    assert second["stage_costs_hits"] >= 1
    total = result.summary()["engine"]
    assert total["runs"] == 2
    # The per-unit deltas sum to the campaign-level delta.
    for key in total:
        assert total[key] == sum(
            r["engine"][key] for r in result.records.values())
