"""Parallel campaign execution: ``jobs=N`` workers over one run DB.

The contract mirrors sharding: N workers each run a disjoint shard in a
private DB copy, the parent merges and replays — the merged run DB's
values must equal a single-worker run's exactly, and resuming a jobs
run must execute nothing.  Uses the registered ``zb`` campaign (a real
engine-backed grid) because unit kinds registered inside a test module
don't exist in worker processes.
"""

import json

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.registry import get_campaign
from repro.campaign.rundb import RunDB
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignValidationError


@pytest.fixture(scope="module")
def spec():
    return get_campaign("zb").spec


def test_jobs_run_matches_single_worker(spec, tmp_path):
    single = CampaignRunner(run_dir=tmp_path / "single").run(spec)
    jobs = CampaignRunner(run_dir=tmp_path / "jobs").run(spec, jobs=2)
    assert sorted(jobs.executed) == sorted(single.executed)
    assert not jobs.reused
    assert jobs.values() == single.values()
    assert (RunDB.open(tmp_path / "jobs").values()
            == RunDB.open(tmp_path / "single").values())
    # Worker shards left behind for post-mortem must also be valid DBs.
    for i in (1, 2):
        wd = tmp_path / "jobs" / f"worker-{i}"
        assert (wd / "units.jsonl").exists()


def test_jobs_resume_executes_zero(spec, tmp_path):
    run_dir = tmp_path / "run"
    CampaignRunner(run_dir=run_dir).run(spec, jobs=2)
    again = CampaignRunner(run_dir=run_dir).run(spec, jobs=2)
    assert not again.executed
    assert len(again.reused) == len(spec.units())


def test_jobs_requires_run_dir(spec):
    with pytest.raises(CampaignValidationError, match="run_dir"):
        CampaignRunner().run(spec, jobs=2)


def test_jobs_rejects_explicit_shard(spec, tmp_path):
    with pytest.raises(CampaignValidationError, match="shard"):
        CampaignRunner(run_dir=tmp_path / "run").run(spec, jobs=2,
                                                     shard=(0, 2))


def test_jobs_records_carry_phase_and_batch_counters(spec, tmp_path):
    result = CampaignRunner(run_dir=tmp_path / "run").run(spec, jobs=2)
    for rec in result.records.values():
        eng = rec["engine"]
        for phase in ("template_build", "retime", "fill", "report"):
            assert f"phase_{phase}_s" in eng
        for counter in ("native_evals", "delta_retimes", "batched_points"):
            assert counter in eng
    delta = result.engine_delta
    assert delta["runs"] == len(spec.units())
    assert delta["phase_template_build_s"] >= 0.0


def test_cli_jobs_flag(tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert campaign_main(["run", "zb", "--run-dir", str(run_dir),
                          "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "executed 18, reused 0/18" in out
    assert campaign_main(["run", "zb", "--run-dir", str(run_dir),
                          "--jobs", "2"]) == 0
    assert "executed 0, reused 18/18" in capsys.readouterr().out
    assert campaign_main(["status", "--run-dir", str(run_dir)]) == 0
    assert "engine phase seconds:" in capsys.readouterr().out
    # records on disk are plain JSON with the new counters
    rec = json.loads((run_dir / "units.jsonl").read_text()
                     .splitlines()[0])
    assert "phase_retime_s" in rec["engine"]


def test_cli_jobs_validation(tmp_path, capsys):
    assert campaign_main(["run", "zb", "--jobs", "2"]) == 2
    assert "--run-dir" in capsys.readouterr().err
    assert campaign_main(["run", "zb", "--run-dir", str(tmp_path / "r"),
                          "--jobs", "2", "--shard", "1/2"]) == 2
    assert "--shard" in capsys.readouterr().err
