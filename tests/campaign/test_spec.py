"""CampaignSpec validation, expansion order, and serialization."""

from __future__ import annotations

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    CampaignValidationError,
    UnitSpec,
    canonical_json,
    unit_key,
)


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        name="demo",
        title="demo campaign",
        kind="perf_report",
        fixed=(("arch", "BERT-Base"), ("hardware", "P100"),
               ("schedule", "chimera")),
        grid=(("b_micro", (1, 4)), ("depth", (4, 8))),
    )
    base.update(overrides)
    return CampaignSpec(**base)


# -- canonical point hash -------------------------------------------------------


def test_unit_key_is_deterministic_and_content_only():
    k1 = unit_key("pipefisher", {"a": 1, "b": 2.5})
    k2 = unit_key("pipefisher", {"b": 2.5, "a": 1})
    assert k1 == k2
    assert len(k1) == 16
    assert int(k1, 16) >= 0  # hex
    assert unit_key("pipefisher", {"a": 1}) != unit_key("other", {"a": 1})
    assert unit_key("pipefisher", {"a": 1}) != unit_key("pipefisher", {"a": 2})


def test_identical_units_share_keys_across_campaigns():
    """The hash addresses the unit's content, never the declaring campaign."""
    a = _spec(name="campaign_a")
    b = _spec(name="campaign_b")
    assert a.unit_keys() == b.unit_keys()


def test_canonical_json_is_stable():
    assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'
    with pytest.raises(ValueError):
        canonical_json(float("nan"))


# -- UnitSpec -------------------------------------------------------------------


def test_unit_spec_sorts_params():
    u = UnitSpec(kind="k", params=(("z", 1), ("a", 2)))
    assert u.params == (("a", 2), ("z", 1))
    assert u.params_dict() == {"a": 2, "z": 1}


def test_unit_spec_rejects_duplicates_and_non_scalars():
    with pytest.raises(CampaignValidationError):
        UnitSpec(kind="k", params=(("a", 1), ("a", 2)))
    with pytest.raises(CampaignValidationError):
        UnitSpec.make("k", a=[1, 2])
    with pytest.raises(CampaignValidationError):
        UnitSpec(kind="", params=())


# -- validation -----------------------------------------------------------------


def test_validation_errors():
    with pytest.raises(CampaignValidationError, match="slug"):
        _spec(name="not a slug!")
    with pytest.raises(CampaignValidationError, match="title"):
        _spec(title="")
    with pytest.raises(CampaignValidationError, match="duplicate grid axes"):
        _spec(grid=(("b_micro", (1,)), ("b_micro", (2,))))
    with pytest.raises(CampaignValidationError, match="both fixed and swept"):
        _spec(grid=(("arch", ("BERT-Base",)),))
    with pytest.raises(CampaignValidationError, match="non-empty"):
        _spec(grid=(("b_micro", ()),))
    with pytest.raises(CampaignValidationError, match="repeats values"):
        _spec(grid=(("b_micro", (1, 1)),))
    with pytest.raises(CampaignValidationError, match="default unit kind"):
        _spec(kind=None)
    with pytest.raises(CampaignValidationError, match="declares no units"):
        CampaignSpec(name="empty", title="t")
    with pytest.raises(CampaignValidationError, match="seeds must be ints"):
        _spec(seeds=("x",))
    with pytest.raises(CampaignValidationError, match="JSON scalars"):
        _spec(fixed=(("arch", object()),))


def test_duplicate_expansion_rejected():
    u = UnitSpec.make("k", a=1)
    with pytest.raises(CampaignValidationError, match="duplicate unit keys"):
        CampaignSpec(name="dup", title="t", explicit_units=(u, u))


# -- expansion ------------------------------------------------------------------


def test_grid_expansion_order_last_axis_fastest():
    spec = _spec()
    points = [(u.params_dict()["b_micro"], u.params_dict()["depth"])
              for u in spec.units()]
    assert points == [(1, 4), (1, 8), (4, 4), (4, 8)]
    for u in spec.units():
        assert u.params_dict()["arch"] == "BERT-Base"


def test_kind_only_campaign_is_single_unit():
    spec = CampaignSpec(name="single", title="t", kind="table3_check")
    assert len(spec.units()) == 1
    assert spec.units()[0].kind == "table3_check"
    assert spec.units()[0].params == ()


def test_seeds_multiply_units():
    spec = _spec(seeds=(0, 1, 2))
    assert len(spec.units()) == 4 * 3
    seeds = [u.params_dict()["seed"] for u in spec.units()]
    assert seeds[:3] == [0, 1, 2]


def test_explicit_units_follow_grid():
    extra = UnitSpec.make("perf_report", special=True)
    spec = _spec(explicit_units=(extra,))
    assert spec.units()[-1] == extra
    assert len(spec.units()) == 5


# -- serialization --------------------------------------------------------------


def test_round_trip_through_json():
    spec = _spec(seeds=(0, 1), golden="demo",
                 artifacts=("figure series: demo",),
                 explicit_units=(UnitSpec.make("perf_report", special=True),))
    back = CampaignSpec.from_json(spec.to_json())
    assert back == spec
    assert back.unit_keys() == spec.unit_keys()


def test_from_dict_rejects_unknown_fields():
    data = _spec().to_dict()
    data["surprise"] = 1
    with pytest.raises(CampaignValidationError, match="unknown campaign"):
        CampaignSpec.from_dict(data)
