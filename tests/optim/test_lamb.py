"""LAMB and NVLAMB: trust ratio and global-norm pre-scaling."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import LAMB, NVLAMB


class TestLAMB:
    def test_converges_on_quadratic(self):
        p = Parameter(np.full(4, 10.0, dtype=np.float32))
        opt = LAMB([p], lr=0.05, weight_decay=0.0)
        for _ in range(300):
            p.grad = (p.data - 3.0).astype(np.float32)
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=0.05)

    def test_trust_ratio_scales_update_with_weight_norm(self):
        """Same gradient, bigger weights -> proportionally bigger step."""
        small = Parameter(np.full(4, 0.1, dtype=np.float32))
        big = Parameter(np.full(4, 10.0, dtype=np.float32))
        opt = LAMB([small, big], lr=0.01, weight_decay=0.0, clamp_trust=None)
        small.grad = np.full(4, 1.0, dtype=np.float32)
        big.grad = np.full(4, 1.0, dtype=np.float32)
        s0, b0 = small.data.copy(), big.data.copy()
        opt.step()
        small_step = np.abs(small.data - s0).max()
        big_step = np.abs(big.data - b0).max()
        assert big_step / small_step == pytest.approx(100.0, rel=1e-2)

    def test_trust_clamped(self):
        p = Parameter(np.full(4, 1e6, dtype=np.float32))
        opt = LAMB([p], lr=0.01, weight_decay=0.0, clamp_trust=10.0)
        p.grad = np.full(4, 1.0, dtype=np.float32)
        before = p.data.copy()
        opt.step()
        # |update| <= lr * clamp * |adam direction| and direction ~ 1.
        assert np.abs(p.data - before).max() <= 0.01 * 10.0 * 1.5

    def test_zero_weight_norm_trust_is_one(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = LAMB([p], lr=0.01, weight_decay=0.0)
        p.grad = np.full(4, 1.0, dtype=np.float32)
        opt.step()
        assert np.abs(p.data).max() > 0  # no division blow-up, step taken

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            LAMB([Parameter(np.zeros(1))], betas=(0.9, 1.2))


class TestNVLAMB:
    def test_gradient_scale_invariance(self):
        """NVLAMB pre-normalizes by the global norm: scaling every gradient
        by a constant must produce the identical update."""
        def run(scale):
            a = Parameter(np.full(3, 2.0, dtype=np.float32))
            b = Parameter(np.full(3, -1.0, dtype=np.float32))
            opt = NVLAMB([a, b], lr=0.01)
            a.grad = np.array([1.0, 2.0, 3.0], dtype=np.float32) * scale
            b.grad = np.array([-1.0, 0.5, 2.0], dtype=np.float32) * scale
            opt.step()
            return a.data.copy(), b.data.copy()

        a1, b1 = run(1.0)
        a2, b2 = run(1e3)
        np.testing.assert_allclose(a1, a2, rtol=1e-5)
        np.testing.assert_allclose(b1, b2, rtol=1e-5)

    def test_converges_on_quadratic(self):
        p = Parameter(np.full(4, 10.0, dtype=np.float32))
        opt = NVLAMB([p], lr=0.05, weight_decay=0.0)
        for _ in range(400):
            p.grad = (p.data - 3.0).astype(np.float32)
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=0.1)

    def test_zero_gradient_no_nan(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = NVLAMB([p], lr=0.01, weight_decay=0.0)
        p.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert np.isfinite(p.data).all()
