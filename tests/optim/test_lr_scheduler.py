"""Learning-rate schedules (Appendix B.2 / Fig. 8)."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    ConstantSchedule,
    PolyWarmupSchedule,
    kfac_schedule,
    nvlamb_schedule,
)


class TestPolyWarmup:
    def test_linear_warmup(self):
        s = PolyWarmupSchedule(base_lr=1.0, warmup_steps=10, total_steps=100)
        assert s.lr_at(1) == pytest.approx(0.1)
        assert s.lr_at(5) == pytest.approx(0.5)
        assert s.lr_at(10) == pytest.approx(1.0)

    def test_poly_decay_power_half(self):
        s = PolyWarmupSchedule(base_lr=1.0, warmup_steps=0, total_steps=100, power=0.5)
        assert s.lr_at(36) == pytest.approx(np.sqrt(0.64))
        assert s.lr_at(100) == pytest.approx(0.0)

    def test_monotone_decay_after_warmup(self):
        s = PolyWarmupSchedule(base_lr=1.0, warmup_steps=10, total_steps=100)
        lrs = s.series(100)
        assert np.all(np.diff(lrs[10:]) <= 1e-9)

    def test_drives_optimizer(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([p], lr=999.0)
        s = PolyWarmupSchedule(1.0, 2, 10, optimizer=opt)
        s.step()
        assert opt.lr == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolyWarmupSchedule(1.0, warmup_steps=-1, total_steps=10)
        with pytest.raises(ValueError):
            PolyWarmupSchedule(1.0, warmup_steps=20, total_steps=10)

    def test_constant_schedule(self):
        s = ConstantSchedule(0.3)
        assert s.lr_at(1) == s.lr_at(1000) == 0.3


class TestPaperSchedules:
    def test_nvlamb_defaults(self):
        s = nvlamb_schedule()
        assert s.warmup_steps == 2000
        assert s.total_steps == 7038
        assert s.base_lr == pytest.approx(6e-3)

    def test_kfac_shorter_warmup(self):
        """The one hyperparameter the paper changes (§4)."""
        assert kfac_schedule().warmup_steps == 600

    def test_kfac_lr_higher_until_about_2000(self):
        """Fig. 8: K-FAC's LR exceeds NVLAMB's until ~step 2,000 (the exact
        crossover is where NVLAMB's warmup line meets K-FAC's decay curve,
        slightly before 2,000)."""
        nv = nvlamb_schedule().series(7038)
        kf = kfac_schedule().series(7038)
        ahead = np.nonzero(kf > nv + 1e-12)[0]
        crossover = ahead[-1] + 1
        assert 1500 < crossover <= 2000
        assert np.all(kf[:crossover - 1] >= nv[:crossover - 1] - 1e-12)
        np.testing.assert_allclose(kf[2000:], nv[2000:], rtol=1e-9)
