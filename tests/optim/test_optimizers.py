"""SGD, Adam, AdamW: update rules and convergence on a quadratic."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, clip_grad_norm, global_grad_norm


def quadratic_grad(p: Parameter) -> None:
    """Gradient of f(x) = 0.5 ||x - 3||^2."""
    p.grad = (p.data - 3.0).astype(np.float32)


def run_steps(opt, p, n=200):
    for _ in range(n):
        quadratic_grad(p)
        opt.step()
    return p


class TestBase:
    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_zero_grad_clears(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        p.grad = np.ones(2, dtype=np.float32)
        SGD([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        run_steps(SGD([p], lr=0.5), p)
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        p1 = Parameter(np.zeros(1, dtype=np.float32))
        p2 = Parameter(np.zeros(1, dtype=np.float32))
        run_steps(SGD([p1], lr=0.05), p1, n=20)
        run_steps(SGD([p2], lr=0.05, momentum=0.9), p2, n=20)
        assert abs(p2.data[0] - 3.0) < abs(p1.data[0] - 3.0)

    def test_single_step_value(self):
        p = Parameter(np.zeros(1, dtype=np.float32))
        p.grad = np.array([2.0], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [-0.2])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(1, 10.0, dtype=np.float32))
        p.grad = np.zeros(1, dtype=np.float32)
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        opt.step()
        assert p.data[0] < 10.0

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        run_steps(Adam([p], lr=0.1), p, n=500)
        np.testing.assert_allclose(p.data, np.full(3, 3.0), atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, |step 1| ~ lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.zeros(1, dtype=np.float32))
            p.grad = np.array([scale], dtype=np.float32)
            Adam([p], lr=0.01).step()
            assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_l2_decay_enters_moments(self):
        p = Parameter(np.full(1, 5.0, dtype=np.float32))
        p.grad = np.zeros(1, dtype=np.float32)
        Adam([p], lr=0.1, weight_decay=0.1).step()
        assert p.data[0] < 5.0


class TestAdamW:
    def test_decoupled_decay(self):
        """AdamW decay is applied directly, independent of moments."""
        p = Parameter(np.full(1, 5.0, dtype=np.float32))
        p.grad = np.zeros(1, dtype=np.float32)
        AdamW([p], lr=0.1, weight_decay=0.1).step()
        # update = lr * wd * theta = 0.05.
        np.testing.assert_allclose(p.data, [4.95], atol=1e-6)


class TestGradUtils:
    def test_global_grad_norm(self):
        a = Parameter(np.zeros(2, dtype=np.float32))
        b = Parameter(np.zeros(2, dtype=np.float32))
        a.grad = np.array([3.0, 0.0], dtype=np.float32)
        b.grad = np.array([0.0, 4.0], dtype=np.float32)
        assert global_grad_norm([a, b]) == pytest.approx(5.0)

    def test_clip_scales_down(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([30.0, 40.0], dtype=np.float32)
        pre = clip_grad_norm([p], 5.0)
        assert pre == pytest.approx(50.0)
        assert global_grad_norm([p]) == pytest.approx(5.0, rel=1e-5)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([p], 5.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])
