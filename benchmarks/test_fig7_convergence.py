"""Figure 7: Phase-1 pretraining convergence, NVLAMB vs K-FAC.

Paper: K-FAC reaches NVLAMB's final loss (3.41) in 42.0% of the steps and
48.7% of the wall-clock time (using Chimera step times measured on 256
P100s: 847.8 ms/step NVLAMB, 980.2 ms/step PipeFisher).

Scaled-down protocol (DESIGN.md §2): structurally identical BERT on the
synthetic corpus; warmup fractions preserved (2000/7038 vs 600/7038); same
base LR for both optimizers — the paper's single-hyperparameter change.
Wall-clock times come from our own Chimera simulation of the same setup.

The shape claims asserted:
  1. K-FAC's final loss is lower than NVLAMB's;
  2. K-FAC reaches intermediate loss targets in fewer steps (ratio < 1);
  3. PipeFisher's step-time premium (<10%) does not erase the advantage.
The magnitude (42%) is not reproducible at mini-batch 32 vs the paper's
8,192 — see EXPERIMENTS.md for the discussion.
"""

import numpy as np

from benchmarks.conftest import record
from repro.experiments.fig7 import FIG7_PAPER, format_fig7, run_fig7
from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.hardware import P100
from repro.pipefisher import PipeFisherRun
from repro.training.convergence import smooth_loss


def test_fig7_convergence(once, benchmark):
    # Step times from our pipeline simulator, same config as the paper's
    # wall-clock source (Chimera, BERT-Base, 4 stages, 64 model copies).
    sim = PipeFisherRun(
        schedule="chimera", arch=BERT_BASE, hardware=P100, b_micro=32,
        depth=4, n_micro=4, layers_per_stage=3, world_multiplier=32,
        inversion_parallel=True,
    ).execute()

    result = once(
        run_fig7,
        total_steps=160,
        nvlamb_step_time_s=sim.baseline_step_time,
        kfac_step_time_s=sim.pipefisher_step_time,
    )
    print("\n=== Figure 7: NVLAMB vs K-FAC convergence ===")
    print(format_fig7(result))
    print(f"\nsimulated step times: NVLAMB {sim.baseline_step_time*1000:.1f} ms "
          f"(paper {FIG7_PAPER['nvlamb_step_time_s']*1000:.1f}), "
          f"PipeFisher {sim.pipefisher_step_time*1000:.1f} ms "
          f"(paper {FIG7_PAPER['kfac_step_time_s']*1000:.1f})")

    sl = smooth_loss(result.nvlamb_losses)
    sk = smooth_loss(result.kfac_losses)
    print("\nloss curves (smoothed, every 20 steps):")
    for i in range(0, result.total_steps, 20):
        print(f"  step {i:4d}  NVLAMB {sl[i]:.4f}  K-FAC {sk[i]:.4f}")

    record(
        benchmark,
        nvlamb_final=round(result.nvlamb_final, 4),
        kfac_final=round(result.kfac_final, 4),
        step_fraction_paper=FIG7_PAPER["step_fraction"],
        step_fraction_measured=result.step_fraction,
        target_ratios={str(k): round(v, 3) for k, v in result.target_ratios.items()},
        sim_step_nvlamb_ms=round(sim.baseline_step_time * 1000, 1),
        sim_step_kfac_ms=round(sim.pipefisher_step_time * 1000, 1),
    )

    # Shape claim 1: K-FAC converges to a lower final loss.
    assert result.kfac_final < result.nvlamb_final
    # Shape claim 2: K-FAC leads at intermediate targets.
    assert result.target_ratios, "no intermediate target was crossed by both"
    assert min(result.target_ratios.values()) < 1.0
    # Shape claim 3: step-time premium stays below 10%.
    premium = sim.pipefisher_step_time / sim.baseline_step_time - 1.0
    assert 0.0 < premium < 0.10
    # Simulated NVLAMB step time within 15% of the paper's measurement.
    assert abs(sim.baseline_step_time - FIG7_PAPER["nvlamb_step_time_s"]) \
        / FIG7_PAPER["nvlamb_step_time_s"] < 0.15
