"""Figures 11-16: Chimera+PipeFisher sweeps for all Table 3 architectures.

Fig. 11/12: BERT-Base/Large (B_micro up to 64); Fig. 13/14: T5-Base/Large
(S=512); Fig. 15/16: OPT-125M/350M (S=2048, B_micro up to 8 only — long
sequences exhaust memory at larger micro-batches).
"""

import pytest

from benchmarks.conftest import record
from repro.experiments.perfmodel_figs import run_arch_sweep, run_fig6_sweep

SWEEPS = {
    "BERT-Large": dict(b_micro_values=(1, 2, 4, 8, 16, 32, 64)),
    "T5-Base": dict(b_micro_values=(1, 2, 4, 8, 16, 32, 64)),
    "T5-Large": dict(b_micro_values=(1, 2, 4, 8, 16, 32, 64)),
    "OPT-125M": dict(b_micro_values=(1, 2, 4, 8)),
    "OPT-350M": dict(b_micro_values=(1, 2, 4, 8)),
}


@pytest.mark.parametrize("arch", list(SWEEPS))
def test_arch_sweep(arch, once, benchmark):
    out = once(run_arch_sweep, arch, SWEEPS[arch]["b_micro_values"])
    p1 = out[("P100", 1)]
    bs = SWEEPS[arch]["b_micro_values"]
    print(f"\n=== Figures 11-16 panel: {arch} (Chimera, P100, N=D) ===")
    print(f"{'B':>4s} {'D':>4s} {'thr':>9s} {'ratio':>7s} {'vs skip':>8s}")
    for b in bs:
        for d in (8, 16):
            r = p1.grid[(b, d)]
            print(f"{b:4d} {d:4d} {r.throughput_pipeline:9.2f} "
                  f"{r.ratio:7.2f} {r.speedup_vs_kfac_skip:8.3f}")

    # Universal shapes: ratio falls with B and D on every architecture.
    for d in (8, 16):
        series = [p1.grid[(b, d)].ratio for b in bs]
        assert series == sorted(series, reverse=True), (arch, d)
    ratios_d = [p1.grid[(bs[-1], d)].ratio for d in (4, 8, 16, 32)]
    assert ratios_d == sorted(ratios_d, reverse=True), arch

    record(benchmark, arch=arch,
           ratio_largest_b_d8=round(p1.grid[(bs[-1], 8)].ratio, 2),
           throughput_largest_b_d8=round(
               p1.grid[(bs[-1], 8)].throughput_pipeline, 2))


def test_long_sequences_lower_ratio(once, benchmark):
    """Paper: 'Transformers with longer sequence lengths S have larger
    bubbles and smaller ratios.'  BERT (128) vs T5 (512) vs OPT (2048)."""
    def run():
        bert = run_fig6_sweep("BERT-Base", ("P100",), (8,), (8,), (1,))
        t5 = run_fig6_sweep("T5-Base", ("P100",), (8,), (8,), (1,))
        opt = run_fig6_sweep("OPT-125M", ("P100",), (8,), (8,), (1,))
        return (bert[("P100", 1)].grid[(8, 8)].ratio,
                t5[("P100", 1)].grid[(8, 8)].ratio,
                opt[("P100", 1)].grid[(8, 8)].ratio)

    bert_r, t5_r, opt_r = once(run)
    print(f"\nratio @ B=8, D=8: BERT-Base {bert_r:.2f} > T5-Base {t5_r:.2f} "
          f"> OPT-125M {opt_r:.2f}")
    record(benchmark, bert=round(bert_r, 2), t5=round(t5_r, 2),
           opt=round(opt_r, 2))
    assert bert_r > t5_r > opt_r
