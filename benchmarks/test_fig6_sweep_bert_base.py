"""Figures 6/11: Chimera + PipeFisher sweeps for BERT-Base across hardware.

Regenerates the throughput, (curv+inv)/bubble ratio, and speedup-vs-
"K-FAC+skip" series over B_micro in {1..64}, D in {4..32},
N_micro in {D, 2D, 3D} on P100 / V100 / RTX3090, and asserts every scaling
observation from the paper's bullet list.
"""

from benchmarks.conftest import record
from repro.experiments.perfmodel_figs import run_fig6_sweep


def test_fig6_sweep(once, benchmark):
    out = once(run_fig6_sweep)
    print("\n=== Figure 6: Chimera w/ PipeFisher sweeps (BERT-Base) ===")
    print(f"{'hw':>8s} {'NF':>3s} {'B':>4s} {'D':>4s} {'thr':>8s} "
          f"{'ratio':>7s} {'vs skip':>8s}")
    for (hw, factor), fig in sorted(out.items()):
        for (b, d) in ((8, 8), (32, 8), (64, 16)):
            r = fig.grid[(b, d)]
            print(f"{hw:>8s} {factor:3d} {b:4d} {d:4d} "
                  f"{r.throughput_pipeline:8.1f} {r.ratio:7.2f} "
                  f"{r.speedup_vs_kfac_skip:8.3f}")

    p1 = out[("P100", 1)]
    # Paper observation: ratio falls with B_micro and with D.
    for d in (8, 16):
        series = [p1.grid[(b, d)].ratio for b in (1, 4, 16, 64)]
        assert series == sorted(series, reverse=True)
    for b in (8, 32):
        series = [p1.grid[(b, d)].ratio for d in (4, 8, 16, 32)]
        assert series == sorted(series, reverse=True)
    # Ratio rises with N_micro.
    assert out[("P100", 3)].grid[(32, 8)].ratio > p1.grid[(32, 8)].ratio
    # Speedup vs K-FAC+skip peaks at N=D with large B (paper: up to ~1.4x).
    big = p1.grid[(64, 8)].speedup_vs_kfac_skip
    small = out[("P100", 3)].grid[(2, 8)].speedup_vs_kfac_skip
    assert 1.05 < big < 1.6
    assert small < big

    record(benchmark, speedup_large_b=round(big, 3),
           speedup_small_b=round(small, 3),
           ratio_b32_d8=round(p1.grid[(32, 8)].ratio, 2))
