"""Figure 10: performance models for BERT-Large (GPipe/1F1B and Chimera)."""

from benchmarks.conftest import record
from repro.experiments.perfmodel_figs import format_perf_figure, run_fig9_10


def test_fig10_bert_large(once, benchmark):
    def run():
        return (run_fig9_10("BERT-Large", "gpipe"),
                run_fig9_10("BERT-Large", "chimera"))

    gpipe, chimera = once(run)
    print("\n=== Figure 10: BERT-Large performance model ===")
    print(format_perf_figure(gpipe))
    print()
    print(format_perf_figure(chimera))

    base = run_fig9_10("BERT-Base", "chimera")
    for key in chimera.grid:
        # Large model: lower throughput than Base at the same config.
        assert (chimera.grid[key].throughput_pipeline
                < base.grid[key].throughput_pipeline), key
        # Chimera beats GPipe on throughput for Large too.
        assert (chimera.grid[key].throughput_pipeline
                > gpipe.grid[key].throughput_pipeline), key

    # Memory: BERT-Large at B=32, D=16 approaches P100 capacity without R
    # (the paper plots ~7-8 GB for GPipe/1F1B).
    m = gpipe.grid[(32, 16)].memory.total_gb()
    record(benchmark, bert_large_mem_gb_b32_d16=round(m, 2))
    assert 3.0 < m < 16.0
