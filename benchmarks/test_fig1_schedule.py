"""Figure 1: schematic GPipe vs PipeFisher-for-GPipe schedules."""

from benchmarks.conftest import record
from repro.experiments.fig1 import format_fig1, run_fig1


def test_fig1_schematic(once, benchmark):
    result = once(run_fig1)
    print("\n=== Figure 1: GPipe vs PipeFisher for GPipe ===")
    print(format_fig1(result))
    r = result.report
    record(
        benchmark,
        baseline_utilization=round(r.baseline_utilization, 4),
        pipefisher_utilization=round(r.pipefisher_utilization, 4),
        refresh_steps=r.refresh_steps,
    )
    assert r.refresh_steps == 2  # the schematic's two-step refresh cycle
    assert r.pipefisher_utilization > r.baseline_utilization
