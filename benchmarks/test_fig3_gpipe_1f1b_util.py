"""Figure 3: GPipe and 1F1B GPU utilization with/without PipeFisher.

Paper: GPipe 41.7% -> 89.0% (86.2% with data+inversion parallelism),
1F1B 41.5% -> 88.7% (86.3%); curvature+inverse refreshed within 2 steps.
"""

from benchmarks.conftest import record
from repro.experiments.fig3 import FIG3_PAPER, format_fig3, run_fig3
from repro.profiler import render_timeline


def test_fig3_utilizations(once, benchmark):
    result = once(run_fig3)
    print("\n=== Figure 3: GPipe / 1F1B profiles (BERT-Base, 4 stages) ===")
    print(format_fig3(result))
    print("\nGPipe w/ PipeFisher timeline (2 steps):")
    rep = result.panels["gpipe"]
    print(render_timeline(rep.pipefisher_timeline, width=110,
                          window=(0.0, 2 * rep.pipefisher_step_time)))
    measured = result.utilizations()
    for key, paper in FIG3_PAPER.items():
        if key == "max_refresh_steps":
            continue
        record(benchmark, **{f"{key}_paper": paper,
                             f"{key}_measured": round(measured[key], 4)})
        assert abs(measured[key] - paper) < 0.08, key
    for sched in ("gpipe", "1f1b"):
        assert result.panels[sched].refresh_steps <= 2
