"""Interleaved-1F1B extension sweep: schedule tradeoff as invariants.

For every (arch, P, v) row the same model runs as plain 1F1B and as
Megatron-style interleaved 1F1B on the same devices.  The §3.3 tradeoff
the paper establishes for Chimera must extend to virtual stages: fewer
bubbles -> faster step and higher baseline utilization, but a longer
curvature-refresh interval once PipeFisher fills what idle time is left.
"""

from benchmarks.conftest import record
from repro.experiments.interleaved import (
    format_interleaved_sweep,
    run_interleaved_sweep,
)


def test_interleaved_sweep(once, benchmark):
    result = once(run_interleaved_sweep)
    print("\n" + format_interleaved_sweep(result))

    for key, row in result.rows.items():
        base, inter = row.one_f_one_b, row.interleaved

        # Interleaving shrinks the warmup/cooldown bubble by ~1/v.
        assert inter.baseline_step_time < base.baseline_step_time, key
        assert inter.baseline_utilization > base.baseline_utilization, key

        # PipeFisher still fills the (smaller) bubbles to high utilization,
        # at the price of a slower refresh than the bubblier 1F1B.
        assert inter.pipefisher_utilization > inter.baseline_utilization + 0.10, key
        assert 0.0 < inter.step_time_overhead < 0.10, key
        assert inter.refresh_steps >= base.refresh_steps, key

    r = result.rows[("BERT-Base", 4, 3, 8)]
    record(benchmark,
           bert_base_step_speedup=round(r.step_speedup, 3),
           bert_base_interleaved_util=round(
               r.interleaved.baseline_utilization, 3),
           bert_base_pf_util=round(
               r.interleaved.pipefisher_utilization, 3))
