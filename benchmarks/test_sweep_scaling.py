"""Sweep engine vs the per-point PipeFisherRun loop, on a Fig. 6-style grid.

The baseline frozen below is the pre-engine sweep path: for every
(hardware, B_micro, depth) point, build both task graphs, simulate both,
build the K-FAC inventory, fill bubbles, and fold the utilizations —
with the stage-cost model memoized across points (the PR 3 state of the
loop).  Two engine measurements sit against it:

* **cold** — a fresh engine per repetition pays template compilation
  inside the timing (the pre-batching headline, floor 5x);
* **steady-state** — structure caches stay warm but every per-template
  timing cache is cleared, so each pass re-times all points through the
  batched native core (one ``(n_points, n_tasks)`` C pass per template
  window).  This is the marginal cost of a new duration table in a
  long campaign — floor **50x**.

Every report from both engine paths is asserted **bit-identical** to
the frozen loop before any speedup is asserted — the engine is only
allowed to be fast by skipping re-derivable structure, never by
approximating.

Emits ``BENCH_sweep.json``.
"""

import time

from benchmarks.conftest import record, write_bench
from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.perfmodel.hardware import HARDWARE
from repro.pipefisher.assignment import BubbleFiller
from repro.pipefisher.runner import PipeFisherRun, clear_stage_costs_memo
from repro.pipefisher.workqueue import build_device_queues
from repro.pipeline.comm import CommModel
from repro.pipeline.executor import simulate_tasks
from repro.pipeline.schedules import PipelineConfig, make_schedule
from repro.profiler.utilization import colored_seconds, utilization
from repro.sweep import SweepEngine

ARCH = "BERT-Base"
HARDWARE_NAMES = ("P100", "V100", "RTX3090")
B_MICRO_VALUES = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)
DEPTH_VALUES = (8, 16)
N_MICRO_FACTOR = 2
#: min-of-N timing on both sides; the engine side gets extra reps
#: because its much shorter wall time is proportionally noisier on a
#: shared CI runner.
BASELINE_REPS = 2
ENGINE_REPS = 3
STEADY_REPS = 5
MIN_COLD_SPEEDUP = 5.0
MIN_STEADY_SPEEDUP = 50.0


def sweep_points():
    """A Fig. 6-style Chimera grid: hardware x B_micro x depth (N = 2D)."""
    arch = ARCHITECTURES[ARCH]
    for hw in HARDWARE_NAMES:
        for depth in DEPTH_VALUES:
            for b in B_MICRO_VALUES:
                yield PipeFisherRun(schedule="chimera", arch=arch,
                                    hardware=HARDWARE[hw], b_micro=b,
                                    depth=depth,
                                    n_micro=N_MICRO_FACTOR * depth)


# -- the frozen per-point loop --------------------------------------------------


def frozen_point(run: PipeFisherRun, memo: dict):
    """One sweep point exactly as the pre-engine runner evaluated it."""
    key = (run.arch, run.hardware, run.b_micro, run.layers_per_stage,
           run.schedule)
    costs = memo.get(key)
    if costs is None:
        costs = compute_stage_costs(
            run.arch, run.hardware, run.b_micro,
            layers_per_stage=run.layers_per_stage,
            overhead_s=host_overhead(run.schedule),
        )
        memo[key] = costs
    comm = CommModel(allreduce_gbs=run.hardware.interconnect_gbs)

    def config(precondition):
        return PipelineConfig(
            depth=run.depth, n_micro=run.n_micro, costs=costs, comm=comm,
            dp=run.dp, world_multiplier=run.world_multiplier,
            recompute=run.recompute, precondition=precondition,
            stage_param_bytes=run.layers_per_stage * run.arch.param_bytes(),
            virtual_chunks=run.virtual_chunks,
        )

    base_builder = make_schedule(run.schedule, config(False))
    base_sim = simulate_tasks(base_builder.build(steps=1),
                              base_builder.num_devices)
    base_span = base_sim.makespan
    base_util = utilization(base_sim.timeline, (0.0, base_span))

    pf_builder = make_schedule(run.schedule, config(True))
    template = simulate_tasks(pf_builder.build(steps=1),
                              pf_builder.num_devices)
    span = template.makespan
    queues = build_device_queues(pf_builder, costs)
    assignment = BubbleFiller(template, queues, dp=run.dp).fill()
    refresh = assignment.refresh_steps
    pf_colored = (refresh * colored_seconds(template.timeline.events)
                  + colored_seconds(assignment.events()))
    pf_util = pf_colored / (pf_builder.num_devices * refresh * span)
    return (base_span, base_util, span, pf_util, refresh,
            assignment.device_refresh_steps)


def engine_numbers(report):
    return (report.baseline_step_time, report.baseline_utilization,
            report.pipefisher_step_time, report.pipefisher_utilization,
            report.refresh_steps, report.device_refresh_steps)


def clear_timings(engine: SweepEngine) -> None:
    """Forget every evaluated duration table but keep compiled structure."""
    for template in engine._templates.values():
        template.timings.clear()


def assert_identical(points, ref, got):
    for point, r, g in zip(points, ref, got):
        assert r == engine_numbers(g), (
            f"engine diverged from the per-point loop at "
            f"{point.hardware.name} B={point.b_micro} D={point.depth}"
        )


def test_sweep_engine_vs_per_point_loop(once, benchmark):
    """Cold >= 5x, steady-state (batched re-timing) >= 50x, bit-identical."""
    # Both sides start cold: the frozen loop gets a fresh local memo per
    # repetition, the engine is rebuilt per repetition, and the runner's
    # process-wide memo is emptied so nothing warmed by earlier tests
    # can leak into either timing.
    clear_stage_costs_memo()
    points = list(sweep_points())

    seed_s = float("inf")
    for _ in range(BASELINE_REPS):
        memo: dict = {}
        t0 = time.perf_counter()
        ref = [frozen_point(p, memo) for p in points]
        seed_s = min(seed_s, time.perf_counter() - t0)

    engine = None
    cold_s = float("inf")
    for _ in range(ENGINE_REPS):
        engine = SweepEngine()  # cold: templates rebuilt inside the timing
        t0 = time.perf_counter()
        got = list(engine.run_many(points))
        cold_s = min(cold_s, time.perf_counter() - t0)
    assert_identical(points, ref, got)

    # Steady state: structure warm, timings cleared — each pass re-times
    # the whole grid through the batched native core.
    steady_s = float("inf")
    for rep in range(STEADY_REPS):
        clear_timings(engine)
        if rep == STEADY_REPS - 1:
            t0 = time.perf_counter()
            got = once(lambda: list(engine.run_many(points)))
            steady_s = min(steady_s, time.perf_counter() - t0)
        else:
            t0 = time.perf_counter()
            got = list(engine.run_many(points))
            steady_s = min(steady_s, time.perf_counter() - t0)
    assert_identical(points, ref, got)

    stats = engine.stats()
    assert stats["templates"].misses == len(DEPTH_VALUES)

    cold_x = seed_s / cold_s
    steady_x = seed_s / steady_s
    print(f"\nfig6-style sweep, {len(points)} points "
          f"({len(DEPTH_VALUES)} templates): per-point loop {seed_s:.3f}s; "
          f"engine cold {cold_s:.3f}s ({cold_x:.1f}x), "
          f"steady-state {steady_s:.3f}s ({steady_x:.1f}x, "
          f"{stats['batched_points']} batched evals)")
    assert cold_x >= MIN_COLD_SPEEDUP, (
        f"expected >= {MIN_COLD_SPEEDUP:.0f}x cold over the per-point "
        f"sweep loop, got {cold_x:.1f}x ({cold_s:.3f}s vs {seed_s:.3f}s)"
    )
    assert steady_x >= MIN_STEADY_SPEEDUP, (
        f"expected >= {MIN_STEADY_SPEEDUP:.0f}x steady-state over the "
        f"per-point sweep loop, got {steady_x:.1f}x "
        f"({steady_s:.3f}s vs {seed_s:.3f}s)"
    )
    record(benchmark, seed_s=round(seed_s, 3), cold_s=round(cold_s, 3),
           steady_s=round(steady_s, 4), cold_speedup=round(cold_x, 1),
           steady_speedup=round(steady_x, 1))
    write_bench(
        "sweep",
        config=dict(
            arch=ARCH,
            schedule="chimera",
            hardware=list(HARDWARE_NAMES),
            b_micro=list(B_MICRO_VALUES),
            depth=list(DEPTH_VALUES),
            n_micro_factor=N_MICRO_FACTOR,
            points=len(points),
            templates=len(DEPTH_VALUES),
            reps=[BASELINE_REPS, ENGINE_REPS, STEADY_REPS],
            identical="all reports bit-identical to the per-point loop "
                      "(also asserted per-field by tests/sweep/)",
            steady_state="structure caches warm, timing caches cleared "
                         "per pass; batched native re-timing",
        ),
        seed_s=round(seed_s, 3),
        engine_cold_s=round(cold_s, 3),
        engine_steady_s=round(steady_s, 4),
        speedup_cold=round(cold_x, 1),
        speedup_steady=round(steady_x, 1),
        min_speedup_cold=MIN_COLD_SPEEDUP,
        min_speedup_steady=MIN_STEADY_SPEEDUP,
        batched_points=stats["batched_points"],
        template_hits=stats["templates"].hits,
        template_misses=stats["templates"].misses,
        stage_cost_misses=stats["stage_costs"].misses,
        reexecutions=stats["reexecutions"],
    )
