"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these probe why PipeFisher's pieces matter:

* bubble filling vs K-FAC+skip vs naive K-FAC (execution strategy);
* steady-state (cyclic) readiness vs cold-start assignment;
* work splitting across bubbles on/off (min_chunk sensitivity);
* Chimera vs GPipe refresh/throughput tradeoff across depths;
* damping sensitivity of K-FAC preconditioning;
* empirical-Fisher EMA (stat_decay) on/off.
"""

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.perfmodel import PipelinePerfModel
from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.perfmodel.hardware import P100
from repro.pipefisher import BubbleFiller, build_device_queues
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks


def _filler(steady_state=True, min_chunk=2e-3):
    costs = compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=3,
                                overhead_s=host_overhead("gpipe"))
    cfg = PipelineConfig(depth=4, n_micro=4, costs=costs, precondition=True,
                         stage_param_bytes=3 * BERT_BASE.param_bytes())
    builder = make_schedule("gpipe", cfg)
    template = simulate_tasks(builder.build(), builder.num_devices)
    queues = build_device_queues(builder, costs)
    return BubbleFiller(template, queues, steady_state=steady_state,
                        min_chunk=min_chunk)


def test_ablation_execution_strategy(once, benchmark):
    """Bubble filling is the whole win: same K-FAC math, different placement."""
    model = PipelinePerfModel(BERT_BASE, P100, "chimera")

    def run():
        return model.report(32, 8)

    r = once(run)
    pf, skip, naive = (r.throughput_pipefisher, r.throughput_kfac_skip,
                       r.throughput_kfac_naive)
    print("\n=== Ablation: execution strategy (Chimera BERT-Base B=32 D=8) ===")
    print(f"PipeFisher {pf:8.1f} seqs/s")
    print(f"K-FAC+skip {skip:8.1f} seqs/s  ({pf/skip:.2f}x slower than PF)")
    print(f"naive KFAC {naive:8.1f} seqs/s  ({pf/naive:.2f}x slower than PF)")
    record(benchmark, pipefisher=round(pf, 1), kfac_skip=round(skip, 1),
           kfac_naive=round(naive, 1))
    assert pf / naive > 1.5  # hiding all K-FAC work is a big win
    assert pf / skip > 1.02


def test_ablation_steady_state_readiness(once, benchmark):
    """Cyclic readiness (factors from saved prior-step tensors) shortens the
    refresh interval vs cold-start assignment."""
    def run():
        warm = _filler(steady_state=True).fill().refresh_steps
        cold = _filler(steady_state=False).fill().refresh_steps
        return warm, cold

    warm, cold = once(run)
    print(f"\n=== Ablation: steady-state readiness: refresh {warm} vs "
          f"cold-start {cold} steps ===")
    record(benchmark, steady_state_refresh=warm, cold_start_refresh=cold)
    assert warm <= cold


def test_ablation_work_splitting(once, benchmark):
    """Forbidding splits (min_chunk ~ work size) wastes bubble fragments."""
    def run():
        fine = _filler(min_chunk=2e-3).fill().refresh_steps
        coarse = _filler(min_chunk=5e-2).fill().refresh_steps
        return fine, coarse

    fine, coarse = once(run)
    print(f"\n=== Ablation: kernel-level splitting: refresh {fine} (fine) vs "
          f"{coarse} (coarse) steps ===")
    record(benchmark, fine_chunk_refresh=fine, coarse_chunk_refresh=coarse)
    assert fine <= coarse


def test_ablation_schedule_tradeoff(once, benchmark):
    """§3.3: pick the schedule by throughput vs refresh-frequency tradeoff."""
    def run():
        rows = []
        for sched in ("gpipe", "chimera"):
            m = PipelinePerfModel(BERT_BASE, P100, sched)
            for d in (4, 8, 16):
                r = m.report(32, d)
                rows.append((sched, d, r.throughput_pipefisher, r.refresh_steps))
        return rows

    rows = once(run)
    print("\n=== Ablation: schedule tradeoff (throughput vs refresh) ===")
    print(f"{'schedule':>9s} {'D':>4s} {'thr':>8s} {'refresh':>8s}")
    for sched, d, thr, refresh in rows:
        print(f"{sched:>9s} {d:4d} {thr:8.1f} {refresh:8d}")
    by = {(s, d): (t, r) for s, d, t, r in rows}
    for d in (4, 8, 16):
        assert by[("chimera", d)][0] > by[("gpipe", d)][0]
        assert by[("chimera", d)][1] >= by[("gpipe", d)][1]
    record(benchmark, rows=str(rows))


def test_ablation_damping_sensitivity(once, benchmark):
    """Preconditioning must interpolate between natural gradient (small
    damping) and plain gradient direction (large damping)."""
    from repro.kfac import KFACLayerState

    rng = np.random.default_rng(0)
    inputs = rng.standard_normal((4096, 8)).astype(np.float32)
    inputs[:, 0] *= 10.0
    grads = rng.standard_normal((4096, 6)).astype(np.float32)
    g = np.ones((6, 8), dtype=np.float32)

    def run():
        out = {}
        for damping in (1e-4, 1e2, 1e6):
            s = KFACLayerState("l", 8, 6, include_bias=False)
            s.update_curvature([inputs], [grads], loss_scale=1.0)
            s.update_inverses(damping, use_pi=False)
            nat, _ = s.precondition(g)
            # Anisotropy: how differently the whitened column 0 is treated.
            out[damping] = float(np.abs(nat[:, 1]).mean()
                                 / max(np.abs(nat[:, 0]).mean(), 1e-12))
        return out

    aniso = once(run)
    print("\n=== Ablation: damping sensitivity (col1/col0 magnitude) ===")
    for d, a in aniso.items():
        print(f"  damping {d:8.0e} -> anisotropy {a:8.2f}")
    record(benchmark, **{f"aniso_{k:g}": round(v, 2) for k, v in aniso.items()})
    # Small damping: strong whitening (high anisotropy).  Damping whose
    # per-factor share (sqrt) dwarfs the top eigenvalue (~100 here): ~SGD.
    assert aniso[1e-4] > aniso[1e2] > aniso[1e6]
    assert aniso[1e6] == pytest.approx(1.0, abs=0.2)


def test_ablation_stat_decay(once, benchmark):
    """EMA factors (KAISA-style) vs replace-per-refresh (PipeFisher)."""
    from repro.kfac import KroneckerFactor

    rng = np.random.default_rng(1)

    def run():
        drift = {}
        for decay in (0.0, 0.95):
            kf = KroneckerFactor(4, stat_decay=decay)
            prev = None
            deltas = []
            for step in range(30):
                rows = rng.standard_normal((64, 4)).astype(np.float32)
                kf.update_from_rows(rows)
                if prev is not None:
                    deltas.append(float(np.abs(kf.value - prev).mean()))
                prev = kf.value.copy()
            drift[decay] = float(np.mean(deltas))
        return drift

    drift = once(run)
    print(f"\n=== Ablation: factor EMA: per-step drift "
          f"replace={drift[0.0]:.4f} vs ema={drift[0.95]:.4f} ===")
    record(benchmark, drift_replace=round(drift[0.0], 5),
           drift_ema=round(drift[0.95], 5))
    # EMA smooths the estimate: much lower step-to-step drift.
    assert drift[0.95] < drift[0.0] / 3
