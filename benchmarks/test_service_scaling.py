"""Planning-service throughput, latency percentiles, and warm hit rate.

Drives a live :class:`ServiceServer` (ThreadingHTTPServer on a loopback
port, in-process) through a cold pass of distinct ``/sweep`` grids and a
warm pass repeating them byte-for-byte.  The cold pass pays unit
execution; the warm pass must be answered entirely from the
canonical-hash result store — its hit rate is asserted **1.0** and its
unit cost 0.  A concurrent phase fans the warm grid set across client
threads to measure request throughput under parallel load, and the
served values are asserted bit-identical to a :class:`CampaignRunner`
pass over the same grids on a fresh engine.

``BENCH_service.json`` records throughput (requests/s, cold and
concurrent-warm), client-side p50/p99 latency per phase, and the
cold-vs-warm store hit rates — the service perf trajectory the next PR
compares against.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import record, write_bench
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import canonical_json
from repro.service import PlanningService, ServiceClient, ServiceServer
from repro.service.jobs import spec_from_request, sweep_request
from repro.service.metrics import percentile
from repro.sweep import SweepEngine

SCHEDULES = ("gpipe", "1f1b", "chimera", "zb1f1b")
DEPTHS = (4, 8, 16)
B_MICROS = (8, 32)
CLIENT_THREADS = 8
WARM_ROUNDS = 3
CONCURRENT_REPS = 3


def _bodies():
    """One small sweep body per (schedule, depth) — distinct grids."""
    return [
        {"kind": "perf_report",
         "fixed": {"arch": "BERT-Large", "hardware": "P100",
                   "schedule": schedule, "depth": depth},
         "grid": {"b_micro": list(B_MICROS)}}
        for schedule in SCHEDULES
        for depth in DEPTHS
    ]


def _timed_pass(client, bodies):
    latencies, responses = [], []
    t0 = time.perf_counter()
    for body in bodies:
        s0 = time.perf_counter()
        responses.append(client.post("/sweep", body))
        latencies.append(time.perf_counter() - s0)
    return time.perf_counter() - t0, sorted(latencies), responses


def _p(ms_sorted, q):
    return round(percentile(ms_sorted, q) * 1000.0, 3)


def test_service_scaling(once, benchmark):
    bodies = _bodies()
    service = PlanningService(engine=SweepEngine())

    with ServiceServer(service) as server:
        client = ServiceClient(server.url)

        # -- cold pass: every grid is new; all units execute --------------------
        cold_s, cold_lat, cold_resp = once(_timed_pass, client, bodies)
        assert all(r["mode"] == "inline" for r in cold_resp)
        assert all(r["cached"] == 0 for r in cold_resp)
        units = sum(r["executed"] for r in cold_resp)
        assert units == len(bodies) * len(B_MICROS)
        cold_hit_rate = service.store.stats()["hit_rate"]

        # -- warm pass: identical requests must all be store hits ---------------
        warm_s, warm_lat, warm_resp = _timed_pass(client, bodies)
        assert all(r["executed"] == 0 for r in warm_resp)
        assert all(r["cost_units"] == 0 for r in warm_resp)
        warm_hits = sum(r["cached"] for r in warm_resp)
        warm_hit_rate = warm_hits / units
        assert warm_hit_rate == 1.0, (
            f"warm repeat served {warm_hits}/{units} units from the store; "
            f"every repeated canonical hash must hit")
        # Byte-identical unit payloads (the bookkeeping counters differ).
        assert [r["units"] for r in warm_resp] == \
            [r["units"] for r in cold_resp]

        # -- concurrent warm load: many clients, one engine ---------------------
        # Best-of-REPS: a single TCP accept stall would otherwise swing
        # the recorded throughput by an order of magnitude.
        rounds = bodies * WARM_ROUNDS
        concurrent_s = float("inf")
        for _ in range(CONCURRENT_REPS):
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                results = list(pool.map(
                    lambda b: client.post("/sweep", b), rounds))
            concurrent_s = min(concurrent_s, time.perf_counter() - t0)
            assert all(r["executed"] == 0 for r in results)

        snap = client.metrics()
        assert snap["requests"]["sweep"]["count"] == \
            2 * len(bodies) + CONCURRENT_REPS * len(rounds)

    # -- bit-identity vs a campaign run of the same grids on a fresh engine ----
    reference = {}
    runner = CampaignRunner(engine=SweepEngine())
    for body in bodies:
        result = runner.run(spec_from_request(sweep_request(body)))
        reference.update(
            {k: rec["value"] for k, rec in result.records.items()})
    for response in cold_resp:
        for unit in response["units"]:
            assert canonical_json(unit["value"]) == \
                canonical_json(reference[unit["key"]]), unit["key"]

    cold_rps = len(bodies) / cold_s
    warm_rps = len(bodies) / warm_s
    concurrent_rps = len(rounds) / concurrent_s
    print(f"\nservice: {len(bodies)} grids / {units} units; "
          f"cold {cold_rps:.0f} req/s (p50 {_p(cold_lat, .5)} ms, "
          f"p99 {_p(cold_lat, .99)} ms), "
          f"warm {warm_rps:.0f} req/s (p50 {_p(warm_lat, .5)} ms, "
          f"p99 {_p(warm_lat, .99)} ms), "
          f"{CLIENT_THREADS}-thread warm {concurrent_rps:.0f} req/s; "
          f"hit rate cold {cold_hit_rate:.2f} -> warm {warm_hit_rate:.2f}")

    record(benchmark, cold_rps=round(cold_rps, 1),
           warm_rps=round(warm_rps, 1),
           concurrent_rps=round(concurrent_rps, 1),
           warm_hit_rate=warm_hit_rate)
    write_bench(
        "service",
        grids=len(bodies),
        units=units,
        cold_requests_per_s=round(cold_rps, 1),
        warm_requests_per_s=round(warm_rps, 1),
        concurrent_requests_per_s=round(concurrent_rps, 1),
        concurrent_client_threads=CLIENT_THREADS,
        cold_p50_ms=_p(cold_lat, 0.50),
        cold_p99_ms=_p(cold_lat, 0.99),
        warm_p50_ms=_p(warm_lat, 0.50),
        warm_p99_ms=_p(warm_lat, 0.99),
        cold_store_hit_rate=round(cold_hit_rate, 3),
        warm_store_hit_rate=warm_hit_rate,
    )
