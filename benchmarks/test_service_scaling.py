"""Planning-service throughput, latency percentiles, and warm hit rate.

Drives a live :class:`ServiceServer` (ThreadingHTTPServer on a loopback
port, in-process) through a cold pass of distinct ``/sweep`` grids and a
warm pass repeating them byte-for-byte.  The cold pass pays unit
execution; the warm pass must be answered entirely from the
canonical-hash result store — its hit rate is asserted **1.0** and its
unit cost 0.  A concurrent phase fans the warm grid set across client
threads to measure request throughput under parallel load, and the
served values are asserted bit-identical to a :class:`CampaignRunner`
pass over the same grids on a fresh engine.

A separate cold-concurrency phase measures what the engine pool buys:
the seed service held ONE lock across every unit execution, so any
in-flight cold evaluation head-of-line blocked every other request.
A mixed batch (a few heavy cold ``stochastic`` grids + many light cold
``perf_report`` grids) is fanned across client threads against a
single-lock service and against a pooled one; the light requests'
mean completion latency must improve **>= 2x**, and the two services'
responses must be byte-identical — slot routing is a scheduling
detail, never a results detail.

``BENCH_service.json`` records throughput (requests/s, cold and
concurrent-warm), client-side p50/p99 latency per phase, the
cold-vs-warm store hit rates, and the cold-concurrency speedup — the
service perf trajectory the next PR compares against.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.stochastic.model import StochasticModel

from benchmarks.conftest import record, write_bench
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import canonical_json
from repro.service import PlanningService, ServiceClient, ServiceServer
from repro.service.jobs import spec_from_request, sweep_request
from repro.service.metrics import percentile
from repro.sweep import SweepEngine

SCHEDULES = ("gpipe", "1f1b", "chimera", "zb1f1b")
DEPTHS = (4, 8, 16)
B_MICROS = (8, 32)
CLIENT_THREADS = 8
WARM_ROUNDS = 3
CONCURRENT_REPS = 3

#: Cold-concurrency phase: pool size, floor, and the heavy grids' MC
#: model (preemption-heavy, so every replicate pays restart replay).
POOL_SLOTS = 8
MIN_COLD_CONCURRENCY = 2.0
HEAVY_SEEDS = 64
HEAVY_MODEL = StochasticModel(jitter_sigma=0.02, preemption_rate=1.0,
                              restart_delay_frac=0.05,
                              checkpoint_interval_frac=0.1)


def _bodies():
    """One small sweep body per (schedule, depth) — distinct grids."""
    return [
        {"kind": "perf_report",
         "fixed": {"arch": "BERT-Large", "hardware": "P100",
                   "schedule": schedule, "depth": depth},
         "grid": {"b_micro": list(B_MICROS)}}
        for schedule in SCHEDULES
        for depth in DEPTHS
    ]


def _timed_pass(client, bodies):
    latencies, responses = [], []
    t0 = time.perf_counter()
    for body in bodies:
        s0 = time.perf_counter()
        responses.append(client.post("/sweep", body))
        latencies.append(time.perf_counter() - s0)
    return time.perf_counter() - t0, sorted(latencies), responses


def _p(ms_sorted, q):
    return round(percentile(ms_sorted, q) * 1000.0, 3)


def _mixed_cold_bodies():
    """A few heavy cold grids plus many light ones, all store misses."""
    heavy = [
        {"kind": "stochastic",
         "fixed": {"arch": "BERT-Base", "hardware": "P100",
                   "schedule": schedule, "b_micro": 32, "depth": 8,
                   "n_micro": 16, "layers_per_stage": 2,
                   **HEAVY_MODEL.as_params()},
         "grid": {"seed": list(range(HEAVY_SEEDS))},
         "inline": True}  # hold the slot lock; that's the point
        for schedule in SCHEDULES
    ]
    light = [
        {"kind": "perf_report",
         "fixed": {"arch": "BERT-Large", "hardware": "P100",
                   "schedule": schedule, "depth": depth},
         "grid": {"b_micro": list(B_MICROS)}}
        for schedule in SCHEDULES
        for depth in (4, 8, 16, 32)
    ]
    return heavy, light


def _mixed_cold_phase(service):
    """Fan heavy+light cold requests across threads; time each class.

    In-process (no HTTP) on purpose: the phase measures what the
    service lock serializes, not socket accept behavior.
    """
    heavy, light = _mixed_cold_bodies()
    requests = [("heavy", b) for b in heavy] + [("light", b) for b in light]
    latencies = {"heavy": [], "light": []}

    def hit(tagged):
        tag, body = tagged
        t0 = time.perf_counter()
        out = service.sweep(dict(body))
        latencies[tag].append(time.perf_counter() - t0)
        return out

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        responses = list(pool.map(hit, requests))
    total_s = time.perf_counter() - t0
    assert all(r["mode"] == "inline" and r["cached"] == 0
               for r in responses)
    return total_s, latencies, responses


def _strip_volatile(responses):
    """Responses minus per-unit wall clock, for byte comparison."""
    out = []
    for r in responses:
        r = dict(r)
        r["units"] = [{k: v for k, v in u.items() if k != "elapsed_s"}
                      for u in r["units"]]
        out.append(r)
    return out


def test_service_scaling(once, benchmark):
    bodies = _bodies()
    service = PlanningService(engine=SweepEngine())

    with ServiceServer(service) as server:
        client = ServiceClient(server.url)

        # -- cold pass: every grid is new; all units execute --------------------
        cold_s, cold_lat, cold_resp = once(_timed_pass, client, bodies)
        assert all(r["mode"] == "inline" for r in cold_resp)
        assert all(r["cached"] == 0 for r in cold_resp)
        units = sum(r["executed"] for r in cold_resp)
        assert units == len(bodies) * len(B_MICROS)
        cold_hit_rate = service.store.stats()["hit_rate"]

        # -- warm pass: identical requests must all be store hits ---------------
        warm_s, warm_lat, warm_resp = _timed_pass(client, bodies)
        assert all(r["executed"] == 0 for r in warm_resp)
        assert all(r["cost_units"] == 0 for r in warm_resp)
        warm_hits = sum(r["cached"] for r in warm_resp)
        warm_hit_rate = warm_hits / units
        assert warm_hit_rate == 1.0, (
            f"warm repeat served {warm_hits}/{units} units from the store; "
            f"every repeated canonical hash must hit")
        # Byte-identical unit payloads (the bookkeeping counters differ).
        assert [r["units"] for r in warm_resp] == \
            [r["units"] for r in cold_resp]

        # -- concurrent warm load: many clients, one engine ---------------------
        # Best-of-REPS: a single TCP accept stall would otherwise swing
        # the recorded throughput by an order of magnitude.
        rounds = bodies * WARM_ROUNDS
        concurrent_s = float("inf")
        for _ in range(CONCURRENT_REPS):
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                results = list(pool.map(
                    lambda b: client.post("/sweep", b), rounds))
            concurrent_s = min(concurrent_s, time.perf_counter() - t0)
            assert all(r["executed"] == 0 for r in results)

        snap = client.metrics()
        assert snap["requests"]["sweep"]["count"] == \
            2 * len(bodies) + CONCURRENT_REPS * len(rounds)

    # -- bit-identity vs a campaign run of the same grids on a fresh engine ----
    reference = {}
    runner = CampaignRunner(engine=SweepEngine())
    for body in bodies:
        result = runner.run(spec_from_request(sweep_request(body)))
        reference.update(
            {k: rec["value"] for k, rec in result.records.items()})
    for response in cold_resp:
        for unit in response["units"]:
            assert canonical_json(unit["value"]) == \
                canonical_json(reference[unit["key"]]), unit["key"]

    # -- cold-miss concurrency: single global lock vs the engine pool ----------
    # Best ratio over REPS fresh service pairs (both passes fully cold
    # each rep); bit-identical responses asserted on every rep.
    cold_concurrency = 0.0
    single_light_ms = pooled_light_ms = float("nan")
    for _ in range(CONCURRENT_REPS):
        _, single_lat, single_resp = _mixed_cold_phase(
            PlanningService(engine=SweepEngine()))
        _, pooled_lat, pooled_resp = _mixed_cold_phase(
            PlanningService(engine_pool=POOL_SLOTS))
        assert canonical_json(_strip_volatile(pooled_resp)) == \
            canonical_json(_strip_volatile(single_resp)), \
            "pooled service answered differently from the single-lock one"
        single_ms = (1000.0 * sum(single_lat["light"])
                     / len(single_lat["light"]))
        pooled_ms = (1000.0 * sum(pooled_lat["light"])
                     / len(pooled_lat["light"]))
        if single_ms / pooled_ms > cold_concurrency:
            cold_concurrency = single_ms / pooled_ms
            single_light_ms, pooled_light_ms = single_ms, pooled_ms
    heavy_n, light_n = (len(b) for b in _mixed_cold_bodies())
    print(f"cold concurrency: {heavy_n} heavy + {light_n} light cold "
          f"grids over {CLIENT_THREADS} threads; light mean latency "
          f"{single_light_ms:.1f} ms (single lock) -> "
          f"{pooled_light_ms:.1f} ms (pool of {POOL_SLOTS}) "
          f"=> {cold_concurrency:.1f}x")
    assert cold_concurrency >= MIN_COLD_CONCURRENCY, (
        f"engine pool improves concurrent cold-miss latency only "
        f"{cold_concurrency:.1f}x over the single lock "
        f"(floor {MIN_COLD_CONCURRENCY:.0f}x)")

    cold_rps = len(bodies) / cold_s
    warm_rps = len(bodies) / warm_s
    concurrent_rps = len(rounds) / concurrent_s
    print(f"\nservice: {len(bodies)} grids / {units} units; "
          f"cold {cold_rps:.0f} req/s (p50 {_p(cold_lat, .5)} ms, "
          f"p99 {_p(cold_lat, .99)} ms), "
          f"warm {warm_rps:.0f} req/s (p50 {_p(warm_lat, .5)} ms, "
          f"p99 {_p(warm_lat, .99)} ms), "
          f"{CLIENT_THREADS}-thread warm {concurrent_rps:.0f} req/s; "
          f"hit rate cold {cold_hit_rate:.2f} -> warm {warm_hit_rate:.2f}")

    record(benchmark, cold_rps=round(cold_rps, 1),
           warm_rps=round(warm_rps, 1),
           concurrent_rps=round(concurrent_rps, 1),
           warm_hit_rate=warm_hit_rate,
           cold_concurrency_speedup=round(cold_concurrency, 1))
    write_bench(
        "service",
        grids=len(bodies),
        units=units,
        cold_requests_per_s=round(cold_rps, 1),
        warm_requests_per_s=round(warm_rps, 1),
        concurrent_requests_per_s=round(concurrent_rps, 1),
        concurrent_client_threads=CLIENT_THREADS,
        cold_p50_ms=_p(cold_lat, 0.50),
        cold_p99_ms=_p(cold_lat, 0.99),
        warm_p50_ms=_p(warm_lat, 0.50),
        warm_p99_ms=_p(warm_lat, 0.99),
        cold_store_hit_rate=round(cold_hit_rate, 3),
        warm_store_hit_rate=warm_hit_rate,
        engine_pool_slots=POOL_SLOTS,
        cold_light_mean_ms_single_lock=round(single_light_ms, 1),
        cold_light_mean_ms_pooled=round(pooled_light_ms, 1),
        cold_concurrency_speedup=round(cold_concurrency, 1),
        min_cold_concurrency_speedup=MIN_COLD_CONCURRENCY,
    )
