"""Figure 4: Chimera (BERT-Large, 8 stages) with/without PipeFisher.

Paper: GPU utilization 59.8% -> 97.6%; curvature refreshed in 2-4 steps;
step times 2345.6 ms (Adam) / 2499.5 ms (PipeFisher) feed Table 2.
"""

from benchmarks.conftest import record
from repro.experiments.fig4 import FIG4_PAPER, format_fig4, run_fig4
from repro.profiler import render_timeline


def test_fig4_chimera(once, benchmark):
    result = once(run_fig4)
    r = result.report
    print("\n=== Figure 4: Chimera profile (BERT-Large, 8 stages, 8 GPUs) ===")
    print(format_fig4(result))
    print("\nChimera w/ PipeFisher timeline (first 2 steps of the cycle):")
    print(render_timeline(r.pipefisher_timeline, width=110,
                          window=(0.0, 2 * r.pipefisher_step_time)))
    record(
        benchmark,
        baseline_util_paper=FIG4_PAPER["baseline_utilization"],
        baseline_util_measured=round(r.baseline_utilization, 4),
        pipefisher_util_paper=FIG4_PAPER["pipefisher_utilization"],
        pipefisher_util_measured=round(r.pipefisher_utilization, 4),
        step_time_paper_s=FIG4_PAPER["baseline_step_time_s"],
        step_time_measured_s=round(r.baseline_step_time, 4),
        refresh_steps=r.refresh_steps,
    )
    # Shape claims.
    assert abs(r.baseline_utilization - FIG4_PAPER["baseline_utilization"]) < 0.06
    assert r.pipefisher_utilization > 0.85
    assert abs(r.baseline_step_time - FIG4_PAPER["baseline_step_time_s"]) \
        / FIG4_PAPER["baseline_step_time_s"] < 0.15
    lo, hi = FIG4_PAPER["refresh_steps_range"]
    assert lo <= r.refresh_steps <= hi + 1
