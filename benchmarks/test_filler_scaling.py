"""Indexed bubble filler vs the seed's scan-all greedy loop.

The pre-rewrite ``BubbleFiller._fill_device`` rescanned every unassigned
item per placed segment, and every scan re-walked the full
``("items", ...)`` dependency tuple — roughly cubic in queue size, and
(after PR 1's executor rewrite) the dominant cost of a PipeFisher run.
The indexed placer keeps per-device ready heaps ordered by the greedy
rule's ``(start, -ready, position)`` key and decrements dependency
counters as items complete — O(items log items + total deps).

This benchmark freezes the seed algorithm below as the baseline, asserts
the rewrite produces bit-identical ``(iid -> segments)`` placements on
seed-sized configs of all four schedules, and demonstrates the asymptotic
win (>= 10x here; the gap keeps widening with size) on a depth=16,
n_micro=64, layers_per_stage=4 config.
"""

import time

from benchmarks.conftest import record, write_bench
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipefisher.assignment import _EPS, BubbleFiller
from repro.pipefisher.workqueue import build_device_queues
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks
from repro.pipeline.bubbles import bubble_intervals


class _LegacyBubbleFiller(BubbleFiller):
    """The seed filler's scan-all loops, kept verbatim as a frozen baseline."""

    def _ready_time(self, item, by_id):
        kind = item.trigger[0]
        if kind in ("forward", "backward"):
            _, s, m, pipe = item.trigger
            replica = item.device % self.dp
            rel = self._event_end.get((kind, s, m, pipe, replica))
            if rel is None:
                raise KeyError(
                    f"no {kind} event for stage {s}, micro-batch {m}, "
                    f"pipeline {pipe}, replica {replica}"
                )
            return rel - self.span if self.steady_state else rel
        if kind == "items":
            ends = []
            for dep in item.trigger[1]:
                dep_item = by_id[dep]
                if not dep_item.assigned:
                    return None
                ends.append(dep_item.end)
            return max(ends) if ends else 0.0
        raise ValueError(f"unknown trigger {item.trigger!r}")

    def _fill_device(self, device):
        q = self.queues[device]
        if not q.items:
            return 0
        by_id = q.by_id()
        bubbles0 = bubble_intervals(
            self.template.timeline,
            device,
            (0.0, self.span),
            min_duration=self.min_bubble,
        )
        if not bubbles0:
            raise RuntimeError(
                f"device {device} has no bubbles to fill (span {self.span:.4f}s)"
            )
        remaining = len(q.items)
        last_placed_duration = -1.0
        for step in range(self.max_steps):
            offset = step * self.span
            for b0, b1 in ((a + offset, b + offset) for a, b in bubbles0):
                t = b0
                while True:
                    best = None
                    for pos, item in enumerate(q.items):
                        if item.assigned:
                            continue
                        rt = self._ready_time(item, by_id)
                        if rt is None:
                            continue
                        st = max(t, rt)
                        room = b1 - st
                        if room < item.remaining - _EPS:
                            if (room < self.min_chunk - _EPS
                                    or item.remaining - room < self.min_chunk):
                                continue
                        elif room <= _EPS:
                            continue
                        cand = (st, -rt, pos)
                        if best is None or cand < best:
                            best = cand
                    if best is None:
                        break
                    st, _, pos = best
                    item = q.items[pos]
                    piece = min(item.remaining, b1 - st)
                    item.segments.append((st, st + piece))
                    t = st + piece
                    if item.assigned:
                        remaining -= 1
                if remaining == 0:
                    return step + 1
            if remaining == 0:
                return step + 1
            placed = sum(i.placed_duration for i in q.items)
            if placed <= last_placed_duration + _EPS:
                stuck = [i.iid for i in q.items if not i.assigned]
                raise RuntimeError(
                    f"device {device}: no placement progress in step {step}; "
                    f"stuck items: {stuck[:5]}"
                )
            last_placed_duration = placed
        raise RuntimeError(
            f"device {device}: {remaining} K-FAC items still unassigned after "
            f"{self.max_steps} steps; bubbles too small for the work"
        )


def _costs(curv=0.2, inv=0.6, layers=1):
    block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=curv, t_curv_b=curv,
                      t_inv=inv, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=layers, t_overhead=0.1,
                      kernel_density=1.0)


def _fill(filler_cls, name, cfg, dp=1, inversion_parallel=False,
          sync_curv_seconds=0.0):
    builder = make_schedule(name, cfg)
    template = simulate_tasks(builder.build(), builder.num_devices)
    queues = build_device_queues(builder, cfg.costs,
                                 inversion_parallel=inversion_parallel,
                                 sync_curv_seconds=sync_curv_seconds)
    result = filler_cls(template, queues, dp=dp).fill()
    segments = {i.iid: i.segments for q in queues.values() for i in q.items}
    return result, segments


def test_identical_placements_on_seed_schedules():
    """Bit-identical ``(iid -> segments)`` on all four schedules.

    Covers a work split (inversion longer than any bubble), data
    parallelism, the sync-curvature item whose trigger carries the full
    curvature-id tuple (the dependency-counter path), and interleaving.
    """
    cases = [
        ("gpipe", dict(depth=4, n_micro=4, costs=_costs()), {}),
        ("gpipe", dict(depth=4, n_micro=4, costs=_costs(inv=20.0)), {}),
        ("1f1b", dict(depth=4, n_micro=8, costs=_costs(), dp=2,
                      stage_param_bytes=1e8),
         dict(dp=2, inversion_parallel=True, sync_curv_seconds=0.05)),
        ("chimera", dict(depth=4, n_micro=8, costs=_costs(layers=2),
                         stage_param_bytes=1e8), {}),
        ("interleaved", dict(depth=4, n_micro=8, costs=_costs(),
                             virtual_chunks=2), {}),
    ]
    for name, cfg_kwargs, fill_kwargs in cases:
        cfg = PipelineConfig(precondition=True, **cfg_kwargs)
        new_res, new_segs = _fill(BubbleFiller, name, cfg, **fill_kwargs)
        old_res, old_segs = _fill(_LegacyBubbleFiller, name, cfg, **fill_kwargs)
        assert new_res.refresh_steps == old_res.refresh_steps, name
        assert new_res.device_refresh_steps == old_res.device_refresh_steps, name
        assert new_segs == old_segs, name


def test_indexed_filler_scales(once, benchmark):
    """depth=16, n_micro=64, layers_per_stage=4: 8320 items, >= 10x."""
    cfg = PipelineConfig(depth=16, n_micro=64,
                         costs=_costs(curv=0.02, inv=0.3, layers=4),
                         precondition=True)
    builder = make_schedule("gpipe", cfg)
    template = simulate_tasks(builder.build(), builder.num_devices)

    queues = build_device_queues(builder, cfg.costs)
    n_items = sum(len(q.items) for q in queues.values())
    assert n_items >= 8000

    t0 = time.perf_counter()
    res = once(lambda: BubbleFiller(template, queues).fill())
    new_s = time.perf_counter() - t0
    new_segs = {i.iid: i.segments for q in queues.values() for i in q.items}

    legacy_queues = build_device_queues(builder, cfg.costs)
    t0 = time.perf_counter()
    legacy_res = _LegacyBubbleFiller(template, legacy_queues).fill()
    legacy_s = time.perf_counter() - t0
    legacy_segs = {i.iid: i.segments
                   for q in legacy_queues.values() for i in q.items}

    speedup = legacy_s / new_s
    print(f"\n{n_items} items on {builder.num_devices} devices: "
          f"indexed {new_s:.3f}s vs scan-all {legacy_s:.2f}s "
          f"({speedup:.1f}x), refresh {res.refresh_steps}")
    assert new_segs == legacy_segs
    assert res.refresh_steps == legacy_res.refresh_steps
    assert speedup >= 10.0, (
        f"expected >= 10x over the seed filler, got {speedup:.1f}x "
        f"({new_s:.3f}s vs {legacy_s:.2f}s)"
    )
    record(benchmark, n_items=n_items, indexed_s=round(new_s, 3),
           scan_all_s=round(legacy_s, 3), speedup=round(speedup, 1))
    write_bench("filler", n_items=n_items, num_devices=builder.num_devices,
                indexed_s=round(new_s, 3), scan_all_s=round(legacy_s, 3),
                speedup=round(speedup, 1), refresh_steps=res.refresh_steps)
