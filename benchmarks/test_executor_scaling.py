"""Event-driven executor vs the seed's greedy scan-all-devices loop.

The pre-rewrite ``simulate_tasks`` re-scanned every device's entire ready
pool for each scheduling decision — O(tasks x devices x pool) overall —
which capped how large an architecture sweep the simulator could drive.
The event-driven rewrite is O(tasks log tasks).  This benchmark freezes
the seed algorithm below as the baseline, simulates a depth=16,
n_micro=64, dp=4 graph tiled to ~100k tasks, and demonstrates the
asymptotic win (>= 5x wall-clock here; the gap keeps widening with size).

The two implementations must also agree exactly: same makespan and same
per-task start times on same-device-release schedules (the only
*intentional* divergence is the admission-timing bugfix, which needs an
in-flight key whose releasing backward runs on a different device than
the blocked forward — none of the built-in schedules does that; see
``tests/pipeline/test_executor.py::TestAdmissionTiming``).
"""

import time
from collections import defaultdict

from benchmarks.conftest import record, write_bench
from repro.perfmodel.costs import StageCosts, WorkCosts
from repro.pipeline import PipelineConfig, make_schedule, simulate_tasks


def _legacy_simulate_tasks(tasks, num_devices, start_time=0.0):
    """The seed executor's greedy loop, kept verbatim as a frozen baseline
    (pick-time in-flight release and all)."""
    by_id = {t.tid: t for t in tasks}
    dependents = defaultdict(list)
    missing = {}
    for t in tasks:
        missing[t.tid] = len(t.deps)
        for d in t.deps:
            dependents[d].append(t.tid)

    device_free = defaultdict(lambda: start_time)
    ready_time = {t.tid: start_time for t in tasks}
    ready = defaultdict(set)
    control_ready = []
    start_times, end_times = {}, {}
    inflight = defaultdict(int)

    def mark_ready(tid):
        t = by_id[tid]
        if t.device is None:
            control_ready.append(tid)
        else:
            ready[t.device].add(tid)

    for t in tasks:
        if missing[t.tid] == 0:
            mark_ready(t.tid)

    def complete(tid, end):
        end_times[tid] = end
        rel = by_id[tid].meta.get("inflight_release")
        if rel is not None:
            inflight[rel] -= 1
        for dep_id in dependents[tid]:
            missing[dep_id] -= 1
            ready_time[dep_id] = max(ready_time[dep_id], end)
            if missing[dep_id] == 0:
                mark_ready(dep_id)

    remaining = len(tasks)
    while remaining > 0:
        while control_ready:
            tid = control_ready.pop()
            start_times[tid] = ready_time[tid]
            complete(tid, ready_time[tid])
            remaining -= 1
        if remaining == 0:
            break
        best = None
        for dev, pool in ready.items():
            if not pool:
                continue
            eligible = []
            for tid in pool:
                t = by_id[tid]
                key = t.meta.get("inflight_key")
                if key is not None and inflight[key] >= t.meta["inflight_limit"]:
                    continue
                eligible.append(tid)
            if not eligible:
                continue
            t_star = max(device_free[dev], min(ready_time[t] for t in eligible))
            avail = [t for t in eligible if ready_time[t] <= t_star + 1e-12]
            tid = min(avail, key=lambda x: by_id[x].priority)
            cand = (t_star, by_id[tid].priority, dev, tid)
            if best is None or cand < best:
                best = cand
        if best is None:
            raise RuntimeError("deadlock")
        t_start, _, dev, tid = best
        task = by_id[tid]
        ready[dev].discard(tid)
        key = task.meta.get("inflight_key")
        if key is not None:
            inflight[key] += 1
        t_end = t_start + task.duration
        device_free[dev] = t_end
        start_times[tid] = t_start
        complete(tid, t_end)
        remaining -= 1

    return start_times, end_times, max(end_times.values(), default=start_time)


def _costs():
    block = WorkCosts(t_fwd=1.0, t_bwd=2.0, t_curv_a=0.1, t_curv_b=0.1,
                      t_inv=0.3, t_prec=0.05)
    return StageCosts(block=block, layers_per_stage=1, t_overhead=0.1,
                      kernel_density=1.0)


def test_equivalence_on_small_fixtures():
    """Same makespan and start times on every seed schedule.

    The interleaved schedule is deliberately absent: it postdates the
    rewrite and its 1F1B alternation is *driven* by admission blocking,
    where the seed's pick-time release semantics (the fixed bug) shuffle
    individual start times even though the makespan comes out equal.
    """
    for name, kwargs in (
        ("gpipe", dict(depth=4, n_micro=8)),
        ("1f1b", dict(depth=4, n_micro=8, dp=2, stage_param_bytes=1e8)),
        ("chimera", dict(depth=4, n_micro=8, precondition=True,
                         stage_param_bytes=1e8)),
    ):
        cfg = PipelineConfig(costs=_costs(), **kwargs)
        b = make_schedule(name, cfg)
        tasks = b.build(steps=2)
        res = simulate_tasks(tasks, b.num_devices)
        legacy_starts, _, legacy_makespan = _legacy_simulate_tasks(
            b.build(steps=2), b.num_devices)
        assert abs(res.makespan - legacy_makespan) < 1e-9, name
        for tid, st in legacy_starts.items():
            assert abs(res.start_times[tid] - st) < 1e-9, (name, tid)


def test_event_driven_executor_scales(once, benchmark):
    """~100k-task graph: depth=16, n_micro=64, dp=4, 12 steps."""
    cfg = PipelineConfig(depth=16, n_micro=64, costs=_costs(), dp=4)
    builder = make_schedule("1f1b", cfg)
    tasks = builder.build(steps=12)
    n_tasks = len(tasks)
    assert n_tasks > 90_000

    t0 = time.perf_counter()
    res = once(simulate_tasks, tasks, builder.num_devices)
    new_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    _, _, legacy_makespan = _legacy_simulate_tasks(
        builder.build(steps=12), builder.num_devices)
    legacy_s = time.perf_counter() - t0

    speedup = legacy_s / new_s
    print(f"\n{n_tasks} tasks on {builder.num_devices} devices: "
          f"event-driven {new_s:.2f}s vs greedy-scan {legacy_s:.2f}s "
          f"({speedup:.1f}x)")
    assert abs(res.makespan - legacy_makespan) < 1e-6
    assert speedup >= 5.0, (
        f"expected >= 5x over the seed executor, got {speedup:.1f}x "
        f"({new_s:.2f}s vs {legacy_s:.2f}s)"
    )
    record(benchmark, n_tasks=n_tasks, event_driven_s=round(new_s, 3),
           greedy_scan_s=round(legacy_s, 3), speedup=round(speedup, 1))
    write_bench("executor", n_tasks=n_tasks, num_devices=builder.num_devices,
                event_driven_s=round(new_s, 3),
                greedy_scan_s=round(legacy_s, 3), speedup=round(speedup, 1))
