"""Campaign-runner overhead vs direct sweep-engine calls, plus resume rate.

The campaign layer must be free abstraction: expanding a spec into
addressable units, hashing each point, and recording results may not
meaningfully slow the sweep down.  Comparing two separately-timed
wall-clock regions cannot support a few-percent assertion on a shared
CI runner (CPU-frequency wander alone moves 0.25 s regions by +-6%), so
the overhead is measured *within one region*: the runner stamps each
unit's execute time into its record, and the machinery cost is the
campaign's total wall time minus the summed unit-execute time — the
common-mode noise cancels.  Min-of-``REPS`` of that fraction (noise
only ever inflates it) is asserted **< 5%**, after a direct
``engine.run`` loop over the identical grid is asserted bit-identical.

The resume half runs the same campaign twice against a persistent run
DB: the second pass must serve 100% of units from the DB (zero engine
evaluations) — that hit rate, the units/s, and the sweep-engine
BoundedCache hit/miss/eviction counters surfaced through the campaign
records all land in ``BENCH_campaign.json``.
"""

import gc
import time
from contextlib import contextmanager

from benchmarks.conftest import record, write_bench
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.pipefisher.runner import PipeFisherRun
from repro.sweep import SweepEngine

ARCH = "BERT-Base"
HARDWARE_NAMES = ("P100", "V100", "RTX3090")
B_MICRO_VALUES = (2, 4, 8, 16, 32, 64)
DEPTH_VALUES = (8, 16)
N_MICRO_FACTOR = 2
REPS = 5
MAX_OVERHEAD = 0.05


@contextmanager
def gc_paused():
    """Collect up front, then keep the cyclic GC out of the timed region."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def campaign_spec() -> CampaignSpec:
    """A Fig. 6-style Chimera grid as a campaign (hardware x depth x B)."""
    return CampaignSpec(
        name="bench_campaign",
        title="campaign-overhead benchmark grid",
        kind="pipefisher",
        fixed=(("arch", ARCH), ("n_micro_factor", N_MICRO_FACTOR),
               ("schedule", "chimera")),
        grid=(("hardware", HARDWARE_NAMES),
              ("depth", DEPTH_VALUES),
              ("b_micro", B_MICRO_VALUES)),
    )


def direct_points():
    """The identical grid as direct PipeFisherRun points, same order."""
    arch = ARCHITECTURES[ARCH]
    for hw in HARDWARE_NAMES:
        for depth in DEPTH_VALUES:
            for b in B_MICRO_VALUES:
                yield PipeFisherRun(schedule="chimera", arch=arch,
                                    hardware=HARDWARE[hw], b_micro=b,
                                    depth=depth,
                                    n_micro=N_MICRO_FACTOR * depth)


def report_numbers(report):
    return (report.baseline_step_time, report.baseline_utilization,
            report.pipefisher_step_time, report.pipefisher_utilization,
            report.refresh_steps, report.device_refresh_steps)


def test_campaign_overhead_and_resume(once, benchmark, tmp_path):
    spec = campaign_spec()
    points = list(direct_points())
    assert len(points) == len(spec.units())

    # -- bit-identity vs direct engine calls (also the informational direct_s) --
    direct_s = float("inf")
    ref = None
    for _ in range(REPS):
        engine = SweepEngine()
        with gc_paused():
            t0 = time.perf_counter()
            ref = [engine.run(p) for p in points]
            direct_s = min(direct_s, time.perf_counter() - t0)

    # -- campaign runs, overhead measured within each timed region --------------
    campaign_s = execute_s = overhead = float("inf")
    result = None
    for rep in range(REPS):
        runner = CampaignRunner(engine=SweepEngine())
        with gc_paused():
            t0 = time.perf_counter()
            if rep == REPS - 1:
                result = once(runner.run, spec)
            else:
                result = runner.run(spec)
            total = time.perf_counter() - t0
        exec_s = sum(r["elapsed_s"] for r in result.records.values())
        rep_overhead = (total - exec_s) / exec_s
        if rep_overhead < overhead:
            overhead, campaign_s, execute_s = rep_overhead, total, exec_s

    for point, r, obj in zip(points, ref, result.object_list()):
        assert report_numbers(r) == report_numbers(obj), (
            f"campaign diverged from direct engine calls at "
            f"{point.hardware.name} B={point.b_micro} D={point.depth}"
        )

    print(f"\ncampaign layer: {len(points)} units, {campaign_s:.3f}s total of "
          f"which {campaign_s - execute_s:.4f}s machinery "
          f"(overhead {overhead:+.2%}; direct loop {direct_s:.3f}s)")
    assert overhead < MAX_OVERHEAD, (
        f"campaign machinery costs {overhead:.1%} on top of unit execution "
        f"({campaign_s:.3f}s total vs {execute_s:.3f}s in units); "
        f"budget is {MAX_OVERHEAD:.0%}"
    )

    # -- resume: second pass serves 100% of units from the run DB ---------------
    run_dir = tmp_path / "bench_campaign"
    persistent = CampaignRunner(engine=SweepEngine(), run_dir=run_dir)
    first = persistent.run(spec)
    t0 = time.perf_counter()
    resumed = CampaignRunner(engine=SweepEngine(), run_dir=run_dir).run(spec)
    resume_s = time.perf_counter() - t0
    assert resumed.resume_hit_rate == 1.0
    assert not resumed.executed
    assert resumed.engine_delta["runs"] == 0, "resume must not touch the engine"
    assert resumed.values() == first.values()

    cold = first.summary()
    caches = {
        f"{cache}_{counter}": first.engine_delta[f"{cache}_{counter}"]
        for cache in ("templates", "stage_costs")
        for counter in ("hits", "misses", "evictions")
    }
    # Templates are structural (schedule x depth x N_micro) — hardware only
    # changes timings, so the grid compiles one template per depth.
    assert caches["templates_misses"] == len(DEPTH_VALUES)
    print(f"resume: {len(points)} units reused in {resume_s:.3f}s "
          f"(cold pass {cold['units_per_s']:.0f} units/s); "
          f"engine caches {caches}")

    record(benchmark, direct_s=round(direct_s, 3),
           campaign_s=round(campaign_s, 3),
           overhead_pct=round(100 * overhead, 2),
           resume_hit_rate=resumed.resume_hit_rate)
    write_bench(
        "campaign",
        units=len(points),
        direct_s=round(direct_s, 4),
        campaign_s=round(campaign_s, 4),
        unit_execute_s=round(execute_s, 4),
        overhead_pct=round(100 * overhead, 2),
        cold_units_per_s=round(cold["units_per_s"], 1),
        resume_s=round(resume_s, 4),
        resume_hit_rate=resumed.resume_hit_rate,
        resume_engine_runs=resumed.engine_delta["runs"],
        engine_cache_counters=caches,
    )
