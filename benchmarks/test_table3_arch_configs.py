"""Table 3: architecture configurations (exact match required)."""

from benchmarks.conftest import record
from repro.experiments.table3 import format_table3, run_table3


def test_table3(once, benchmark):
    r = once(run_table3)
    print("\n=== Table 3: Transformer architectures ===")
    print(format_table3(r))
    record(benchmark, matches_paper=r.matches_paper,
           runnable_blocks=r.runnable_blocks)
    assert r.matches_paper
    assert r.runnable_blocks
