"""Figure 8: NVLAMB vs K-FAC learning-rate schedules (Appendix B.2)."""

import numpy as np

from benchmarks.conftest import record
from repro.experiments.fig8 import run_fig8


def test_fig8_lr_schedules(once, benchmark):
    r = once(run_fig8)
    print("\n=== Figure 8: learning-rate schedules ===")
    print(f"{'step':>6s} {'NVLAMB':>10s} {'K-FAC':>10s}")
    for step in (1, 300, 600, 1000, 2000, 4000, 7038):
        print(f"{step:6d} {r.nvlamb_lr[step-1]:10.6f} {r.kfac_lr[step-1]:10.6f}")
    record(benchmark, crossover_step=r.crossover_step,
           kfac_peak_step=int(r.kfac_lr.argmax()) + 1,
           nvlamb_peak_step=int(r.nvlamb_lr.argmax()) + 1)
    assert int(r.kfac_lr.argmax()) + 1 == 600
    assert int(r.nvlamb_lr.argmax()) + 1 == 2000
    assert 1500 < r.crossover_step <= 2000
    # Both decay to ~0 by the end (poly power 0.5).
    assert r.nvlamb_lr[-1] < 1e-4
    np.testing.assert_allclose(r.kfac_lr[2500:], r.nvlamb_lr[2500:], rtol=1e-9)
