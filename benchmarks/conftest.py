"""Benchmark harness configuration.

Each ``test_fig*``/``test_table*`` file regenerates one table or figure of
the paper's evaluation: it runs the corresponding experiment under
pytest-benchmark (single round for the heavy ones — these measure the
*reproduction output*, not library micro-performance), prints the same
rows/series the paper reports, and attaches paper-vs-measured values to
``benchmark.extra_info``.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import json
from pathlib import Path

import pytest

#: Where ``BENCH_<name>.json`` perf-trajectory files land (repo root).
BENCH_DIR = Path(__file__).resolve().parent.parent


def record(benchmark, **info):
    """Attach paper-vs-measured values to the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


def write_bench(name: str, **data) -> Path:
    """Write ``BENCH_<name>.json`` so perf is tracked across PRs.

    The scaling benchmarks call this with wall-time + speedup numbers;
    the committed files are the perf trajectory the next PR compares
    against.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
