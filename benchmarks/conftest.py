"""Benchmark harness configuration.

Each ``test_fig*``/``test_table*`` file regenerates one table or figure of
the paper's evaluation: it runs the corresponding experiment under
pytest-benchmark (single round for the heavy ones — these measure the
*reproduction output*, not library micro-performance), prints the same
rows/series the paper reports, and attaches paper-vs-measured values to
``benchmark.extra_info``.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def record(benchmark, **info):
    """Attach paper-vs-measured values to the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
