"""Table 2: BERT-Large Phase-1 pretraining time (simulated, as the paper).

Paper: NVLAMB 7,038 steps x 2345.6 ms = 275.1 min; K-FAC w/ PipeFisher
5,000 steps x 2499.5 ms = 208.3 min (75.7%).
"""

from benchmarks.conftest import record
from repro.experiments.table2 import TABLE2_PAPER, format_table2, run_table2


def test_table2(once, benchmark):
    r = once(run_table2)
    print("\n=== Table 2: BERT-Large Phase-1 training time ===")
    print(format_table2(r))
    record(
        benchmark,
        nvlamb_minutes_paper=TABLE2_PAPER["nvlamb_minutes"],
        nvlamb_minutes_measured=round(r.nvlamb_minutes, 1),
        kfac_minutes_paper=TABLE2_PAPER["kfac_minutes"],
        kfac_minutes_measured=round(r.kfac_minutes, 1),
        time_fraction_paper=TABLE2_PAPER["time_fraction"],
        time_fraction_measured=round(r.time_fraction, 3),
        step_overhead=round(r.step_overhead, 4),
    )
    # Who wins: K-FAC w/ PipeFisher cuts total time to ~3/4.
    assert r.kfac_minutes < r.nvlamb_minutes
    assert abs(r.time_fraction - TABLE2_PAPER["time_fraction"]) < 0.05
    # Step times within 15% of the paper's measurements.
    assert abs(r.nvlamb_step_s * 1000 - TABLE2_PAPER["nvlamb_step_ms"]) \
        / TABLE2_PAPER["nvlamb_step_ms"] < 0.15
    # Per-step overhead is precondition-only, <10% (paper: ~6.5%).
    assert 0.0 < r.step_overhead < 0.10
