"""Batched K-FAC numeric kernels vs the seed per-layer/per-micro-batch loops.

The seed implementations are frozen below as the baseline:

* curvature — one small matmul per micro-batch, folded through a float64
  accumulator (``KroneckerFactor.accumulate_microbatches``), with every
  gradient row rescaled by the loss scale first;
* inversion — per-layer float64 SciPy ``cho_factor``/``cho_solve`` against
  a fresh identity, pi-damping traced per layer;
* preconditioning — per-layer concat + two matmuls + two ``astype`` copies;
* block-diagonal solves — re-factorizing every block on every call.

Headline (asserted >= 10x, written to ``BENCH_kfac.json``): the curvature
work on a **full-width BERT-Base encoder stack** — 12 blocks x [4x(768,
768) attention projections, (768, 3072) FF-in, (3072, 768) FF-out], all
72 linears, 8 micro-batches.  8 captured rows per micro-batch keep the
frozen float64 baseline inside the CI budget and put it in its worst
(memory-traffic-bound) regime: per micro-batch it streams three d^2
float64 temporaries per factor — at d=3072 that is ~226 MB of float64
traffic per matmul worth ~9 MFLOP — which is exactly what the
single-concat float32 kernel eliminates.  Speedups shrink as rows per
micro-batch grow (the matmul amortizes the traffic): ~12x at 8 rows,
~8x at 512 rows (see the BENCH history for this machine).

The other works are flop-bound on single-threaded OpenBLAS, so their
wins are bounded by arithmetic, not loop overhead: inversion gains
~2-3x from float32 ``spotrf``/``spotri`` (half the FLOPs of the seed's
``cho_solve``-against-identity, at float32 rates), preconditioning is
gemm-bound in both implementations (asserted only not to regress), and
the cached block-diagonal solves stop paying the per-solve factorization.
All results must match the seed within the tolerances documented in
``tests/kfac/test_batched_equivalence.py``.
"""

import time

import numpy as np

from benchmarks.conftest import record, write_bench
from repro.kfac import KFAC, BlockDiagonalFactor, KFACLayerState
from repro.kfac.factors import compute_factor_from_rows
from repro.kfac.inverse import (
    batched_pair_inverses,
    damped_cholesky_inverse,
    pi_damping,
)
from repro.nn import Linear
from repro.optim import SGD

# BERT-Base encoder topology: per block, four d_model x d_model attention
# projections plus the two FF linears (paper Table 3).
BERT_BASE_BLOCK = [(768, 768)] * 4 + [(768, 3072), (3072, 768)]
NUM_BLOCKS = 12
N_MICRO = 8
ROWS_PER_MICRO = 8
DAMPING = 0.03

#: Float32-vs-float64 agreement bounds (documented in the equivalence suite).
CURV_TOL = dict(rtol=5e-5, atol=1e-6)
INV_TOL = dict(rtol=2e-4, atol=1e-6)


# -- the frozen seed loops ------------------------------------------------------


def seed_accumulate(dim, row_batches, include_bias):
    """Seed per-micro-batch accumulation through a float64 accumulator."""
    total_rows = sum(b.shape[0] for b in row_batches)
    acc = np.zeros((dim, dim), dtype=np.float64)
    for b in row_batches:
        acc += compute_factor_from_rows(b, include_bias=include_bias) * (
            b.shape[0] / total_rows
        )
    return acc.astype(np.float32)


def seed_curvature(states, captures):
    """Seed ``KFAC.update_curvature``: layer by layer, micro-batch by
    micro-batch, gradient rows rescaled before the B factor."""
    for state, (inputs, grads) in zip(states, captures):
        scale = float(sum(g.shape[0] for g in grads))
        a_dim = state.din + (1 if state.include_bias else 0)
        state.a_factor.update(seed_accumulate(a_dim, inputs, state.include_bias))
        scaled = [g * np.float32(scale) for g in grads]
        state.b_factor.update(seed_accumulate(state.dout, scaled, False))


def seed_inverses(states, damping, use_pi=True):
    """Seed ``KFAC.update_inverses``: per-layer float64 SciPy inversion."""
    for state in states:
        if use_pi:
            da, db = pi_damping(state.a_factor.value, state.b_factor.value, damping)
        else:
            da = db = float(np.sqrt(damping))
        state.a_inv = damped_cholesky_inverse(state.a_factor.value, da)
        state.b_inv = damped_cholesky_inverse(state.b_factor.value, db)


def seed_precondition(states, weight_grads, bias_grads):
    """Seed ``KFAC.precondition``: per-layer concat, matmuls, astype."""
    out = []
    for state, wg, bg in zip(states, weight_grads, bias_grads):
        g = np.concatenate([wg, bg.reshape(-1, 1)], axis=1)
        nat = state.b_inv @ g @ state.a_inv
        out.append((nat[:, :-1].astype(np.float32), nat[:, -1].astype(np.float32)))
    return out


def seed_blockdiag_solve_right(blocks, ranges, g, damping):
    """Seed ``BlockDiagonalFactor.solve_right``: re-factorize every call."""
    inverses = [damped_cholesky_inverse(b, damping) for b in blocks]
    out = np.empty_like(g)
    for (s, e), inv in zip(ranges, inverses):
        out[..., s:e] = g[..., s:e] @ inv
    return out


# -- fixtures -------------------------------------------------------------------


def stack_shapes(width_scale=1):
    shapes = []
    for _ in range(NUM_BLOCKS):
        shapes += [(di // width_scale, do // width_scale)
                   for di, do in BERT_BASE_BLOCK]
    return shapes


def make_states(shapes):
    return [
        KFACLayerState(name=f"l{i}", din=di, dout=do, include_bias=True)
        for i, (di, do) in enumerate(shapes)
    ]


def make_captures(shapes, rng):
    captures = []
    for di, do in shapes:
        inputs = [rng.standard_normal((ROWS_PER_MICRO, di)).astype(np.float32)
                  for _ in range(N_MICRO)]
        grads = [(rng.standard_normal((ROWS_PER_MICRO, do)) * 0.02).astype(np.float32)
                 for _ in range(N_MICRO)]
        captures.append((inputs, grads))
    return captures


def make_kfac(shapes, rng):
    layers = [Linear(di, do, rng=rng) for di, do in shapes]
    inner = SGD([p for l in layers for p in l.parameters()], lr=0.1)
    return layers, KFAC([(f"l{i}", l) for i, l in enumerate(layers)], inner,
                        damping=DAMPING)


def load_captures(layers, captures):
    for layer, (inputs, grads) in zip(layers, captures):
        layer.captured_inputs = list(inputs)
        layer.captured_output_grads = list(grads)


_BENCH_RESULTS: dict[str, float] = {}


# -- benchmarks -----------------------------------------------------------------


def test_curvature_batching_bert_base(once, benchmark):
    """Headline: >= 10x on the full-width BERT-Base encoder stack.

    Timed at steady state: training refreshes curvature every
    ``curvature_interval`` steps, reusing the persistent group workspaces,
    so the first (cold, page-faulting) refresh is warm-up here.  The seed
    loop needs no warm-up — its per-micro-batch float64 temporaries
    recycle through the allocator within a single refresh.
    """
    rng = np.random.default_rng(0)
    shapes = stack_shapes(width_scale=1)
    captures = make_captures(shapes, rng)
    layers, kfac = make_kfac(shapes, rng)

    load_captures(layers, captures)
    kfac.update_curvature()  # warm-up: fault in the group workspaces
    load_captures(layers, captures)
    t0 = time.perf_counter()
    once(kfac.update_curvature)
    new_s = time.perf_counter() - t0

    seed_states = make_states(shapes)
    t0 = time.perf_counter()
    seed_curvature(seed_states, captures)
    seed_s = time.perf_counter() - t0

    for (_, state), ref in zip(kfac.layers, seed_states):
        np.testing.assert_allclose(state.a_factor.value, ref.a_factor.value,
                                   **CURV_TOL)
        np.testing.assert_allclose(state.b_factor.value, ref.b_factor.value,
                                   **CURV_TOL)

    speedup = seed_s / new_s
    print(f"\ncurvature, {len(shapes)} BERT-Base linears x {N_MICRO} micro-"
          f"batches: batched {new_s:.2f}s vs seed loop {seed_s:.2f}s "
          f"({speedup:.1f}x)")
    assert speedup >= 10.0, (
        f"expected >= 10x over the seed curvature loop, got {speedup:.1f}x "
        f"({new_s:.2f}s vs {seed_s:.2f}s)"
    )
    record(benchmark, seed_s=round(seed_s, 3), batched_s=round(new_s, 3),
           speedup=round(speedup, 1))
    _BENCH_RESULTS["curvature_seed_s"] = round(seed_s, 3)
    _BENCH_RESULTS["curvature_batched_s"] = round(new_s, 3)
    _BENCH_RESULTS["curvature_speedup"] = round(speedup, 1)


def test_inversion_grouping():
    """Grouped float32 Cholesky batches vs the per-layer float64 loop.

    Quarter-width stack (192/768): the seed baseline's float64 d^3 work
    at full 3072 width alone would take minutes of CI time.  Flop-bound
    either way, so the win is the ~2x float32 rate on half the FLOPs
    (potri vs cho_solve-against-identity), not loop elimination.
    """
    rng = np.random.default_rng(1)
    shapes = stack_shapes(width_scale=4)
    states = make_states(shapes)
    for state, (di, do) in zip(states, shapes):
        # Full-rank factors (rows > dim) keep the damped matrices well
        # conditioned, where the float32 batch tracks the float64 seed.
        a_rows = rng.standard_normal((1024, di + 1)).astype(np.float32)
        b_rows = rng.standard_normal((1024, do)).astype(np.float32)
        state.a_factor.update(compute_factor_from_rows(a_rows))
        state.b_factor.update(compute_factor_from_rows(b_rows))

    pairs = [(s.a_factor.value, s.b_factor.value) for s in states]
    new_s = float("inf")
    for rep in range(2):  # min-of-2: the first call pays cold page faults
        t0 = time.perf_counter()
        inverses = batched_pair_inverses(pairs, DAMPING, True)
        new_s = min(new_s, time.perf_counter() - t0)

    seed_states = make_states(shapes)
    for seed_state, state in zip(seed_states, states):
        seed_state.a_factor.value = state.a_factor.value
        seed_state.b_factor.value = state.b_factor.value
    seed_s = float("inf")
    for rep in range(2):
        t0 = time.perf_counter()
        seed_inverses(seed_states, DAMPING)
        seed_s = min(seed_s, time.perf_counter() - t0)

    for (a_inv, b_inv), ref in zip(inverses, seed_states):
        np.testing.assert_allclose(a_inv, ref.a_inv, **INV_TOL)
        np.testing.assert_allclose(b_inv, ref.b_inv, **INV_TOL)

    speedup = seed_s / new_s
    print(f"\ninversion, {2 * len(shapes)} factors (dims 193/769/192/768): "
          f"batched {new_s:.2f}s vs seed loop {seed_s:.2f}s ({speedup:.1f}x)")
    assert speedup >= 1.5, (
        f"expected >= 1.5x over the seed inversion loop, got {speedup:.1f}x"
    )
    _BENCH_RESULTS["inversion_seed_s"] = round(seed_s, 3)
    _BENCH_RESULTS["inversion_batched_s"] = round(new_s, 3)
    _BENCH_RESULTS["inversion_speedup"] = round(speedup, 1)


def test_precondition_stacking():
    """Stacked-matmul preconditioning must not regress the seed loop.

    Both implementations are gemm-bound (the two B^{-1} G A^{-1} products
    dominate at any width), so this asserts parity, not a speedup: the
    batched path's gain is the removed per-layer concat/astype copies,
    which is within noise at these sizes.
    """
    rng = np.random.default_rng(2)
    shapes = stack_shapes(width_scale=4)
    layers, kfac = make_kfac(shapes, rng)
    captures = make_captures(shapes, rng)
    load_captures(layers, captures)
    kfac.update_curvature()
    kfac.update_inverses()
    weight_grads, bias_grads = [], []
    for layer, (di, do) in zip(layers, shapes):
        wg = rng.standard_normal((do, di)).astype(np.float32)
        bg = rng.standard_normal(do).astype(np.float32)
        weight_grads.append(wg)
        bias_grads.append(bg)
        layer.weight.grad = wg.copy()
        layer.bias.grad = bg.copy()

    steps = 10  # steady state: many precondition calls per inverse refresh
    t0 = time.perf_counter()
    for _ in range(steps):
        kfac.precondition()
    new_s = (time.perf_counter() - t0) / steps

    seed_states = [state for _, state in kfac.layers]
    t0 = time.perf_counter()
    for _ in range(steps):
        seed_out = seed_precondition(seed_states, weight_grads, bias_grads)
    seed_s = (time.perf_counter() - t0) / steps

    # The timed kfac.precondition() calls composed `steps` applications in
    # place; re-apply once from the original gradients for the comparison.
    for layer, wg, bg in zip(layers, weight_grads, bias_grads):
        layer.weight.grad = wg.copy()
        layer.bias.grad = bg.copy()
    kfac.precondition()
    for layer, (w_ref, b_ref) in zip(layers, seed_out):
        np.testing.assert_allclose(layer.weight.grad, w_ref, rtol=1e-5,
                                   atol=1e-6)
        np.testing.assert_allclose(layer.bias.grad, b_ref, rtol=1e-5,
                                   atol=1e-6)

    ratio = seed_s / new_s
    print(f"\nprecondition, {len(shapes)} layers: stacked {new_s * 1e3:.1f}ms "
          f"vs seed loop {seed_s * 1e3:.1f}ms per step ({ratio:.2f}x)")
    assert ratio >= 0.6, (
        f"stacked preconditioning regressed the seed loop: {ratio:.2f}x"
    )
    _BENCH_RESULTS["precondition_seed_ms"] = round(seed_s * 1e3, 2)
    _BENCH_RESULTS["precondition_batched_ms"] = round(new_s * 1e3, 2)
    _BENCH_RESULTS["precondition_ratio"] = round(ratio, 2)


def test_blockdiag_solve_caching():
    """Appendix A.2 steady state: cached inverse blocks vs per-solve
    re-factorization, at the full BERT-Base d_ff = 3072 with K=8 blocks
    over a 16-step refresh interval."""
    dim, num_blocks, steps = 3072, 8, 16
    rng = np.random.default_rng(3)
    bd = BlockDiagonalFactor(dim, num_blocks)
    rows = rng.standard_normal((512, dim)).astype(np.float32)
    g = rng.standard_normal((768, dim)).astype(np.float32)

    bd.update_from_rows(rows)
    t0 = time.perf_counter()
    for _ in range(steps):
        cached_out = bd.solve_right(g, DAMPING)
    new_s = time.perf_counter() - t0
    assert bd.factorizations == num_blocks  # one factorization, 16 solves

    blocks = [b.copy() for b in bd.blocks]
    t0 = time.perf_counter()
    for _ in range(steps):
        seed_out = seed_blockdiag_solve_right(blocks, bd.ranges, g, DAMPING)
    seed_s = time.perf_counter() - t0

    np.testing.assert_allclose(cached_out, seed_out, rtol=2e-3, atol=1e-5)

    speedup = seed_s / new_s
    print(f"\nblock-diagonal solves, d={dim} K={num_blocks} x {steps} steps: "
          f"cached {new_s:.2f}s vs re-factorizing {seed_s:.2f}s "
          f"({speedup:.1f}x)")
    assert speedup >= 1.8, (
        f"expected >= 1.8x from inverse-block caching, got {speedup:.1f}x"
    )
    _BENCH_RESULTS["blockdiag_seed_s"] = round(seed_s, 3)
    _BENCH_RESULTS["blockdiag_cached_s"] = round(new_s, 3)
    _BENCH_RESULTS["blockdiag_speedup"] = round(speedup, 1)


def test_write_bench_kfac():
    """Aggregate the measured numbers into BENCH_kfac.json (runs last)."""
    assert "curvature_speedup" in _BENCH_RESULTS, "headline benchmark did not run"
    write_bench(
        "kfac",
        config=dict(
            stack="BERT-Base encoder: 12 blocks x [4x(768,768), (768,3072), "
                  "(3072,768)], 72 linears",
            n_micro=N_MICRO,
            rows_per_micro=ROWS_PER_MICRO,
            damping=DAMPING,
            inversion_precondition_width_scale=4,
            tolerance="curvature rtol=5e-5; inverses rtol=2e-4 "
                      "(float32 kernels vs float64 seed loops; see "
                      "tests/kfac/test_batched_equivalence.py)",
        ),
        **_BENCH_RESULTS,
    )
