"""Benchmarks for the paper's §5 / Appendix extensions.

* Shampoo bubble filling — eigendecomposition work split into bubble-sized
  pieces (§5's "divides the work for a single matrix into multiple pieces").
* SAM bubble filling — the extra forward/backward per micro-batch
  ("potential to double the accelerator utilization", §5).
* Async pipeline vs PipeFisher (Appendix C.1) — both fill bubbles; async
  pays in gradient staleness, PipeFisher in nothing but precondition time.
* Appendix A.2 — block-diagonal factors keep the refresh ratio invariant
  under K-fold model scaling.
"""

from benchmarks.conftest import record
from repro.extensions import build_sam_queues, build_shampoo_queues
from repro.extensions.async_pipeline import AsyncOneFOneBSchedule, stale_gradient_descent
from repro.perfmodel import PipelinePerfModel
from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.perfmodel.hardware import P100
from repro.pipefisher import BubbleFiller
from repro.pipeline import OneFOneBSchedule, PipelineConfig, make_schedule, simulate_tasks
from repro.profiler import Timeline, utilization


def _setup(schedule="gpipe"):
    costs = compute_stage_costs(BERT_BASE, P100, 32, layers_per_stage=3,
                                overhead_s=host_overhead(schedule))
    cfg = PipelineConfig(depth=4, n_micro=4, costs=costs, precondition=True,
                         stage_param_bytes=3 * BERT_BASE.param_bytes())
    builder = make_schedule(schedule, cfg)
    template = simulate_tasks(builder.build(), builder.num_devices)
    return builder, costs, template


def _fill_and_utilize(builder, template, queues):
    result = BubbleFiller(template, queues).fill()
    span = template.makespan
    combined = Timeline(builder.num_devices)
    for k in range(result.refresh_steps):
        combined.extend([e.shifted(k * span) for e in template.timeline.events])
    combined.extend(result.events())
    return result, utilization(combined, (0.0, result.refresh_steps * span))


def test_shampoo_bubble_filling(once, benchmark):
    builder, costs, template = _setup()

    def run():
        queues = build_shampoo_queues(builder, costs)
        return _fill_and_utilize(builder, template, queues)

    result, util = once(run)
    base_util = utilization(template.timeline, (0.0, template.makespan))
    print(f"\n=== Extension: Shampoo bubble filling ===")
    print(f"baseline util {base_util:.1%} -> with Shampoo work {util:.1%}; "
          f"statistics+eig refreshed every {result.refresh_steps} steps")
    record(benchmark, base_util=round(base_util, 3), shampoo_util=round(util, 3),
           refresh_steps=result.refresh_steps)
    assert util > base_util + 0.15
    # Eigendecomposition is pricier than Cholesky: refresh takes longer
    # than K-FAC's 2 steps, but still single digits.
    assert 2 <= result.refresh_steps <= 9


def test_sam_bubble_filling(once, benchmark):
    builder, costs, template = _setup()

    def run():
        queues = build_sam_queues(builder, costs)
        return _fill_and_utilize(builder, template, queues)

    result, util = once(run)
    base_util = utilization(template.timeline, (0.0, template.makespan))
    print(f"\n=== Extension: SAM bubble filling ===")
    print(f"baseline util {base_util:.1%} -> with SAM's 2nd fwd/bwd {util:.1%}; "
          f"one SAM epoch of extra work every {result.refresh_steps} steps")
    record(benchmark, base_util=round(base_util, 3), sam_util=round(util, 3),
           refresh_steps=result.refresh_steps)
    assert util > base_util * 1.5  # "potential to double the utilization"


def test_async_pipeline_tradeoff(once, benchmark):
    """Appendix C.1: async fills bubbles with stale-gradient work; the
    throughput win is real, and so is the convergence cost."""
    def run():
        cfg_sync = _setup("1f1b")[0].config
        sync = OneFOneBSchedule(cfg_sync)
        asyn = AsyncOneFOneBSchedule(cfg_sync)
        steps = 6
        s = simulate_tasks(sync.build(steps=steps), sync.num_devices)
        a = simulate_tasks(asyn.build(steps=steps), asyn.num_devices)
        return s.makespan / steps, a.makespan / steps

    sync_step, async_step = once(run)
    fresh = stale_gradient_descent(staleness=0, steps=150)
    stale = stale_gradient_descent(staleness=8, steps=150)
    print(f"\n=== Appendix C.1: async pipeline ===")
    print(f"time/step: sync 1F1B {sync_step*1000:.0f} ms vs async "
          f"{async_step*1000:.0f} ms ({sync_step/async_step:.2f}x faster)")
    print(f"stale-gradient cost on an ill-conditioned quadratic: final loss "
          f"{fresh[-1]:.2e} (fresh) vs {stale[-1]:.2e} (staleness 8)")
    record(benchmark, sync_step_ms=round(sync_step * 1000, 1),
           async_step_ms=round(async_step * 1000, 1),
           fresh_final=float(fresh[-1]), stale_final=float(stale[-1]))
    assert async_step < sync_step
    assert stale[-1] > fresh[-1]


def test_appendix_a2_block_diagonal_scaling(once, benchmark):
    """A.2: K-block-diagonal factors keep (curv+inv)/bubble invariant when
    d_model and d_ff are multiplied by K."""
    def run():
        base = PipelinePerfModel(BERT_BASE, P100, "chimera").report(32, 8)
        naive = PipelinePerfModel(BERT_BASE.scaled(4), P100, "chimera").report(32, 8)
        blocked = PipelinePerfModel(BERT_BASE.scaled(4), P100, "chimera",
                                    factor_blocks=4).report(32, 8)
        return base.ratio, naive.ratio, blocked.ratio

    base_r, naive_r, blocked_r = once(run)
    print(f"\n=== Appendix A.2: block-diagonal factors at 4x scale ===")
    print(f"(curv+inv)/bubble: BERT-Base {base_r:.2f}; 4x-wide naive "
          f"{naive_r:.2f}; 4x-wide w/ 4-block factors {blocked_r:.2f}")
    record(benchmark, base_ratio=round(base_r, 2), naive_ratio=round(naive_r, 2),
           blocked_ratio=round(blocked_r, 2))
    assert naive_r > 1.3 * base_r          # inversion outgrows bubbles
    assert abs(blocked_r - base_r) < 0.2 * base_r  # restored by blocking
