"""Figure 5: performance model for Chimera with BERT-Base blocks.

Regenerates the paper's panels: per-step time breakdown, memory breakdown,
throughput of the four execution strategies, and the
(curvature+inversion)/bubble ratio, for B_micro in {8,16,32} and
D in {4,8,16}, with and without activation recomputation.
"""

from benchmarks.conftest import record
from repro.experiments.perfmodel_figs import format_perf_figure, run_fig5


def test_fig5_time_and_memory(once, benchmark):
    fig = once(run_fig5)
    print("\n=== Figure 5: Chimera + BERT-Base performance model ===")
    print(format_perf_figure(fig))
    print("\nPer-step time breakdown (seconds):")
    print(f"{'B':>4s} {'D':>4s} {'T_fwd':>8s} {'T_bwd':>8s} {'T_prec':>8s} "
          f"{'T_bubble':>9s} {'N*T_curv':>9s} {'T_inv':>8s}")
    for (b, d), r in sorted(fig.grid.items()):
        print(f"{b:4d} {d:4d} {r.t_fwd:8.4f} {r.t_bwd:8.4f} {r.t_prec:8.4f} "
              f"{r.t_bubble:9.4f} {r.t_curv_total:9.4f} {r.t_inv:8.4f}")
    print("\nMemory breakdown (GB):")
    print(f"{'B':>4s} {'D':>4s} {'act':>7s} {'pk_err':>7s} {'sv_err':>7s} "
          f"{'curv+inv':>9s} {'par+grad':>9s} {'total':>7s}")
    for (b, d), r in sorted(fig.grid.items()):
        m = r.memory
        print(f"{b:4d} {d:4d} {m.act/1e9:7.2f} {m.peak_err/1e9:7.2f} "
              f"{m.save_err/1e9:7.2f} {m.curv_inv/1e9:9.2f} "
              f"{m.param_grad/1e9:9.2f} {m.total_gb():7.2f}")

    r32 = fig.grid[(32, 8)]
    record(benchmark, ratio_b32_d8=round(r32.ratio, 2),
           throughput_b32_d8=round(r32.throughput_pipeline, 1),
           memory_gb_b32_d8=round(r32.memory.total_gb(), 2))
    # Fig. 5 shapes: ratio ~2-4 at (32, 8); recomputation enlarges bubbles.
    assert 1.5 < r32.ratio < 5.0
    rec = run_fig5(recompute=True)
    assert rec.grid[(32, 8)].t_bubble > r32.t_bubble
    assert rec.grid[(32, 8)].memory.total < r32.memory.total


def test_fig5_strategy_ordering(benchmark):
    fig = run_fig5()

    def check():
        for r in fig.grid.values():
            assert (r.throughput_pipefisher >= r.throughput_kfac_skip
                    >= r.throughput_kfac_naive)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
