"""Figure 9: performance models for BERT-Base — GPipe/1F1B vs Chimera.

Regenerates both panel families and asserts the §3.3 tradeoff: Chimera has
higher throughput (smaller T_bubble) but refreshes curvature less often.
"""

from benchmarks.conftest import record
from repro.experiments.perfmodel_figs import format_perf_figure, run_fig9_10


def test_fig9_bert_base(once, benchmark):
    def run():
        return (run_fig9_10("BERT-Base", "gpipe"),
                run_fig9_10("BERT-Base", "chimera"),
                run_fig9_10("BERT-Base", "gpipe", recompute=True),
                run_fig9_10("BERT-Base", "chimera", recompute=True))

    gpipe, chimera, gpipe_r, chimera_r = once(run)
    print("\n=== Figure 9: BERT-Base performance model ===")
    print(format_perf_figure(gpipe))
    print()
    print(format_perf_figure(chimera))

    for key in gpipe.grid:
        g, c = gpipe.grid[key], chimera.grid[key]
        assert c.throughput_pipeline > g.throughput_pipeline, key
        assert c.ratio > g.ratio, key
        # Activation recomputation: larger bubble, lower ratio, less memory.
        gr = gpipe_r.grid[key]
        assert gr.t_bubble > g.t_bubble
        assert gr.ratio < g.ratio
        assert gr.memory.total < g.memory.total

    b, d = 32, 8
    record(benchmark,
           gpipe_thr=round(gpipe.grid[(b, d)].throughput_pipeline, 1),
           chimera_thr=round(chimera.grid[(b, d)].throughput_pipeline, 1),
           gpipe_ratio=round(gpipe.grid[(b, d)].ratio, 2),
           chimera_ratio=round(chimera.grid[(b, d)].ratio, 2))
