"""Monte Carlo replicate throughput: template reuse vs per-seed rebuild.

A stochastic replicate is a pure re-timing pass over a compiled
template: perturb the duration arrays, re-run the event loop.  The
naive alternative rebuilds the schedule graph (template compile +
stage-cost lookup through a fresh engine) for every seed.  Both paths
are asserted bit-identical per seed, then timed over the same seed set;
the replicates/sec ratio is asserted **>= 5x** and written to
``BENCH_mc.json``.

On top of template reuse, :func:`~repro.stochastic.mc.replicate_batch`
re-times every fault-free replicate of a seed block as one native
``(n_seeds, n_tasks)`` pass per graph.  Its absolute throughput is
asserted against a floor of 3x the pre-batching scalar rate recorded in
this benchmark's history (564.8 replicates/s), after asserting the
records bit-identical to the scalar path's.

Fault-carrying replicates used to drop out of the batch to the scalar
fallback; the native restart-replay core now keeps them in the same
``(n_seeds, n_tasks)`` pass.  A preemption-heavy model (every seed
draws failures) is asserted bit-identical to the scalar fault path,
then timed: batched faulty replicates/sec must be **>= 5x** the
per-seed scalar rate.
"""

import gc
import time
from contextlib import contextmanager

from benchmarks.conftest import record, write_bench
from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.pipefisher.runner import PipeFisherRun
from repro.stochastic.mc import replicate_batch, replicate_from_point
from repro.stochastic.model import StochasticModel
from repro.sweep import SweepEngine

SEEDS = tuple(range(32))
#: A larger block for the batched-throughput measurement: amortizes the
#: one-off marshalling so the rate reflects the per-replicate cost.
BATCH_SEEDS = tuple(range(256))
REPS = 3
MIN_SPEEDUP = 5.0
#: 3x the scalar template-reuse rate this benchmark recorded before the
#: batched path existed.
MIN_BATCH_RATE = 3.0 * 564.8

#: Jitter + straggler (fault-free), so every replicate exercises the
#: full perturbation path with a deterministic amount of work per seed.
MODEL = StochasticModel(jitter_sigma=0.03, straggler_count=1,
                        straggler_slowdown=1.05)

#: Preemption-heavy: rate 1.0 over this horizon makes every seed draw
#: failures, so the whole block exercises the native restart replay.
FAULTY_MODEL = StochasticModel(jitter_sigma=0.02, preemption_rate=1.0,
                               restart_delay_frac=0.05,
                               checkpoint_interval_frac=0.1)
MIN_FAULTY_SPEEDUP = 5.0


@contextmanager
def gc_paused():
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def mc_run() -> PipeFisherRun:
    return PipeFisherRun(schedule="1f1b", arch=ARCHITECTURES["BERT-Base"],
                         hardware=HARDWARE["P100"], b_micro=32, depth=8,
                         n_micro=16, layers_per_stage=2)


def reuse_replicates(run):
    """One compiled point, one nominal evaluation, N re-timing passes."""
    engine = SweepEngine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    return [replicate_from_point(point, nominal, MODEL, s) for s in SEEDS]


def naive_replicates(run):
    """A fresh engine per seed: every replicate pays the graph rebuild."""
    out = []
    for s in SEEDS:
        engine = SweepEngine()
        point = engine.compiled_point(run)
        nominal = engine.nominal_evaluation(point)
        out.append(replicate_from_point(point, nominal, MODEL, s))
    return out


def scalar_block(run, seeds, model=MODEL):
    """Template reuse, scalar replicate loop over ``seeds``."""
    engine = SweepEngine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    return [replicate_from_point(point, nominal, model, s) for s in seeds]


def batched_block(run, seeds, model=MODEL):
    """Template reuse plus the native batched re-timing pass."""
    engine = SweepEngine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    return replicate_batch(point, nominal, model, seeds)


def test_mc_template_reuse_speedup(once, benchmark):
    run = mc_run()

    # -- bit-identity: reuse is an optimization, not an approximation ----------
    assert reuse_replicates(run) == naive_replicates(run)

    reuse_s = naive_s = float("inf")
    for rep in range(REPS):
        with gc_paused():
            t0 = time.perf_counter()
            if rep == REPS - 1:
                once(reuse_replicates, run)
            else:
                reuse_replicates(run)
            reuse_s = min(reuse_s, time.perf_counter() - t0)
        with gc_paused():
            t0 = time.perf_counter()
            naive_replicates(run)
            naive_s = min(naive_s, time.perf_counter() - t0)

    speedup = naive_s / reuse_s
    reuse_rate = len(SEEDS) / reuse_s
    naive_rate = len(SEEDS) / naive_s
    print(f"\nMC replicates: {len(SEEDS)} seeds; template reuse "
          f"{reuse_s:.3f}s ({reuse_rate:.0f}/s) vs per-seed rebuild "
          f"{naive_s:.3f}s ({naive_rate:.0f}/s) => {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"template reuse yields only {speedup:.1f}x over per-seed rebuild "
        f"(floor {MIN_SPEEDUP:.0f}x)")

    # -- batched replicate throughput ------------------------------------------
    # Bit-identity first (batching is an execution mode, not a model
    # change), then min-of-REPS over the larger seed block.
    scalar_ref = scalar_block(run, BATCH_SEEDS)
    assert batched_block(run, BATCH_SEEDS) == scalar_ref

    batched_s = float("inf")
    for _ in range(REPS):
        with gc_paused():
            t0 = time.perf_counter()
            batched_block(run, BATCH_SEEDS)
            batched_s = min(batched_s, time.perf_counter() - t0)
    batched_rate = len(BATCH_SEEDS) / batched_s
    batch_speedup = batched_rate / reuse_rate
    print(f"MC batched replicates: {len(BATCH_SEEDS)} seeds in "
          f"{batched_s:.3f}s ({batched_rate:.0f}/s, {batch_speedup:.1f}x "
          f"the scalar reuse rate; floor {MIN_BATCH_RATE:.0f}/s)")
    assert batched_rate >= MIN_BATCH_RATE, (
        f"batched replicates run at {batched_rate:.0f}/s, below the "
        f"{MIN_BATCH_RATE:.0f}/s floor (3x the pre-batching scalar rate)")

    # -- faulty-rows batched headline ------------------------------------------
    # Restart replay in the native core: a preemption-heavy model keeps
    # every seed on the batched path.  Bit-identity vs the scalar fault
    # path comes first — restart rows, lost work, and all.
    faulty_scalar = scalar_block(run, BATCH_SEEDS, FAULTY_MODEL)
    assert all(r["n_restarts"] > 0 for r in faulty_scalar), \
        "the faulty benchmark model must fault every seed"
    assert batched_block(run, BATCH_SEEDS, FAULTY_MODEL) == faulty_scalar

    faulty_scalar_s = faulty_batched_s = float("inf")
    for _ in range(REPS):
        with gc_paused():
            t0 = time.perf_counter()
            scalar_block(run, BATCH_SEEDS, FAULTY_MODEL)
            faulty_scalar_s = min(faulty_scalar_s,
                                  time.perf_counter() - t0)
        with gc_paused():
            t0 = time.perf_counter()
            batched_block(run, BATCH_SEEDS, FAULTY_MODEL)
            faulty_batched_s = min(faulty_batched_s,
                                   time.perf_counter() - t0)
    faulty_rate = len(BATCH_SEEDS) / faulty_batched_s
    faulty_scalar_rate = len(BATCH_SEEDS) / faulty_scalar_s
    faulty_speedup = faulty_scalar_s / faulty_batched_s
    print(f"MC faulty replicates: {len(BATCH_SEEDS)} seeds, all "
          f"restart-carrying; batched {faulty_batched_s:.3f}s "
          f"({faulty_rate:.0f}/s) vs scalar {faulty_scalar_s:.3f}s "
          f"({faulty_scalar_rate:.0f}/s) => {faulty_speedup:.1f}x")
    assert faulty_speedup >= MIN_FAULTY_SPEEDUP, (
        f"batched faulty replicates give only {faulty_speedup:.1f}x over "
        f"the scalar fault path (floor {MIN_FAULTY_SPEEDUP:.0f}x)")

    record(benchmark, replicates=len(SEEDS), reuse_s=round(reuse_s, 4),
           naive_s=round(naive_s, 4), speedup=round(speedup, 1),
           batched_rate=round(batched_rate, 1),
           faulty_speedup=round(faulty_speedup, 1))
    write_bench(
        "mc",
        replicates=len(SEEDS),
        reuse_s=round(reuse_s, 4),
        naive_s=round(naive_s, 4),
        replicates_per_s_reuse=round(reuse_rate, 1),
        replicates_per_s_naive=round(naive_rate, 1),
        speedup=round(speedup, 1),
        min_speedup=MIN_SPEEDUP,
        batch_replicates=len(BATCH_SEEDS),
        batched_s=round(batched_s, 4),
        replicates_per_s_batched=round(batched_rate, 1),
        min_replicates_per_s_batched=round(MIN_BATCH_RATE, 1),
        faulty_scalar_s=round(faulty_scalar_s, 4),
        faulty_batched_s=round(faulty_batched_s, 4),
        replicates_per_s_faulty_batched=round(faulty_rate, 1),
        replicates_per_s_faulty_scalar=round(faulty_scalar_rate, 1),
        faulty_speedup=round(faulty_speedup, 1),
        min_faulty_speedup=MIN_FAULTY_SPEEDUP,
    )
