"""Monte Carlo replicate throughput: template reuse vs per-seed rebuild.

A stochastic replicate is a pure re-timing pass over a compiled
template: perturb the duration arrays, re-run the event loop.  The
naive alternative rebuilds the schedule graph (template compile +
stage-cost lookup through a fresh engine) for every seed.  Both paths
are asserted bit-identical per seed, then timed over the same seed set;
the replicates/sec ratio is asserted **>= 5x** and written to
``BENCH_mc.json``.
"""

import gc
import time
from contextlib import contextmanager

from benchmarks.conftest import record, write_bench
from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.pipefisher.runner import PipeFisherRun
from repro.stochastic.mc import replicate_from_point
from repro.stochastic.model import StochasticModel
from repro.sweep import SweepEngine

SEEDS = tuple(range(32))
REPS = 3
MIN_SPEEDUP = 5.0

#: Jitter + straggler (fault-free), so every replicate exercises the
#: full perturbation path with a deterministic amount of work per seed.
MODEL = StochasticModel(jitter_sigma=0.03, straggler_count=1,
                        straggler_slowdown=1.05)


@contextmanager
def gc_paused():
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def mc_run() -> PipeFisherRun:
    return PipeFisherRun(schedule="1f1b", arch=ARCHITECTURES["BERT-Base"],
                         hardware=HARDWARE["P100"], b_micro=32, depth=8,
                         n_micro=16, layers_per_stage=2)


def reuse_replicates(run):
    """One compiled point, one nominal evaluation, N re-timing passes."""
    engine = SweepEngine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    return [replicate_from_point(point, nominal, MODEL, s) for s in SEEDS]


def naive_replicates(run):
    """A fresh engine per seed: every replicate pays the graph rebuild."""
    out = []
    for s in SEEDS:
        engine = SweepEngine()
        point = engine.compiled_point(run)
        nominal = engine.nominal_evaluation(point)
        out.append(replicate_from_point(point, nominal, MODEL, s))
    return out


def test_mc_template_reuse_speedup(once, benchmark):
    run = mc_run()

    # -- bit-identity: reuse is an optimization, not an approximation ----------
    assert reuse_replicates(run) == naive_replicates(run)

    reuse_s = naive_s = float("inf")
    for rep in range(REPS):
        with gc_paused():
            t0 = time.perf_counter()
            if rep == REPS - 1:
                once(reuse_replicates, run)
            else:
                reuse_replicates(run)
            reuse_s = min(reuse_s, time.perf_counter() - t0)
        with gc_paused():
            t0 = time.perf_counter()
            naive_replicates(run)
            naive_s = min(naive_s, time.perf_counter() - t0)

    speedup = naive_s / reuse_s
    reuse_rate = len(SEEDS) / reuse_s
    naive_rate = len(SEEDS) / naive_s
    print(f"\nMC replicates: {len(SEEDS)} seeds; template reuse "
          f"{reuse_s:.3f}s ({reuse_rate:.0f}/s) vs per-seed rebuild "
          f"{naive_s:.3f}s ({naive_rate:.0f}/s) => {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"template reuse yields only {speedup:.1f}x over per-seed rebuild "
        f"(floor {MIN_SPEEDUP:.0f}x)")

    record(benchmark, replicates=len(SEEDS), reuse_s=round(reuse_s, 4),
           naive_s=round(naive_s, 4), speedup=round(speedup, 1))
    write_bench(
        "mc",
        replicates=len(SEEDS),
        reuse_s=round(reuse_s, 4),
        naive_s=round(naive_s, 4),
        replicates_per_s_reuse=round(reuse_rate, 1),
        replicates_per_s_naive=round(naive_rate, 1),
        speedup=round(speedup, 1),
        min_speedup=MIN_SPEEDUP,
    )
