"""ZB-H1 zero-bubble sweep: frozen per-point baseline vs the sweep engine.

The baseline frozen below is the pre-engine evaluation of the zero-bubble
grid: for every (B_micro, depth) point, both schedules' task graphs are
built, simulated, inventoried and bubble-filled from scratch through
``PipeFisherRun.execute()`` (with the runner's stage-cost memo, the PR 3
state of the loop).  The engine path canonicalizes the same grid onto
compiled schedule templates — one per (schedule, depth) — and re-times
each point.  Every report is asserted **bit-identical** before any
speedup is asserted, and the zero-bubble claims are re-checked as
invariants: smaller measured bubble fraction and faster steps than plain
1F1B at the same activation memory, at every fig6-style point.

Emits ``BENCH_zb.json`` (the perf-trajectory file the next PR compares
against; re-run by the non-gating CI benchmarks job).
"""

import time

from benchmarks.conftest import record, write_bench
from repro.experiments.zb import (
    baseline_bubble_fraction,
    format_zb_sweep,
    run_zb_sweep,
)
from repro.pipefisher.runner import PipeFisherRun, clear_stage_costs_memo
from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import P100
from repro.sweep import SweepEngine

B_MICRO_VALUES = (4, 16, 32)
DEPTH_VALUES = (4, 8, 16)
#: min-of-N timing on both sides (cold caches each rep).
REPS = 2


def grid_points():
    arch = ARCHITECTURES["BERT-Base"]
    for depth in DEPTH_VALUES:
        for b in B_MICRO_VALUES:
            for sched in ("1f1b", "zb1f1b"):
                yield (b, depth, sched), PipeFisherRun(
                    schedule=sched, arch=arch, hardware=P100,
                    b_micro=b, depth=depth, n_micro=depth,
                )


def point_numbers(report):
    return (report.baseline_step_time, report.baseline_utilization,
            report.pipefisher_step_time, report.pipefisher_utilization,
            report.refresh_steps, report.device_refresh_steps,
            baseline_bubble_fraction(report))


def frozen_loop():
    """The per-point loop: every point re-derives all structure."""
    clear_stage_costs_memo()
    return {key: point_numbers(run.execute()) for key, run in grid_points()}


def engine_loop():
    """The same grid through a fresh (cold) sweep engine."""
    engine = SweepEngine()
    out = {key: point_numbers(engine.run(run)) for key, run in grid_points()}
    return out, engine


def test_zb_sweep(once, benchmark):
    # -- bit-identity before any timing ---------------------------------------
    ref = frozen_loop()
    got, engine = engine_loop()
    assert ref == got
    stats = engine.stats()
    assert stats["templates"].misses == len(DEPTH_VALUES) * 2
    assert stats["templates"].hits >= len(DEPTH_VALUES) * 2 * (
        len(B_MICRO_VALUES) - 1)

    # -- the zero-bubble invariants, on the identical numbers ------------------
    result = once(run_zb_sweep, b_micro_values=B_MICRO_VALUES,
                  depth_values=DEPTH_VALUES, engine=SweepEngine())
    print("\n" + format_zb_sweep(result))
    for key, row in result.rows.items():
        assert row.bubble_zb < row.bubble_1f1b, key
        assert row.step_speedup > 1.0, key
        z = row.zero_bubble
        assert z.baseline_utilization > row.one_f_one_b.baseline_utilization, key
        assert z.pipefisher_utilization > z.baseline_utilization + 0.10, key
        assert z.refresh_steps >= row.one_f_one_b.refresh_steps, key

    # -- perf trajectory --------------------------------------------------------
    t_base = min(_timed(frozen_loop) for _ in range(REPS))
    t_engine = min(_timed(lambda: engine_loop()[0]) for _ in range(REPS))
    speedup = t_base / t_engine
    assert speedup >= 1.2, f"engine path only {speedup:.2f}x on the zb grid"

    headline = result.rows[(32, 16)]
    write_bench(
        "zb",
        grid_points=len(DEPTH_VALUES) * len(B_MICRO_VALUES) * 2,
        baseline_seconds=round(t_base, 4),
        engine_seconds=round(t_engine, 4),
        speedup=round(speedup, 2),
        bubble_1f1b_b32_d16=round(headline.bubble_1f1b, 4),
        bubble_zb_b32_d16=round(headline.bubble_zb, 4),
        step_speedup_b32_d16=round(headline.step_speedup, 3),
        note="bit-identity of engine vs per-point loop asserted before "
             "timing; min-of-%d, cold caches both sides" % REPS,
    )
    record(benchmark,
           zb_engine_speedup=round(speedup, 2),
           bubble_win_b32_d16=round(
               headline.bubble_1f1b - headline.bubble_zb, 4))


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
