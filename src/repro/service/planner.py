"""The capacity-planner search: which configuration fits and is fastest.

The intro's motivating scenario as a library: given an architecture, a
device, and a memory budget, search (schedule x depth x micro-batch x
recompute) through the §3.3 performance and memory models — evaluated
via the shared sweep engine, so every (arch, hardware, b_micro) cost
model is computed once across the whole search — and pick the best
feasible point.  ``examples/capacity_planner.py`` prints this search;
``POST /plan`` serves it.

"Best" is an explicit, pinned ordering (:func:`best_point`): highest
PipeFisher throughput, then *lower* memory, then schedule registration
order.  The seed picked ``max()`` over raw result tuples, which broke
throughput ties by lexicographic schedule name — registering a new
schedule could silently flip the reported best.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.perfmodel import MemoryModel
from repro.perfmodel.arch import ARCHITECTURES, TransformerArch
from repro.perfmodel.hardware import HARDWARE, Hardware
from repro.pipeline.spec import get_spec, schedule_names, schedule_specs

#: Default search axes (the capacity-planner example's historical grid).
DEFAULT_DEPTHS = (4, 8, 16)
DEFAULT_B_MICROS = (8, 16, 32, 64)


@dataclass(frozen=True)
class PlanPoint:
    """One evaluated configuration of the planning search."""

    schedule: str
    depth: int
    b_micro: int
    recompute: bool
    mem_gb: float
    throughput: float        #: seqs/s under PipeFisher
    throughput_pipeline: float
    refresh_steps: int
    fits: bool

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class Plan:
    """The full search: every evaluated point plus the pinned best."""

    arch: str
    hardware: str
    budget_gb: float
    layers_per_stage: int
    points: tuple
    best: PlanPoint | None

    def feasible(self) -> tuple:
        return tuple(p for p in self.points if p.fits)

    def to_dict(self) -> dict:
        return {
            "arch": self.arch,
            "hardware": self.hardware,
            "budget_gb": self.budget_gb,
            "layers_per_stage": self.layers_per_stage,
            "points": [p.to_dict() for p in self.points],
            "feasible": len(self.feasible()),
            "best": self.best.to_dict() if self.best is not None else None,
        }


def best_point(points) -> PlanPoint | None:
    """The best feasible point under the pinned tie-break ordering.

    Highest throughput first; throughput ties prefer the *lower*-memory
    configuration (same speed, more headroom); full ties resolve by
    schedule registration order, so a newly registered schedule can
    never displace an established one without actually being faster or
    leaner.
    """
    feasible = [p for p in points if p.fits]
    if not feasible:
        return None
    registry_order = {name: i for i, name in enumerate(schedule_specs())}
    return max(feasible, key=lambda p: (p.throughput, -p.mem_gb,
                                        -registry_order[p.schedule]))


def _resolve(name_or_obj, table, what: str):
    if isinstance(name_or_obj, str):
        try:
            return table[name_or_obj]
        except KeyError:
            raise ValueError(
                f"unknown {what} {name_or_obj!r}; choose from "
                f"{sorted(table)}") from None
    return name_or_obj


def plan(
    arch,
    hardware,
    budget_gb: float | None = None,
    layers_per_stage: int = 1,
    depths=DEFAULT_DEPTHS,
    b_micros=DEFAULT_B_MICROS,
    recompute_options=(False, True),
    schedules=None,
    engine=None,
) -> Plan:
    """Search the configuration space for ``arch`` on ``hardware``.

    ``arch``/``hardware`` are registry names (or the objects); ``schedules``
    defaults to every registered schedule the §3.3 analytic model covers —
    a newly registered spec joins the search without edits here.  The
    budget defaults to the device's memory.
    """
    arch_obj: TransformerArch = _resolve(arch, ARCHITECTURES, "architecture")
    hw_obj: Hardware = _resolve(hardware, HARDWARE, "hardware")
    if engine is None:
        from repro.sweep import default_engine

        engine = default_engine()
    budget = float(hw_obj.memory_gb if budget_gb is None else budget_gb)
    if schedules is None:
        schedules = [s for s in schedule_names()
                     if get_spec(s).critical_path is not None]
    else:
        schedules = list(schedules)
        for s in schedules:
            if get_spec(s).critical_path is None:
                raise ValueError(
                    f"schedule {s!r} has no analytic critical path — the "
                    f"planner's §3.3 model cannot cover it")

    points = []
    for schedule in schedules:
        spec = get_spec(schedule)
        stages_dev = spec.stages_per_device(1)
        model = engine.perf_model(arch_obj, hw_obj, schedule,
                                  layers_per_stage=layers_per_stage)
        for depth in depths:
            for b_micro in b_micros:
                for recompute in recompute_options:
                    mm = MemoryModel(arch_obj, layers_per_stage, stages_dev)
                    bd = mm.breakdown(b_micro, depth, recompute=recompute)
                    r = model.report(b_micro, depth, recompute=recompute)
                    points.append(PlanPoint(
                        schedule=schedule,
                        depth=int(depth),
                        b_micro=int(b_micro),
                        recompute=bool(recompute),
                        mem_gb=bd.total_gb(),
                        throughput=r.throughput_pipefisher,
                        throughput_pipeline=r.throughput_pipeline,
                        refresh_steps=r.refresh_steps,
                        fits=bd.total_gb() <= budget,
                    ))

    return Plan(
        arch=arch_obj.name,
        hardware=hw_obj.name,
        budget_gb=budget,
        layers_per_stage=layers_per_stage,
        points=tuple(points),
        best=best_point(points),
    )
