"""A tiny stdlib HTTP client for the planning service.

``urllib.request`` only — the same no-new-deps rule the server keeps.
Used by ``examples/capacity_planner.py --url``, the service benchmark,
and the e2e tests; also a readable spec of the wire protocol.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceHTTPError(Exception):
    """A non-2xx service response, with the decoded JSON error body."""

    def __init__(self, status: int, body: dict) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServiceClient:
    """JSON in, JSON out against one service base URL."""

    def __init__(self, url: str, timeout: float = 30.0,
                 token: str | None = None) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.token = token

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        req = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (ValueError, OSError):
                payload = {"error": exc.reason}
            raise ServiceHTTPError(exc.code, payload) from None

    def get(self, path: str) -> dict:
        return self._request("GET", path)

    def post(self, path: str, body: dict) -> dict:
        return self._request("POST", path, body)

    # -- endpoint wrappers --------------------------------------------------------

    def plan(self, arch: str, hardware: str, **options) -> dict:
        return self.post("/plan", {"arch": arch, "hardware": hardware,
                                   **options})

    def sweep(self, grid: dict, kind: str = "perf_report",
              fixed: dict | None = None, inline: bool | None = None) -> dict:
        body: dict = {"kind": kind, "grid": grid}
        if fixed:
            body["fixed"] = fixed
        if inline is not None:
            body["inline"] = inline
        return self.post("/sweep", body)

    def job(self, job_id: str) -> dict:
        return self.get(f"/jobs/{job_id}")

    def result(self, key: str) -> dict:
        return self.get(f"/results/{key}")

    def metrics(self) -> dict:
        return self.get("/metrics")

    def wait_for_job(self, job_id: str, timeout: float = 60.0,
                     poll_s: float = 0.05) -> dict:
        """Poll ``/jobs/<id>`` until the job settles (done/failed)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout:.1f}s")
            time.sleep(poll_s)
