"""The service result store: canonical-point-hash keyed, run-DB backed.

Every stored record is keyed by the same canonical unit hash
(:func:`repro.campaign.spec.unit_key`) the campaign layer addresses work
by, and carries the same serialized value the campaign runner would
record — so a repeat query is a cache hit, ``GET /results/<hash>``
resolves results produced by either path, and a service answer is
bit-identical to the equivalent ``repro campaign run``.

Persistence reuses :class:`~repro.campaign.rundb.RunDB` (append-only
JSONL, truncation-healing): the store directory is a run dir that is
never bound to a spec, because it accumulates units from every request.
With no directory the store is a process-local dict (tests, benchmarks,
ephemeral servers).
"""

from __future__ import annotations

import threading

from repro.campaign.rundb import DONE, RunDB

#: The record fields a store entry keeps (campaign records are stripped
#: of campaign-specific bookkeeping like shard/index before storing).
RECORD_FIELDS = ("key", "kind", "params", "status", "value", "elapsed_s")


def store_record(key: str, kind: str, params: dict, value,
                 elapsed_s: float = 0.0) -> dict:
    """A canonical store record for one completed unit."""
    return {"key": key, "kind": kind, "params": dict(params),
            "status": DONE, "value": value, "elapsed_s": elapsed_s}


def from_campaign_record(rec: dict) -> dict:
    """Strip a campaign run-DB record down to the store's canonical shape."""
    return {f: rec[f] for f in RECORD_FIELDS if f in rec}


class ResultStore:
    """Completed unit records by canonical point hash.

    Thread-safe: the HTTP layer serves many concurrent clients, and the
    job worker writes while requests read.  ``hits``/``misses`` count
    :meth:`get` outcomes — the service's result-store hit rate.
    """

    def __init__(self, run_dir=None) -> None:
        self._lock = threading.Lock()
        self._db = RunDB.open(run_dir) if run_dir is not None else None
        self._mem: dict = {}
        if self._db is not None:
            self._mem = {k: from_campaign_record(r)
                         for k, r in self._db.records.items()
                         if r.get("status") == DONE}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def contains(self, key: str) -> bool:
        """Membership without touching the hit/miss counters."""
        with self._lock:
            return key in self._mem

    def peek(self, key: str) -> dict | None:
        """The record for ``key`` without touching the hit/miss counters."""
        with self._lock:
            return self._mem.get(key)

    def get(self, key: str) -> dict | None:
        with self._lock:
            rec = self._mem.get(key)
            if rec is None:
                self.misses += 1
            else:
                self.hits += 1
            return rec

    def put(self, record: dict) -> dict:
        """Index (and persist) one completed record, idempotently.

        A record already stored under the key is kept as-is — results
        are content-addressed, so the first write wins and repeats are
        no-ops rather than appends.
        """
        rec = from_campaign_record(record)
        with self._lock:
            existing = self._mem.get(rec["key"])
            if existing is not None:
                return existing
            self._mem[rec["key"]] = rec
            if self._db is not None:
                self._db.append(rec)
            return rec

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._mem),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "persistent": self._db is not None,
            }
