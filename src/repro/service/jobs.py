"""The service job queue: big grids run asynchronously, durably.

A sweep too large to answer inline becomes a *job*: the request is
canonicalized, hashed to a deterministic job id (resubmitting the same
grid is idempotent — same id, same units, and an already-finished job
answers instantly), persisted to an append-only ``jobs/units.jsonl``
ledger in the run-DB format (one status-transition record per line,
last record wins), and executed by a background worker.  The worker is
a :class:`~repro.campaign.runner.CampaignRunner` over a per-job run
dir — optionally fanned out with ``jobs=N`` process shards — so job
results are ordinary campaign records, keyed by the same canonical
point hash the result store serves.

A service restarted mid-job re-enqueues every ``queued``/``running``
job it finds in the ledger; the campaign runner's resume semantics skip
units already recorded, so recovery re-executes nothing.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path

from repro.campaign.rundb import RunDB
from repro.campaign.spec import (
    CampaignSpec,
    CampaignValidationError,
    canonical_json,
    unit_key,
)

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Hard per-request unit ceiling — a typo'd grid must not become a
#: million-unit job.
MAX_UNITS = 4096


def sweep_request(body: dict) -> dict:
    """Validate and canonicalize a ``POST /sweep`` body.

    Returns ``{"kind", "fixed", "grid"}`` with axis order preserved
    (it sets unit *order*; unit identity is order-free by construction).
    """
    if not isinstance(body, dict):
        raise CampaignValidationError("sweep request must be a JSON object")
    unknown = set(body) - {"kind", "fixed", "grid", "inline"}
    if unknown:
        raise CampaignValidationError(
            f"unknown sweep request fields: {sorted(unknown)}")
    kind = body.get("kind", "perf_report")
    fixed = body.get("fixed", {})
    grid = body.get("grid", {})
    if not isinstance(kind, str) or not kind:
        raise CampaignValidationError("sweep 'kind' must be a non-empty string")
    if not isinstance(fixed, dict):
        raise CampaignValidationError("sweep 'fixed' must be an object")
    if not isinstance(grid, dict):
        raise CampaignValidationError(
            "sweep 'grid' must be an object of axis -> [values...]")
    for axis, values in grid.items():
        if not isinstance(values, list) or not values:
            raise CampaignValidationError(
                f"grid axis {axis!r} needs a non-empty list of values")
    return {"kind": kind, "fixed": dict(fixed), "grid": dict(grid)}


def job_id_for(request: dict) -> str:
    """The deterministic job id of a canonicalized sweep request.

    The same 16-hex-char content hash family campaigns use for units —
    here over the whole request — so job ids are stable across
    processes and resubmissions.
    """
    return unit_key("service_sweep", {
        "kind": request["kind"],
        "fixed": request["fixed"],
        # Axis order is presentation; hash the content.
        "grid": {a: list(v) for a, v in sorted(request["grid"].items())},
    })


def spec_from_request(request: dict) -> CampaignSpec:
    """The :class:`CampaignSpec` a sweep request expands through.

    Campaign validation (scalar params, non-empty axes, duplicate
    detection) is the request validation — service grids are campaigns.
    """
    return CampaignSpec(
        name=f"service-{job_id_for(request)}",
        title="ad-hoc service sweep",
        kind=request["kind"],
        fixed=tuple(sorted(request["fixed"].items())),
        grid=tuple((axis, tuple(values))
                   for axis, values in request["grid"].items()),
        description=canonical_json(request),
    )


class JobQueue:
    """Durable FIFO of sweep jobs, drained by one worker thread.

    ``executor(job) -> None`` does the actual campaign work (the
    service provides it); the queue owns ids, persistence, status
    transitions, and crash recovery.
    """

    def __init__(self, executor, state_dir=None) -> None:
        self._executor = executor
        self._db = (RunDB.open(Path(state_dir) / "jobs")
                    if state_dir is not None else None)
        self._jobs: dict[str, dict] = {}
        if self._db is not None:
            self._jobs = {k: dict(r) for k, r in self._db.records.items()}
        self._lock = threading.Lock()
        self._q: queue.Queue = queue.Queue()
        self._worker: threading.Thread | None = None
        self._recover()

    # -- persistence --------------------------------------------------------------

    def _transition(self, job: dict, status: str, **extra) -> dict:
        rec = {**job, "status": status, **extra,
               "updated_s": round(time.time(), 3)}
        with self._lock:
            self._jobs[rec["key"]] = rec
            if self._db is not None:
                self._db.append(rec)
        return rec

    def _recover(self) -> None:
        """Re-enqueue jobs a previous process left unfinished."""
        for job in sorted(self._jobs.values(),
                          key=lambda j: j.get("submitted_s", 0.0)):
            if job.get("status") in (QUEUED, RUNNING):
                self._enqueue(job["key"])

    # -- public API ---------------------------------------------------------------

    def submit(self, request: dict) -> dict:
        """Enqueue a canonicalized sweep request; idempotent by content.

        A job already known (any status but ``failed``) is returned
        as-is — done jobs answer instantly, queued/running jobs are
        simply polled.  Failed jobs are retried.
        """
        job_id = job_id_for(request)
        spec = spec_from_request(request)
        n_units = len(spec.units())
        with self._lock:
            existing = self._jobs.get(job_id)
        if existing is not None and existing.get("status") != FAILED:
            return existing
        job = {
            "key": job_id,
            "campaign": spec.name,
            "request": request,
            "units": n_units,
            "unit_keys": list(spec.unit_keys()),
            "submitted_s": round(time.time(), 3),
        }
        rec = self._transition(job, QUEUED)
        self._enqueue(job_id)
        return rec

    def get(self, job_id: str) -> dict | None:
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job) if job is not None else None

    def counts(self) -> dict:
        with self._lock:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                s = job.get("status", "?")
                counts[s] = counts.get(s, 0) + 1
            return counts

    def wait(self, job_id: str, timeout: float = 60.0) -> dict:
        """Block until ``job_id`` settles (done/failed) or timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is not None and job.get("status") in (DONE, FAILED):
                return job
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} did not settle in {timeout:.1f}s")

    # -- the worker ---------------------------------------------------------------

    def _enqueue(self, job_id: str) -> None:
        self._q.put(job_id)
        with self._lock:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._drain, name="repro-service-jobs",
                    daemon=True)
                self._worker.start()

    def _drain(self) -> None:
        while True:
            try:
                job_id = self._q.get(timeout=0.5)
            except queue.Empty:
                return
            job = self.get(job_id)
            if job is None or job.get("status") in (DONE,):
                continue
            running = self._transition(job, RUNNING,
                                       started_s=round(time.time(), 3))
            try:
                self._executor(running)
            except Exception as exc:  # recorded, not raised: the queue lives on
                self._transition(running, FAILED,
                                 error=f"{type(exc).__name__}: {exc}")
            else:
                self._transition(running, DONE,
                                 finished_s=round(time.time(), 3))
