"""The planning service: HTTP endpoints over the sweep engine.

Stdlib only (``http.server.ThreadingHTTPServer``), one
:class:`PlanningService` per server process:

* ``POST /plan`` — the capacity-planner search (arch/hardware/budget →
  every evaluated configuration + the pinned best), served from the
  shared engine's cost-model caches;
* ``POST /sweep`` — an ad-hoc grid expanded to canonical-hash units;
  small grids answer inline, big grids return a job id;
* ``GET /jobs/<id>`` — job status + progress;
* ``GET /results/<hash>`` — one stored unit record by canonical hash;
* ``GET /metrics`` — request counts, p50/p99 latency, result-store hit
  rate, flattened engine counters, unit-cost/budget accounting.

Every configuration evaluated anywhere — inline sweep, job, or CLI
campaign — lands in one result store keyed by the canonical point hash,
so repeat queries are cache hits and service values are bit-identical
to ``repro campaign run`` of the same grid.

Concurrency model: the HTTP layer threads freely; evaluation routes
each request to one slot of a small :class:`EnginePool` by a
deterministic structural key and holds only that slot's lock (a sweep
engine and its caches are not thread-safe, so same-key work stays
sequential and bit-exact), which lets cold misses for *distinct*
templates evaluate concurrently.  The result store, metrics, and budget
accounting are internally locked and stay atomic across slots; unit
values are deterministic functions of ``(kind, params)``, so responses
are byte-identical regardless of which slot computed them.

Optionally the service requires a bearer token (``repro serve
--token``): requests without ``Authorization: Bearer <token>`` are
rejected with 401 and counted in ``/metrics``.
"""

from __future__ import annotations

import hmac
import json
import threading
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter

from repro.campaign.runner import _engine_counters
from repro.campaign.spec import CampaignValidationError
from repro.service import planner as planner_mod
from repro.service.jobs import (
    FAILED,
    MAX_UNITS,
    JobQueue,
    job_id_for,
    spec_from_request,
    sweep_request,
)
from repro.service.metrics import BudgetExceeded, Metrics
from repro.service.store import ResultStore, store_record

#: Grids at or under this many units answer inline by default.
DEFAULT_INLINE_LIMIT = 32

#: Engine slots when neither ``engine`` nor ``engine_pool`` is given.
DEFAULT_ENGINE_POOL = 4


class _EngineSlot:
    """One engine plus the lock serializing all work routed to it."""

    __slots__ = ("engine", "lock")

    def __init__(self, engine) -> None:
        self.engine = engine
        self.lock = threading.RLock()


class EnginePool:
    """A fixed set of sweep engines, each guarded by its own lock.

    Work routes by a caller-chosen structural key: the same key always
    lands on the same slot (engines are not thread-safe and repeated
    identical requests must serialize for bit-exact cache semantics),
    while distinct keys usually land on distinct slots and evaluate
    concurrently.  The hash is ``crc32`` — stable across processes and
    ``PYTHONHASHSEED`` values, so slot routing is deterministic.
    """

    def __init__(self, engines) -> None:
        if not engines:
            raise ValueError("engine pool needs at least one engine")
        self.slots = tuple(_EngineSlot(e) for e in engines)

    def __len__(self) -> int:
        return len(self.slots)

    def slot(self, key: str) -> _EngineSlot:
        if len(self.slots) == 1:
            return self.slots[0]
        return self.slots[zlib.crc32(key.encode("utf-8")) % len(self.slots)]

    def counters(self) -> dict:
        """Flattened engine counters summed across every slot."""
        total: dict = {}
        for s in self.slots:
            with s.lock:
                for k, v in _engine_counters(s.engine).items():
                    total[k] = total.get(k, 0) + v
        return total


class ServiceError(Exception):
    """An error with an HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_PLAN_FIELDS = {"arch", "hardware", "budget_gb", "mem_gb",
                "layers_per_stage", "depths", "b_micros", "schedules",
                "recompute"}


def _analytic_schedules() -> list:
    """The schedules the default planner search covers (for cost estimates)."""
    from repro.pipeline.spec import get_spec, schedule_names

    return [s for s in schedule_names()
            if get_spec(s).critical_path is not None]


class PlanningService:
    """The service core, independent of the HTTP layer (unit-testable)."""

    def __init__(
        self,
        state_dir=None,
        engine=None,
        inline_limit: int = DEFAULT_INLINE_LIMIT,
        worker_jobs: int = 1,
        budget_units: int | None = None,
        engine_pool: int | None = None,
        token: str | None = None,
    ) -> None:
        from repro.campaign.registry import load_builtin_campaigns
        from repro.sweep.engine import SweepEngine

        load_builtin_campaigns()  # the full unit-kind vocabulary
        # ``engine=X`` keeps the injected engine as the sole slot (the
        # single-lock behavior tests and baseline benchmarks rely on)
        # unless ``engine_pool`` explicitly widens it with fresh engines.
        if engine is not None:
            engines = [engine]
            if engine_pool is not None and engine_pool > 1:
                engines += [SweepEngine() for _ in range(engine_pool - 1)]
        else:
            n = engine_pool if engine_pool is not None else DEFAULT_ENGINE_POOL
            engines = [SweepEngine() for _ in range(max(n, 1))]
        self.pool = EnginePool(engines)
        self.engine = self.pool.slots[0].engine
        self.token = token
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.inline_limit = inline_limit
        self.worker_jobs = worker_jobs
        self.store = ResultStore(
            self.state_dir / "results" if self.state_dir else None)
        self.metrics = Metrics(budget_units)
        # Last: the queue may immediately recover + run unfinished jobs,
        # and the executor reads every attribute above.
        self.jobs = JobQueue(
            self._run_job,
            self.state_dir / "queue" if self.state_dir else None)

    # -- endpoint logic -----------------------------------------------------------

    def plan(self, body: dict) -> dict:
        """``POST /plan``: the capacity-planner search."""
        if not isinstance(body, dict):
            raise ServiceError(400, "plan request must be a JSON object")
        unknown = set(body) - _PLAN_FIELDS
        if unknown:
            raise ServiceError(
                400, f"unknown plan request fields: {sorted(unknown)}")
        for required in ("arch", "hardware"):
            if required not in body:
                raise ServiceError(400, f"plan request needs {required!r}")
        budget_gb = body.get("budget_gb", body.get("mem_gb"))
        kwargs = dict(
            arch=body["arch"],
            hardware=body["hardware"],
            budget_gb=budget_gb,
            layers_per_stage=int(body.get("layers_per_stage", 1)),
        )
        for axis, name in (("depths", "depths"), ("b_micros", "b_micros"),
                           ("schedules", "schedules"),
                           ("recompute", "recompute_options")):
            if axis in body:
                values = body[axis]
                if not isinstance(values, list) or not values:
                    raise ServiceError(
                        400, f"plan {axis!r} needs a non-empty list")
                kwargs[name] = tuple(values)
        cost = (len(kwargs.get("depths", planner_mod.DEFAULT_DEPTHS))
                * len(kwargs.get("b_micros", planner_mod.DEFAULT_B_MICROS))
                * len(kwargs.get("recompute_options", (False, True)))
                * len(kwargs.get("schedules", ()) or _analytic_schedules()))
        slot = self.pool.slot(
            "plan:" + json.dumps({k: v for k, v in kwargs.items()
                                  if k != "engine"}, sort_keys=True))
        kwargs["engine"] = slot.engine
        self._charge(cost)
        try:
            with slot.lock:
                result = planner_mod.plan(**kwargs)
        except ValueError as exc:
            self.metrics.refund(cost)
            raise ServiceError(400, str(exc)) from exc
        out = result.to_dict()
        out["cost_units"] = cost
        return out

    def sweep(self, body: dict) -> dict:
        """``POST /sweep``: inline answer or enqueued job."""
        try:
            request = sweep_request(body if isinstance(body, dict) else None)
            spec = spec_from_request(request)
        except CampaignValidationError as exc:
            raise ServiceError(400, str(exc)) from exc
        self._check_kind(request["kind"])
        units = spec.units()
        if len(units) > MAX_UNITS:
            raise ServiceError(
                400, f"sweep expands to {len(units)} units; the per-request "
                     f"ceiling is {MAX_UNITS}")
        inline = body.get("inline")
        if not isinstance(inline, bool):
            inline = len(units) <= self.inline_limit
        if inline:
            records, executed, cost = self._execute_units(units)
            return {
                "mode": "inline",
                "kind": request["kind"],
                "units": records,
                "executed": executed,
                "cached": len(units) - executed,
                "cost_units": cost,
            }
        existing = self.jobs.get(job_id_for(request))
        if existing is None or existing.get("status") == FAILED:
            # Charge up front: the budget gates work *before* it starts.
            self._charge(sum(1 for u in units
                             if not self.store.contains(u.key)))
        job = self.jobs.submit(request)
        return {
            "mode": "job",
            "job": job["key"],
            "status": job["status"],
            "units": job["units"],
            "unit_keys": job["unit_keys"],
            "poll": f"/jobs/{job['key']}",
        }

    def job_status(self, job_id: str) -> dict:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        done_units = sum(1 for k in job.get("unit_keys", ())
                         if self.store.contains(k))
        out = {
            "job": job["key"],
            "status": job["status"],
            "units": job.get("units", 0),
            "done_units": done_units,
            "unit_keys": job.get("unit_keys", []),
            "request": job.get("request"),
        }
        if "error" in job:
            out["error"] = job["error"]
        return out

    def result(self, key: str) -> dict:
        rec = self.store.get(key)
        if rec is None:
            raise ServiceError(404, f"no result stored under {key!r}")
        return rec

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        snap["store"] = self.store.stats()
        snap["jobs"] = self.jobs.counts()
        snap["engine"] = self.pool.counters()
        snap["engine_pool"] = len(self.pool)
        return snap

    # -- execution ----------------------------------------------------------------

    def _charge(self, cost: int) -> None:
        try:
            self.metrics.charge(cost)
        except BudgetExceeded as exc:
            raise ServiceError(429, str(exc)) from exc

    @staticmethod
    def _check_kind(kind: str) -> None:
        from repro.campaign.units import get_unit_kind

        try:
            get_unit_kind(kind)
        except KeyError as exc:
            raise ServiceError(400, str(exc.args[0])) from exc

    @staticmethod
    def _units_key(units) -> str:
        """The slot-routing key of a unit batch.

        Canonical unit hashes already encode ``(kind, params)``, so
        identical requests — which must serialize on one engine — share
        a key, while different grids usually spread across slots.
        """
        return "|".join(u.key for u in units)

    def _execute_units(self, units, charge: bool = True):
        """Serve ``units`` from the store, executing the misses.

        Store misses run exactly the campaign runner's per-unit calls
        (``kind.execute`` then ``kind.serialize`` against the slot's
        engine), so the recorded values are bit-identical to a
        ``repro campaign run`` of the same grid.  Only the routed slot
        is locked; the store and budget are internally atomic, so
        distinct grids execute concurrently.
        """
        from repro.campaign.units import UnitContext, get_unit_kind

        slot = self.pool.slot(self._units_key(units))
        with slot.lock:
            cost = sum(1 for u in units if not self.store.contains(u.key))
            if charge:
                self._charge(cost)
            ctx = UnitContext(engine=slot.engine)
            out = []
            executed = 0
            try:
                for u in units:
                    rec = self.store.get(u.key)
                    if rec is None:
                        kind = get_unit_kind(u.kind)
                        params = u.params_dict()
                        started = perf_counter()
                        try:
                            obj = kind.execute(params, ctx)
                        except (KeyError, ValueError) as exc:
                            raise ServiceError(
                                400, f"unit {u.key} rejected: {exc}") from exc
                        rec = self.store.put(store_record(
                            u.key, u.kind, params,
                            kind.serialize(obj, params),
                            perf_counter() - started))
                        executed += 1
                    out.append(rec)
            except ServiceError:
                if charge:
                    self.metrics.refund(cost - executed)
                raise
            return out, executed, (cost if charge else 0)

    def _run_job(self, job: dict) -> None:
        """Execute one queued job (called from the queue's worker thread).

        Persistent services run the grid as a real campaign — a
        :class:`CampaignRunner` over ``<state>/jobs/<id>``, with
        ``worker_jobs`` process shards when configured — pre-seeded from
        the result store so repeat units cost nothing.  In-memory
        services reuse the inline execution path.
        """
        spec = spec_from_request(job["request"])
        if self.state_dir is None:
            self._execute_units(spec.units(), charge=False)
            return
        from repro.campaign.rundb import DONE as REC_DONE
        from repro.campaign.rundb import RunDB
        from repro.campaign.runner import CampaignRunner

        run_dir = self.state_dir / "jobs" / job["key"]
        units = spec.units()
        slot = self.pool.slot(self._units_key(units))
        with slot.lock:
            db = RunDB.open(run_dir)
            for u in units:
                rec = self.store.peek(u.key)
                if rec is not None and db.done(u.key) is None:
                    db.append(rec)
            runner = CampaignRunner(engine=slot.engine, run_dir=run_dir)
            result = runner.run(
                spec,
                jobs=self.worker_jobs if self.worker_jobs > 1 else None)
            for rec in result.records.values():
                if rec.get("status") == REC_DONE:
                    self.store.put(rec)


# -- the HTTP layer ---------------------------------------------------------------


_INDEX = {
    "service": "repro-capacity-planner",
    "endpoints": {
        "POST /plan": "capacity-planner search "
                      "(arch, hardware, [budget_gb, depths, b_micros, "
                      "schedules, recompute, layers_per_stage])",
        "POST /sweep": "grid of units ([kind], [fixed], [grid], [inline]) — "
                       "inline answer or job id",
        "GET /jobs/<id>": "job status + progress",
        "GET /results/<hash>": "stored unit record by canonical point hash",
        "GET /metrics": "request/latency/hit-rate/engine/budget counters",
    },
}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP to the bound :class:`PlanningService`."""

    service: PlanningService = None  # bound per server via subclassing
    server_version = "repro-planner/1.0"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the service has
    # /metrics for that.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    def _reply(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError(400, "request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}") from exc

    def _authorized(self) -> bool:
        token = self.service.token
        if not token:
            return True
        header = self.headers.get("Authorization", "")
        return hmac.compare_digest(header, f"Bearer {token}")

    def _reject_unauthorized(self) -> None:
        # Drain the unread body so HTTP/1.1 keep-alive stays in sync.
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        self.service.metrics.auth_reject()
        self._reply(401, {
            "error": "unauthorized: send 'Authorization: Bearer <token>'",
            "status": 401,
        })

    def _dispatch(self, endpoint: str, fn) -> None:
        started = perf_counter()
        error = False
        cost = 0
        try:
            payload = fn()
            cost = payload.get("cost_units", 0) if isinstance(payload, dict) else 0
            status = 200
        except ServiceError as exc:
            error = True
            status = exc.status
            payload = {"error": exc.message, "status": exc.status}
        except Exception as exc:  # pragma: no cover - defensive 500
            error = True
            status = 500
            payload = {"error": f"{type(exc).__name__}: {exc}", "status": 500}
        # Observe *before* replying: once the client has the response, a
        # /metrics scrape must already see this request counted.
        self.service.metrics.observe(endpoint, perf_counter() - started,
                                     error=error, cost=cost)
        self._reply(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        if not self._authorized():
            self._reject_unauthorized()
            return
        path = self.path.rstrip("/") or "/"
        if path == "/":
            self._dispatch("index", lambda: dict(_INDEX))
        elif path == "/metrics":
            self._dispatch("metrics", self.service.metrics_snapshot)
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            self._dispatch("jobs", lambda: self.service.job_status(job_id))
        elif path.startswith("/results/"):
            key = path[len("/results/"):]
            self._dispatch("results", lambda: self.service.result(key))
        elif path in ("/plan", "/sweep"):
            self._dispatch("method", lambda: _method_not_allowed("POST"))
        else:
            self._dispatch("unknown", lambda: _not_found(path))

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        if not self._authorized():
            self._reject_unauthorized()
            return
        path = self.path.rstrip("/")
        if path == "/plan":
            self._dispatch("plan", lambda: self.service.plan(self._body()))
        elif path == "/sweep":
            self._dispatch("sweep", lambda: self.service.sweep(self._body()))
        elif path in ("", "/metrics") or path.startswith(("/jobs/",
                                                          "/results/")):
            self._dispatch("method", lambda: _method_not_allowed("GET"))
        else:
            self._dispatch("unknown", lambda: _not_found(path))


def _not_found(path: str):
    raise ServiceError(404, f"no such endpoint: {path}")


def _method_not_allowed(use: str):
    raise ServiceError(405, f"method not allowed; use {use}")


class ServiceServer:
    """A :class:`PlanningService` bound to a listening HTTP server.

    ``port=0`` picks a free port (tests, benchmarks).  Use as a context
    manager, or call :meth:`start`/:meth:`close` explicitly;
    :meth:`serve_forever` is the blocking CLI entry.
    """

    def __init__(self, service: PlanningService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._thread: threading.Thread | None = None

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-service-http",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
