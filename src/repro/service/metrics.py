"""Service metrics: request counters, latency percentiles, cost budget.

Pure stdlib and deliberately simple: per-endpoint counters plus a
bounded latency reservoir (the most recent ``RESERVOIR`` observations)
from which p50/p99 are computed on scrape.  The unit-cost account
charges each request the number of units it *executes* (result-store
hits are free), optionally against a hard budget — the service returns
429 instead of starting work the budget cannot cover.
"""

from __future__ import annotations

import threading
import time
from collections import deque

#: Latency observations kept per endpoint (most recent first out).
RESERVOIR = 1024


def percentile(sorted_values, q: float) -> float:
    """The q-quantile (0..1) of an already-sorted sequence.

    Nearest-rank on the sorted reservoir — stable, no interpolation
    surprises at the tiny sample sizes a fresh server reports.
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class BudgetExceeded(Exception):
    """A request's unit cost does not fit the remaining budget."""

    def __init__(self, cost: int, remaining: int) -> None:
        super().__init__(
            f"request needs {cost} unit(s) but only {remaining} remain "
            f"in the service budget")
        self.cost = cost
        self.remaining = remaining


class Metrics:
    """Thread-safe request/latency/cost accounting for one service."""

    def __init__(self, budget_units: int | None = None) -> None:
        self._lock = threading.Lock()
        self.started = time.time()
        self.budget_units = budget_units
        self.charged_units = 0
        self.auth_rejects = 0
        self._endpoints: dict[str, dict] = {}

    def _endpoint(self, name: str) -> dict:
        return self._endpoints.setdefault(name, {
            "count": 0,
            "errors": 0,
            "cost_units": 0,
            "latencies": deque(maxlen=RESERVOIR),
        })

    def observe(self, endpoint: str, seconds: float, error: bool = False,
                cost: int = 0) -> None:
        """Record one finished request."""
        with self._lock:
            ep = self._endpoint(endpoint)
            ep["count"] += 1
            if error:
                ep["errors"] += 1
            ep["cost_units"] += cost
            ep["latencies"].append(seconds)

    def charge(self, cost: int) -> None:
        """Debit ``cost`` units, or raise :class:`BudgetExceeded`.

        Atomic check-and-debit: concurrent requests cannot jointly
        overshoot the budget.  With no budget configured the account
        still totals ``charged_units`` for the metrics scrape.
        """
        with self._lock:
            if self.budget_units is not None:
                remaining = self.budget_units - self.charged_units
                if cost > remaining:
                    raise BudgetExceeded(cost, remaining)
            self.charged_units += cost

    def refund(self, cost: int) -> None:
        """Credit back units charged for work that never ran."""
        with self._lock:
            self.charged_units -= cost

    def auth_reject(self) -> None:
        """Count one request turned away by bearer-token auth."""
        with self._lock:
            self.auth_rejects += 1

    def snapshot(self) -> dict:
        """The ``GET /metrics`` requests/budget half of the scrape."""
        with self._lock:
            requests = {}
            for name, ep in sorted(self._endpoints.items()):
                lat = sorted(ep["latencies"])
                requests[name] = {
                    "count": ep["count"],
                    "errors": ep["errors"],
                    "cost_units": ep["cost_units"],
                    "p50_ms": percentile(lat, 0.50) * 1000.0,
                    "p99_ms": percentile(lat, 0.99) * 1000.0,
                }
            budget = None
            if self.budget_units is not None:
                budget = {
                    "limit_units": self.budget_units,
                    "charged_units": self.charged_units,
                    "remaining_units": self.budget_units - self.charged_units,
                }
            return {
                "uptime_s": time.time() - self.started,
                "requests": requests,
                "charged_units": self.charged_units,
                "auth_rejects": self.auth_rejects,
                "budget": budget,
            }
