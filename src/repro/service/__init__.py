"""Capacity-planner-as-a-service: an HTTP planning API over the sweep engine.

The seventh subsystem of the stack: the sweep engine + campaign substrate
served at interactive latency to many concurrent clients.

* :mod:`repro.service.planner` — the capacity-planner search as a
  library (shared by ``examples/capacity_planner.py`` and ``POST /plan``);
* :mod:`repro.service.store` — the result store, keyed by the same
  canonical point hash campaigns use, so repeat queries are cache hits
  and service results are bit-identical to CLI runs;
* :mod:`repro.service.jobs` — a persistent job queue (append-only JSONL,
  the run-DB format) whose workers are :class:`CampaignRunner` shards;
* :mod:`repro.service.metrics` — request counts, p50/p99 latency,
  hit rates, and per-request unit-cost accounting against an optional
  budget;
* :mod:`repro.service.app` — the stdlib HTTP layer
  (``http.server.ThreadingHTTPServer``) and :class:`PlanningService`;
* :mod:`repro.service.client` — a stdlib ``urllib`` client.

Start a server with ``python -m repro.cli serve`` (see the README's
"Service" section for the endpoint reference).
"""

from repro.service.app import PlanningService, ServiceError, ServiceServer
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.planner import Plan, PlanPoint, best_point, plan

__all__ = [
    "Plan",
    "PlanPoint",
    "PlanningService",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPError",
    "ServiceServer",
    "best_point",
    "plan",
]
