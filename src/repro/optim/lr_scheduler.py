"""Learning-rate schedules (paper Appendix B.2 and Fig. 8).

The paper's Phase-1 schedule: linear warmup to ``base_lr`` over
``warmup_steps``, then polynomial decay
``lr_t = base_lr * (1 - t / total_steps) ** power`` with power 0.5.
NVLAMB warms up over 2,000 steps, K-FAC over 600 — the *only*
hyperparameter the paper changes (§4) — so K-FAC sees larger learning
rates until ~step 2,000.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.optim.base import Optimizer


class LRSchedule:
    """Base class: maps a step index to a learning rate and drives an optimizer."""

    def __init__(self, optimizer: Optimizer | None = None) -> None:
        self.optimizer = optimizer
        self.last_step = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; update the bound optimizer's lr. Returns the lr."""
        self.last_step += 1
        lr = self.lr_at(self.last_step)
        if self.optimizer is not None:
            self.optimizer.lr = lr
        return lr

    def series(self, total_steps: int) -> np.ndarray:
        """Vector of learning rates for steps 1..total_steps (for Fig. 8)."""
        return np.array([self.lr_at(t) for t in range(1, total_steps + 1)])


class ConstantSchedule(LRSchedule):
    """Fixed learning rate."""

    def __init__(self, base_lr: float, optimizer: Optimizer | None = None) -> None:
        super().__init__(optimizer)
        self.base_lr = base_lr

    def lr_at(self, step: int) -> float:
        return self.base_lr


class PolyWarmupSchedule(LRSchedule):
    """Linear warmup then polynomial decay (the BERT Phase-1 schedule).

    lr(t) = base_lr * t / warmup_steps                      for t <= warmup
    lr(t) = base_lr * (1 - t / total_steps) ** power        for t > warmup
    """

    def __init__(
        self,
        base_lr: float,
        warmup_steps: int,
        total_steps: int,
        power: float = 0.5,
        optimizer: Optimizer | None = None,
    ) -> None:
        super().__init__(optimizer)
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        if warmup_steps > total_steps:
            raise ValueError(
                f"warmup_steps ({warmup_steps}) exceeds total_steps ({total_steps})"
            )
        self.base_lr = base_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.power = power

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        frac = 1.0 - min(step, self.total_steps) / self.total_steps
        return self.base_lr * frac**self.power


def nvlamb_schedule(
    optimizer: Optimizer | None = None,
    base_lr: float = 6e-3,
    total_steps: int = 7038,
    warmup_steps: int = 2000,
) -> PolyWarmupSchedule:
    """The paper's NVLAMB Phase-1 schedule (Appendix B.2)."""
    return PolyWarmupSchedule(base_lr, warmup_steps, total_steps, power=0.5,
                              optimizer=optimizer)


def kfac_schedule(
    optimizer: Optimizer | None = None,
    base_lr: float = 6e-3,
    total_steps: int = 7038,
    warmup_steps: int = 600,
) -> PolyWarmupSchedule:
    """The paper's K-FAC Phase-1 schedule: warmup shortened 2000 -> 600."""
    return PolyWarmupSchedule(base_lr, warmup_steps, total_steps, power=0.5,
                              optimizer=optimizer)
