"""First-order optimizers and learning-rate schedules.

Implements the baselines the paper compares against: Adam (Fig. 3/4
timelines) and NVLAMB — NVIDIA's LAMB variant used for BERT pretraining
(Fig. 7, Table 2) — plus SGD with momentum and the polynomial-decay warmup
schedule of Appendix B.2.
"""

from repro.optim.base import Optimizer, clip_grad_norm, global_grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.lamb import LAMB, NVLAMB
from repro.optim.lr_scheduler import (
    LRSchedule,
    ConstantSchedule,
    PolyWarmupSchedule,
    nvlamb_schedule,
    kfac_schedule,
)

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "global_grad_norm",
    "SGD",
    "Adam",
    "AdamW",
    "LAMB",
    "NVLAMB",
    "LRSchedule",
    "ConstantSchedule",
    "PolyWarmupSchedule",
    "nvlamb_schedule",
    "kfac_schedule",
]
