"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`.

    Subclasses implement :meth:`_update` which receives the parameter, its
    gradient, and a per-parameter state dict.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.lr = float(lr)
        self.state: list[dict] = [dict() for _ in self.params]
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using each parameter's accumulated ``.grad``."""
        self.step_count += 1
        for p, state in zip(self.params, self.state):
            if p.grad is None:
                continue
            self._update(p, p.grad, state)

    def _update(self, param: Parameter, grad: np.ndarray, state: dict) -> None:
        raise NotImplementedError


def global_grad_norm(params: Sequence[Parameter]) -> float:
    """L2 norm of the concatenated gradient vector."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    return float(np.sqrt(total))


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so the global norm is at most ``max_norm``.

    Returns the pre-clip norm (PyTorch convention).
    """
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
