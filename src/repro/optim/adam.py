"""Adam and AdamW optimizers (Kingma & Ba 2015; Loshchilov & Hutter 2019)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; L2-style weight decay (added to gradient)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay

    def _adam_direction(self, param: Parameter, grad: np.ndarray, state: dict) -> np.ndarray:
        b1, b2 = self.betas
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = b1 * m + (1 - b1) * grad
        v = b2 * v + (1 - b2) * grad * grad
        state["m"], state["v"] = m, v
        t = self.step_count
        m_hat = m / (1 - b1**t)
        v_hat = v / (1 - b2**t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def _update(self, param: Parameter, grad: np.ndarray, state: dict) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        param.data = param.data - self.lr * self._adam_direction(param, grad, state)


class AdamW(Adam):
    """Adam with decoupled weight decay applied directly to the parameters."""

    def _update(self, param: Parameter, grad: np.ndarray, state: dict) -> None:
        direction = self._adam_direction(param, grad, state)
        if self.weight_decay:
            direction = direction + self.weight_decay * param.data
        param.data = param.data - self.lr * direction
