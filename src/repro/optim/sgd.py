"""Stochastic gradient descent with momentum and decoupled weight decay."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """SGD with classical (heavy-ball) momentum.

    update: v <- mu * v + g;  theta <- theta - lr * (v + wd * theta)
    """

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, param: Parameter, grad: np.ndarray, state: dict) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            buf = state.get("momentum")
            buf = grad.copy() if buf is None else self.momentum * buf + grad
            state["momentum"] = buf
            grad = buf
        param.data = param.data - self.lr * grad
