"""LAMB (You et al. 2020) and NVLAMB, NVIDIA's variant used as the paper's
first-order baseline for BERT pretraining.

LAMB computes an AdamW-style update per layer and rescales it by the
*trust ratio* ||theta|| / ||update||, which is what makes very large batch
(8K-64K) BERT pretraining stable.  NVLAMB differs from vanilla LAMB by
pre-normalizing all gradients by the *global* gradient norm before the
per-layer moments are updated (NVIDIA DeepLearningExamples implementation).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer, global_grad_norm


class LAMB(Optimizer):
    """Layer-wise Adaptive Moments optimizer for Batch training.

    Parameters
    ----------
    params, lr, betas, eps:
        As in Adam.
    weight_decay:
        Decoupled decay added to the Adam direction before the trust-ratio
        scaling (as in the LAMB paper's Algorithm 1).
    clamp_trust:
        Upper bound on the trust ratio (10.0 in common implementations;
        ``None`` disables clamping).
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
        clamp_trust: float | None = 10.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay
        self.clamp_trust = clamp_trust

    def _preprocess_grad(self, grad: np.ndarray) -> np.ndarray:
        return grad

    def step(self) -> None:
        self.step_count += 1
        for p, state in zip(self.params, self.state):
            if p.grad is None:
                continue
            self._update(p, self._preprocess_grad(p.grad), state)

    def _update(self, param: Parameter, grad: np.ndarray, state: dict) -> None:
        b1, b2 = self.betas
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = b1 * m + (1 - b1) * grad
        v = b2 * v + (1 - b2) * grad * grad
        state["m"], state["v"] = m, v
        t = self.step_count
        m_hat = m / (1 - b1**t)
        v_hat = v / (1 - b2**t)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay:
            update = update + self.weight_decay * param.data

        w_norm = float(np.linalg.norm(param.data))
        u_norm = float(np.linalg.norm(update))
        if w_norm > 0 and u_norm > 0:
            trust = w_norm / u_norm
            if self.clamp_trust is not None:
                trust = min(trust, self.clamp_trust)
        else:
            trust = 1.0
        param.data = param.data - self.lr * trust * update


class NVLAMB(LAMB):
    """NVIDIA's LAMB: gradients pre-normalized by the global gradient norm.

    This is the exact baseline optimizer named in the paper ("NVLAMB,
    NVIDIA's implementation of the LAMB optimizer", §4).
    """

    def step(self) -> None:
        self.step_count += 1
        gnorm = global_grad_norm(self.params)
        scale = 1.0 / gnorm if gnorm > 0 else 1.0
        for p, state in zip(self.params, self.state):
            if p.grad is None:
                continue
            self._update(p, p.grad * scale, state)
