"""PipeFisher: automatic assignment of K-FAC work to pipeline bubbles.

The paper's §3: given *any* synchronous pipeline schedule, profile one
step, then greedily place curvature, inversion, and (critical-path)
precondition work into the bubbles under the §3.1 rules:

1. curvature for A_l (resp. B_l) of a micro-batch goes after that
   micro-batch's forward (resp. backward) on the owning stage;
2. inversion of A_l (resp. B_l) goes after the curvature of A_l (resp.
   B_l) for *all* micro-batches;
3. precondition goes after all backwards of a stage, before the next step.

The resulting static schedule repeats every ``refresh_steps`` pipeline
steps — the frequency at which the curvature information is refreshed.
"""

from repro.pipefisher.workqueue import KFACWorkItem, KFACWorkQueue, build_device_queues
from repro.pipefisher.assignment import BubbleFiller, AssignmentResult
from repro.pipefisher.runner import PipeFisherRun, PipeFisherReport, run_pipefisher

__all__ = [
    "KFACWorkItem",
    "KFACWorkQueue",
    "build_device_queues",
    "BubbleFiller",
    "AssignmentResult",
    "PipeFisherRun",
    "PipeFisherReport",
    "run_pipefisher",
]
