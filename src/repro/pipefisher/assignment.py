"""The automatic work-assignment algorithm (paper §3.1).

Profile one pipeline step (here: simulate it), extract the bubbles, then
place K-FAC work items into them in readiness order:

    "we pick one work from the 'queue' of all the K-FAC work and assign it
    to a bubble if its duration is shorter than the bubble duration
    (otherwise, subsequent bubbles are utilized) according to the rules
    above.  We repeat this procedure until all the K-FAC work are assigned
    to bubbles."

Because the synchronous schedule repeats identically every step, bubbles
in step ``k`` are the step-0 bubbles shifted by ``k * span``; an item
triggered by "forward of micro-batch m at stage s" is ready at that
forward's end *within the step it is placed in*.  The number of steps
needed to drain the queue is the curvature refresh interval.

The placer is event-indexed: per-device ready heaps ordered exactly like
the greedy rule's ``(start, -ready, position)`` key, dependency counters
for ``("items", ...)`` triggers (a completed item decrements its
dependents instead of every scan re-walking the full dependency tuple),
and a bubble cursor that only ever moves forward.  Placement work is
O(items log items + total deps), plus per-placement re-checks of the
ready items that sort ahead of the winner but cannot split into the
bubble's remaining room under ``min_chunk`` — a small prefix in practice,
since similarly-sized items stop fitting at the same time and end the
bubble.  This replaces rescanning every unassigned item per placed
segment, while producing placements bit-identical to the original
scan-all greedy loop (frozen as the baseline in
``benchmarks/test_filler_scaling.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.pipefisher.workqueue import KFACWorkItem, KFACWorkQueue
from repro.pipeline.bubbles import bubble_intervals
from repro.pipeline.executor import SimulationResult
from repro.profiler.timeline import TimelineEvent

_EPS = 1e-9


@dataclass
class AssignmentResult:
    """Outcome of bubble filling.

    :meth:`BubbleFiller.fill` guarantees every item is assigned before a
    result is constructed, so reporting helpers never re-validate.
    """

    queues: dict[int, KFACWorkQueue]
    refresh_steps: int
    span: float
    #: device -> steps its own queue needed (per-stage refresh frequency).
    device_refresh_steps: dict[int, int] = field(default_factory=dict)

    def events(self) -> list[TimelineEvent]:
        """Assigned K-FAC work as timeline events (one per segment)."""
        out = []
        for q in self.queues.values():
            for i in q.items:
                for s, e in i.segments:
                    out.append(
                        TimelineEvent(
                            device=i.device,
                            kind=i.kind,
                            start=s,
                            end=e,
                            label=i.label,
                            meta={
                                "stage": i.stage,
                                "block": i.block,
                                "factor": i.factor,
                                "micro_batch": i.micro_batch,
                                "step": int(s // self.span),
                            },
                        )
                    )
        return out

    @property
    def total_filled(self) -> float:
        return sum(q.total_duration for q in self.queues.values())


class BubbleFiller:
    """Places per-device K-FAC work queues into a step template's bubbles.

    Parameters
    ----------
    template:
        Simulation of ONE steady-state pipeline step (with PipeFisher's
        precondition already on the critical path).
    queues:
        Per-device work inventories from :func:`build_device_queues`.
    dp:
        Data-parallel degree (to resolve which replica's forward/backward
        events trigger a device's items).
    max_steps:
        Safety bound on the refresh interval.
    min_bubble:
        Ignore bubbles shorter than this (kernel-launch granularity).
    """

    def __init__(
        self,
        template: SimulationResult,
        queues: dict[int, KFACWorkQueue],
        dp: int = 1,
        max_steps: int = 64,
        min_bubble: float = 1e-5,
        min_chunk: float = 2e-3,
        steady_state: bool = True,
    ) -> None:
        self.template = template
        self.queues = queues
        self.dp = dp
        self.max_steps = max_steps
        self.min_bubble = min_bubble
        #: Smallest placeable piece of a split work (~one CUDA kernel).
        self.min_chunk = min_chunk
        #: In the repeating (static) schedule, every trigger event has
        #: already occurred in the previous step, so startup bubbles before
        #: a cycle's own forward/backward may compute factors from the
        #: previous step's saved tensors — the same staleness the paper
        #: embraces ("the first precondition ... is performed with the
        #: stale inverse matrices calculated at previous steps").  Set
        #: False to model the very first cycle after initialization.
        self.steady_state = steady_state
        self.span = template.makespan
        #: Trigger events by canonical kind.  A zero-bubble split backward
        #: satisfies "backward" triggers at its *input-grad* end: the
        #: error signal a B-factor needs is the output gradient, which the
        #: input-grad pass produces (weight-grads consume it, not make it).
        self._event_end: dict[tuple, float] = {}
        for e in template.timeline.events:
            kind = "backward" if e.kind == "backward_input" else e.kind
            if kind in ("forward", "backward"):
                key = (
                    kind,
                    e.meta["stage"],
                    e.meta["micro_batch"],
                    e.meta.get("pipeline"),
                    e.meta.get("replica", 0),
                )
                self._event_end[key] = max(self._event_end.get(key, 0.0), e.end)

    # -- readiness ----------------------------------------------------------------

    def _ready_time(
        self, item: KFACWorkItem, by_id: dict[str, KFACWorkItem]
    ) -> float | None:
        """Absolute readiness time of ``item``.

        A curvature item becomes ready at the end of its trigger event in
        the *first* step and stays ready afterwards: activations are held
        for A factors and error signals are saved for B factors (that is
        what M_act and M_err^save in the §3.3 memory model pay for), so an
        item that misses step k's bubbles computes its factor from the
        saved step-k tensors inside step k+1's bubbles.

        Returns None while blocked (inversion whose curvature items have
        not all been assigned yet).
        """
        kind = item.trigger[0]
        if kind in ("forward", "backward"):
            _, s, m, pipe = item.trigger
            replica = item.device % self.dp
            rel = self._event_end.get((kind, s, m, pipe, replica))
            if rel is None:
                raise KeyError(
                    f"no {kind} event for stage {s}, micro-batch {m}, "
                    f"pipeline {pipe}, replica {replica}"
                )
            return rel - self.span if self.steady_state else rel
        if kind == "items":
            ends = []
            for dep in item.trigger[1]:
                dep_item = by_id[dep]
                if not dep_item.assigned:
                    return None
                ends.append(dep_item.end)
            return max(ends) if ends else 0.0
        raise ValueError(f"unknown trigger {item.trigger!r}")

    # -- feasibility --------------------------------------------------------------

    def _feasible(self, remaining: float, room: float) -> bool:
        """Can an item with ``remaining`` work start in ``room`` seconds?

        A fragment (``room < remaining``) must leave both the fragment and
        the leftover at least ``min_chunk`` (~one kernel); a full fit only
        needs positive room.  Mirrors the original greedy rule exactly.
        """
        if room < remaining - _EPS:
            return not (room < self.min_chunk - _EPS
                        or remaining - room < self.min_chunk)
        return room > _EPS

    # -- filling -----------------------------------------------------------------

    def _fill_device(self, device: int) -> int:
        """Drain one device's queue; returns the number of steps used.

        Readiness is indexed instead of rescanned:

        * ``future_heap`` holds ready items ordered by ``(ready, pos)``;
          ``now_heap`` holds items whose readiness has passed the cursor,
          ordered by ``(-ready, pos)``.  The cursor only moves forward, so
          each item migrates future -> now at most once.
        * ``("items", ...)`` triggers keep a counter of unassigned deps
          and a running max end; completing an item decrements its
          dependents (no tuple re-walks).

        At a cursor ``t`` inside a bubble ending at ``b1``, every already-
        ready item starts at ``t``, so the greedy key ``(start, -ready,
        pos)`` reduces to ``now_heap`` order; if no now-item is feasible,
        the best candidate is the earliest feasible future item, which is
        ``future_heap`` order.  Items infeasible only for the *current*
        room (fragment would violate ``min_chunk``) are popped, stashed,
        and re-pushed; they cannot be parked for the rest of the bubble,
        because a shrinking room can turn a too-small leftover
        (``remaining - room < min_chunk``) back into a legal split.
        """
        q = self.queues[device]
        items = q.items
        if not items:
            return 0
        by_id = q.by_id()
        bubbles0 = bubble_intervals(
            self.template.timeline,
            device,
            (0.0, self.span),
            min_duration=self.min_bubble,
        )
        if not bubbles0:
            raise RuntimeError(
                f"device {device} has no bubbles to fill (span {self.span:.4f}s)"
            )

        pos_of = {item.iid: pos for pos, item in enumerate(items)}
        ready = [0.0] * len(items)
        dep_count = [0] * len(items)
        dep_max_end = [0.0] * len(items)
        dependents: dict[int, list[int]] = {}
        future_heap: list[tuple[float, int]] = []  # (ready, pos)
        now_heap: list[tuple[float, int]] = []  # (-ready, pos)

        for pos, item in enumerate(items):
            if item.trigger[0] == "items":
                cnt = 0
                mx = 0.0
                for dep in item.trigger[1]:
                    dpos = pos_of[dep]
                    if items[dpos].assigned:
                        end = items[dpos].end
                        if end is not None and end > mx:
                            mx = end
                    else:
                        cnt += 1
                        dependents.setdefault(dpos, []).append(pos)
                dep_count[pos] = cnt
                dep_max_end[pos] = mx
                if cnt == 0 and not item.assigned:
                    ready[pos] = mx if item.trigger[1] else 0.0
                    heapq.heappush(future_heap, (ready[pos], pos))
            elif not item.assigned:
                ready[pos] = self._ready_time(item, by_id)
                heapq.heappush(future_heap, (ready[pos], pos))

        remaining = len(items)
        last_placed_duration = -1.0
        for step in range(self.max_steps):
            offset = step * self.span
            for b0, b1 in ((a + offset, b + offset) for a, b in bubbles0):
                t = b0
                while True:
                    if b1 - t <= _EPS:
                        # Nothing can ever start here: a full fit needs
                        # room > eps and a fragment needs room >= min_chunk.
                        # (Common after a fragment fills the bubble to b1.)
                        break
                    while future_heap and future_heap[0][0] <= t:
                        r, pos = heapq.heappop(future_heap)
                        heapq.heappush(now_heap, (-r, pos))
                    win_pos = -1
                    win_ready = 0.0
                    st = t
                    room_now = b1 - t
                    stash = []
                    while now_heap:
                        nr, pos = heapq.heappop(now_heap)
                        item = items[pos]
                        if item.assigned:
                            continue
                        if self._feasible(item.remaining, room_now):
                            win_pos, win_ready = pos, -nr
                            break
                        stash.append((nr, pos))
                    for entry in stash:
                        heapq.heappush(now_heap, entry)
                    if win_pos < 0:
                        stash.clear()
                        while future_heap:
                            r, pos = future_heap[0]
                            if r >= b1:
                                break
                            heapq.heappop(future_heap)
                            item = items[pos]
                            if item.assigned:
                                continue
                            if self._feasible(item.remaining, b1 - r):
                                win_pos, win_ready, st = pos, r, r
                                break
                            stash.append((r, pos))
                        for entry in stash:
                            heapq.heappush(future_heap, entry)
                    if win_pos < 0:
                        break
                    item = items[win_pos]
                    piece = min(item.remaining, b1 - st)
                    item.segments.append((st, st + piece))
                    t = st + piece
                    if item.assigned:
                        remaining -= 1
                        end = item.end
                        for dpos in dependents.get(win_pos, ()):
                            dep_count[dpos] -= 1
                            if end > dep_max_end[dpos]:
                                dep_max_end[dpos] = end
                            if dep_count[dpos] == 0:
                                ready[dpos] = dep_max_end[dpos]
                                heapq.heappush(
                                    future_heap, (ready[dpos], dpos))
                    else:
                        # Partial placement: the cursor has passed its
                        # readiness, so it re-enters as a "now" item.
                        heapq.heappush(now_heap, (-win_ready, win_pos))
                if remaining == 0:
                    return step + 1
            if remaining == 0:
                return step + 1
            placed = sum(i.placed_duration for i in q.items)
            if placed <= last_placed_duration + _EPS:
                # No progress for a full step: items are permanently blocked.
                stuck = [i.iid for i in q.items if not i.assigned]
                raise RuntimeError(
                    f"device {device}: no placement progress in step {step}; "
                    f"stuck items: {stuck[:5]}"
                )
            last_placed_duration = placed
        raise RuntimeError(
            f"device {device}: {remaining} K-FAC items still unassigned after "
            f"{self.max_steps} steps; bubbles too small for the work"
        )

    def fill(self) -> AssignmentResult:
        """Assign every queue; the refresh interval is the slowest device.

        Raises RuntimeError here — at assignment time, not when the result
        is later reported — if any item escaped placement.
        """
        per_device: dict[int, int] = {}
        for device in sorted(self.queues):
            per_device[device] = self._fill_device(device)
        unassigned = [
            i.iid for q in self.queues.values() for i in q.items if not i.assigned
        ]
        if unassigned:
            raise RuntimeError(
                f"fill left {len(unassigned)} item(s) unassigned: "
                f"{unassigned[:5]}"
            )
        refresh = max(per_device.values(), default=1)
        return AssignmentResult(
            queues=self.queues,
            refresh_steps=max(refresh, 1),
            span=self.span,
            device_refresh_steps=per_device,
        )
