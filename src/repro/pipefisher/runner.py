"""End-to-end PipeFisher experiment driver.

``run_pipefisher`` reproduces a Fig. 3/4-style experiment in one call:
simulate the baseline schedule (first-order optimizer), simulate the
PipeFisher step template (baseline + precondition), run the automatic
work assignment, and report utilizations, step times, and the refresh
interval.

Utilizations are computed arithmetically from ONE cycle's colored time —
the schedule repeats exactly, so tiling ``cycle_steps x events`` shifted
copies of every event only to measure the same ratio is pure overhead.
The tiled window timelines (what Figs. 1/3/4 render) are materialized
lazily on first attribute access, or eagerly when a run sets
``materialize_window=True`` for visualization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.perfmodel.arch import TransformerArch
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import StageCosts, compute_stage_costs
from repro.perfmodel.hardware import Hardware
from repro.pipefisher.assignment import AssignmentResult, BubbleFiller
from repro.pipefisher.workqueue import build_device_queues
from repro.pipeline.comm import CommModel
from repro.pipeline.executor import simulate_tasks
from repro.pipeline.schedules import PipelineConfig, make_schedule
from repro.profiler.timeline import Timeline
from repro.profiler.utilization import colored_seconds, utilization
from repro.sweep.cache import BoundedCache

#: Sweep-level memo for stage-cost models. ``TransformerArch`` and
#: ``Hardware`` are frozen dataclasses, so the cost model is a pure
#: function of this key; sweeps over n_micro/depth/schedule re-derive it
#: for every run otherwise. LRU-bounded so open-ended what-if sweeps
#: (many architectures x hardware x micro-batch sizes) cannot grow it
#: without limit, and clearable so frozen-baseline benchmarks can prove
#: they ran against a cold cache.
_STAGE_COSTS_MEMO: BoundedCache = BoundedCache(maxsize=512)


def clear_stage_costs_memo() -> None:
    """Empty the stage-cost memo (benchmarks pin cold-cache baselines)."""
    _STAGE_COSTS_MEMO.clear()


def cached_stage_costs(
    arch: TransformerArch,
    hardware: Hardware,
    b_micro: int,
    layers_per_stage: int,
    schedule: str,
) -> StageCosts:
    """Memoized :func:`compute_stage_costs` for sweep-heavy callers."""
    key = (arch, hardware, b_micro, layers_per_stage, schedule)
    return _STAGE_COSTS_MEMO.get_or_create(
        key,
        lambda: compute_stage_costs(
            arch,
            hardware,
            b_micro,
            layers_per_stage=layers_per_stage,
            overhead_s=host_overhead(schedule),
        ),
    )


@dataclass
class PipeFisherReport:
    """Everything a Fig. 3/4 panel shows, as numbers.

    ``baseline_timeline`` / ``pipefisher_timeline`` are lazy: the window
    timelines are tiled from the one-step templates on first access and
    cached, so sweeps that only read the numbers never pay for them.
    The one-step templates themselves may be lazy too:
    ``base_template_source`` / ``pf_template_source`` accept either a
    built :class:`Timeline` or a zero-argument callable producing one —
    the sweep engine passes callables so a re-timed point only
    materializes event objects when something renders them.
    """

    schedule: str
    num_devices: int
    #: Baseline (first-order optimizer) results.
    baseline_step_time: float
    baseline_utilization: float
    #: PipeFisher results.
    pipefisher_step_time: float
    pipefisher_utilization: float
    refresh_steps: int
    device_refresh_steps: dict[int, int]
    #: The K-FAC work placement — an AssignmentResult or a factory (the
    #: sweep engine defers building per-item objects until inspected).
    assignment_source: "AssignmentResult | Callable[[], AssignmentResult]"
    #: One simulated step of each schedule (the repeating templates the
    #: lazy window properties tile from) — a Timeline or a factory.
    base_template_source: "Timeline | Callable[[], Timeline]"
    pf_template_source: "Timeline | Callable[[], Timeline]"
    #: Steps the materialized windows cover (the paper plots ~2 steps).
    window_steps: int = 2
    _baseline_timeline: Timeline | None = field(default=None, repr=False)
    _pipefisher_timeline: Timeline | None = field(default=None, repr=False)

    @property
    def step_time_overhead(self) -> float:
        """Relative per-step cost of PipeFisher (precondition only)."""
        return self.pipefisher_step_time / self.baseline_step_time - 1.0

    @property
    def assignment(self) -> AssignmentResult:
        """The K-FAC work placement (materialized on first access)."""
        src = self.assignment_source
        if callable(src):
            src = src()
            self.assignment_source = src
        return src

    @property
    def base_template(self) -> Timeline:
        """One simulated baseline step (materialized on first access)."""
        src = self.base_template_source
        if callable(src):
            src = src()
            self.base_template_source = src
        return src

    @property
    def pf_template(self) -> Timeline:
        """One simulated PipeFisher step (materialized on first access)."""
        src = self.pf_template_source
        if callable(src):
            src = src()
            self.pf_template_source = src
        return src

    @property
    def baseline_timeline(self) -> Timeline:
        """``window_steps`` tiled copies of the baseline step."""
        if self._baseline_timeline is None:
            tl = Timeline(self.num_devices)
            for k in range(self.window_steps):
                tl.extend([e.shifted(k * self.baseline_step_time)
                           for e in self.base_template.events])
            self._baseline_timeline = tl
        return self._baseline_timeline

    @property
    def pipefisher_timeline(self) -> Timeline:
        """Whole refresh cycles tiled until ``window_steps`` is covered.

        Every tiled step carries its cycle's K-FAC work, so rendering any
        window of it shows the schedule the utilization numbers describe.
        """
        if self._pipefisher_timeline is None:
            span = self.pipefisher_step_time
            n_cycles = max(1, -(-self.window_steps // self.refresh_steps))
            cycle_steps = n_cycles * self.refresh_steps
            tl = Timeline(self.num_devices)
            for k in range(cycle_steps):
                tl.extend([e.shifted(k * span) for e in self.pf_template.events])
            kfac_events = self.assignment.events()
            for c in range(n_cycles):
                offset = c * self.refresh_steps * span
                tl.extend([e.shifted(offset) for e in kfac_events])
            self._pipefisher_timeline = tl
        return self._pipefisher_timeline


@dataclass
class PipeFisherRun:
    """Configuration of one experiment (a Fig. 3/4 panel)."""

    schedule: str
    arch: TransformerArch
    hardware: Hardware
    b_micro: int
    depth: int
    n_micro: int
    layers_per_stage: int = 1
    dp: int = 1
    world_multiplier: int = 1
    inversion_parallel: bool = False
    recompute: bool = False
    #: Steps in the utilization window (the paper plots ~2 steps).
    window_steps: int = 2
    #: Virtual stage chunks per device (interleaved schedule only).
    virtual_chunks: int = 2
    #: Materialize the tiled window timelines eagerly (for visualization).
    #: Off by default: utilizations are exact without them, and sweeps
    #: that never render should not build ``cycle_steps x events`` copies.
    materialize_window: bool = False

    def _config(
        self, precondition: bool, costs: StageCosts, comm: CommModel
    ) -> PipelineConfig:
        return PipelineConfig(
            depth=self.depth,
            n_micro=self.n_micro,
            costs=costs,
            comm=comm,
            dp=self.dp,
            world_multiplier=self.world_multiplier,
            recompute=self.recompute,
            precondition=precondition,
            stage_param_bytes=self.layers_per_stage * self.arch.param_bytes(),
            virtual_chunks=self.virtual_chunks,
        )

    def execute(self) -> PipeFisherReport:
        # The baseline and precondition configs share one cost model and
        # comm model — computed once (and memoized across sweep runs).
        costs = cached_stage_costs(
            self.arch, self.hardware, self.b_micro,
            self.layers_per_stage, self.schedule,
        )
        comm = CommModel(allreduce_gbs=self.hardware.interconnect_gbs)

        # -- baseline: first-order optimizer, no K-FAC work ---------------------
        base_cfg = self._config(precondition=False, costs=costs, comm=comm)
        base_builder = make_schedule(self.schedule, base_cfg)
        base_sim = simulate_tasks(base_builder.build(steps=1), base_builder.num_devices)
        base_span = base_sim.makespan
        # The window is whole copies of the one step, so its utilization
        # equals the one-step utilization — no tiling needed to measure it.
        base_util = utilization(base_sim.timeline, (0.0, base_span))

        # -- PipeFisher template: baseline + precondition on the critical path --
        pf_cfg = self._config(precondition=True, costs=costs, comm=comm)
        pf_builder = make_schedule(self.schedule, pf_cfg)
        template = simulate_tasks(pf_builder.build(steps=1), pf_builder.num_devices)
        span = template.makespan

        sync_curv_s = 0.0
        if self.inversion_parallel:
            factor_bytes = (
                self.layers_per_stage
                * len(pf_builder.stages_of_device(0))
                * self.arch.factor_bytes()
            )
            world = pf_builder.allreduce_world(0)
            sync_curv_s = pf_cfg.comm.allreduce_time(factor_bytes, world)

        queues = build_device_queues(
            pf_builder,
            pf_cfg.costs,
            inversion_parallel=self.inversion_parallel,
            sync_curv_seconds=sync_curv_s,
        )
        filler = BubbleFiller(template, queues, dp=self.dp)
        assignment = filler.fill()

        # -- utilization over the refresh cycle ---------------------------------
        # The K-FAC assignment repeats every refresh_steps steps; over that
        # cycle every step contributes the template's colored time and the
        # cycle contributes the K-FAC work once:
        #     util = (refresh * colored(template) + colored(kfac))
        #            / (devices * refresh * span)
        # identical (up to fp addition order) to measuring a materialized
        # tiling of whole cycles, without building one.
        refresh = assignment.refresh_steps
        pf_colored = (refresh * colored_seconds(template.timeline.events)
                      + colored_seconds(assignment.events()))
        pf_util = pf_colored / (pf_builder.num_devices * refresh * span)

        report = PipeFisherReport(
            schedule=self.schedule,
            num_devices=pf_builder.num_devices,
            baseline_step_time=base_span,
            baseline_utilization=base_util,
            pipefisher_step_time=span,
            pipefisher_utilization=pf_util,
            refresh_steps=refresh,
            device_refresh_steps=assignment.device_refresh_steps,
            assignment_source=assignment,
            window_steps=self.window_steps,
            base_template_source=base_sim.timeline,
            pf_template_source=template.timeline,
        )
        if self.materialize_window:
            report.baseline_timeline
            report.pipefisher_timeline
        return report


def run_pipefisher(**kwargs) -> PipeFisherReport:
    """Convenience wrapper: ``run_pipefisher(schedule="gpipe", ...)``."""
    return PipeFisherRun(**kwargs).execute()
