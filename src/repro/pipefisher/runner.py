"""End-to-end PipeFisher experiment driver.

``run_pipefisher`` reproduces a Fig. 3/4-style experiment in one call:
simulate the baseline schedule (first-order optimizer), simulate the
PipeFisher step template (baseline + precondition), run the automatic
work assignment, and report utilizations, step times, and the refresh
interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import TransformerArch
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import compute_stage_costs
from repro.perfmodel.hardware import Hardware
from repro.pipefisher.assignment import AssignmentResult, BubbleFiller
from repro.pipefisher.workqueue import build_device_queues
from repro.pipeline.comm import CommModel
from repro.pipeline.executor import simulate_tasks
from repro.pipeline.schedules import PipelineConfig, make_schedule
from repro.profiler.timeline import Timeline
from repro.profiler.utilization import utilization


@dataclass
class PipeFisherReport:
    """Everything a Fig. 3/4 panel shows, as numbers."""

    schedule: str
    num_devices: int
    #: Baseline (first-order optimizer) results.
    baseline_step_time: float
    baseline_utilization: float
    baseline_timeline: Timeline
    #: PipeFisher results.
    pipefisher_step_time: float
    pipefisher_utilization: float
    pipefisher_timeline: Timeline
    refresh_steps: int
    device_refresh_steps: dict[int, int]
    assignment: AssignmentResult

    @property
    def step_time_overhead(self) -> float:
        """Relative per-step cost of PipeFisher (precondition only)."""
        return self.pipefisher_step_time / self.baseline_step_time - 1.0


@dataclass
class PipeFisherRun:
    """Configuration of one experiment (a Fig. 3/4 panel)."""

    schedule: str
    arch: TransformerArch
    hardware: Hardware
    b_micro: int
    depth: int
    n_micro: int
    layers_per_stage: int = 1
    dp: int = 1
    world_multiplier: int = 1
    inversion_parallel: bool = False
    recompute: bool = False
    #: Steps in the utilization window (the paper plots ~2 steps).
    window_steps: int = 2
    #: Virtual stage chunks per device (interleaved schedule only).
    virtual_chunks: int = 2

    def _config(self, precondition: bool) -> PipelineConfig:
        costs = compute_stage_costs(
            self.arch,
            self.hardware,
            self.b_micro,
            layers_per_stage=self.layers_per_stage,
            overhead_s=host_overhead(self.schedule),
        )
        comm = CommModel(allreduce_gbs=self.hardware.interconnect_gbs)
        return PipelineConfig(
            depth=self.depth,
            n_micro=self.n_micro,
            costs=costs,
            comm=comm,
            dp=self.dp,
            world_multiplier=self.world_multiplier,
            recompute=self.recompute,
            precondition=precondition,
            stage_param_bytes=self.layers_per_stage * self.arch.param_bytes(),
            virtual_chunks=self.virtual_chunks,
        )

    def execute(self) -> PipeFisherReport:
        # -- baseline: first-order optimizer, no K-FAC work ---------------------
        base_cfg = self._config(precondition=False)
        base_builder = make_schedule(self.schedule, base_cfg)
        base_sim = simulate_tasks(base_builder.build(steps=1), base_builder.num_devices)
        base_span = base_sim.makespan
        base_window = Timeline(base_builder.num_devices)
        for k in range(self.window_steps):
            base_window.extend([e.shifted(k * base_span) for e in base_sim.timeline.events])
        base_util = utilization(base_window, (0.0, self.window_steps * base_span))

        # -- PipeFisher template: baseline + precondition on the critical path --
        pf_cfg = self._config(precondition=True)
        pf_builder = make_schedule(self.schedule, pf_cfg)
        template = simulate_tasks(pf_builder.build(steps=1), pf_builder.num_devices)
        span = template.makespan

        sync_curv_s = 0.0
        if self.inversion_parallel:
            factor_bytes = (
                self.layers_per_stage
                * len(pf_builder.stages_of_device(0))
                * self.arch.factor_bytes()
            )
            world = pf_builder.allreduce_world(0)
            sync_curv_s = pf_cfg.comm.allreduce_time(factor_bytes, world)

        queues = build_device_queues(
            pf_builder,
            pf_cfg.costs,
            inversion_parallel=self.inversion_parallel,
            sync_curv_seconds=sync_curv_s,
        )
        filler = BubbleFiller(template, queues, dp=self.dp)
        assignment = filler.fill()

        # -- combined timeline over the refresh cycle ---------------------------
        # The K-FAC assignment repeats every refresh_steps steps, so tile
        # whole refresh cycles until window_steps is covered and measure
        # over exactly the tiled extent — every tiled step is measured and
        # every measured step carries its cycle's K-FAC work.
        n_cycles = max(1, -(-self.window_steps // assignment.refresh_steps))
        cycle_steps = n_cycles * assignment.refresh_steps
        combined = Timeline(pf_builder.num_devices)
        for k in range(cycle_steps):
            combined.extend([e.shifted(k * span) for e in template.timeline.events])
        kfac_events = assignment.events()
        for c in range(n_cycles):
            offset = c * assignment.refresh_steps * span
            combined.extend([e.shifted(offset) for e in kfac_events])
        pf_util = utilization(combined, (0.0, cycle_steps * span))

        return PipeFisherReport(
            schedule=self.schedule,
            num_devices=pf_builder.num_devices,
            baseline_step_time=base_span,
            baseline_utilization=base_util,
            baseline_timeline=base_window,
            pipefisher_step_time=span,
            pipefisher_utilization=pf_util,
            pipefisher_timeline=combined,
            refresh_steps=assignment.refresh_steps,
            device_refresh_steps=assignment.device_refresh_steps,
            assignment=assignment,
        )


def run_pipefisher(**kwargs) -> PipeFisherReport:
    """Convenience wrapper: ``run_pipefisher(schedule="gpipe", ...)``."""
    return PipeFisherRun(**kwargs).execute()
