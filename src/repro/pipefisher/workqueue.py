"""K-FAC work inventories per device.

Work granularity follows the paper's Figure 1 legend: a *curvature* item
covers A_l or B_l of one transformer block for one micro-batch; an
*inversion* item covers A_l or B_l of one block ("a subset of assigned
layers"); sync-curvature (when data/inversion parallelism is on) is one
allreduce per device.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.perfmodel.costs import StageCosts
from repro.pipeline.schedules import ScheduleBuilder


@dataclass
class KFACWorkItem:
    """One placeable unit of K-FAC work.

    ``trigger`` defines readiness (rule 1/2 of §3.1):

    * ``("forward", stage, micro_batch, pipeline)`` — ready when that
      forward ends in the step where the item is placed;
    * ``("backward", stage, micro_batch, pipeline)`` — same for backward;
    * ``("items", (item ids...))`` — ready when those items finish
      (inversion after all curvature of its layer+factor; sync-curvature
      after all curvature of the device).
    """

    iid: str
    device: int
    kind: str  # "curvature" | "inversion" | "sync_curv"
    factor: str  # "A" | "B" | "-"
    stage: int
    block: int  # block index within the stage (0..layers_per_stage-1)
    micro_batch: int | None
    pipeline: str | None
    duration: float
    trigger: tuple
    #: Filled by the assigner.  A work is a sequence of kernels, so it may
    #: be split across several bubbles ("subsequent bubbles are utilized",
    #: §3.1); each placed piece is one (start, end) segment.
    segments: list[tuple[float, float]] = field(default_factory=list)

    @property
    def placed_duration(self) -> float:
        return sum(e - s for s, e in self.segments)

    @property
    def remaining(self) -> float:
        return self.duration - self.placed_duration

    @property
    def assigned(self) -> bool:
        return self.remaining <= 1e-12

    @property
    def start(self) -> float | None:
        return self.segments[0][0] if self.segments else None

    @property
    def end(self) -> float | None:
        return self.segments[-1][1] if self.segments else None

    @property
    def label(self) -> str:
        mb = f" m{self.micro_batch}" if self.micro_batch is not None else ""
        return f"{self.kind[:4]}{self.factor} s{self.stage}L{self.block}{mb}"


@dataclass
class KFACWorkQueue:
    """Ordered K-FAC work for one device."""

    device: int
    items: list[KFACWorkItem] = field(default_factory=list)

    def by_id(self) -> dict[str, KFACWorkItem]:
        return {i.iid: i for i in self.items}

    @property
    def total_duration(self) -> float:
        return sum(i.duration for i in self.items)

    def unassigned(self) -> list[KFACWorkItem]:
        return [i for i in self.items if not i.assigned]


def _microbatches_of(builder: ScheduleBuilder, pipeline: str | None) -> range:
    """Micro-batches per pipeline, as the schedule spec declares them
    (Chimera splits ``n_micro`` across its bidirectional pair)."""
    return builder.spec.microbatches(builder.config)


def build_device_queues(
    builder: ScheduleBuilder,
    costs: StageCosts,
    inversion_parallel: bool = False,
    sync_curv_seconds: float = 0.0,
) -> dict[int, KFACWorkQueue]:
    """Create the per-device K-FAC work inventory for one refresh.

    Parameters
    ----------
    builder:
        The pipeline schedule (provides the device -> stages mapping).
    costs:
        Stage costs; curvature/inversion durations come from its block
        model, one item per (block, factor, micro-batch or none).
    inversion_parallel:
        Split inversion items round-robin across each data-parallel group
        (§3.2), preceded by a sync-curvature allreduce per device.
    sync_curv_seconds:
        Duration of the sync-curvature allreduce (0 to omit even when
        ``inversion_parallel``).
    """
    cfg = builder.config
    block = costs.block
    L = costs.layers_per_stage
    queues: dict[int, KFACWorkQueue] = {
        d: KFACWorkQueue(d) for d in range(builder.num_devices)
    }
    counter = itertools.count()

    for dev in range(builder.num_devices):
        q = queues[dev]
        stages = builder.stages_of_device(dev)
        pipes_of_stage: dict[int, list[str | None]] = {
            s: [builder.spec.pipe_of_stage(cfg, dev, s)] for s in stages
        }

        curv_ids: dict[tuple, list[str]] = {}
        all_curv_ids: list[str] = []
        # Rule 1: curvature per (stage, block, factor, micro-batch).
        for s in stages:
            for pipe in pipes_of_stage[s]:
                for m in _microbatches_of(builder, pipe):
                    for b in range(L):
                        for factor, dur, ev in (
                            ("A", block.t_curv_a, "forward"),
                            ("B", block.t_curv_b, "backward"),
                        ):
                            iid = f"kfac{next(counter)}.d{dev}"
                            item = KFACWorkItem(
                                iid=iid,
                                device=dev,
                                kind="curvature",
                                factor=factor,
                                stage=s,
                                block=b,
                                micro_batch=m,
                                pipeline=pipe,
                                duration=dur,
                                trigger=(ev, s, m, pipe),
                            )
                            q.items.append(item)
                            curv_ids.setdefault((s, b, factor), []).append(iid)
                            all_curv_ids.append(iid)

        # Optional sync-curvature before inversion (data parallelism, §3.2).
        sync_dep: list[str] = []
        if inversion_parallel and sync_curv_seconds > 0 and builder.allreduce_world(dev) > 1:
            iid = f"kfac{next(counter)}.d{dev}"
            q.items.append(
                KFACWorkItem(
                    iid=iid,
                    device=dev,
                    kind="sync_curv",
                    factor="-",
                    stage=stages[0],
                    block=0,
                    micro_batch=None,
                    pipeline=None,
                    duration=sync_curv_seconds,
                    trigger=("items", tuple(all_curv_ids)),
                )
            )
            sync_dep = [iid]

        # Rule 2: inversion per (stage, block, factor), after all of its
        # curvature items (and the factor allreduce when data-parallel).
        inv_specs = []
        for s in stages:
            for b in range(L):
                for factor in ("A", "B"):
                    inv_specs.append((s, b, factor))
        if inversion_parallel:
            group = builder.dp_group(dev)
            rank = group.index(dev)
            inv_specs = [
                spec for i, spec in enumerate(inv_specs) if i % len(group) == rank
            ]
        for s, b, factor in inv_specs:
            iid = f"kfac{next(counter)}.d{dev}"
            q.items.append(
                KFACWorkItem(
                    iid=iid,
                    device=dev,
                    kind="inversion",
                    factor=factor,
                    stage=s,
                    block=b,
                    micro_batch=None,
                    pipeline=None,
                    duration=block.t_inv / 2.0,
                    trigger=("items", tuple(curv_ids[(s, b, factor)] + sync_dep)),
                )
            )
    return queues
