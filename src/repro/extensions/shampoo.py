"""Shampoo (Gupta et al. 2018): Kronecker-factored AdaGrad preconditioning.

For a weight matrix ``W`` with gradient ``G`` (d_out x d_in), Shampoo
maintains second-moment factors

    L <- L + G G^T        (d_out x d_out)
    R <- R + G^T G        (d_in x d_in)

and updates with ``L^{-1/4} G R^{-1/4}``.  The factors have exactly the
shapes of K-FAC's B_l and A_l (paper §5), so PipeFisher's bubble filling
applies — except the matrix-root work uses an eigendecomposition, which is
"computationally more expensive than an inversion", so §5 prescribes
dividing the work for a single matrix into multiple pieces; the work items
built by :func:`build_shampoo_queues` rely on the assigner's kernel-level
splitting for that.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy import linalg as sla

from repro.nn.module import Parameter
from repro.optim.base import Optimizer
from repro.perfmodel.costs import StageCosts
from repro.pipefisher.workqueue import KFACWorkItem, KFACWorkQueue
from repro.pipeline.schedules import ScheduleBuilder


def matrix_inverse_root(mat: np.ndarray, root: int, damping: float) -> np.ndarray:
    """Compute ``(mat + damping I)^{-1/root}`` via eigendecomposition."""
    if root <= 0:
        raise ValueError(f"root must be positive, got {root}")
    d = mat.shape[0]
    sym = mat.astype(np.float64) + damping * np.eye(d)
    eigvals, eigvecs = sla.eigh(sym, check_finite=False)
    eigvals = np.maximum(eigvals, 1e-12)
    return (eigvecs * eigvals ** (-1.0 / root) @ eigvecs.T).astype(np.float32)


class Shampoo(Optimizer):
    """Shampoo for 2-D parameters (1-D parameters fall back to AdaGrad).

    Parameters
    ----------
    params, lr:
        As usual.
    damping:
        Added to both factors before the inverse root.
    update_interval:
        Steps between root refreshes (PipeFisher would hide this work in
        bubbles; standalone Shampoo amortizes it like conventional K-FAC).
    momentum:
        Heavy-ball momentum on the preconditioned update.
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        damping: float = 1e-4,
        update_interval: int = 1,
        momentum: float = 0.9,
    ) -> None:
        super().__init__(params, lr)
        if update_interval < 1:
            raise ValueError("update_interval must be >= 1")
        self.damping = damping
        self.update_interval = update_interval
        self.momentum = momentum

    def _update(self, param: Parameter, grad: np.ndarray, state: dict) -> None:
        if grad.ndim == 2:
            d_out, d_in = grad.shape
            if "L" not in state:
                state["L"] = np.zeros((d_out, d_out), dtype=np.float32)
                state["R"] = np.zeros((d_in, d_in), dtype=np.float32)
            state["L"] += grad @ grad.T
            state["R"] += grad.T @ grad
            refresh = (self.step_count - 1) % self.update_interval == 0
            if refresh or "L_root" not in state:
                state["L_root"] = matrix_inverse_root(state["L"], 4, self.damping)
                state["R_root"] = matrix_inverse_root(state["R"], 4, self.damping)
            update = state["L_root"] @ grad @ state["R_root"]
        else:
            # Diagonal AdaGrad for vectors (biases, LayerNorm params).
            acc = state.get("diag")
            acc = grad * grad if acc is None else acc + grad * grad
            state["diag"] = acc
            update = grad / (np.sqrt(acc) + 1e-8)
        if self.momentum:
            buf = state.get("mom")
            buf = update.copy() if buf is None else self.momentum * buf + update
            state["mom"] = buf
            update = buf
        param.data = param.data - self.lr * update


#: Eigendecomposition ~ 10x the FLOP count of a Cholesky inverse at equal
#: size (reduction to tridiagonal + QR iterations + backtransform).
EIG_OVER_CHOLESKY = 10.0


def build_shampoo_queues(
    builder: ScheduleBuilder, costs: StageCosts
) -> dict[int, KFACWorkQueue]:
    """Per-device Shampoo bubble work: statistics + eigendecompositions.

    Statistics (L, R accumulation) mirror K-FAC's curvature items — one per
    (block, factor, micro-batch), triggered by that micro-batch's backward
    (Shampoo statistics need gradients, not activations, so *both* factors
    wait for the backward).  Root computation mirrors inversion items but
    costs ``EIG_OVER_CHOLESKY`` more, exercising §5's point that the work
    must be divisible to fit bubbles.
    """
    cfg = builder.config
    block = costs.block
    L = costs.layers_per_stage
    queues = {d: KFACWorkQueue(d) for d in range(builder.num_devices)}
    counter = itertools.count()

    for dev in range(builder.num_devices):
        q = queues[dev]
        stages = builder.stages_of_device(dev)
        for s in stages:
            pipes = [builder.spec.pipe_of_stage(cfg, dev, s)]
            micro = builder.spec.microbatches(cfg)
            for pipe in pipes:
                stat_ids: dict[tuple, list[str]] = {}
                for m in micro:
                    for b in range(L):
                        for factor, dur in (("L", block.t_curv_b),
                                            ("R", block.t_curv_a)):
                            iid = f"shampoo{next(counter)}.d{dev}"
                            q.items.append(KFACWorkItem(
                                iid=iid, device=dev, kind="curvature",
                                factor=factor, stage=s, block=b,
                                micro_batch=m, pipeline=pipe, duration=dur,
                                trigger=("backward", s, m, pipe),
                            ))
                            stat_ids.setdefault((s, b, factor), []).append(iid)
                for b in range(L):
                    for factor in ("L", "R"):
                        iid = f"shampoo{next(counter)}.d{dev}"
                        q.items.append(KFACWorkItem(
                            iid=iid, device=dev, kind="inversion",
                            factor=factor, stage=s, block=b, micro_batch=None,
                            pipeline=None,
                            duration=block.t_inv / 2.0 * EIG_OVER_CHOLESKY,
                            trigger=("items", tuple(stat_ids[(s, b, factor)])),
                        ))
    return queues
