"""Extensions sketched in the paper's Discussion (§5) and Appendix C.

"The application of the idea of 'assigning extra work to bubbles in
pipeline for auxiliary benefits' is not limited to K-FAC":

* :mod:`repro.extensions.shampoo` — the Shampoo optimizer (Gupta et al.
  2018), whose Kronecker-factored second-moment matrices have the same
  shapes as K-FAC's factors; its eigendecomposition work is placed into
  bubbles via :func:`build_shampoo_queues`, split into pieces as §5
  prescribes.
* :mod:`repro.extensions.sam` — Sharpness-Aware Minimization (Foret et
  al. 2021), which "contains twice the work of regular SGD and has the
  potential to double the accelerator utilization"; its extra
  forward/backward per micro-batch fills bubbles via
  :func:`build_sam_queues`.
* :mod:`repro.extensions.async_pipeline` — the asynchronous (no-flush)
  pipeline of Appendix C.1, itself a "filling bubbles" approach where the
  filler is gradient computation with stale weights.
"""

from repro.extensions.shampoo import Shampoo, build_shampoo_queues
from repro.extensions.sam import SAM, build_sam_queues
from repro.extensions.async_pipeline import AsyncOneFOneBSchedule, stale_gradient_descent

__all__ = [
    "Shampoo",
    "build_shampoo_queues",
    "SAM",
    "build_sam_queues",
    "AsyncOneFOneBSchedule",
    "stale_gradient_descent",
]
