"""Sharpness-Aware Minimization (Foret et al. 2021) and its bubble work.

SAM seeks parameters in flat minima by taking the gradient at an
adversarially-perturbed point:

    eps  = rho * g / ||g||          (ascent to the sharpest nearby point)
    step with  grad L(theta + eps)  evaluated at the perturbed weights

Each training step therefore needs a second forward+backward — "twice the
work of regular SGD" (paper §5) — which PipeFisher-style assignment can
hide in pipeline bubbles: :func:`build_sam_queues` emits one extra
forward and one extra backward work item per (stage, micro-batch).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer, global_grad_norm
from repro.perfmodel.costs import StageCosts
from repro.pipefisher.workqueue import KFACWorkItem, KFACWorkQueue
from repro.pipeline.schedules import ScheduleBuilder


class SAM:
    """SAM wrapper around any inner optimizer.

    Usage::

        sam = SAM(model.parameters(), inner, rho=0.05)
        loss = compute_loss(); loss.backward()
        sam.first_step()              # perturb to theta + eps
        loss2 = compute_loss(); loss2.backward()
        sam.second_step()             # restore theta, inner.step()
    """

    def __init__(self, params, inner: Optimizer, rho: float = 0.05) -> None:
        if rho <= 0:
            raise ValueError(f"rho must be positive, got {rho}")
        self.params: list[Parameter] = list(params)
        self.inner = inner
        self.rho = rho
        self._backup: list[np.ndarray] | None = None

    def first_step(self) -> None:
        """Move to the adversarial point theta + rho * g / ||g||."""
        norm = global_grad_norm(self.params)
        scale = self.rho / (norm + 1e-12)
        self._backup = []
        for p in self.params:
            self._backup.append(p.data.copy())
            if p.grad is not None:
                p.data = p.data + scale * p.grad
            p.grad = None

    def second_step(self) -> None:
        """Restore weights and apply the inner update with the SAM gradient."""
        if self._backup is None:
            raise RuntimeError("second_step() called before first_step()")
        for p, saved in zip(self.params, self._backup):
            p.data = saved
        self._backup = None
        self.inner.step()

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    @property
    def lr(self) -> float:
        return self.inner.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.inner.lr = value


def build_sam_queues(
    builder: ScheduleBuilder, costs: StageCosts
) -> dict[int, KFACWorkQueue]:
    """SAM's second forward/backward as bubble work items.

    The extra forward of micro-batch m (at the perturbed weights) becomes
    ready after m's *backward* (which produces the gradient defining the
    perturbation); the extra backward follows its extra forward.  Items
    reuse the K-FAC work-item machinery ("curvature" kind = extra forward,
    "inversion" kind = extra backward) so the standard assigner places them.
    """
    cfg = builder.config
    L = costs.layers_per_stage
    queues = {d: KFACWorkQueue(d) for d in range(builder.num_devices)}
    counter = itertools.count()
    for dev in range(builder.num_devices):
        q = queues[dev]
        for s in builder.stages_of_device(dev):
            pipes = [builder.spec.pipe_of_stage(cfg, dev, s)]
            micro = builder.spec.microbatches(cfg)
            for pipe in pipes:
                for m in micro:
                    fwd_id = f"sam{next(counter)}.d{dev}"
                    q.items.append(KFACWorkItem(
                        iid=fwd_id, device=dev, kind="curvature", factor="F",
                        stage=s, block=0, micro_batch=m, pipeline=pipe,
                        duration=costs.block.t_fwd * L,
                        trigger=("backward", s, m, pipe),
                    ))
                    q.items.append(KFACWorkItem(
                        iid=f"sam{next(counter)}.d{dev}", device=dev,
                        kind="inversion", factor="B", stage=s, block=0,
                        micro_batch=m, pipeline=pipe,
                        duration=costs.block.t_bwd * L,
                        trigger=("items", (fwd_id,)),
                    ))
    return queues
