"""Asynchronous pipelines (paper Appendix C.1).

An asynchronous method (PipeDream-style) removes the pipeline flush:
bubbles are "filled by the gradient calculation with the stale model
parameters", trading staleness for throughput —
``theta_{t+1} = theta_t - eta * g_{t-m}`` with m up to D.

Two artifacts here:

* :class:`AsyncOneFOneBSchedule` — a 1F1B schedule whose steps are NOT
  separated by a flush barrier: step k+1's forwards may start while step
  k's backwards drain, eliminating startup/teardown bubbles in steady
  state.  Used to quantify the utilization an async scheme recovers and
  what PipeFisher matches *without* giving up synchronous semantics.
* :func:`stale_gradient_descent` — the C.1 update rule on a quadratic, to
  exhibit the convergence degradation staleness causes (why the paper
  stays synchronous).
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.schedules import OneFOneBSchedule
from repro.pipeline.work import Task, WorkKind


class AsyncOneFOneBSchedule(OneFOneBSchedule):
    """1F1B without the inter-step flush barrier.

    The per-step task graphs are chained only by per-stage weight-version
    order (a stage's step-k+1 forward waits for its *own* step-k backward
    of the same micro-batch slot, not for the global barrier), which is
    how PipeDream keeps every device busy.  Overhead/optimizer tasks run
    per device without synchronizing the others.
    """

    name = "async-1f1b"

    def build(self, steps: int = 1) -> list[Task]:
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        tasks: list[Task] = []
        for k in range(steps):
            step_tasks, _ = self._build_step(k, prev_barrier=None)
            # Drop the global barrier; chain step k+1's forward of
            # micro-batch m at stage s to step k's backward of the same
            # (m, s) — the weight-version dependency.
            step_tasks = [t for t in step_tasks if t.kind != WorkKind.BARRIER]
            if k > 0:
                for t in step_tasks:
                    if t.kind == WorkKind.FORWARD:
                        m, s = t.meta["micro_batch"], t.meta["stage"]
                        r = t.meta["replica"]
                        t.deps = t.deps + (f"B.{k - 1}.{r}.{m}.{s}",)
            tasks.extend(step_tasks)
        return tasks

    def _tail_tasks(self, step: int, body: list[Task]) -> list[Task]:
        """Async schemes update weights per device without a flush; model
        the optimizer as a zero-cost event (it overlaps compute)."""
        return []


def stale_gradient_descent(
    staleness: int,
    lr: float = 0.15,
    steps: int = 200,
    dim: int = 8,
    condition: float = 25.0,
    seed: int = 0,
) -> np.ndarray:
    """Gradient descent on an ill-conditioned quadratic with stale gradients.

    Returns the loss trajectory of ``theta_{t+1} = theta_t - lr * g_{t-m}``
    (Appendix C.1's async update) for staleness ``m``.  Staleness slows or
    destabilizes convergence — the cost PipeFisher avoids by filling
    bubbles with K-FAC work instead of stale gradient work.
    """
    if staleness < 0:
        raise ValueError(f"staleness must be >= 0, got {staleness}")
    rng = np.random.default_rng(seed)
    eigs = np.linspace(1.0, condition, dim)
    theta = rng.standard_normal(dim)
    history: list[np.ndarray] = []
    losses = []
    for _ in range(steps):
        losses.append(0.5 * float(np.sum(eigs * theta**2)))
        history.append(eigs * theta)  # gradient at the current iterate
        g = history[max(0, len(history) - 1 - staleness)]
        theta = theta - lr / condition * g
    return np.asarray(losses)
