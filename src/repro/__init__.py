"""PipeFisher reproduction (Osawa, Li & Hoefler, MLSys 2023).

A from-scratch Python implementation of pipeline-parallel LLM training
with K-FAC bubble filling: a NumPy autograd engine and BERT models, K-FAC
with its distributed execution schemes, a discrete-event simulator for
GPipe/1F1B/Chimera pipeline schedules, the PipeFisher automatic work
assignment, and the paper's performance model -- plus benchmarks
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro.pipefisher import run_pipefisher
    from repro.perfmodel import P100
    from repro.perfmodel.arch import BERT_BASE

    report = run_pipefisher(schedule="gpipe", arch=BERT_BASE, hardware=P100,
                            b_micro=32, depth=4, n_micro=4, layers_per_stage=3)
    print(report.baseline_utilization, report.pipefisher_utilization)
"""

__version__ = "1.0.0"

from repro import (
    data,
    extensions,
    kfac,
    models,
    nn,
    optim,
    perfmodel,
    pipefisher,
    pipeline,
    profiler,
    tensor,
    training,
)

__all__ = [
    "data",
    "extensions",
    "kfac",
    "models",
    "nn",
    "optim",
    "perfmodel",
    "pipefisher",
    "pipeline",
    "profiler",
    "tensor",
    "training",
    "__version__",
]
