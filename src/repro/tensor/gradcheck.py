"""Finite-difference gradient checking for the autograd engine.

Used by the test suite to validate every op's hand-written VJP against a
central-difference numerical Jacobian-vector product.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``."""
    target = inputs[wrt]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        target.data = base.reshape(target.shape).astype(np.float64)
        plus = float(np.sum(fn(*inputs).data))
        flat[i] = orig - eps
        target.data = base.reshape(target.shape).astype(np.float64)
        minus = float(np.sum(fn(*inputs).data))
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    target.data = base.reshape(target.shape).astype(np.float64)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-3,
    rtol: float = 5e-2,
    eps: float = 1e-3,
) -> bool:
    """Check autograd gradients of ``sum(fn(*inputs))`` for every input.

    Inputs are promoted to float64 for the check. Raises ``AssertionError``
    with a diagnostic on mismatch; returns True otherwise.
    """
    inputs = list(inputs)
    for t in inputs:
        t.data = t.data.astype(np.float64)

    out = fn(*inputs)
    out.sum().backward() if out.ndim > 0 else out.backward()
    analytic = [t.grad.copy() if t.grad is not None else None for t in inputs]
    for t in inputs:
        t.zero_grad()

    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        num = numerical_grad(fn, inputs, i, eps=eps)
        ana = analytic[i]
        assert ana is not None, f"input {i} got no analytic gradient"
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            worst = np.abs(ana - num).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{ana}\nnumerical:\n{num}"
            )
    return True
