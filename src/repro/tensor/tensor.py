"""The ``Tensor`` type: a NumPy array with a reverse-mode autodiff tape.

The design follows the classic define-by-run approach (as in PyTorch or
micrograd): every differentiable operation returns a new ``Tensor`` holding
references to its parents and a closure that maps the output gradient to
parent gradients.  Calling :meth:`Tensor.backward` topologically sorts the
recorded graph and accumulates gradients into ``.grad``.

All numerical work is vectorized NumPy; Python-level loops appear only over
graph nodes, never over array elements.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording (like ``torch.no_grad``)."""
    prev = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    NumPy broadcasting prepends singleton axes and stretches size-1 axes;
    the vector-Jacobian product of broadcasting is summation over exactly
    those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched singleton axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == np.float64 and dtype is None:
        # Default to float32 for parity with the paper's fp32 training.
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray``. Float data defaults to
        float32 (the paper trains in fp32 end to end; Appendix B.2).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: np.random.Generator | None = None, scale: float = 1.0,
              requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(
            (rng.standard_normal(shape) * scale).astype(np.float32),
            requires_grad=requires_grad,
        )

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph machinery -------------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], Sequence[np.ndarray | None]],
    ) -> "Tensor":
        """Create an op output, recording on the tape if grad is enabled."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if requires:
            return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)
        return Tensor(data)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
            if node._parents and node is not self:
                # Interior node gradients are transient unless retained.
                pass
        # Any leaves reached directly (no _backward) already accumulated above;
        # handle leaves that received gradient but were the root itself.
        if self._backward is None and self._parents == ():
            self.grad = grad if self.grad is None else self.grad

    # -- arithmetic ops --------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data
        a_shape, b_shape = self.shape, other.shape

        def backward(g: np.ndarray):
            return _unbroadcast(g, a_shape), _unbroadcast(g, b_shape)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(g: np.ndarray):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        out = a.data @ b.data

        def backward(g: np.ndarray):
            if b.data.ndim == 1:
                ga = np.outer(g, b.data) if a.data.ndim > 1 else g * b.data
                gb = a.data.T @ g if a.data.ndim > 1 else a.data * g
                return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return _unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape)

        return Tensor._make(out, (self, other), backward)

    # -- comparison (non-differentiable, returns plain arrays) -----------------

    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # -- shape ops ------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.shape
        return Tensor._make(
            self.data.reshape(shape), (self,), lambda g: (g.reshape(orig),)
        )

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inv = np.argsort(axes)
        return Tensor._make(
            self.data.transpose(axes), (self,), lambda g: (g.transpose(inv),)
        )

    def swapaxes(self, a: int, b: int) -> "Tensor":
        return Tensor._make(
            np.swapaxes(self.data, a, b), (self,), lambda g: (np.swapaxes(g, a, b),)
        )

    def __getitem__(self, idx) -> "Tensor":
        data = self.data[idx]
        shape = self.shape
        dtype = self.dtype

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).astype(self.dtype, copy=True),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    g_expanded = np.expand_dims(g_expanded, ax)
            return (np.broadcast_to(g_expanded, shape).astype(self.dtype, copy=True),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False):
        """Non-differentiable max (used for numerics, not objectives)."""
        return self.data.max(axis=axis, keepdims=keepdims)

    # -- elementwise math -------------------------------------------------------

    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor._make(out, (self,), lambda g: (g * out,))

    def log(self) -> "Tensor":
        return Tensor._make(np.log(self.data), (self,), lambda g: (g / self.data,))

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor._make(out, (self,), lambda g: (g * (0.5 / out),))

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return Tensor._make(out, (self,), lambda g: (g * (1.0 - out * out),))

    # -- hooks -------------------------------------------------------------------

    def with_grad_hook(self, hook: Callable[[np.ndarray], None]) -> "Tensor":
        """Identity op that calls ``hook(grad)`` when gradient flows through.

        This is the capture mechanism K-FAC uses to observe the error signal
        e_l = dL/d(layer output) without modifying the layer computation
        (the analogue of PyTorch's ``register_full_backward_hook``).
        """

        def backward(g: np.ndarray):
            hook(g)
            return (g,)

        return Tensor._make(self.data, (self,), backward)


def stack_tensors(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tuple(tensors), backward)
