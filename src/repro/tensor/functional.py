"""Composite and fused differentiable operations.

These are the NN-facing ops: softmax, layer normalization, embedding
lookup, dropout, GELU, and a fused softmax-cross-entropy.  Each is a single
tape node with a hand-derived vector-Jacobian product, which keeps the
graph small and the backward pass close to BLAS speed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise (broadcasting) addition."""
    return a + b


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product (batched via NumPy semantics)."""
    return a @ b


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = x.data > 0
    return Tensor._make(np.where(mask, x.data, 0.0), (x,), lambda g: (g * mask,))


_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT).

    gelu(x) = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
    """
    xd = x.data
    inner = _SQRT_2_OVER_PI * (xd + np.float32(0.044715) * xd**3)
    t = np.tanh(inner)
    out = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray):
        sech2 = 1.0 - t * t
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3.0 * np.float32(0.044715) * xd**2)
        grad = 0.5 * (1.0 + t) + 0.5 * xd * sech2 * d_inner
        return (g * grad,)

    return Tensor._make(out.astype(xd.dtype), (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    soft = np.exp(out)

    def backward(g: np.ndarray):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-12) -> Tensor:
    """Layer normalization over the last axis with affine parameters.

    Uses BERT's default ``eps=1e-12``.
    """
    xd = x.data
    mu = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mu) * inv_std
    out = x_hat * weight.data + bias.data
    n = xd.shape[-1]

    def backward(g: np.ndarray):
        g_xhat = g * weight.data
        # Standard layernorm VJP over the normalized axis.
        gx = (
            inv_std
            / n
            * (
                n * g_xhat
                - g_xhat.sum(axis=-1, keepdims=True)
                - x_hat * (g_xhat * x_hat).sum(axis=-1, keepdims=True)
            )
        )
        axes = tuple(range(g.ndim - 1))
        gw = (g * x_hat).sum(axis=axes)
        gb = g.sum(axis=axes)
        return gx.astype(xd.dtype), gw.astype(xd.dtype), gb.astype(xd.dtype)

    return Tensor._make(out.astype(xd.dtype), (x, weight, bias), backward)


def embedding(table: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``table[ids]`` with scatter-add backward.

    Parameters
    ----------
    table:
        ``(vocab, dim)`` parameter tensor.
    ids:
        Integer index array of any shape; output has shape ``ids.shape + (dim,)``.
    """
    ids = np.asarray(ids)
    out = table.data[ids]
    vocab, dim = table.shape

    def backward(g: np.ndarray):
        grad = np.zeros((vocab, dim), dtype=table.dtype)
        np.add.at(grad, ids.reshape(-1), g.reshape(-1, dim))
        return (grad,)

    return Tensor._make(out, (table,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p`` and rescale by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / np.float32(keep)
    return Tensor._make(x.data * mask, (x,), lambda g: (g * mask,))


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``cond ? a : b`` (cond is a plain bool array)."""
    cond = np.asarray(cond)
    out = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        ga = _unbroadcast(np.where(cond, g, 0.0), a.shape)
        gb = _unbroadcast(np.where(cond, 0.0, g), b.shape)
        return ga.astype(a.dtype), gb.astype(b.dtype)

    return Tensor._make(out, (a, b), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along an existing axis (differentiable)."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Fused softmax + negative log likelihood.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalized scores.
    targets:
        ``(N,)`` integer class labels.
    ignore_index:
        Label value whose positions contribute zero loss and zero gradient
        (the MLM convention for unmasked positions).
    reduction:
        ``"mean"`` (over non-ignored positions) or ``"sum"``.
    """
    if reduction not in ("mean", "sum"):
        raise ValueError(f"unknown reduction {reduction!r}")
    targets = np.asarray(targets).reshape(-1)
    ld = logits.data
    if ld.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits (N, C)")
    n = ld.shape[0]

    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones(n, dtype=bool)
    count = max(int(valid.sum()), 1)

    shifted = ld - ld.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - logsumexp

    safe_targets = np.where(valid, targets, 0)
    nll = -logp[np.arange(n), safe_targets]
    nll = np.where(valid, nll, 0.0)
    total = nll.sum()
    loss = total / count if reduction == "mean" else total

    def backward(g: np.ndarray):
        softmax_probs = np.exp(logp)
        grad = softmax_probs.copy()
        grad[np.arange(n), safe_targets] -= 1.0
        grad[~valid] = 0.0
        scale = float(g) / count if reduction == "mean" else float(g)
        return (grad * scale,)

    return Tensor._make(np.asarray(loss, dtype=ld.dtype), (logits,), backward)
