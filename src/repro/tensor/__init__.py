"""Reverse-mode automatic differentiation on NumPy arrays.

This package is the lowest substrate of the reproduction: the paper uses
PyTorch autograd to obtain per-layer activations and error signals for
K-FAC; here we provide the same capability from scratch on NumPy.

Public API
----------
``Tensor``
    The differentiable array type.
``no_grad``
    Context manager disabling tape recording.
Functional ops are exposed from :mod:`repro.tensor.functional`.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.functional import (
    add,
    concatenate,
    cross_entropy,
    dropout,
    embedding,
    gelu,
    layer_norm,
    log_softmax,
    matmul,
    relu,
    softmax,
    tanh,
    where,
)
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "add",
    "concatenate",
    "cross_entropy",
    "dropout",
    "embedding",
    "gelu",
    "layer_norm",
    "log_softmax",
    "matmul",
    "relu",
    "softmax",
    "tanh",
    "where",
    "gradcheck",
]
