"""Golden-file encoding, IO, and per-value diffing.

One implementation shared by the three golden flows:

* the pytest regression layer (``tests/experiments/test_goldens.py``)
  encodes payloads with :func:`exact_encode` and compares committed JSON;
* ``repro campaign regen-goldens`` (and its legacy alias, the
  ``REPRO_REGEN_GOLDENS=1`` env var) writes goldens via
  :func:`write_golden`, so both paths produce identical bytes;
* ``repro campaign diff`` decodes a committed golden and walks it
  against a payload rebuilt from run-DB values, printing per-value
  deltas via :func:`diff_payloads`.

Floats are stored as ``float.hex()`` strings, so every comparison is
bit-exact rather than approximate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path


def golden_dir() -> Path:
    """The committed golden directory (override: ``REPRO_GOLDEN_DIR``)."""
    env = os.environ.get("REPRO_GOLDEN_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "experiments" / "goldens"


def exact_encode(value):
    """Recursively replace floats with their hex form (bit-exact in JSON)."""
    if isinstance(value, bool) or isinstance(value, int) or value is None:
        return value
    if isinstance(value, float):
        return {"float": value.hex()}
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        return {"dict": [[exact_encode(k), exact_encode(v)]
                         for k, v in value.items()]}
    if isinstance(value, (list, tuple)):
        return [exact_encode(v) for v in value]
    raise TypeError(f"cannot golden-encode {type(value).__name__}: {value!r}")


def exact_decode(encoded):
    """Invert :func:`exact_encode` (hex floats back to floats, etc.)."""
    if isinstance(encoded, dict):
        if set(encoded) == {"float"}:
            return float.fromhex(encoded["float"])
        if set(encoded) == {"dict"}:
            return {exact_decode(k): exact_decode(v)
                    for k, v in encoded["dict"]}
        raise ValueError(f"unrecognized golden encoding: {encoded!r}")
    if isinstance(encoded, list):
        return [exact_decode(v) for v in encoded]
    return encoded


def golden_path(name: str) -> Path:
    return golden_dir() / f"{name}.json"


def read_golden(name: str):
    """The committed *encoded* payload for ``name`` (None if missing)."""
    path = golden_path(name)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_golden(name: str, payload) -> Path:
    """Encode and write ``payload`` as the committed golden for ``name``."""
    path = golden_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(exact_encode(payload), indent=1, sort_keys=False) + "\n")
    return path


@dataclass(frozen=True)
class GoldenDelta:
    """One diverging value between a golden and a recomputed payload."""

    path: str          #: e.g. "[3][1][0]" — index path into the payload
    expected: object   #: decoded golden value (None if missing)
    actual: object     #: decoded recomputed value (None if missing)

    def describe(self) -> str:
        if isinstance(self.expected, float) and isinstance(self.actual, float):
            abs_d = self.actual - self.expected
            rel = abs_d / self.expected if self.expected else float("inf")
            return (f"{self.path}: golden {self.expected!r} != "
                    f"actual {self.actual!r} (delta {abs_d:+.3e}, "
                    f"rel {rel:+.3e})")
        return f"{self.path}: golden {self.expected!r} != actual {self.actual!r}"


def diff_payloads(expected_encoded, actual_payload, max_deltas: int = 0,
                  rtol: float = 0.0, atol: float = 0.0):
    """Per-value deltas between a committed golden and a fresh payload.

    ``expected_encoded`` is the committed (hex-float) form;
    ``actual_payload`` is a plain python payload, encoded here.  Returns
    a list of :class:`GoldenDelta` (empty means identical).

    With ``rtol``/``atol`` non-zero, a float pair agreeing within
    ``atol + rtol * |expected|`` is not a delta.  The tolerance applies
    *only* to float-vs-float leaves — structure, strings, ints, and every
    other deterministic value stay exact regardless (the default 0.0/0.0
    is the bit-exact comparison the regression layer uses).
    """
    if rtol < 0.0 or atol < 0.0:
        raise ValueError(f"rtol/atol must be >= 0, got {rtol!r}/{atol!r}")
    deltas: list[GoldenDelta] = []
    _walk(expected_encoded, exact_encode(actual_payload), "", deltas,
          rtol, atol)
    if max_deltas and len(deltas) > max_deltas:
        return deltas[:max_deltas]
    return deltas


def _decoded(encoded):
    try:
        return exact_decode(encoded)
    except (ValueError, TypeError):
        return encoded


def _floats_close(exp, act, rtol: float, atol: float) -> bool:
    if rtol == 0.0 and atol == 0.0:
        return False
    e, a = _decoded(exp), _decoded(act)
    if not isinstance(e, float) or not isinstance(a, float):
        return False
    return abs(a - e) <= atol + rtol * abs(e)


def _walk(exp, act, path: str, out: list,
          rtol: float = 0.0, atol: float = 0.0) -> None:
    if exp == act:
        return
    if isinstance(exp, dict) and isinstance(act, dict):
        if set(exp) == {"float"} or set(act) == {"float"}:
            if not _floats_close(exp, act, rtol, atol):
                out.append(
                    GoldenDelta(path or "$", _decoded(exp), _decoded(act)))
            return
        if set(exp) == {"dict"} and set(act) == {"dict"}:
            _walk(exp["dict"], act["dict"], path + ".dict", out, rtol, atol)
            return
    if isinstance(exp, list) and isinstance(act, list):
        n = max(len(exp), len(act))
        for i in range(n):
            e = exp[i] if i < len(exp) else None
            a = act[i] if i < len(act) else None
            _walk(e, a, f"{path}[{i}]", out, rtol, atol)
        return
    out.append(GoldenDelta(path or "$", _decoded(exp), _decoded(act)))


def count_values(encoded) -> int:
    """Number of leaf values in an encoded payload (for diff reporting)."""
    if isinstance(encoded, dict):
        if set(encoded) == {"float"}:
            return 1
        if set(encoded) == {"dict"}:
            return count_values(encoded["dict"])
        return sum(count_values(v) for v in encoded.values())
    if isinstance(encoded, list):
        return sum(count_values(v) for v in encoded)
    return 1
