"""Validated, serializable campaign specifications.

A :class:`CampaignSpec` declares an experiment campaign *as data*: a grid
of parameter axes (arch x hardware x schedule x depth x n_micro x
b_micro x ...), optional explicit units for non-product campaigns, seeds,
the derived artifacts (figure series, table rows, BENCH emissions), and
the golden binding — everything the campaign runner needs, with no
imperative wiring.  Specs round-trip through JSON (``to_dict`` /
``from_dict``), so a campaign can be stored, shipped to a worker, or
diffed like any other config file.

Every expanded unit is addressable by a **canonical point hash**
(:func:`unit_key`): the SHA-256 of the canonical JSON encoding of its
``(kind, params)`` pair.  The hash is what the run DB keys records by, so
resume and shard-merge semantics never depend on expansion order or on
the python process that produced a record.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields
from functools import cached_property


class CampaignValidationError(ValueError):
    """A campaign spec failed validation."""


#: Parameter values must be JSON scalars — they feed the canonical hash.
_SCALARS = (str, int, float, bool, type(None))


def _check_scalar(context: str, value) -> None:
    if isinstance(value, bool) or value is None:
        return
    if isinstance(value, _SCALARS):
        return
    raise CampaignValidationError(
        f"{context}: values must be JSON scalars (str/int/float/bool/None), "
        f"got {type(value).__name__}: {value!r}"
    )


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def unit_key(kind: str, params: dict) -> str:
    """The canonical point hash addressing one unit of work.

    Stable across processes, python versions, and expansion order: it
    hashes only the unit's *content* (kind + canonicalized params), never
    the campaign that declared it, so identical points in two campaigns
    share an address.
    """
    digest = hashlib.sha256(
        canonical_json({"kind": kind, "params": params}).encode()
    ).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class UnitSpec:
    """One addressable execution unit: a kind plus canonical parameters."""

    kind: str
    #: Sorted ``(name, value)`` pairs — hashable and order-canonical.
    params: tuple

    def __post_init__(self):
        if not self.kind or not isinstance(self.kind, str):
            raise CampaignValidationError(f"unit kind must be a non-empty "
                                          f"string, got {self.kind!r}")
        names = [n for n, _ in self.params]
        if names != sorted(names):
            object.__setattr__(self, "params",
                               tuple(sorted(self.params)))
        if len(set(names)) != len(names):
            raise CampaignValidationError(
                f"duplicate parameter names in unit: {names}")
        for name, value in self.params:
            _check_scalar(f"unit param {name!r}", value)

    @classmethod
    def make(cls, kind: str, **params) -> "UnitSpec":
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def params_dict(self) -> dict:
        return dict(self.params)

    @cached_property
    def key(self) -> str:
        # cached_property writes to __dict__ directly, which frozen
        # dataclasses permit — the hash is immutable once computed.
        return unit_key(self.kind, self.params_dict())


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment campaign.

    Units come from two (combinable) sources, expanded in declaration
    order by :meth:`units`:

    * ``fixed`` + ``grid``: the cartesian product of the grid axes (last
      axis varies fastest, matching the nested-loop order of the
      imperative experiments this layer replaced), every point sharing
      the fixed parameters and the default ``kind``;
    * ``explicit_units``: literal :class:`UnitSpec` entries, for
      campaigns whose points are not a pure product (e.g. the
      interleaved sweep, whose ``layers_per_stage`` is derived per row).

    ``seeds``, when non-empty, multiplies every unit by a trailing
    ``seed`` axis.  ``golden`` names the file under
    ``tests/experiments/goldens/`` the campaign's values are diffable
    against; ``artifacts`` documents what the campaign derives (figure
    series, table rows, BENCH emissions) for ``campaign list``.
    """

    name: str
    title: str
    kind: str | None = None
    fixed: tuple = ()          #: sorted (name, value) pairs
    grid: tuple = ()           #: (axis, (values...)) pairs, order = loop order
    explicit_units: tuple = ()
    seeds: tuple = ()
    golden: str | None = None
    artifacts: tuple = ()
    description: str = ""

    def __post_init__(self):
        self.validate()

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        if not self.name or not self.name.replace("_", "").replace(
                "-", "").isalnum():
            raise CampaignValidationError(
                f"campaign name must be a [-_a-zA-Z0-9]+ slug, "
                f"got {self.name!r}")
        if not self.title:
            raise CampaignValidationError(f"{self.name}: title is required")
        fixed_names = [n for n, _ in self.fixed]
        if fixed_names != sorted(fixed_names):
            object.__setattr__(self, "fixed", tuple(sorted(self.fixed)))
            fixed_names = sorted(fixed_names)
        for name, value in self.fixed:
            _check_scalar(f"{self.name}: fixed param {name!r}", value)
        axis_names = [axis for axis, _ in self.grid]
        if len(set(axis_names)) != len(axis_names):
            raise CampaignValidationError(
                f"{self.name}: duplicate grid axes {axis_names}")
        overlap = set(axis_names) & set(fixed_names)
        if overlap:
            raise CampaignValidationError(
                f"{self.name}: params both fixed and swept: {sorted(overlap)}")
        for axis, values in self.grid:
            if not isinstance(values, tuple) or not values:
                raise CampaignValidationError(
                    f"{self.name}: grid axis {axis!r} needs a non-empty "
                    f"tuple of values, got {values!r}")
            for v in values:
                _check_scalar(f"{self.name}: grid axis {axis!r}", v)
            if len(set(values)) != len(values):
                raise CampaignValidationError(
                    f"{self.name}: grid axis {axis!r} repeats values")
        if (self.grid or self.fixed) and self.kind is None:
            raise CampaignValidationError(
                f"{self.name}: grid/fixed campaigns need a default unit kind")
        for u in self.explicit_units:
            if not isinstance(u, UnitSpec):
                raise CampaignValidationError(
                    f"{self.name}: explicit_units must be UnitSpec, "
                    f"got {type(u).__name__}")
        if not self.grid and not self.explicit_units and self.kind is None:
            raise CampaignValidationError(
                f"{self.name}: campaign declares no units")
        for s in self.seeds:
            if not isinstance(s, int) or isinstance(s, bool):
                raise CampaignValidationError(
                    f"{self.name}: seeds must be ints, got {s!r}")
        keys = [u.key for u in self.units()]
        if len(set(keys)) != len(keys):
            raise CampaignValidationError(
                f"{self.name}: expansion produced duplicate unit keys — "
                f"two declared points are identical")

    # -- expansion ----------------------------------------------------------------

    def units(self) -> tuple:
        """Expand to the campaign's addressable units, in canonical order."""
        out = []
        if self.grid:
            axes = [axis for axis, _ in self.grid]
            for combo in itertools.product(*(v for _, v in self.grid)):
                params = dict(self.fixed)
                params.update(zip(axes, combo))
                out.append(UnitSpec.make(self.kind, **params))
        elif self.kind is not None and not self.explicit_units:
            # A kind with no grid is a single-unit campaign (fig4, table3).
            out.append(UnitSpec.make(self.kind, **dict(self.fixed)))
        out.extend(self.explicit_units)
        if self.seeds:
            out = [
                UnitSpec.make(u.kind, **{**u.params_dict(), "seed": seed})
                for u in out
                for seed in self.seeds
            ]
        return tuple(out)

    def unit_keys(self) -> tuple:
        return tuple(u.key for u in self.units())

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "fixed": [list(p) for p in self.fixed],
            "grid": [[axis, list(values)] for axis, values in self.grid],
            "explicit_units": [
                {"kind": u.kind, "params": [list(p) for p in u.params]}
                for u in self.explicit_units
            ],
            "seeds": list(self.seeds),
            "golden": self.golden,
            "artifacts": list(self.artifacts),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CampaignValidationError(
                f"unknown campaign fields: {sorted(unknown)}")
        return cls(
            name=data["name"],
            title=data["title"],
            kind=data.get("kind"),
            fixed=tuple((n, v) for n, v in data.get("fixed", ())),
            grid=tuple((axis, tuple(values))
                       for axis, values in data.get("grid", ())),
            explicit_units=tuple(
                UnitSpec(kind=u["kind"],
                         params=tuple((n, v) for n, v in u["params"]))
                for u in data.get("explicit_units", ())
            ),
            seeds=tuple(data.get("seeds", ())),
            golden=data.get("golden"),
            artifacts=tuple(data.get("artifacts", ())),
            description=data.get("description", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))
