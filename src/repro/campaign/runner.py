"""The campaign runner: expand a spec, execute units, persist, resume.

:class:`CampaignRunner` turns a :class:`~repro.campaign.spec.CampaignSpec`
into executed units through the shared sweep engine:

* **ephemeral mode** (``run_dir=None``) — every unit executes in-process
  and the live result objects are kept; this is the path the thin
  ``run_fig*`` experiment wrappers use, so their outputs are
  bit-identical to the pre-campaign imperative loops (same calls, same
  order, same engine);
* **persistent mode** (``run_dir=...``) — each completed unit is
  recorded in the append-only run DB with its serialized value, elapsed
  time, and the sweep-engine cache-counter deltas it caused.  A resumed
  run skips every recorded-done unit without re-executing it, and
  ``shard=(i, n)`` restricts execution to every n-th unit so workers
  can split one campaign across processes and merge their DBs.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.rundb import DONE, FAILED, RunDB, merge_run_dbs
from repro.campaign.spec import CampaignSpec, CampaignValidationError, UnitSpec
from repro.campaign.units import UnitContext, get_unit_kind

#: Scalar sweep-engine counters surfaced per unit record.
_ENGINE_COUNTERS = ("runs", "timing_hits", "rescales", "reexecutions",
                    "native_evals", "delta_retimes", "batched_points",
                    "mc_batched_replicates", "mc_faulty_batched")
#: BoundedCache counters surfaced per unit record, per cache.
_CACHE_COUNTERS = ("hits", "misses", "evictions")
_CACHES = ("templates", "stage_costs")


def _engine_counters(engine) -> dict:
    """A flat snapshot of the engine's evaluation + cache counters.

    Includes the per-phase wall-clock attribution as ``phase_<name>_s``
    keys, so each unit record (and ``campaign status``) can say where a
    campaign's time went.
    """
    stats = engine.stats()
    flat = {name: stats.get(name, 0) for name in _ENGINE_COUNTERS}
    for cache in _CACHES:
        cs = stats[cache]
        for c in _CACHE_COUNTERS:
            flat[f"{cache}_{c}"] = getattr(cs, c)
    for phase, seconds in stats.get("phase_s", {}).items():
        flat[f"phase_{phase}_s"] = seconds
    return flat


def _counter_delta(before: dict, after: dict) -> dict:
    return {k: after[k] - before[k] for k in after}


def parse_shard(text: str) -> tuple:
    """Parse a 1-based ``i/n`` shard selector into 0-based ``(i, n)``."""
    try:
        i_str, n_str = text.split("/")
        i, n = int(i_str), int(n_str)
    except ValueError:
        raise CampaignValidationError(
            f"shard must look like '1/3', got {text!r}") from None
    if n < 1 or not 1 <= i <= n:
        raise CampaignValidationError(
            f"shard index out of range: {text!r} (need 1 <= i <= n)")
    return i - 1, n


def shard_units(units, shard: tuple) -> list:
    """The (unit, index) pairs assigned to 0-based shard ``(i, n)``.

    Assignment is round-robin on the canonical unit order, so the n
    shard sets are disjoint and their union is the full campaign —
    independent of which worker runs which shard.
    """
    i, n = shard
    return [(u, j) for j, u in enumerate(units) if j % n == i]


@dataclass
class CampaignResult:
    """What one ``CampaignRunner.run`` produced."""

    spec: CampaignSpec
    #: key -> full record dict (executed this run or reused from the DB).
    records: dict = field(default_factory=dict)
    #: key -> live result object (None for units reused from the run DB).
    objects: dict = field(default_factory=dict)
    executed: list = field(default_factory=list)  #: keys run this time
    reused: list = field(default_factory=list)    #: keys served from the DB
    elapsed_s: float = 0.0
    engine_delta: dict = field(default_factory=dict)

    def values(self) -> dict:
        """``{key: serialized value}`` for every completed unit."""
        return {k: r["value"] for k, r in self.records.items()
                if r.get("status") == DONE}

    def object_list(self) -> list:
        """Live objects in canonical unit order (ephemeral runs only)."""
        return [self.objects[u.key] for u in self.spec.units()]

    @property
    def resume_hit_rate(self) -> float:
        total = len(self.executed) + len(self.reused)
        return len(self.reused) / total if total else 0.0

    def summary(self) -> dict:
        return {
            "campaign": self.spec.name,
            "units": len(self.records),
            "executed": len(self.executed),
            "reused": len(self.reused),
            "resume_hit_rate": self.resume_hit_rate,
            "elapsed_s": self.elapsed_s,
            "units_per_s": (len(self.executed) / self.elapsed_s
                            if self.elapsed_s > 0 else 0.0),
            "engine": dict(self.engine_delta),
        }


class CampaignRunner:
    """Execute campaign specs through one shared sweep engine."""

    def __init__(self, engine=None, run_dir=None) -> None:
        if engine is None:
            from repro.sweep.engine import default_engine

            engine = default_engine()
        self.engine = engine
        self.run_dir = run_dir

    def run(
        self,
        spec: CampaignSpec,
        shard: tuple = (0, 1),
        resume: bool = True,
        on_unit=None,
        jobs: int | None = None,
    ) -> CampaignResult:
        """Run (or resume) ``spec``, returning the completed state.

        ``on_unit(unit, record)`` is called after each unit completes or
        is reused — the CLI uses it for progress lines; tests use it as
        an execution spy.  Exceptions raised by a unit executor are
        recorded as ``failed`` in the run DB (so an interrupted campaign
        shows where it stopped) and re-raised.

        ``jobs=N`` (persistent mode only) splits the campaign into N
        round-robin shards, runs each in a worker process against its
        own copy of the run DB, merges the worker DBs back, and resumes
        serially to assemble the full result — the merged DB is
        bit-identical to a single-worker run's.
        """
        if jobs is not None and jobs > 1:
            return self._run_jobs(spec, shard=shard, resume=resume,
                                  on_unit=on_unit, jobs=jobs)
        db = RunDB.open(self.run_dir) if self.run_dir is not None else None
        if db is not None:
            db.bind(spec)
        ctx = UnitContext(engine=self.engine)
        result = CampaignResult(spec=spec)
        before_all = _engine_counters(self.engine)
        # Nothing but this loop touches the engine, so each unit's
        # "before" snapshot is the previous unit's "after" — one stats
        # call per unit, not two.
        before = before_all
        t0 = time.perf_counter()

        for unit, index in shard_units(spec.units(), shard):
            key = unit.key
            params = unit.params_dict()
            if db is not None and resume:
                prior = db.done(key)
                if prior is not None:
                    result.records[key] = prior
                    result.objects[key] = None
                    result.reused.append(key)
                    if on_unit is not None:
                        on_unit(unit, prior)
                    continue
            kind = get_unit_kind(unit.kind)
            started = time.perf_counter()
            try:
                obj = kind.execute(params, ctx)
            except Exception as exc:
                if db is not None:
                    db.append(self._record(
                        spec, unit, index, shard, status=FAILED,
                        value=None, elapsed=time.perf_counter() - started,
                        engine=_counter_delta(before,
                                              _engine_counters(self.engine)),
                        error=f"{type(exc).__name__}: {exc}",
                    ))
                raise
            after = _engine_counters(self.engine)
            record = self._record(
                spec, unit, index, shard, status=DONE,
                value=kind.serialize(obj, params),
                elapsed=time.perf_counter() - started,
                engine=_counter_delta(before, after),
            )
            before = after
            if db is not None:
                db.append(record)
            result.records[key] = record
            result.objects[key] = obj
            result.executed.append(key)
            if on_unit is not None:
                on_unit(unit, record)

        result.elapsed_s = time.perf_counter() - t0
        result.engine_delta = _counter_delta(
            before_all, _engine_counters(self.engine))
        return result

    def _run_jobs(self, spec: CampaignSpec, shard: tuple, resume: bool,
                  on_unit, jobs: int) -> CampaignResult:
        """Fan a persistent campaign out over ``jobs`` worker processes.

        Each worker runs one round-robin shard against a private run-DB
        copy seeded with the parent's completed units (so resume skips
        them); the parent merges the worker DBs back and replays the
        campaign serially from the merged DB to build the result.
        """
        from concurrent.futures import ProcessPoolExecutor

        if self.run_dir is None:
            raise CampaignValidationError(
                "jobs > 1 requires a run_dir (workers share state "
                "through the run DB)")
        if shard != (0, 1):
            raise CampaignValidationError(
                "jobs cannot be combined with an explicit shard")
        t0 = time.perf_counter()
        parent = Path(self.run_dir)
        db = RunDB.open(parent)
        db.bind(spec)
        worker_dirs = []
        for i in range(jobs):
            wd = parent / f"worker-{i + 1}"
            wd.mkdir(parents=True, exist_ok=True)
            for name in ("units.jsonl", "meta.json"):
                src = parent / name
                if src.exists():
                    shutil.copyfile(src, wd / name)
                elif (wd / name).exists():
                    (wd / name).unlink()
            worker_dirs.append(wd)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_shard_worker, spec, (i, jobs), str(wd), resume)
                for i, wd in enumerate(worker_dirs)
            ]
            outcomes = [f.result() for f in futures]
        merge_run_dbs([str(wd) for wd in worker_dirs], str(parent))

        # Serial resume over the merged DB: every unit is now done, so
        # this pass only assembles records (and fires on_unit) in
        # canonical order without re-executing anything.
        result = self.run(spec, resume=True, on_unit=on_unit)
        executed = [key for keys, _ in outcomes for key in keys]
        executed_set = set(executed)
        result.executed = executed
        result.reused = [k for k in result.reused if k not in executed_set]
        delta = dict(result.engine_delta)
        for _, worker_delta in outcomes:
            for k, v in worker_delta.items():
                delta[k] = delta.get(k, 0) + v
        result.engine_delta = delta
        result.elapsed_s = time.perf_counter() - t0
        return result

    @staticmethod
    def _record(spec: CampaignSpec, unit: UnitSpec, index: int, shard: tuple,
                status: str, value, elapsed: float, engine: dict,
                error: str | None = None) -> dict:
        rec = {
            "key": unit.key,
            "campaign": spec.name,
            "kind": unit.kind,
            "params": unit.params_dict(),
            "index": index,
            "shard": [shard[0] + 1, shard[1]],
            "status": status,
            "value": value,
            "elapsed_s": elapsed,
            "engine": engine,
        }
        if error is not None:
            rec["error"] = error
        return rec


def _shard_worker(spec: CampaignSpec, shard: tuple, run_dir: str,
                  resume: bool) -> tuple:
    """Run one shard of ``spec`` in a worker process.

    Module-level so the pool pickles it by reference.  Returns the
    executed unit keys plus the engine-counter delta this shard caused,
    for the parent to fold into the merged result.

    A fresh subprocess only has the generic unit kinds registered at
    import time; specs carrying experiment kinds (``stochastic``,
    ``fig8_lr``, ...) need the full registry, so load it here exactly
    like the parent process does.
    """
    from repro.campaign.registry import load_builtin_campaigns
    from repro.sweep.engine import SweepEngine

    load_builtin_campaigns()
    runner = CampaignRunner(engine=SweepEngine(), run_dir=run_dir)
    result = runner.run(spec, shard=shard, resume=resume)
    return result.executed, result.engine_delta
