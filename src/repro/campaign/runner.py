"""The campaign runner: expand a spec, execute units, persist, resume.

:class:`CampaignRunner` turns a :class:`~repro.campaign.spec.CampaignSpec`
into executed units through the shared sweep engine:

* **ephemeral mode** (``run_dir=None``) — every unit executes in-process
  and the live result objects are kept; this is the path the thin
  ``run_fig*`` experiment wrappers use, so their outputs are
  bit-identical to the pre-campaign imperative loops (same calls, same
  order, same engine);
* **persistent mode** (``run_dir=...``) — each completed unit is
  recorded in the append-only run DB with its serialized value, elapsed
  time, and the sweep-engine cache-counter deltas it caused.  A resumed
  run skips every recorded-done unit without re-executing it, and
  ``shard=(i, n)`` restricts execution to every n-th unit so workers
  can split one campaign across processes and merge their DBs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.campaign.rundb import DONE, FAILED, RunDB
from repro.campaign.spec import CampaignSpec, CampaignValidationError, UnitSpec
from repro.campaign.units import UnitContext, get_unit_kind

#: Scalar sweep-engine counters surfaced per unit record.
_ENGINE_COUNTERS = ("runs", "timing_hits", "rescales", "reexecutions")
#: BoundedCache counters surfaced per unit record, per cache.
_CACHE_COUNTERS = ("hits", "misses", "evictions")
_CACHES = ("templates", "stage_costs")


def _engine_counters(engine) -> dict:
    """A flat snapshot of the engine's evaluation + cache counters."""
    stats = engine.stats()
    flat = {name: stats[name] for name in _ENGINE_COUNTERS}
    for cache in _CACHES:
        cs = stats[cache]
        for c in _CACHE_COUNTERS:
            flat[f"{cache}_{c}"] = getattr(cs, c)
    return flat


def _counter_delta(before: dict, after: dict) -> dict:
    return {k: after[k] - before[k] for k in after}


def parse_shard(text: str) -> tuple:
    """Parse a 1-based ``i/n`` shard selector into 0-based ``(i, n)``."""
    try:
        i_str, n_str = text.split("/")
        i, n = int(i_str), int(n_str)
    except ValueError:
        raise CampaignValidationError(
            f"shard must look like '1/3', got {text!r}") from None
    if n < 1 or not 1 <= i <= n:
        raise CampaignValidationError(
            f"shard index out of range: {text!r} (need 1 <= i <= n)")
    return i - 1, n


def shard_units(units, shard: tuple) -> list:
    """The (unit, index) pairs assigned to 0-based shard ``(i, n)``.

    Assignment is round-robin on the canonical unit order, so the n
    shard sets are disjoint and their union is the full campaign —
    independent of which worker runs which shard.
    """
    i, n = shard
    return [(u, j) for j, u in enumerate(units) if j % n == i]


@dataclass
class CampaignResult:
    """What one ``CampaignRunner.run`` produced."""

    spec: CampaignSpec
    #: key -> full record dict (executed this run or reused from the DB).
    records: dict = field(default_factory=dict)
    #: key -> live result object (None for units reused from the run DB).
    objects: dict = field(default_factory=dict)
    executed: list = field(default_factory=list)  #: keys run this time
    reused: list = field(default_factory=list)    #: keys served from the DB
    elapsed_s: float = 0.0
    engine_delta: dict = field(default_factory=dict)

    def values(self) -> dict:
        """``{key: serialized value}`` for every completed unit."""
        return {k: r["value"] for k, r in self.records.items()
                if r.get("status") == DONE}

    def object_list(self) -> list:
        """Live objects in canonical unit order (ephemeral runs only)."""
        return [self.objects[u.key] for u in self.spec.units()]

    @property
    def resume_hit_rate(self) -> float:
        total = len(self.executed) + len(self.reused)
        return len(self.reused) / total if total else 0.0

    def summary(self) -> dict:
        return {
            "campaign": self.spec.name,
            "units": len(self.records),
            "executed": len(self.executed),
            "reused": len(self.reused),
            "resume_hit_rate": self.resume_hit_rate,
            "elapsed_s": self.elapsed_s,
            "units_per_s": (len(self.executed) / self.elapsed_s
                            if self.elapsed_s > 0 else 0.0),
            "engine": dict(self.engine_delta),
        }


class CampaignRunner:
    """Execute campaign specs through one shared sweep engine."""

    def __init__(self, engine=None, run_dir=None) -> None:
        if engine is None:
            from repro.sweep.engine import default_engine

            engine = default_engine()
        self.engine = engine
        self.run_dir = run_dir

    def run(
        self,
        spec: CampaignSpec,
        shard: tuple = (0, 1),
        resume: bool = True,
        on_unit=None,
    ) -> CampaignResult:
        """Run (or resume) ``spec``, returning the completed state.

        ``on_unit(unit, record)`` is called after each unit completes or
        is reused — the CLI uses it for progress lines; tests use it as
        an execution spy.  Exceptions raised by a unit executor are
        recorded as ``failed`` in the run DB (so an interrupted campaign
        shows where it stopped) and re-raised.
        """
        db = RunDB.open(self.run_dir) if self.run_dir is not None else None
        if db is not None:
            db.bind(spec)
        ctx = UnitContext(engine=self.engine)
        result = CampaignResult(spec=spec)
        before_all = _engine_counters(self.engine)
        # Nothing but this loop touches the engine, so each unit's
        # "before" snapshot is the previous unit's "after" — one stats
        # call per unit, not two.
        before = before_all
        t0 = time.perf_counter()

        for unit, index in shard_units(spec.units(), shard):
            key = unit.key
            params = unit.params_dict()
            if db is not None and resume:
                prior = db.done(key)
                if prior is not None:
                    result.records[key] = prior
                    result.objects[key] = None
                    result.reused.append(key)
                    if on_unit is not None:
                        on_unit(unit, prior)
                    continue
            kind = get_unit_kind(unit.kind)
            started = time.perf_counter()
            try:
                obj = kind.execute(params, ctx)
            except Exception as exc:
                if db is not None:
                    db.append(self._record(
                        spec, unit, index, shard, status=FAILED,
                        value=None, elapsed=time.perf_counter() - started,
                        engine=_counter_delta(before,
                                              _engine_counters(self.engine)),
                        error=f"{type(exc).__name__}: {exc}",
                    ))
                raise
            after = _engine_counters(self.engine)
            record = self._record(
                spec, unit, index, shard, status=DONE,
                value=kind.serialize(obj, params),
                elapsed=time.perf_counter() - started,
                engine=_counter_delta(before, after),
            )
            before = after
            if db is not None:
                db.append(record)
            result.records[key] = record
            result.objects[key] = obj
            result.executed.append(key)
            if on_unit is not None:
                on_unit(unit, record)

        result.elapsed_s = time.perf_counter() - t0
        result.engine_delta = _counter_delta(
            before_all, _engine_counters(self.engine))
        return result

    @staticmethod
    def _record(spec: CampaignSpec, unit: UnitSpec, index: int, shard: tuple,
                status: str, value, elapsed: float, engine: dict,
                error: str | None = None) -> dict:
        rec = {
            "key": unit.key,
            "campaign": spec.name,
            "kind": unit.kind,
            "params": unit.params_dict(),
            "index": index,
            "shard": [shard[0] + 1, shard[1]],
            "status": status,
            "value": value,
            "elapsed_s": elapsed,
            "engine": engine,
        }
        if error is not None:
            rec["error"] = error
        return rec
