"""The persistent campaign run DB: append-only JSONL under a run dir.

Layout of a run dir::

    <run_dir>/meta.json     # campaign name + full serialized spec
    <run_dir>/units.jsonl   # one record per executed unit, append-only

Each record is a self-contained JSON object keyed by the unit's canonical
point hash.  Appending is the only write operation, so a killed worker
leaves at most one truncated trailing line — which :meth:`RunDB.load`
tolerates — and never corrupts completed records.  The *last* record per
key wins, so a failed unit is retried by simply appending its successful
record later.  Shard workers write separate run dirs merged with
:func:`merge_run_dbs`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.spec import CampaignSpec, CampaignValidationError

#: Record statuses a unit can be in.
DONE = "done"
FAILED = "failed"

_FORMAT_VERSION = 1


def _ends_mid_line(path: Path) -> bool:
    """True when ``path`` is non-empty and lacks a trailing newline.

    Reads exactly one byte (a seek to the end) regardless of file size —
    appends must stay O(record), not O(file), over a long campaign.
    """
    with path.open("rb") as f:
        f.seek(0, os.SEEK_END)
        if f.tell() == 0:
            return False
        f.seek(-1, os.SEEK_END)
        return f.read(1) != b"\n"


def _write_meta(path: Path, meta: dict) -> None:
    """Write ``meta.json`` atomically (tmp file + rename).

    The units file heals truncation on the next append, but a
    half-written meta file would brick the run dir — so the content
    lands under a temporary name in the same directory and is moved
    into place with :func:`os.replace`, which is atomic on POSIX and
    Windows alike.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(meta, indent=1) + "\n")
    os.replace(tmp, path)


@dataclass
class RunDB:
    """One campaign's persistent unit records."""

    run_dir: Path
    records: dict = field(default_factory=dict)  #: key -> last record
    skipped_lines: int = 0  #: unparsable lines tolerated during load

    @classmethod
    def open(cls, run_dir) -> "RunDB":
        db = cls(run_dir=Path(run_dir))
        db.run_dir.mkdir(parents=True, exist_ok=True)
        db.reload()
        return db

    @property
    def units_path(self) -> Path:
        return self.run_dir / "units.jsonl"

    @property
    def meta_path(self) -> Path:
        return self.run_dir / "meta.json"

    # -- meta ---------------------------------------------------------------------

    def bind(self, spec: CampaignSpec) -> None:
        """Pin this run dir to ``spec`` (or check it already is).

        A run dir belongs to exactly one campaign spec; resuming with a
        different spec would silently mix incompatible unit sets, so the
        mismatch is an error rather than a merge.
        """
        meta = self.read_meta()
        if meta is None:
            _write_meta(self.meta_path, {
                "format_version": _FORMAT_VERSION,
                "campaign": spec.name,
                "spec": spec.to_dict(),
            })
            return
        if meta.get("campaign") != spec.name:
            raise CampaignValidationError(
                f"run dir {self.run_dir} belongs to campaign "
                f"{meta.get('campaign')!r}, not {spec.name!r}")
        if meta.get("spec") != spec.to_dict():
            raise CampaignValidationError(
                f"run dir {self.run_dir} was created from a different "
                f"{spec.name!r} spec; use a fresh run dir")

    def read_meta(self) -> dict | None:
        """The pinned campaign meta, or None when the dir is unbound.

        A corrupt or truncated ``meta.json`` is reported as a
        :class:`CampaignValidationError` naming the file — actionable
        (restore it or re-bind a fresh run dir) instead of an unhandled
        ``JSONDecodeError`` deep in a resume.
        """
        if not self.meta_path.exists():
            return None
        try:
            meta = json.loads(self.meta_path.read_text())
        except json.JSONDecodeError as exc:
            raise CampaignValidationError(
                f"corrupt campaign meta {self.meta_path}: {exc}; restore "
                f"the file or start a fresh run dir") from exc
        if not isinstance(meta, dict):
            raise CampaignValidationError(
                f"corrupt campaign meta {self.meta_path}: expected a JSON "
                f"object, got {type(meta).__name__}")
        return meta

    # -- records ------------------------------------------------------------------

    def reload(self) -> None:
        """(Re)read ``units.jsonl``, last record per key winning.

        A truncated trailing line (the footprint of a killed writer) is
        skipped and counted in :attr:`skipped_lines`, not an error.
        """
        self.records = {}
        self.skipped_lines = 0
        if not self.units_path.exists():
            return
        for line in self.units_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            if not isinstance(rec, dict) or "key" not in rec:
                self.skipped_lines += 1
                continue
            self.records[rec["key"]] = rec

    def append(self, record: dict) -> None:
        """Durably append one unit record and index it.

        If the file ends mid-line (a previous writer was killed during
        its final append), a newline is inserted first so the new record
        starts clean instead of fusing with the truncated fragment.
        """
        if "key" not in record:
            raise ValueError(f"record has no unit key: {record}")
        needs_newline = (self.units_path.exists()
                         and _ends_mid_line(self.units_path))
        with self.units_path.open("a") as f:
            if needs_newline:
                f.write("\n")
            f.write(json.dumps(record) + "\n")
            f.flush()
        self.records[record["key"]] = record

    def done(self, key: str) -> dict | None:
        """The completed record for ``key``, if any."""
        rec = self.records.get(key)
        return rec if rec is not None and rec.get("status") == DONE else None

    def values(self) -> dict:
        """``{key: value}`` for every completed unit."""
        return {k: r["value"] for k, r in self.records.items()
                if r.get("status") == DONE}

    def status_counts(self) -> dict:
        counts: dict[str, int] = {}
        for rec in self.records.values():
            counts[rec.get("status", "?")] = counts.get(
                rec.get("status", "?"), 0) + 1
        return counts


def merge_run_dbs(sources, dest) -> RunDB:
    """Merge shard run dirs into one DB (e.g. after ``--shard i/n`` runs).

    Completed records must not conflict: if two sources completed the
    same unit key with different values, the merge aborts — shards of one
    campaign are disjoint by construction, so a conflict means the
    sources came from different code or different specs.
    """
    srcs = [RunDB.open(s) for s in sources]
    metas = [db.read_meta() for db in srcs]
    out = RunDB.open(dest)
    base_meta = next((m for m in metas if m is not None), None)
    for m in metas:
        if m is not None and base_meta is not None and m != base_meta:
            raise CampaignValidationError(
                "cannot merge run DBs from different campaigns/specs")
    if base_meta is not None and out.read_meta() is None:
        _write_meta(out.meta_path, base_meta)
    for db in srcs:
        for key, rec in db.records.items():
            existing = out.records.get(key)
            if (existing is not None and existing.get("status") == DONE
                    and rec.get("status") == DONE
                    and existing["value"] != rec["value"]):
                raise CampaignValidationError(
                    f"merge conflict on unit {key}: sources recorded "
                    f"different values")
            if existing is None or existing.get("status") != DONE:
                out.append(rec)
    return out
