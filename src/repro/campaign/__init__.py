"""Declarative experiment campaigns: experiments-as-data.

The campaign layer replaces imperative per-figure experiment wiring with
validated data executed by one runner:

* :class:`CampaignSpec` (:mod:`repro.campaign.spec`) — a serializable
  declaration of grids, seeds, derived artifacts, and golden bindings;
  every expanded unit is addressable by a canonical point hash;
* :class:`CampaignRunner` (:mod:`repro.campaign.runner`) — executes
  units through the shared sweep engine with a persistent append-only
  run DB (:mod:`repro.campaign.rundb`), so interrupted campaigns resume
  without recomputation and shards merge into one result;
* the registry (:mod:`repro.campaign.registry`) — every experiment
  module registers its campaign; ``repro campaign list/run/status/diff``
  (:mod:`repro.campaign.cli`) drives them, and
  :mod:`repro.campaign.goldens` pins their values bit-exactly.
"""

from repro.campaign.goldens import (
    diff_payloads,
    exact_decode,
    exact_encode,
    read_golden,
    write_golden,
)
from repro.campaign.registry import (
    CampaignEntry,
    campaign_names,
    get_campaign,
    golden_payload,
    load_builtin_campaigns,
    register_campaign,
)
from repro.campaign.rundb import RunDB, merge_run_dbs
from repro.campaign.runner import CampaignResult, CampaignRunner, parse_shard
from repro.campaign.spec import (
    CampaignSpec,
    CampaignValidationError,
    UnitSpec,
    canonical_json,
    unit_key,
)
from repro.campaign.units import (
    UnitContext,
    UnitKind,
    get_unit_kind,
    perf_cell,
    pf_report_row,
    register_unit_kind,
    unit_kind_names,
)

__all__ = [
    "CampaignEntry",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignValidationError",
    "RunDB",
    "UnitContext",
    "UnitKind",
    "UnitSpec",
    "campaign_names",
    "canonical_json",
    "diff_payloads",
    "exact_decode",
    "exact_encode",
    "get_campaign",
    "get_unit_kind",
    "golden_payload",
    "load_builtin_campaigns",
    "merge_run_dbs",
    "parse_shard",
    "perf_cell",
    "pf_report_row",
    "read_golden",
    "register_campaign",
    "register_unit_kind",
    "unit_key",
    "unit_kind_names",
    "write_golden",
]
