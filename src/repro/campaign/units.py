"""The unit-kind registry: the execution vocabulary campaigns are written in.

A :class:`UnitKind` pairs an ``execute`` function (params -> live result
object, evaluated through the shared sweep engine) with a ``serialize``
function ((live object, params) -> JSON-safe value recorded in the run
DB).  The
two generic kinds every simulator campaign is built from live here:

* ``pipefisher`` — one :class:`~repro.pipefisher.runner.PipeFisherRun`
  point, evaluated through ``engine.run`` (or ``run.execute()`` when
  ``via_engine`` is false, preserving the exact pre-campaign execution
  path of the fig. 1/3 panels);
* ``perf_report`` — one §3.3 analytic :class:`PerfReport` cell, the unit
  of the fig. 5/6/9-16 grids.

Experiment-specific kinds (the fig. 7 training run, the fig. 8 LR
schedules, the table 3 architecture check) are registered by their
experiment modules — importing :mod:`repro.experiments` loads the full
vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class UnitKind:
    """One entry of the execution vocabulary."""

    name: str
    execute: Callable[[dict, "UnitContext"], Any]
    serialize: Callable[[Any, dict], Any]
    #: True when ``execute`` reads the ``seed`` param — specs that declare
    #: ``seeds`` over a kind that ignores them would silently run the same
    #: unit N times, so registration audits this (see registry.py).
    seed_aware: bool = False


@dataclass
class UnitContext:
    """Shared execution state handed to every unit executor."""

    engine: Any  #: the SweepEngine all units of a campaign run share


_KINDS: dict[str, UnitKind] = {}


def register_unit_kind(name: str,
                       execute: Callable[[dict, UnitContext], Any],
                       serialize: Callable[[Any, dict], Any],
                       replace: bool = False,
                       seed_aware: bool = False) -> UnitKind:
    if name in _KINDS and not replace:
        raise ValueError(f"unit kind {name!r} already registered")
    kind = UnitKind(name=name, execute=execute, serialize=serialize,
                    seed_aware=seed_aware)
    _KINDS[name] = kind
    return kind


def get_unit_kind(name: str) -> UnitKind:
    try:
        return _KINDS[name]
    except KeyError:
        raise KeyError(
            f"unknown unit kind {name!r}; registered: {sorted(_KINDS)}"
        ) from None


def unit_kind_names() -> list[str]:
    return sorted(_KINDS)


def kind_seed_aware(name: str) -> bool | None:
    """Whether a kind reads the seed param (None if not yet registered)."""
    kind = _KINDS.get(name)
    return None if kind is None else kind.seed_aware


# -- pipefisher: one simulated PipeFisherRun point ------------------------------


def _execute_pipefisher(params: dict, ctx: UnitContext):
    from repro.perfmodel.arch import ARCHITECTURES
    from repro.perfmodel.hardware import HARDWARE
    from repro.pipefisher.runner import PipeFisherRun

    p = dict(params)
    via_engine = p.pop("via_engine", True)
    p.pop("record_bubble", None)  # serializer-only knob
    if "n_micro_factor" in p:
        if "n_micro" in p:
            raise ValueError("give n_micro or n_micro_factor, not both")
        p["n_micro"] = p.pop("n_micro_factor") * p["depth"]
    run = PipeFisherRun(
        schedule=p.pop("schedule"),
        arch=ARCHITECTURES[p.pop("arch")],
        hardware=HARDWARE[p.pop("hardware")],
        **p,
    )
    return ctx.engine.run(run) if via_engine else run.execute()


def _serialize_pipefisher(report, params: dict):
    value = {
        "baseline_step_time": report.baseline_step_time,
        "baseline_utilization": report.baseline_utilization,
        "pipefisher_step_time": report.pipefisher_step_time,
        "pipefisher_utilization": report.pipefisher_utilization,
        "refresh_steps": report.refresh_steps,
        "device_refresh_steps": [
            [int(d), int(s)]
            for d, s in sorted(report.device_refresh_steps.items())
        ],
    }
    if params and params.get("record_bubble"):
        from repro.pipeline.bubbles import bubble_fraction

        value["baseline_bubble_fraction"] = bubble_fraction(
            report.base_template, (0.0, report.baseline_step_time)
        )
    return value


# -- perf_report: one §3.3 analytic grid cell -----------------------------------


def _execute_perf_report(params: dict, ctx: UnitContext):
    from repro.perfmodel.arch import ARCHITECTURES
    from repro.perfmodel.hardware import HARDWARE

    p = dict(params)
    model = ctx.engine.perf_model(
        ARCHITECTURES[p.pop("arch")],
        HARDWARE[p.pop("hardware")],
        p.pop("schedule"),
        layers_per_stage=p.pop("layers_per_stage", 1),
    )
    b_micro = p.pop("b_micro")
    depth = p.pop("depth")
    n_micro = p.pop("n_micro_factor", 1) * depth
    return model.report(b_micro, depth, n_micro=n_micro,
                        recompute=p.pop("recompute", False))


def _serialize_perf_report(r, params: dict):
    return {
        "t_fwd": r.t_fwd,
        "t_bwd": r.t_bwd,
        "t_pipe": r.t_pipe,
        "t_bubble": r.t_bubble,
        "t_curv_total": r.t_curv_total,
        "t_inv": r.t_inv,
        "t_prec": r.t_prec,
        "ratio": r.ratio,
        "refresh_steps": r.refresh_steps,
        "throughput_pipeline": r.throughput_pipeline,
        "throughput_pipefisher": r.throughput_pipefisher,
        "throughput_kfac_skip": r.throughput_kfac_skip,
        "throughput_kfac_naive": r.throughput_kfac_naive,
        "memory_total_gb": r.memory.total_gb(),
    }


#: The 14 values of a golden ``_perf_cell``, in the pinned order.
PERF_CELL_FIELDS = (
    "t_fwd", "t_bwd", "t_pipe", "t_bubble", "t_curv_total", "t_inv",
    "t_prec", "ratio", "refresh_steps", "throughput_pipeline",
    "throughput_pipefisher", "throughput_kfac_skip",
    "throughput_kfac_naive", "memory_total_gb",
)


def perf_cell(value: dict) -> list:
    """A recorded ``perf_report`` value as the golden cell list."""
    return [value[f] for f in PERF_CELL_FIELDS]


def pf_report_row(value: dict) -> list:
    """A recorded ``pipefisher`` value as the golden ``_pf_report`` list."""
    return [
        value["baseline_step_time"],
        value["baseline_utilization"],
        value["pipefisher_step_time"],
        value["pipefisher_utilization"],
        value["refresh_steps"],
        [list(item) for item in value["device_refresh_steps"]],
    ]


register_unit_kind("pipefisher", _execute_pipefisher, _serialize_pipefisher)
register_unit_kind("perf_report", _execute_perf_report, _serialize_perf_report)
