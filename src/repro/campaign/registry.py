"""The campaign registry: every reproducible experiment, by name.

Experiment modules register their default :class:`CampaignSpec` (plus,
when the campaign is pinned by a committed golden, a *golden payload
builder* that reassembles the exact golden structure from recorded unit
values) at import time.  :func:`load_builtin_campaigns` imports
:mod:`repro.experiments`, which registers all of them — the CLI and the
test layer call it before resolving names.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.campaign.spec import CampaignSpec


class SeedPlumbingWarning(UserWarning):
    """A spec declares ``seeds`` over a kind that never reads them.

    Such a campaign would run N bit-identical replicates per grid point —
    almost certainly a forgotten ``seed_aware=True`` on the unit kind (or
    seeds left over from a copied spec)."""


@dataclass(frozen=True)
class CampaignEntry:
    """A registered campaign: its default spec and golden binding."""

    spec: CampaignSpec
    #: ``(spec, {unit_key: value}) -> payload`` matching the committed
    #: golden structure; None for campaigns without a golden.
    golden_payload: Callable[[CampaignSpec, Mapping], object] | None = None


_CAMPAIGNS: dict[str, CampaignEntry] = {}


def _audit_seed_plumbing(spec: CampaignSpec) -> None:
    """Warn when declared seeds cannot reach any unit's executor.

    Kinds registered later (or never) are skipped — the audit only speaks
    when a kind is known and known to ignore the seed param."""
    if not spec.seeds:
        return
    from repro.campaign.units import kind_seed_aware

    kinds = sorted({u.kind for u in spec.units()})
    verdicts = {k: kind_seed_aware(k) for k in kinds}
    deaf = [k for k, aware in verdicts.items() if aware is False]
    if deaf and not any(verdicts[k] for k in kinds):
        warnings.warn(
            f"campaign {spec.name!r} declares seeds={spec.seeds} but no "
            f"unit kind of {kinds} is seed-aware — every seed would "
            f"recompute the same result",
            SeedPlumbingWarning,
            stacklevel=3,
        )


def register_campaign(spec: CampaignSpec,
                      golden_payload=None,
                      replace: bool = False) -> CampaignEntry:
    if spec.name in _CAMPAIGNS and not replace:
        raise ValueError(f"campaign {spec.name!r} already registered")
    if (spec.golden is not None) != (golden_payload is not None):
        raise ValueError(
            f"campaign {spec.name!r}: golden binding and payload builder "
            f"must be declared together")
    _audit_seed_plumbing(spec)
    entry = CampaignEntry(spec=spec, golden_payload=golden_payload)
    _CAMPAIGNS[spec.name] = entry
    return entry


def load_builtin_campaigns() -> None:
    """Import the experiment modules, registering every campaign."""
    import repro.experiments  # noqa: F401  (registration side effect)


def get_campaign(name: str) -> CampaignEntry:
    load_builtin_campaigns()
    try:
        return _CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; registered: {campaign_names()}"
        ) from None


def campaign_names() -> list[str]:
    load_builtin_campaigns()
    return sorted(_CAMPAIGNS)


def golden_payload(name: str, values: Mapping | None = None, engine=None):
    """The golden payload for campaign ``name``.

    With ``values`` (a ``{unit_key: recorded value}`` mapping, e.g. from
    a run DB), the payload is rebuilt purely from recorded data.  Without
    it, the campaign is executed ephemerally through ``engine`` (default:
    the shared engine) first — the path the golden regression tests use.
    """
    entry = get_campaign(name)
    if entry.golden_payload is None:
        raise ValueError(f"campaign {name!r} has no golden binding")
    if values is None:
        from repro.campaign.runner import CampaignRunner

        values = CampaignRunner(engine=engine).run(entry.spec).values()
    missing = [u.key for u in entry.spec.units() if u.key not in values]
    if missing:
        raise ValueError(
            f"campaign {name!r}: {len(missing)} of "
            f"{len(entry.spec.units())} units have no recorded value "
            f"(first missing: {missing[0]})")
    return entry.golden_payload(entry.spec, values)
