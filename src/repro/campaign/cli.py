"""``python -m repro.cli campaign <command>`` — the campaign workflows.

Commands::

    campaign list                      # registered campaigns + unit counts
    campaign run NAME [--run-dir D] [--shard i/n] [--jobs N] [--no-resume] [-v]
    campaign status --run-dir D        # completion state of a run DB
    campaign diff NAME [--run-dir D] [--rtol R] [--atol A]
                                       # per-value deltas vs the golden
    campaign regen-goldens [NAME ...]  # first-class golden regeneration
    campaign merge --out D SRC ...     # merge shard run DBs

``run`` resumes by default: units already recorded done in the run DB
are served from it without re-execution.  ``diff`` with ``--run-dir``
compares recorded values; without it, the campaign executes ephemerally
first.  Exit codes: 0 ok/match, 1 diff found, 2 usage or incomplete DB.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.goldens import (
    count_values,
    diff_payloads,
    read_golden,
    write_golden,
)
from repro.campaign.registry import (
    campaign_names,
    get_campaign,
    golden_payload,
)
from repro.campaign.rundb import DONE, RunDB, merge_run_dbs
from repro.campaign.runner import CampaignRunner, parse_shard


def _cmd_list(args) -> int:
    print(f"{'campaign':16s} {'units':>6s} {'golden':>12s}  title")
    for name in campaign_names():
        entry = get_campaign(name)
        spec = entry.spec
        golden = spec.golden if spec.golden else "-"
        print(f"{name:16s} {len(spec.units()):6d} {golden:>12s}  {spec.title}")
        for artifact in spec.artifacts:
            print(f"{'':16s} {'':6s} {'':12s}  - {artifact}")
    return 0


def _cmd_run(args) -> int:
    entry = get_campaign(args.name)
    shard = parse_shard(args.shard) if args.shard else (0, 1)
    if args.jobs is not None and args.jobs > 1:
        if args.shard:
            print("error: --jobs cannot be combined with --shard "
                  "(jobs shards internally)", file=sys.stderr)
            return 2
        if not args.run_dir:
            print("error: --jobs requires --run-dir (workers share state "
                  "through the run DB)", file=sys.stderr)
            return 2
    runner = CampaignRunner(run_dir=args.run_dir)

    def progress(unit, record):
        if args.verbose:
            status = record.get("status", "?")
            src = "db" if record["key"] in result_reused else "run"
            print(f"  [{src}] {unit.kind} {record['key']} {status} "
                  f"({record.get('elapsed_s', 0.0):.3f}s)")

    result_reused: set = set()
    result = runner.run(entry.spec, shard=shard,
                        resume=not args.no_resume, on_unit=progress,
                        jobs=args.jobs)
    result_reused.update(result.reused)
    s = result.summary()
    total = len(entry.spec.units())
    print(f"campaign {args.name}: executed {s['executed']}, "
          f"reused {s['reused']}/{s['units']} "
          f"(campaign total {total} units) in {s['elapsed_s']:.2f}s")
    eng = s["engine"]
    print(f"  engine: {eng['runs']} runs, {eng['timing_hits']} timing hits, "
          f"{eng['rescales']} rescales, {eng['reexecutions']} re-executions; "
          f"template cache {eng['templates_hits']}h/{eng['templates_misses']}m/"
          f"{eng['templates_evictions']}e, "
          f"stage-cost cache {eng['stage_costs_hits']}h/"
          f"{eng['stage_costs_misses']}m/{eng['stage_costs_evictions']}e")
    if eng.get("native_evals") or eng.get("delta_retimes") \
            or eng.get("batched_points"):
        print(f"  batched: {eng.get('batched_points', 0)} batched points, "
              f"{eng.get('native_evals', 0)} native evals, "
              f"{eng.get('delta_retimes', 0)} delta re-times")
    phases = _phase_seconds(eng)
    if any(phases.values()):
        print("  phases: " + ", ".join(
            f"{name} {secs:.3f}s" for name, secs in sorted(phases.items())))
    if args.run_dir:
        print(f"  run DB: {args.run_dir}")
    return 0


def _phase_seconds(engine: dict) -> dict:
    """The ``phase_<name>_s`` keys of an engine-counter dict, by phase."""
    return {k[len("phase_"):-len("_s")]: v for k, v in engine.items()
            if k.startswith("phase_") and k.endswith("_s")}


def _cmd_status(args) -> int:
    db = RunDB.open(args.run_dir)
    meta = db.read_meta()
    if meta is None:
        print(f"{args.run_dir}: not a campaign run dir (no meta.json)")
        return 2
    name = meta["campaign"]
    counts = db.status_counts()
    done = counts.get("done", 0)
    try:
        total = len(get_campaign(name).spec.units())
    except KeyError:
        total = None
    shards = sorted({tuple(r.get("shard", [1, 1]))
                     for r in db.records.values()})
    print(f"campaign {name} at {args.run_dir}")
    if total is not None:
        print(f"  done {done}/{total} units "
              f"({done / total:.0%})" if total else "  empty campaign")
    for status, n in sorted(counts.items()):
        print(f"  {status}: {n}")
    seed_done: dict = {}
    for rec in db.records.values():
        seed = rec.get("params", {}).get("seed")
        if seed is not None and rec.get("status") == DONE:
            seed_done[seed] = seed_done.get(seed, 0) + 1
    if seed_done:
        print(f"  replicates by seed ({len(seed_done)} seed(s)):")
        for seed in sorted(seed_done):
            print(f"    seed {seed}: {seed_done[seed]} done")
    phase_totals: dict = {}
    for rec in db.records.values():
        if rec.get("status") != DONE:
            continue
        for phase, secs in _phase_seconds(rec.get("engine", {})).items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + secs
    if phase_totals:
        print("  engine phase seconds: " + ", ".join(
            f"{name} {secs:.3f}" for name, secs
            in sorted(phase_totals.items())))
    if db.skipped_lines:
        print(f"  tolerated {db.skipped_lines} truncated/corrupt line(s)")
    print(f"  shards seen: {', '.join(f'{i}/{n}' for i, n in shards) or '-'}")
    return 0


def _diff_one(name: str, values, rtol: float = 0.0,
              atol: float = 0.0) -> int:
    entry = get_campaign(name)
    if entry.spec.golden is None:
        print(f"{name}: no golden binding — skipped")
        return 0
    expected = read_golden(entry.spec.golden)
    if expected is None:
        print(f"{name}: golden {entry.spec.golden}.json missing "
              f"(generate with 'campaign regen-goldens {name}')")
        return 2
    try:
        payload = golden_payload(name, values=values)
    except ValueError as exc:
        print(f"{name}: {exc}")
        return 2
    deltas = diff_payloads(expected, payload, rtol=rtol, atol=atol)
    if not deltas:
        how = ("bit-exact" if rtol == 0.0 and atol == 0.0
               else f"within rtol={rtol:g} atol={atol:g}; "
                    f"non-float values exact")
        print(f"{name}: matches golden {entry.spec.golden}.json "
              f"({count_values(expected)} values, {how})")
        return 0
    print(f"{name}: {len(deltas)} value(s) diverge from "
          f"{entry.spec.golden}.json:")
    for d in deltas[:50]:
        print(f"  {d.describe()}")
    if len(deltas) > 50:
        print(f"  ... and {len(deltas) - 50} more")
    return 1


def _cmd_diff(args) -> int:
    values = None
    if args.run_dir:
        db = RunDB.open(args.run_dir)
        meta = db.read_meta()
        if meta is None:
            print(f"{args.run_dir}: not a campaign run dir")
            return 2
        if meta["campaign"] != args.name:
            print(f"{args.run_dir} holds campaign {meta['campaign']!r}, "
                  f"not {args.name!r}")
            return 2
        values = db.values()
    return _diff_one(args.name, values, rtol=args.rtol, atol=args.atol)


def _cmd_regen_goldens(args) -> int:
    names = args.names or [
        n for n in campaign_names() if get_campaign(n).spec.golden is not None
    ]
    runner = CampaignRunner(run_dir=args.run_dir)
    for name in names:
        entry = get_campaign(name)
        if entry.spec.golden is None:
            print(f"{name}: no golden binding — skipped")
            continue
        result = runner.run(entry.spec)
        payload = golden_payload(name, values=result.values())
        path = write_golden(entry.spec.golden, payload)
        print(f"{name}: wrote {path} "
              f"({result.summary()['executed']} units executed, "
              f"{result.summary()['reused']} reused)")
    if args.run_dir:
        print(f"regeneration logged in run DB: {args.run_dir}")
    return 0


def _cmd_merge(args) -> int:
    out = merge_run_dbs(args.sources, args.out)
    counts = out.status_counts()
    print(f"merged {len(args.sources)} run DB(s) into {args.out}: "
          f"{counts.get('done', 0)} done, "
          f"{sum(counts.values()) - counts.get('done', 0)} other")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli campaign",
        description="Declarative experiment campaigns: run, resume, shard, "
                    "and diff against goldens.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="registered campaigns")

    p_run = sub.add_parser("run", help="run (or resume) a campaign")
    p_run.add_argument("name")
    p_run.add_argument("--run-dir", default=None,
                       help="persistent run DB directory (enables resume)")
    p_run.add_argument("--shard", default=None, metavar="i/n",
                       help="run only every n-th unit (1-based, e.g. 1/3)")
    p_run.add_argument("--no-resume", action="store_true",
                       help="re-execute units even if recorded done")
    p_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="run N worker processes over the run DB "
                            "(requires --run-dir; excludes --shard)")
    p_run.add_argument("-v", "--verbose", action="store_true",
                       help="one progress line per unit")

    p_status = sub.add_parser("status", help="completion state of a run DB")
    p_status.add_argument("--run-dir", required=True)

    p_diff = sub.add_parser("diff", help="compare against committed goldens")
    p_diff.add_argument("name")
    p_diff.add_argument("--run-dir", default=None,
                        help="diff recorded values instead of re-running")
    p_diff.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for float leaves "
                             "(default 0.0: bit-exact)")
    p_diff.add_argument("--atol", type=float, default=0.0,
                        help="absolute tolerance for float leaves "
                             "(default 0.0: bit-exact)")

    p_regen = sub.add_parser(
        "regen-goldens",
        help="regenerate committed goldens (first-class replacement for "
             "the REPRO_REGEN_GOLDENS=1 env var)")
    p_regen.add_argument("names", nargs="*",
                         help="campaigns to regenerate (default: all bound)")
    p_regen.add_argument("--run-dir", default=None,
                         help="log the regeneration runs in this run DB")

    p_merge = sub.add_parser("merge", help="merge shard run DBs")
    p_merge.add_argument("sources", nargs="+")
    p_merge.add_argument("--out", required=True)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "status": _cmd_status,
    "diff": _cmd_diff,
    "regen-goldens": _cmd_regen_goldens,
    "merge": _cmd_merge,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
