"""The ``stochastic`` campaign unit kind: one Monte Carlo replicate.

Unit params are the flat union of two vocabularies: the pipeline point
(schedule/arch/hardware/b_micro/depth/n_micro, the ``pipefisher``
vocabulary) and the :class:`~repro.stochastic.model.StochasticModel`
fields, plus the ``seed`` the campaign layer appends when a spec
declares ``seeds``.  :meth:`StochasticModel.from_params` pops the model
fields back out; the remainder builds the ``PipeFisherRun``.

The replicate dict is already JSON-scalar, so serialization is the
identity — the run DB record *is* the replicate.
"""

from __future__ import annotations

from repro.campaign.units import UnitContext, register_unit_kind
from repro.stochastic.mc import run_replicate
from repro.stochastic.model import StochasticModel


def _execute_stochastic(params: dict, ctx: UnitContext) -> dict:
    from repro.perfmodel.arch import ARCHITECTURES
    from repro.perfmodel.hardware import HARDWARE
    from repro.pipefisher.runner import PipeFisherRun

    p = dict(params)
    seed = p.pop("seed", 0)
    model = StochasticModel.from_params(p)
    if "n_micro_factor" in p:
        if "n_micro" in p:
            raise ValueError("give n_micro or n_micro_factor, not both")
        p["n_micro"] = p.pop("n_micro_factor") * p["depth"]
    run = PipeFisherRun(
        schedule=p.pop("schedule"),
        arch=ARCHITECTURES[p.pop("arch")],
        hardware=HARDWARE[p.pop("hardware")],
        **p,
    )
    return run_replicate(run, model, seed, engine=ctx.engine)


def _serialize_stochastic(value: dict, params: dict) -> dict:
    return value


register_unit_kind("stochastic", _execute_stochastic, _serialize_stochastic,
                   seed_aware=True)
