"""Seeded sampling of one replicate's perturbation, as pure data.

:func:`sample_perturbation` turns ``(model, seed, num_devices,
time_unit)`` into a :class:`Perturbation`: per-device duration factors
plus a :class:`~repro.sweep.retime.DeviceFaults`-shaped failure trace.
Applying it is a pure transform over a compiled template's duration
arrays (:func:`perturbed_durations`), so each Monte Carlo replicate is a
re-timing pass through :func:`~repro.sweep.retime.simulate_compiled` —
no graph rebuild per seed.

Determinism contract (pinned by ``tests/stochastic/test_perturb.py``):

* the RNG stream depends only on the replicate ``seed`` (namespaced
  Mersenne Twister), never on the model or the schedule — so schedules
  compared under one seed see *common random numbers*, the classic
  variance-reduction for "which degrades least?" questions;
* draws happen in a fixed order — jitter factors (one lognormal per
  device, only when ``jitter_sigma > 0``), then the straggler sample
  (only when ``straggler_count > 0``; drawn even at slowdown 1.0 so the
  choice of straggler is invariant across slowdown values), then
  per-device Poisson failure chains (only when ``preemption_rate > 0``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.stochastic.model import StochasticModel
from repro.sweep.retime import DeviceFaults

#: Failure times are sampled out to this many nominal steps; a replicate
#: whose perturbed span outruns the horizon simply sees no further
#: failures (preemption_rate * HORIZON is the expected per-device count).
FAILURE_HORIZON_STEPS = 8.0


def replicate_rng(seed: int) -> random.Random:
    """The namespaced, model-independent RNG stream for one replicate."""
    return random.Random(f"repro.stochastic:{seed}")


@dataclass(frozen=True)
class Perturbation:
    """One sampled replicate: device factors + failure/restart trace."""

    seed: int
    #: Multiplicative duration factor per device (1.0 = nominal).
    device_factor: tuple
    #: Ascending absolute failure instants per device (seconds).
    failure_times: tuple
    restart_delay: float
    checkpoint_every: float

    @property
    def has_faults(self) -> bool:
        return any(self.failure_times)

    def faults(self) -> DeviceFaults | None:
        """The executor-facing fault plan (None when fault-free)."""
        if not self.has_faults:
            return None
        return DeviceFaults(failure_times=self.failure_times,
                            restart_delay=self.restart_delay,
                            checkpoint_every=self.checkpoint_every)


def sample_perturbation(
    model: StochasticModel,
    seed: int,
    num_devices: int,
    time_unit: float,
) -> Perturbation:
    """Draw one replicate's perturbation from the documented stream order.

    ``time_unit`` is the nominal step span in seconds — the scale the
    model's rate/fraction knobs are expressed in.
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    if not time_unit > 0.0:
        raise ValueError(f"time_unit must be > 0, got {time_unit!r}")
    rng = replicate_rng(seed)

    factor = [1.0] * num_devices
    if model.jitter_sigma > 0.0:
        sigma = model.jitter_sigma
        for d in range(num_devices):
            factor[d] = rng.lognormvariate(0.0, sigma)
    if model.straggler_count > 0:
        count = min(model.straggler_count, num_devices)
        for d in rng.sample(range(num_devices), count):
            factor[d] *= model.straggler_slowdown

    fails: list[tuple] = [()] * num_devices
    if model.preemption_rate > 0.0:
        rate = model.preemption_rate / time_unit  # failures per second
        horizon = FAILURE_HORIZON_STEPS * time_unit
        for d in range(num_devices):
            times: list[float] = []
            t = rng.expovariate(rate)
            while t < horizon:
                times.append(t)
                t += rng.expovariate(rate)
            fails[d] = tuple(times)

    return Perturbation(
        seed=seed,
        device_factor=tuple(factor),
        failure_times=tuple(fails),
        restart_delay=model.restart_delay_frac * time_unit,
        checkpoint_every=model.checkpoint_interval_frac * time_unit,
    )


def table_durations(graph, durs: tuple) -> list:
    """Expand a duration-code table to per-task durations (the identity
    re-timing: ``simulate_compiled(g, durs)`` computes exactly these)."""
    return [durs[c] for c in graph.dur_code]


def perturbed_durations(graph, task_durs: list, p: Perturbation) -> list:
    """Apply per-device factors to a per-task duration array.

    Control tasks (``device is None``) keep their durations — barriers
    stay zero-width; everything a device executes scales by that device's
    factor.
    """
    factor = p.device_factor
    device = graph.device
    return [
        d if device[i] is None else d * factor[device[i]]
        for i, d in enumerate(task_durs)
    ]
