"""Replicate reduction: deterministic means, percentiles, and CIs.

Pure-python arithmetic in a fixed fold order, so summaries of
bit-identical replicate sets are themselves bit-identical — goldens can
pin them.  Percentiles use sorted linear interpolation (numpy's default
``linear`` method); the mean CI is the normal approximation
``mean ± 1.96 * std / sqrt(n)``, which is what a Monte Carlo report
wants at the replicate counts campaigns run (intervals collapse to the
mean at ``n == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor, sqrt

#: Two-sided 95% normal quantile.
_Z95 = 1.96


def percentile(sorted_values: list, q: float) -> float:
    """Linear-interpolated ``q``-quantile (``0 <= q <= 1``) of sorted data."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    k = (len(sorted_values) - 1) * q
    lo = floor(k)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = k - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


@dataclass(frozen=True)
class Summary:
    """Mean + spread + percentile confidence interval of one metric."""

    n: int
    mean: float
    std: float          #: sample standard deviation (ddof=1; 0.0 at n=1)
    lo: float           #: min
    hi: float           #: max
    p5: float
    p50: float
    p95: float
    ci95_lo: float      #: normal-approx CI on the mean
    ci95_hi: float

    def as_list(self) -> list:
        """The summary as a golden-friendly flat list (field order)."""
        return [self.n, self.mean, self.std, self.lo, self.hi,
                self.p5, self.p50, self.p95, self.ci95_lo, self.ci95_hi]


def summarize(values) -> Summary:
    """Reduce one metric's replicate values to a :class:`Summary`.

    The fold order is the input order for the mean and the squared
    deviations, and sorted order for the percentiles — both deterministic
    for a deterministic replicate sequence.
    """
    vals = list(values)
    n = len(vals)
    if n == 0:
        raise ValueError("summarize of empty data")
    total = 0.0
    for v in vals:
        total += v
    mean = total / n
    sq = 0.0
    for v in vals:
        d = v - mean
        sq += d * d
    std = sqrt(sq / (n - 1)) if n > 1 else 0.0
    s = sorted(vals)
    half = _Z95 * std / sqrt(n)
    return Summary(
        n=n,
        mean=mean,
        std=std,
        lo=s[0],
        hi=s[-1],
        p5=percentile(s, 0.05),
        p50=percentile(s, 0.50),
        p95=percentile(s, 0.95),
        ci95_lo=mean - half,
        ci95_hi=mean + half,
    )
