"""The :class:`StochasticModel` spec: seeded cluster-perturbation knobs.

A model is *pure data* — a frozen, JSON-round-trippable dataclass whose
canonical hash keys Monte Carlo replicates into the campaign run DB
(same model + same seed + same pipeline point => same unit address).
The knobs cover the three fleet behaviors the ROADMAP's stochastic item
names:

* **jitter** — every device's compute durations are multiplied by an
  independent lognormal factor ``exp(N(0, jitter_sigma))``, the standard
  multiplicative model for kernel-time wander;
* **stragglers** — ``straggler_count`` devices (sampled without
  replacement per replicate) run ``straggler_slowdown`` times slower
  (1.05 is the paper-question "5% straggler");
* **preemptions** — each device fails as a Poisson process with
  ``preemption_rate`` expected failures per nominal step, restarts after
  ``restart_delay_frac`` of a nominal step of downtime, and loses the
  in-flight work since the last checkpoint (``checkpoint_interval_frac``
  of a nominal step between checkpoints; 0 means only task boundaries
  checkpoint, so a failure redoes the whole in-flight task).

Fractions are expressed in units of the *nominal* (unperturbed) step
span, so one model is meaningful across architectures and hardware.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from math import isfinite

import json

from repro.campaign.spec import canonical_json

#: Fields whose values must be finite floats >= 0.
_NONNEG_FLOATS = ("jitter_sigma", "preemption_rate", "restart_delay_frac",
                  "checkpoint_interval_frac")


@dataclass(frozen=True)
class StochasticModel:
    """Seeded duration-perturbation + fault model for one replicate."""

    jitter_sigma: float = 0.0
    straggler_count: int = 0
    straggler_slowdown: float = 1.0
    preemption_rate: float = 0.0
    restart_delay_frac: float = 0.0
    checkpoint_interval_frac: float = 0.0

    def __post_init__(self) -> None:
        # Normalize ints to floats so the canonical JSON (hence the
        # replicate's unit hash) is identical for 2 and 2.0.
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "straggler_count":
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    raise ValueError(
                        f"straggler_count must be an int >= 0, got {v!r}")
                continue
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ValueError(f"{f.name} must be a number, got {v!r}")
            v = float(v)
            if not isfinite(v):
                raise ValueError(f"{f.name} must be finite, got {v!r}")
            object.__setattr__(self, f.name, v)
        for name in _NONNEG_FLOATS:
            if getattr(self, name) < 0.0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)!r}")
        if self.straggler_slowdown <= 0.0:
            raise ValueError(
                f"straggler_slowdown must be > 0, "
                f"got {self.straggler_slowdown!r}")

    # -- semantics ----------------------------------------------------------------

    @property
    def is_identity(self) -> bool:
        """True when every replicate reproduces the nominal timing."""
        return (self.jitter_sigma == 0.0
                and (self.straggler_count == 0
                     or self.straggler_slowdown == 1.0)
                and self.preemption_rate == 0.0)

    @property
    def has_faults(self) -> bool:
        return self.preemption_rate > 0.0

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "StochasticModel":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown StochasticModel fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StochasticModel":
        return cls.from_dict(json.loads(text))

    def canonical_key(self) -> str:
        """A content hash in the campaign unit-key format (16 hex chars)."""
        digest = hashlib.sha256(
            canonical_json({"stochastic_model": self.to_dict()}).encode()
        ).hexdigest()
        return digest[:16]

    # -- campaign param plumbing --------------------------------------------------

    def as_params(self) -> dict:
        """The model flattened to JSON-scalar campaign unit params."""
        return self.to_dict()

    @classmethod
    def from_params(cls, params: dict) -> "StochasticModel":
        """Pop this model's fields *out of* a flat unit-param dict.

        The inverse of :meth:`as_params` against a mutable dict that also
        carries pipeline params — the ``stochastic`` unit kind separates
        the two vocabularies with this.
        """
        kwargs = {}
        for f in fields(cls):
            if f.name in params:
                kwargs[f.name] = params.pop(f.name)
        return cls(**kwargs)
