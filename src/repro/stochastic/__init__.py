"""Stochastic cluster simulation: seeded perturbation models and Monte
Carlo replication over the compiled sweep-engine templates.

Importing this package registers the ``stochastic`` campaign unit kind.
"""

from repro.stochastic.mc import (
    METRICS,
    MonteCarloResult,
    monte_carlo,
    run_replicate,
)
from repro.stochastic.model import StochasticModel
from repro.stochastic.perturb import (
    FAILURE_HORIZON_STEPS,
    Perturbation,
    perturbed_durations,
    replicate_rng,
    sample_perturbation,
    table_durations,
)
from repro.stochastic.stats import Summary, percentile, summarize

import repro.stochastic.units  # noqa: F401  (unit-kind registration)

__all__ = [
    "FAILURE_HORIZON_STEPS",
    "METRICS",
    "MonteCarloResult",
    "Perturbation",
    "StochasticModel",
    "Summary",
    "monte_carlo",
    "percentile",
    "perturbed_durations",
    "replicate_rng",
    "run_replicate",
    "sample_perturbation",
    "summarize",
    "table_durations",
]
