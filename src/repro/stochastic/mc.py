"""Monte Carlo replication of a pipeline point through the sweep engine.

One replicate = one seed: sample a :class:`~repro.stochastic.perturb.Perturbation`,
apply it to the compiled point's duration arrays, and re-run both task
graphs (baseline and PipeFisher) through
:func:`~repro.sweep.retime.simulate_compiled` with the sampled fault
trace.  The template is compiled once and the nominal evaluation is
cached in the engine, so replicates cost two event-loop passes each —
``benchmarks/test_mc_scaling.py`` pins the resulting replicates/sec
advantage over per-seed graph rebuilds in ``BENCH_mc.json``.

The bubble filler is deliberately *not* re-run per replicate: K-FAC
bubble placement models the steady state the operator tunes for, while a
replicate models one perturbed step — its span, bubble fraction, and
utilization are the robustness metrics.  Nominal values ride along in
each replicate record so degradation ratios need no second lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profiler.utilization import COLOR_DENSITY
from repro.stochastic.model import StochasticModel
from repro.stochastic.perturb import (
    perturbed_durations,
    sample_perturbation,
    table_durations,
)
from repro.stochastic.stats import Summary, summarize
from repro.sweep.retime import device_bubbles, simulate_compiled

#: Replicate metrics every summary reduces (keys of each replicate dict).
METRICS = ("span", "pf_span", "bubble_fraction", "utilization",
           "span_degradation")


def compiled_bubble_fraction(graph, sim) -> float:
    """Idle fraction of the simulated step across all devices.

    Sums every device's idle intervals over ``[0, makespan]`` (the same
    merge the bubble filler's interval scan uses, with no minimum-bubble
    cutoff) and normalizes by total device-time.  Restart downtime that
    falls *inside* a task's footprint counts as busy — the device is
    occupied redoing lost work; downtime before a delayed start shows up
    as idle.
    """
    span = sim.makespan
    idle = 0.0
    for dev in range(graph.num_devices):
        for a, b in device_bubbles(graph, sim, dev, span, 0.0):
            idle += b - a
    return idle / (graph.num_devices * span)


def compiled_utilization(graph, sim) -> float:
    """Density-weighted busy fraction over ``[0, makespan]``.

    The same fold as the engine's windowed utilization, applied to a
    perturbed timing.
    """
    t1 = sim.makespan
    total = 0.0
    start = sim.start
    end = sim.ev_end
    kind = graph.kind
    density = COLOR_DENSITY
    for i in sim.ev_order:
        e = end[i]
        s = start[i]
        if e <= 0.0 or s >= t1:
            continue
        total += (min(e, t1) - max(s, 0.0)) * density.get(kind[i], 1.0)
    return total / (graph.num_devices * t1)


def _downtime(restarts) -> float:
    total = 0.0
    for _, _, fail, resume, _ in restarts:
        total += resume - fail
    return total


def _lost_work(restarts) -> float:
    total = 0.0
    for _, _, _, _, lost in restarts:
        total += lost
    return total


def replicate_from_point(point, nominal, model: StochasticModel,
                         seed: int) -> dict:
    """Execute one seed against a compiled point; returns the JSON record.

    ``point`` is a :class:`~repro.sweep.engine.CompiledPoint`; ``nominal``
    its engine evaluation (the time unit and degradation reference).
    """
    template = point.template
    time_unit = nominal.base.makespan
    p = sample_perturbation(model, seed, template.num_devices, time_unit)
    faults = p.faults()
    base_td = perturbed_durations(
        template.base_graph, table_durations(template.base_graph,
                                             point.base_durs), p)
    pf_td = perturbed_durations(
        template.pf_graph, table_durations(template.pf_graph,
                                           point.pf_durs), p)
    base = simulate_compiled(template.base_graph, point.base_durs,
                             task_durs=base_td, faults=faults)
    pf = simulate_compiled(template.pf_graph, point.pf_durs,
                           task_durs=pf_td, faults=faults)
    return {
        "seed": seed,
        "span": base.makespan,
        "pf_span": pf.makespan,
        "bubble_fraction": compiled_bubble_fraction(template.base_graph,
                                                    base),
        "utilization": compiled_utilization(template.base_graph, base),
        "span_degradation": base.makespan / nominal.base.makespan,
        "nominal_span": nominal.base.makespan,
        "nominal_pf_span": nominal.pf.makespan,
        "n_restarts": len(base.restarts) + len(pf.restarts),
        "downtime_s": _downtime(base.restarts) + _downtime(pf.restarts),
        "lost_work_s": _lost_work(base.restarts) + _lost_work(pf.restarts),
    }


def run_replicate(run, model: StochasticModel, seed: int,
                  engine=None) -> dict:
    """One Monte Carlo replicate of ``run`` (a ``PipeFisherRun``).

    The single-unit entry point the campaign ``stochastic`` unit kind
    executes — replicates sharing an engine share the compiled template
    and the cached nominal evaluation.
    """
    if engine is None:
        from repro.sweep.engine import default_engine

        engine = default_engine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    return replicate_from_point(point, nominal, model, seed)


@dataclass
class MonteCarloResult:
    """Replicates of one (run, model) pair plus their reductions."""

    model: StochasticModel
    seeds: tuple
    replicates: list = field(default_factory=list)  #: dicts, seed order

    def series(self, metric: str) -> list:
        return [r[metric] for r in self.replicates]

    def summary(self, metric: str) -> Summary:
        return summarize(self.series(metric))

    def summaries(self) -> dict:
        """``{metric: Summary}`` for every standard metric."""
        return {m: self.summary(m) for m in METRICS}


def monte_carlo(run, model: StochasticModel, seeds,
                engine=None) -> MonteCarloResult:
    """Map seeds to replicates of ``run`` under ``model`` and collect.

    The driver behind the ``robustness`` experiment: one compiled point,
    one nominal evaluation, then one re-timing pass per seed.  The same
    (run, model, seed) triple always produces the bit-identical replicate
    dict — ``CampaignSpec.seeds`` shards and resumes over exactly these.
    """
    if engine is None:
        from repro.sweep.engine import default_engine

        engine = default_engine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    seeds = tuple(seeds)
    return MonteCarloResult(
        model=model,
        seeds=seeds,
        replicates=[replicate_from_point(point, nominal, model, s)
                    for s in seeds],
    )
