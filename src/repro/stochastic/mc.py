"""Monte Carlo replication of a pipeline point through the sweep engine.

One replicate = one seed: sample a :class:`~repro.stochastic.perturb.Perturbation`,
apply it to the compiled point's duration arrays, and re-run both task
graphs (baseline and PipeFisher) through
:func:`~repro.sweep.retime.simulate_compiled` with the sampled fault
trace.  The template is compiled once and the nominal evaluation is
cached in the engine, so replicates cost two event-loop passes each —
``benchmarks/test_mc_scaling.py`` pins the resulting replicates/sec
advantage over per-seed graph rebuilds in ``BENCH_mc.json``.

The bubble filler is deliberately *not* re-run per replicate: K-FAC
bubble placement models the steady state the operator tunes for, while a
replicate models one perturbed step — its span, bubble fraction, and
utilization are the robustness metrics.  Nominal values ride along in
each replicate record so degradation ratios need no second lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a de-facto hard dep
    np = None

from repro.profiler.utilization import COLOR_DENSITY
from repro.stochastic.model import StochasticModel
from repro.stochastic.perturb import (
    perturbed_durations,
    sample_perturbation,
    table_durations,
)
from repro.stochastic.stats import Summary, summarize
from repro.sweep.retime import device_bubbles, simulate_compiled

#: Replicate metrics every summary reduces (keys of each replicate dict).
METRICS = ("span", "pf_span", "bubble_fraction", "utilization",
           "span_degradation")


def compiled_bubble_fraction(graph, sim) -> float:
    """Idle fraction of the simulated step across all devices.

    Sums every device's idle intervals over ``[0, makespan]`` (the same
    merge the bubble filler's interval scan uses, with no minimum-bubble
    cutoff) and normalizes by total device-time.  Restart downtime that
    falls *inside* a task's footprint counts as busy — the device is
    occupied redoing lost work; downtime before a delayed start shows up
    as idle.
    """
    span = sim.makespan
    idle = 0.0
    for dev in range(graph.num_devices):
        for a, b in device_bubbles(graph, sim, dev, span, 0.0):
            idle += b - a
    return idle / (graph.num_devices * span)


def compiled_utilization(graph, sim) -> float:
    """Density-weighted busy fraction over ``[0, makespan]``.

    The same fold as the engine's windowed utilization, applied to a
    perturbed timing.
    """
    t1 = sim.makespan
    total = 0.0
    start = sim.start
    end = sim.ev_end
    kind = graph.kind
    density = COLOR_DENSITY
    for i in sim.ev_order:
        e = end[i]
        s = start[i]
        if e <= 0.0 or s >= t1:
            continue
        total += (min(e, t1) - max(s, 0.0)) * density.get(kind[i], 1.0)
    return total / (graph.num_devices * t1)


def _downtime(restarts) -> float:
    total = 0.0
    for _, _, fail, resume, _ in restarts:
        total += resume - fail
    return total


def _lost_work(restarts) -> float:
    total = 0.0
    for _, _, _, _, lost in restarts:
        total += lost
    return total


def replicate_from_point(point, nominal, model: StochasticModel,
                         seed: int) -> dict:
    """Execute one seed against a compiled point; returns the JSON record.

    ``point`` is a :class:`~repro.sweep.engine.CompiledPoint`; ``nominal``
    its engine evaluation (the time unit and degradation reference).
    """
    template = point.template
    time_unit = nominal.base.makespan
    p = sample_perturbation(model, seed, template.num_devices, time_unit)
    faults = p.faults()
    base_td = perturbed_durations(
        template.base_graph, table_durations(template.base_graph,
                                             point.base_durs), p)
    pf_td = perturbed_durations(
        template.pf_graph, table_durations(template.pf_graph,
                                           point.pf_durs), p)
    base = simulate_compiled(template.base_graph, point.base_durs,
                             task_durs=base_td, faults=faults)
    pf = simulate_compiled(template.pf_graph, point.pf_durs,
                           task_durs=pf_td, faults=faults)
    return {
        "seed": seed,
        "span": base.makespan,
        "pf_span": pf.makespan,
        "bubble_fraction": compiled_bubble_fraction(template.base_graph,
                                                    base),
        "utilization": compiled_utilization(template.base_graph, base),
        "span_degradation": base.makespan / nominal.base.makespan,
        "nominal_span": nominal.base.makespan,
        "nominal_pf_span": nominal.pf.makespan,
        "n_restarts": len(base.restarts) + len(pf.restarts),
        "downtime_s": _downtime(base.restarts) + _downtime(pf.restarts),
        "lost_work_s": _lost_work(base.restarts) + _lost_work(pf.restarts),
    }


def replicate_batch(point, nominal, model: StochasticModel,
                    seeds, engine=None) -> list[dict]:
    """Batched :func:`replicate_from_point` over a seed block.

    Perturbations are still sampled per seed (the RNG draw order is the
    contract), but re-timing runs as one ``(n_seeds, n_tasks)`` native
    pass per graph — fault-carrying seeds included: their per-device
    failure tables pack into the fault-replay core, whose empty-table
    rows are bit-identical to the no-fault path, so mixed blocks need no
    splitting.  Bubble fraction and utilization fold natively as well;
    restart counts/downtime/lost-work fold in the reference's append
    order from the native restart rows.  Any row the native core rejects
    falls back to the scalar reference; either way every record is
    bit-identical to the scalar path's.

    ``engine``, when given, receives counter credit: ``native_evals`` /
    ``batched_points`` / ``mc_batched_replicates`` per natively re-timed
    replicate and ``mc_faulty_batched`` for the fault-carrying subset.
    """
    from repro.sweep import batch as _batch
    from repro.sweep import native as _native

    template = point.template
    g_base, g_pf = template.base_graph, template.pf_graph
    ga_b = ga_p = None
    if np is not None and _native.available():
        ga_b = _native.graph_arrays(g_base)
        ga_p = _native.graph_arrays(g_pf)
    if ga_b is None or ga_p is None:
        return [replicate_from_point(point, nominal, model, s)
                for s in seeds]

    seeds = list(seeds)
    time_unit = nominal.base.makespan
    perts = [sample_perturbation(model, seed, template.num_devices,
                                 time_unit) for seed in seeds]
    faults = [p.faults() for p in perts]
    any_faults = any(f is not None for f in faults)

    def perturbed_matrix(graph, ga, durs):
        # Rows replicate ``perturbed_durations`` exactly: control tasks
        # keep the table value, device tasks multiply by the device's
        # sampled factor (one IEEE float64 product, same as python's).
        n = graph.n
        device = np.fromiter(
            ((-1 if d is None else d) for d in graph.device), np.int64, n)
        ctrl = device < 0
        task_idx = np.maximum(device, 0)
        table = np.asarray(durs, np.float64)[ga.dur_code]
        rows = np.empty((len(perts), n), np.float64)
        for row, p in enumerate(perts):
            fac = np.asarray(p.device_factor, np.float64)[task_idx]
            rows[row] = np.where(ctrl, table, table * fac)
        return rows

    row_faults = faults if any_faults else None
    gb = _batch.simulate_graph_batch(
        g_base, task_durs=perturbed_matrix(g_base, ga_b, point.base_durs),
        faults=row_faults)
    gp = _batch.simulate_graph_batch(
        g_pf, task_durs=perturbed_matrix(g_pf, ga_p, point.pf_durs),
        faults=row_faults)
    bubble = util = None
    if gb is not None:
        bubble, util = _native.mc_metrics_batch(
            gb.ga, gb.start, gb.ev_end, gb.ev_order, gb.makespan)
    records: list = [None] * len(seeds)
    batched = faulty_batched = 0
    for row, seed in enumerate(seeds):
        if (gb is None or gp is None or bubble is None
                or not (gb.ok(row) and gp.ok(row))):
            records[row] = replicate_from_point(point, nominal, model, seed)
            continue
        if faults[row] is not None:
            nb, down_b, lost_b = gb.restart_stats(row)
            npf, down_p, lost_p = gp.restart_stats(row)
            n_restarts = nb + npf
            downtime = down_b + down_p
            lost = lost_b + lost_p
            faulty_batched += 1
        else:
            n_restarts, downtime, lost = 0, 0.0, 0.0
        batched += 1
        span = float(gb.makespan[row])
        records[row] = {
            "seed": seed,
            "span": span,
            "pf_span": float(gp.makespan[row]),
            "bubble_fraction": float(bubble[row]),
            "utilization": float(util[row]),
            "span_degradation": span / nominal.base.makespan,
            "nominal_span": nominal.base.makespan,
            "nominal_pf_span": nominal.pf.makespan,
            "n_restarts": n_restarts,
            "downtime_s": downtime,
            "lost_work_s": lost,
        }
    if engine is not None and batched:
        engine.native_evals += batched
        engine.batched_points += batched
        engine.mc_batched_replicates += batched
        engine.mc_faulty_batched += faulty_batched
    return records


def run_replicate(run, model: StochasticModel, seed: int,
                  engine=None) -> dict:
    """One Monte Carlo replicate of ``run`` (a ``PipeFisherRun``).

    The single-unit entry point the campaign ``stochastic`` unit kind
    executes — replicates sharing an engine share the compiled template
    and the cached nominal evaluation.
    """
    if engine is None:
        from repro.sweep.engine import default_engine

        engine = default_engine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    return replicate_from_point(point, nominal, model, seed)


@dataclass
class MonteCarloResult:
    """Replicates of one (run, model) pair plus their reductions."""

    model: StochasticModel
    seeds: tuple
    replicates: list = field(default_factory=list)  #: dicts, seed order

    def series(self, metric: str) -> list:
        return [r[metric] for r in self.replicates]

    def summary(self, metric: str) -> Summary:
        return summarize(self.series(metric))

    def summaries(self) -> dict:
        """``{metric: Summary}`` for every standard metric."""
        return {m: self.summary(m) for m in METRICS}


def monte_carlo(run, model: StochasticModel, seeds, engine=None,
                batch: bool = True, jobs: int | None = None
                ) -> MonteCarloResult:
    """Map seeds to replicates of ``run`` under ``model`` and collect.

    The driver behind the ``robustness`` experiment: one compiled point,
    one nominal evaluation, then one re-timing pass per seed.  The same
    (run, model, seed) triple always produces the bit-identical replicate
    dict — ``CampaignSpec.seeds`` shards and resumes over exactly these —
    regardless of execution mode: ``batch=True`` (default) vectorizes
    every replicate — fault-carrying seeds included — through the native
    core, ``jobs=N`` splits the seed range into contiguous blocks across
    N worker processes, and ``batch=False, jobs=None`` is the scalar
    reference loop.
    """
    if engine is None:
        from repro.sweep.engine import default_engine

        engine = default_engine()
    point = engine.compiled_point(run)
    nominal = engine.nominal_evaluation(point)
    seeds = tuple(seeds)
    if jobs is not None and jobs > 1 and len(seeds) > 1:
        replicates = _monte_carlo_pool(point, nominal, model, seeds,
                                       jobs, batch)
    elif batch:
        replicates = replicate_batch(point, nominal, model, seeds,
                                     engine=engine)
    else:
        replicates = [replicate_from_point(point, nominal, model, s)
                      for s in seeds]
    return MonteCarloResult(model=model, seeds=seeds,
                            replicates=replicates)


def _mc_worker(template, base_durs, pf_durs, qdurs, model, seeds,
               nominal_span, nominal_pf_span, batch) -> list[dict]:
    """Replicate one contiguous seed block in a worker process.

    Module-level so the pool can pickle it by reference; the nominal
    evaluation travels as its two consumed scalars.
    """
    from types import SimpleNamespace

    from repro.sweep.engine import CompiledPoint

    point = CompiledPoint(template=template, base_durs=base_durs,
                          pf_durs=pf_durs, qdurs=qdurs)
    nominal = SimpleNamespace(
        base=SimpleNamespace(makespan=nominal_span),
        pf=SimpleNamespace(makespan=nominal_pf_span))
    if batch:
        return replicate_batch(point, nominal, model, seeds)
    return [replicate_from_point(point, nominal, model, s) for s in seeds]


def _monte_carlo_pool(point, nominal, model: StochasticModel, seeds,
                      jobs: int, batch: bool) -> list[dict]:
    from concurrent.futures import ProcessPoolExecutor

    from repro.sweep.pool import picklable_template

    stripped = picklable_template(point.template)
    per = -(-len(seeds) // jobs)
    blocks = [seeds[lo:lo + per] for lo in range(0, len(seeds), per)]
    replicates: list[dict] = []
    with ProcessPoolExecutor(max_workers=jobs) as ex:
        futures = [
            ex.submit(_mc_worker, stripped, point.base_durs, point.pf_durs,
                      point.qdurs, model, block, nominal.base.makespan,
                      nominal.pf.makespan, batch)
            for block in blocks
        ]
        for fut in futures:
            replicates.extend(fut.result())
    return replicates
