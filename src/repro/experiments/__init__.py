"""One module per paper table/figure: the reproduction harness.

Each ``fig*``/``table*`` module exposes a ``run_*`` function returning a
structured result with paper-reported values alongside reproduced ones,
plus a ``format_*`` helper printing the same rows/series the paper shows.
The benchmarks under ``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.fig1 import run_fig1, format_fig1
from repro.experiments.fig3 import run_fig3, FIG3_PAPER
from repro.experiments.fig4 import run_fig4, FIG4_PAPER
from repro.experiments.perfmodel_figs import (
    run_fig5,
    run_fig6_sweep,
    run_fig9_10,
    run_arch_sweep,
)
from repro.experiments.fig7 import run_fig7, Fig7Result
from repro.experiments.fig8 import run_fig8
from repro.experiments.interleaved import (
    run_interleaved_sweep,
    format_interleaved_sweep,
)
from repro.experiments.table2 import run_table2, TABLE2_PAPER
from repro.experiments.table3 import run_table3, TABLE3_PAPER
from repro.experiments.zb import (
    run_zb_sweep,
    format_zb_sweep,
    run_schedule_panel,
    format_schedule_panel,
)
from repro.experiments.robustness import (
    run_robustness,
    format_robustness,
)

__all__ = [
    "run_fig1",
    "format_fig1",
    "run_fig3",
    "FIG3_PAPER",
    "run_fig4",
    "FIG4_PAPER",
    "run_fig5",
    "run_fig6_sweep",
    "run_fig9_10",
    "run_arch_sweep",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "run_interleaved_sweep",
    "format_interleaved_sweep",
    "run_table2",
    "TABLE2_PAPER",
    "run_table3",
    "TABLE3_PAPER",
    "run_zb_sweep",
    "format_zb_sweep",
    "run_schedule_panel",
    "format_schedule_panel",
    "run_robustness",
    "format_robustness",
]
