"""Figure 8: learning-rate schedules for NVLAMB and K-FAC (Appendix B.2).

Base LR 6e-3, 7,038 total steps, polynomial decay with power 0.5; linear
warmup of 2,000 (NVLAMB) or 600 (K-FAC) steps — so K-FAC sees larger
learning rates than NVLAMB until the 2,000th step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim.lr_scheduler import kfac_schedule, nvlamb_schedule


@dataclass
class Fig8Result:
    steps: np.ndarray
    nvlamb_lr: np.ndarray
    kfac_lr: np.ndarray

    @property
    def crossover_step(self) -> int:
        """Last step at which K-FAC's LR exceeds NVLAMB's (paper: ~2,000)."""
        ahead = np.nonzero(self.kfac_lr > self.nvlamb_lr + 1e-12)[0]
        return int(ahead[-1]) + 1 if ahead.size else 0


def run_fig8(total_steps: int = 7038, base_lr: float = 6e-3) -> Fig8Result:
    nv = nvlamb_schedule(base_lr=base_lr, total_steps=total_steps)
    kf = kfac_schedule(base_lr=base_lr, total_steps=total_steps)
    return Fig8Result(
        steps=np.arange(1, total_steps + 1),
        nvlamb_lr=nv.series(total_steps),
        kfac_lr=kf.series(total_steps),
    )
