"""Figure 8: learning-rate schedules for NVLAMB and K-FAC (Appendix B.2).

Base LR 6e-3, 7,038 total steps, polynomial decay with power 0.5; linear
warmup of 2,000 (NVLAMB) or 600 (K-FAC) steps — so K-FAC sees larger
learning rates than NVLAMB until the 2,000th step.

Registered as the single-unit ``fig8`` campaign (unit kind ``fig8_lr``,
declared here); :func:`run_fig8` is a thin wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    register_campaign,
    register_unit_kind,
)
from repro.optim.lr_scheduler import kfac_schedule, nvlamb_schedule


@dataclass
class Fig8Result:
    steps: np.ndarray
    nvlamb_lr: np.ndarray
    kfac_lr: np.ndarray

    @property
    def crossover_step(self) -> int:
        """Last step at which K-FAC's LR exceeds NVLAMB's (paper: ~2,000)."""
        ahead = np.nonzero(self.kfac_lr > self.nvlamb_lr + 1e-12)[0]
        return int(ahead[-1]) + 1 if ahead.size else 0


def _execute_fig8(params: dict, ctx) -> Fig8Result:
    total_steps = params["total_steps"]
    base_lr = params["base_lr"]
    nv = nvlamb_schedule(base_lr=base_lr, total_steps=total_steps)
    kf = kfac_schedule(base_lr=base_lr, total_steps=total_steps)
    return Fig8Result(
        steps=np.arange(1, total_steps + 1),
        nvlamb_lr=nv.series(total_steps),
        kfac_lr=kf.series(total_steps),
    )


def _serialize_fig8(r: Fig8Result, params: dict) -> dict:
    # A handful of sampled points pins both curves without storing 7k LRs.
    n = len(r.steps)
    sample = sorted({0, n // 4, n // 2, 3 * n // 4, n - 1})
    return {
        "total_steps": int(r.steps[-1]),
        "crossover_step": r.crossover_step,
        "samples": [
            [int(r.steps[i]), float(r.nvlamb_lr[i]), float(r.kfac_lr[i])]
            for i in sample
        ],
    }


register_unit_kind("fig8_lr", _execute_fig8, _serialize_fig8)


def fig8_spec(total_steps: int = 7038, base_lr: float = 6e-3) -> CampaignSpec:
    return CampaignSpec(
        name="fig8",
        title="Fig. 8: NVLAMB vs K-FAC learning-rate schedules",
        kind="fig8_lr",
        fixed=tuple(sorted({
            "total_steps": total_steps,
            "base_lr": base_lr,
        }.items())),
        artifacts=("figure curves: LR vs step, both schedules; crossover "
                   "step",),
    )


register_campaign(fig8_spec())


def run_fig8(total_steps: int = 7038, base_lr: float = 6e-3) -> Fig8Result:
    spec = fig8_spec(total_steps, base_lr)
    result = CampaignRunner().run(spec)
    return result.objects[spec.units()[0].key]
