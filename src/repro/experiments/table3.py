"""Table 3: Transformer architecture configurations.

Verifies our :mod:`repro.perfmodel.arch` presets against the paper's
table (d_model, d_ff, heads, sequence length, block class) and checks
that the runnable block classes in :mod:`repro.nn` exist for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.transformer import BLOCK_CLASSES
from repro.perfmodel.arch import ARCHITECTURES

#: The paper's Table 3, verbatim.
TABLE3_PAPER = {
    "BERT-Base": ("BertLayer", 768, 3072, 12, 128),
    "BERT-Large": ("BertLayer", 1024, 4096, 16, 128),
    "T5-Base": ("T5Block", 768, 3072, 12, 512),
    "T5-Large": ("T5Block", 1024, 4096, 16, 512),
    "OPT-125M": ("OPTDecoderLayer", 768, 3072, 12, 2048),
    "OPT-350M": ("OPTDecoderLayer", 1024, 4096, 16, 2048),
}


@dataclass
class Table3Result:
    rows: dict[str, tuple[str, int, int, int, int]]
    matches_paper: bool
    runnable_blocks: bool


def run_table3() -> Table3Result:
    rows = {
        name: (a.block_class, a.d_model, a.d_ff, a.num_heads, a.seq_len)
        for name, a in ARCHITECTURES.items()
    }
    matches = rows == TABLE3_PAPER
    runnable = all(
        a.block_class in BLOCK_CLASSES for a in ARCHITECTURES.values()
    )
    return Table3Result(rows=rows, matches_paper=matches, runnable_blocks=runnable)


def format_table3(r: Table3Result) -> str:
    lines = [
        f"{'Architecture':12s} {'Block class':18s} {'d_model':>8s} "
        f"{'d_ff':>6s} {'h':>4s} {'S':>6s}"
    ]
    for name, (cls, dm, dff, h, s) in r.rows.items():
        lines.append(f"{name:12s} {cls:18s} {dm:8d} {dff:6d} {h:4d} {s:6d}")
    lines.append(f"matches paper Table 3: {r.matches_paper}; "
                 f"all block classes runnable: {r.runnable_blocks}")
    return "\n".join(lines)
