"""Table 3: Transformer architecture configurations.

Verifies our :mod:`repro.perfmodel.arch` presets against the paper's
table (d_model, d_ff, heads, sequence length, block class) and checks
that the runnable block classes in :mod:`repro.nn` exist for each.

Registered as the single-unit ``table3`` campaign (unit kind
``table3_check``, declared here); :func:`run_table3` is a thin wrapper
over it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    register_campaign,
    register_unit_kind,
)

#: The paper's Table 3, verbatim.
TABLE3_PAPER = {
    "BERT-Base": ("BertLayer", 768, 3072, 12, 128),
    "BERT-Large": ("BertLayer", 1024, 4096, 16, 128),
    "T5-Base": ("T5Block", 768, 3072, 12, 512),
    "T5-Large": ("T5Block", 1024, 4096, 16, 512),
    "OPT-125M": ("OPTDecoderLayer", 768, 3072, 12, 2048),
    "OPT-350M": ("OPTDecoderLayer", 1024, 4096, 16, 2048),
}


@dataclass
class Table3Result:
    rows: dict[str, tuple[str, int, int, int, int]]
    matches_paper: bool
    runnable_blocks: bool


def _check_architectures(params: dict, ctx) -> Table3Result:
    from repro.nn.transformer import BLOCK_CLASSES
    from repro.perfmodel.arch import ARCHITECTURES

    rows = {
        name: (a.block_class, a.d_model, a.d_ff, a.num_heads, a.seq_len)
        for name, a in ARCHITECTURES.items()
    }
    matches = rows == TABLE3_PAPER
    runnable = all(
        a.block_class in BLOCK_CLASSES for a in ARCHITECTURES.values()
    )
    return Table3Result(rows=rows, matches_paper=matches,
                        runnable_blocks=runnable)


def _serialize_table3(r: Table3Result, params: dict) -> dict:
    return {
        "rows": [[name, list(row)] for name, row in sorted(r.rows.items())],
        "matches_paper": r.matches_paper,
        "runnable_blocks": r.runnable_blocks,
    }


register_unit_kind("table3_check", _check_architectures, _serialize_table3)


def table3_spec() -> CampaignSpec:
    return CampaignSpec(
        name="table3",
        title="Table 3: architecture presets vs the paper (static check)",
        kind="table3_check",
        golden="table3",
        artifacts=("table rows: per-architecture config + runnability",),
    )


def _table3_payload(spec: CampaignSpec, values) -> list:
    v = values[spec.units()[0].key]
    return [
        [[name, list(row)] for name, row in v["rows"]],
        v["matches_paper"],
        v["runnable_blocks"],
    ]


register_campaign(table3_spec(), golden_payload=_table3_payload)


def run_table3() -> Table3Result:
    spec = table3_spec()
    result = CampaignRunner().run(spec)
    return result.objects[spec.units()[0].key]


def format_table3(r: Table3Result) -> str:
    lines = [
        f"{'Architecture':12s} {'Block class':18s} {'d_model':>8s} "
        f"{'d_ff':>6s} {'h':>4s} {'S':>6s}"
    ]
    for name, (cls, dm, dff, h, s) in r.rows.items():
        lines.append(f"{name:12s} {cls:18s} {dm:8d} {dff:6d} {h:4d} {s:6d}")
    lines.append(f"matches paper Table 3: {r.matches_paper}; "
                 f"all block classes runnable: {r.runnable_blocks}")
    return "\n".join(lines)
