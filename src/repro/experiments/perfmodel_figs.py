"""Performance-model figures: Fig. 5 (Chimera + BERT-Base), Fig. 6 / 11-16
(sweeps over micro-batch size, depth, N_micro, hardware, architecture),
and Figs. 9-10 (GPipe/1F1B and Chimera for BERT-Base/Large).

Each run returns the same series the paper plots: per-step time breakdown,
memory breakdown, throughput for the four execution strategies, and the
(curvature+inversion)/bubble ratio.

The grids are declared as registered :class:`repro.campaign.CampaignSpec`
data — one ``perf_report`` unit per grid cell — and executed by the
:class:`repro.campaign.CampaignRunner` through the shared
:class:`repro.sweep.SweepEngine` (pass ``engine=`` to use a private one).
The ``run_*`` functions are thin wrappers that expand the same specs
in-process, so their outputs are bit-identical to the pre-campaign
imperative loops (pinned by ``tests/experiments/`` goldens); the same
specs run resumably/shardably via ``python -m repro.cli campaign``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    perf_cell,
    register_campaign,
)
from repro.perfmodel.model import PerfReport
from repro.sweep.engine import SweepEngine


@dataclass
class PerfFigure:
    """One panel grid: (b_micro, depth) -> report, for a schedule/arch/hw."""

    arch: str
    hardware: str
    schedule: str
    n_micro_factor: int
    recompute: bool
    grid: dict[tuple[int, int], PerfReport]

    def series(self, field: str) -> dict[tuple[int, int], float]:
        return {k: getattr(r, field) for k, r in self.grid.items()}


def _fixed(**params) -> tuple:
    return tuple(sorted(params.items()))


# -- campaign specs (the declarative form of each figure) -----------------------


def fig5_spec(
    b_micro_values=(8, 16, 32),
    depth_values=(4, 8, 16),
    recompute: bool = False,
) -> CampaignSpec:
    """Fig. 5 as data: Chimera with BERT-Base blocks on P100, N_micro = D."""
    return CampaignSpec(
        name="fig5",
        title="Fig. 5: Chimera + BERT-Base perf model on P100",
        kind="perf_report",
        fixed=_fixed(arch="BERT-Base", hardware="P100", schedule="chimera",
                     n_micro_factor=1, recompute=recompute),
        grid=(("b_micro", tuple(b_micro_values)),
              ("depth", tuple(depth_values))),
        golden="fig5",
        artifacts=("figure series: throughput/ratio/memory grid",),
    )


def fig6_spec(
    arch_name: str = "BERT-Base",
    hardware_names=("P100", "V100", "RTX3090"),
    b_micro_values=(1, 2, 4, 8, 16, 32, 64),
    depth_values=(4, 8, 16, 32),
    n_micro_factors=(1, 2, 3),
    name: str = "fig6",
) -> CampaignSpec:
    """Fig. 6 (and Figs. 11-16 per architecture) as data."""
    return CampaignSpec(
        name=name,
        title=f"Fig. 6: Chimera+PipeFisher sweep, {arch_name} "
              f"across hardware / N_micro factors",
        kind="perf_report",
        fixed=_fixed(arch=arch_name, schedule="chimera", recompute=False),
        grid=(("hardware", tuple(hardware_names)),
              ("n_micro_factor", tuple(n_micro_factors)),
              ("b_micro", tuple(b_micro_values)),
              ("depth", tuple(depth_values))),
        golden=("fig6" if name == "fig6" else None),
        artifacts=("figure series: one PerfFigure per "
                   "(hardware, n_micro_factor)",),
    )


def fig9_10_spec(
    arch_names=("BERT-Base", "BERT-Large"),
    schedules=("gpipe", "chimera"),
    b_micro_values=(8, 16, 32),
    depth_values=(4, 8, 16),
    recompute: bool = False,
) -> CampaignSpec:
    """Figs. 9/10 as data: GPipe/1F1B and Chimera for BERT-Base/-Large."""
    return CampaignSpec(
        name="fig9_10",
        title="Figs. 9-10: perf-model panels per (arch, schedule)",
        kind="perf_report",
        fixed=_fixed(hardware="P100", n_micro_factor=1, recompute=recompute),
        grid=(("arch", tuple(arch_names)),
              ("schedule", tuple(schedules)),
              ("b_micro", tuple(b_micro_values)),
              ("depth", tuple(depth_values))),
        golden="fig9",
        artifacts=("figure series: one PerfFigure per (arch, schedule)",),
    )


# -- golden payload builders (the committed golden structures, from values) -----


def _cells(units, values) -> dict:
    return {
        (u.params_dict()["b_micro"], u.params_dict()["depth"]):
            perf_cell(values[u.key])
        for u in units
    }


def _fig5_payload(spec: CampaignSpec, values) -> list:
    cells = _cells(spec.units(), values)
    return [[list(k), cells[k]] for k in sorted(cells)]


def _grouped_payload(spec: CampaignSpec, values, group_of, sort_groups: bool):
    order: list = []
    groups: dict = {}
    for u in spec.units():
        p = u.params_dict()
        g = group_of(p)
        if g not in groups:
            order.append(g)
            groups[g] = {}
        groups[g][(p["b_micro"], p["depth"])] = perf_cell(values[u.key])
    if sort_groups:
        order = sorted(order)
    return [
        [list(g), [[list(c), groups[g][c]] for c in sorted(groups[g])]]
        for g in order
    ]


def _fig6_payload(spec: CampaignSpec, values) -> list:
    return _grouped_payload(
        spec, values, lambda p: (p["hardware"], p["n_micro_factor"]),
        sort_groups=True)


def _fig9_payload(spec: CampaignSpec, values) -> list:
    return _grouped_payload(
        spec, values, lambda p: (p["arch"], p["schedule"]),
        sort_groups=False)


register_campaign(fig5_spec(), golden_payload=_fig5_payload)
register_campaign(
    fig6_spec(b_micro_values=(1, 4, 16, 64), depth_values=(4, 8, 16)),
    golden_payload=_fig6_payload)
register_campaign(fig9_10_spec(), golden_payload=_fig9_payload)


# -- thin wrappers: the historical run_* API over the campaign layer ------------


def _run(spec: CampaignSpec, engine: SweepEngine | None):
    return CampaignRunner(engine=engine).run(spec)


def _figure_from(spec: CampaignSpec, result, select) -> PerfFigure:
    """Assemble one PerfFigure from the units ``select`` admits."""
    first: dict | None = None
    grid: dict[tuple[int, int], PerfReport] = {}
    for unit in spec.units():
        p = unit.params_dict()
        if not select(p):
            continue
        first = first or p
        grid[(p["b_micro"], p["depth"])] = result.objects[unit.key]
    assert first is not None, "selector matched no units"
    return PerfFigure(first["arch"], first["hardware"], first["schedule"],
                      first.get("n_micro_factor", 1), first["recompute"],
                      grid)


def run_fig5(
    b_micro_values=(8, 16, 32),
    depth_values=(4, 8, 16),
    recompute: bool = False,
    engine: SweepEngine | None = None,
) -> PerfFigure:
    """Fig. 5: Chimera with BERT-Base blocks on P100, N_micro = D."""
    spec = fig5_spec(b_micro_values, depth_values, recompute)
    return _figure_from(spec, _run(spec, engine), lambda p: True)


def run_fig9_10(
    arch_name: str,
    schedule: str,
    b_micro_values=(8, 16, 32),
    depth_values=(4, 8, 16),
    recompute: bool = False,
    engine: SweepEngine | None = None,
) -> PerfFigure:
    """Figs. 9/10: GPipe/1F1B and Chimera models for BERT-Base/-Large."""
    spec = fig9_10_spec(arch_names=(arch_name,), schedules=(schedule,),
                        b_micro_values=b_micro_values,
                        depth_values=depth_values, recompute=recompute)
    return _figure_from(spec, _run(spec, engine), lambda p: True)


def run_fig6_sweep(
    arch_name: str = "BERT-Base",
    hardware_names=("P100", "V100", "RTX3090"),
    b_micro_values=(1, 2, 4, 8, 16, 32, 64),
    depth_values=(4, 8, 16, 32),
    n_micro_factors=(1, 2, 3),
    engine: SweepEngine | None = None,
) -> dict[tuple[str, int], PerfFigure]:
    """Fig. 6 (and Figs. 11-16 per architecture): Chimera+PipeFisher sweeps.

    Returns ``{(hardware, n_micro_factor): PerfFigure}``.
    """
    spec = fig6_spec(arch_name, hardware_names, b_micro_values,
                     depth_values, n_micro_factors)
    result = _run(spec, engine)
    out: dict[tuple[str, int], PerfFigure] = {}
    for hw_name in hardware_names:
        for factor in n_micro_factors:
            out[(hw_name, factor)] = _figure_from(
                spec, result,
                lambda p, h=hw_name, f=factor:
                    p["hardware"] == h and p["n_micro_factor"] == f)
    return out


def run_arch_sweep(
    arch_name: str,
    b_micro_values=(1, 2, 4, 8),
    depth_values=(4, 8, 16, 32),
    engine: SweepEngine | None = None,
) -> dict[tuple[str, int], PerfFigure]:
    """Figs. 13-16: T5/OPT sweeps (long sequences, smaller micro-batches)."""
    return run_fig6_sweep(
        arch_name=arch_name,
        b_micro_values=b_micro_values,
        depth_values=depth_values,
        engine=engine,
    )


def format_perf_figure(fig: PerfFigure) -> str:
    """Render a panel as the throughput/ratio table the paper plots."""
    lines = [
        f"{fig.schedule} + {fig.arch} on {fig.hardware} "
        f"(N_micro = {fig.n_micro_factor} * D"
        + (", recompute" if fig.recompute else "")
        + ")",
        f"{'B_micro':>8s} {'D':>4s} {'thr pipe':>9s} {'thr PF':>9s} "
        f"{'thr skip':>9s} {'thr naive':>10s} {'(c+i)/bub':>10s} {'mem GB':>7s}",
    ]
    for (b, d), r in sorted(fig.grid.items()):
        lines.append(
            f"{b:8d} {d:4d} {r.throughput_pipeline:9.1f} "
            f"{r.throughput_pipefisher:9.1f} {r.throughput_kfac_skip:9.1f} "
            f"{r.throughput_kfac_naive:10.1f} {r.ratio:10.2f} "
            f"{r.memory.total_gb():7.2f}"
        )
    return "\n".join(lines)
