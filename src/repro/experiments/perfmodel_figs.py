"""Performance-model figures: Fig. 5 (Chimera + BERT-Base), Fig. 6 / 11-16
(sweeps over micro-batch size, depth, N_micro, hardware, architecture),
and Figs. 9-10 (GPipe/1F1B and Chimera for BERT-Base/Large).

Each run returns the same series the paper plots: per-step time breakdown,
memory breakdown, throughput for the four execution strategies, and the
(curvature+inversion)/bubble ratio.

All grids evaluate through the shared :class:`repro.sweep.SweepEngine`
(pass ``engine=`` to use a private one): the engine's bounded stage-cost
cache computes each distinct ``(arch, hardware, b_micro)`` cost model
once per sweep instead of twice per grid cell, with results bit-identical
to the uncached per-point path (pinned by ``tests/experiments/`` goldens).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import HARDWARE
from repro.perfmodel.model import PerfReport, PipelinePerfModel
from repro.sweep.engine import SweepEngine, default_engine


@dataclass
class PerfFigure:
    """One panel grid: (b_micro, depth) -> report, for a schedule/arch/hw."""

    arch: str
    hardware: str
    schedule: str
    n_micro_factor: int
    recompute: bool
    grid: dict[tuple[int, int], PerfReport]

    def series(self, field: str) -> dict[tuple[int, int], float]:
        return {k: getattr(r, field) for k, r in self.grid.items()}


def _model(arch_name: str, hw_name: str, schedule: str,
           engine: SweepEngine | None) -> PipelinePerfModel:
    engine = default_engine() if engine is None else engine
    return engine.perf_model(ARCHITECTURES[arch_name], HARDWARE[hw_name],
                             schedule)


def run_fig5(
    b_micro_values=(8, 16, 32),
    depth_values=(4, 8, 16),
    recompute: bool = False,
    engine: SweepEngine | None = None,
) -> PerfFigure:
    """Fig. 5: Chimera with BERT-Base blocks on P100, N_micro = D."""
    model = _model("BERT-Base", "P100", "chimera", engine)
    grid = model.sweep(list(b_micro_values), list(depth_values), recompute=recompute)
    return PerfFigure("BERT-Base", "P100", "chimera", 1, recompute, grid)


def run_fig9_10(
    arch_name: str,
    schedule: str,
    b_micro_values=(8, 16, 32),
    depth_values=(4, 8, 16),
    recompute: bool = False,
    engine: SweepEngine | None = None,
) -> PerfFigure:
    """Figs. 9/10: GPipe/1F1B and Chimera models for BERT-Base/-Large."""
    model = _model(arch_name, "P100", schedule, engine)
    grid = model.sweep(list(b_micro_values), list(depth_values), recompute=recompute)
    return PerfFigure(arch_name, "P100", schedule, 1, recompute, grid)


def run_fig6_sweep(
    arch_name: str = "BERT-Base",
    hardware_names=("P100", "V100", "RTX3090"),
    b_micro_values=(1, 2, 4, 8, 16, 32, 64),
    depth_values=(4, 8, 16, 32),
    n_micro_factors=(1, 2, 3),
    engine: SweepEngine | None = None,
) -> dict[tuple[str, int], PerfFigure]:
    """Fig. 6 (and Figs. 11-16 per architecture): Chimera+PipeFisher sweeps.

    Returns ``{(hardware, n_micro_factor): PerfFigure}``.
    """
    out: dict[tuple[str, int], PerfFigure] = {}
    for hw_name in hardware_names:
        model = _model(arch_name, hw_name, "chimera", engine)
        for factor in n_micro_factors:
            grid = model.sweep(
                list(b_micro_values), list(depth_values), n_micro_factor=factor
            )
            out[(hw_name, factor)] = PerfFigure(
                arch_name, hw_name, "chimera", factor, False, grid
            )
    return out


def run_arch_sweep(
    arch_name: str,
    b_micro_values=(1, 2, 4, 8),
    depth_values=(4, 8, 16, 32),
    engine: SweepEngine | None = None,
) -> dict[tuple[str, int], PerfFigure]:
    """Figs. 13-16: T5/OPT sweeps (long sequences, smaller micro-batches)."""
    return run_fig6_sweep(
        arch_name=arch_name,
        b_micro_values=b_micro_values,
        depth_values=depth_values,
        engine=engine,
    )


def format_perf_figure(fig: PerfFigure) -> str:
    """Render a panel as the throughput/ratio table the paper plots."""
    lines = [
        f"{fig.schedule} + {fig.arch} on {fig.hardware} "
        f"(N_micro = {fig.n_micro_factor} * D"
        + (", recompute" if fig.recompute else "")
        + ")",
        f"{'B_micro':>8s} {'D':>4s} {'thr pipe':>9s} {'thr PF':>9s} "
        f"{'thr skip':>9s} {'thr naive':>10s} {'(c+i)/bub':>10s} {'mem GB':>7s}",
    ]
    for (b, d), r in sorted(fig.grid.items()):
        lines.append(
            f"{b:8d} {d:4d} {r.throughput_pipeline:9.1f} "
            f"{r.throughput_pipefisher:9.1f} {r.throughput_kfac_skip:9.1f} "
            f"{r.throughput_kfac_naive:10.1f} {r.ratio:10.2f} "
            f"{r.memory.total_gb():7.2f}"
        )
    return "\n".join(lines)
