"""Zero-bubble (ZB-H1) schedule experiments (extension, Qi et al. 2024).

Two drivers:

* :func:`run_zb_sweep` — a Fig. 6-style BERT-Base grid evaluated twice
  per point, as plain 1F1B and as ZB-H1 (``zb1f1b``: backward split into
  an input-grad critical path and weight-grad work deferred into the
  bubbles).  Reports the tradeoff the zero-bubble paper promises — a
  shorter step and a smaller bubble fraction at 1F1B's activation
  memory — plus what that does to PipeFisher: less idle room means a
  longer curvature-refresh interval, the same tension §3.3 frames for
  Chimera.
* :func:`run_schedule_panel` — one Fig. 3-style panel for *any*
  registered schedule (the CLI's ``--schedule`` entry point), so a newly
  registered spec is runnable end-to-end without touching the CLI.

Both are registered campaigns (``zb`` and ``schedule_panel``) built from
``pipefisher`` units with ``record_bubble`` set, so the run DB carries
the bubble fractions the golden pins; the ``run_*`` functions are thin
wrappers expanding the same specs in-process.  Every (1F1B, ZB-H1) pair
per depth shares compiled schedule templates across the micro-batch
sizes, and reports are bit-identical to per-point
``PipeFisherRun.execute()`` (asserted in ``tests/sweep/`` and pinned by
``tests/experiments/goldens/zb.json``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    pf_report_row,
    register_campaign,
)
from repro.pipefisher.runner import PipeFisherReport
from repro.pipeline.bubbles import bubble_fraction
from repro.sweep.engine import SweepEngine


def baseline_bubble_fraction(report: PipeFisherReport) -> float:
    """Idle fraction of the baseline (no K-FAC) step template."""
    return bubble_fraction(report.base_template,
                           (0.0, report.baseline_step_time))


@dataclass
class ZeroBubbleRow:
    """One grid point: the 1F1B baseline and its ZB-H1 counterpart."""

    arch: str
    b_micro: int
    depth: int
    n_micro: int
    one_f_one_b: PipeFisherReport
    zero_bubble: PipeFisherReport

    @property
    def step_speedup(self) -> float:
        """Baseline step-time advantage of ZB-H1 (> 1 is faster)."""
        return (self.one_f_one_b.baseline_step_time
                / self.zero_bubble.baseline_step_time)

    @property
    def bubble_1f1b(self) -> float:
        return baseline_bubble_fraction(self.one_f_one_b)

    @property
    def bubble_zb(self) -> float:
        return baseline_bubble_fraction(self.zero_bubble)


@dataclass
class ZeroBubbleSweepResult:
    rows: dict[tuple[int, int], ZeroBubbleRow]  #: (b_micro, depth) -> row


def zb_spec(
    arch_name: str = "BERT-Base",
    b_micro_values=(4, 16, 32),
    depth_values=(4, 8, 16),
    n_micro_factor: int = 1,
) -> CampaignSpec:
    """The ZB-H1 vs 1F1B grid as data (N_micro = factor * D, P100)."""
    return CampaignSpec(
        name="zb",
        title="ZB-H1 zero-bubble vs 1F1B grid (BERT-Base blocks, P100)",
        kind="pipefisher",
        fixed=tuple(sorted({
            "arch": arch_name,
            "hardware": "P100",
            "n_micro_factor": n_micro_factor,
            "record_bubble": True,
        }.items())),
        grid=(("depth", tuple(depth_values)),
              ("b_micro", tuple(b_micro_values)),
              ("schedule", ("1f1b", "zb1f1b"))),
        golden="zb",
        artifacts=("figure series: bubble fraction / utilization / step "
                   "speedup per grid point, both schedules",),
    )


def _zb_payload(spec: CampaignSpec, values) -> list:
    pairs: dict[tuple[int, int], dict[str, dict]] = {}
    for u in spec.units():
        p = u.params_dict()
        pairs.setdefault((p["b_micro"], p["depth"]), {})[p["schedule"]] = (
            values[u.key])
    payload = []
    for key in sorted(pairs):
        f = pairs[key]["1f1b"]
        z = pairs[key]["zb1f1b"]
        payload.append([
            list(key),
            pf_report_row(f),
            pf_report_row(z),
            f["baseline_bubble_fraction"],
            z["baseline_bubble_fraction"],
            f["baseline_step_time"] / z["baseline_step_time"],
        ])
    return payload


register_campaign(zb_spec(), golden_payload=_zb_payload)


def run_zb_sweep(
    arch_name: str = "BERT-Base",
    b_micro_values=(4, 16, 32),
    depth_values=(4, 8, 16),
    n_micro_factor: int = 1,
    engine: SweepEngine | None = None,
) -> ZeroBubbleSweepResult:
    """The Fig. 6-style ZB-H1 vs 1F1B grid (N_micro = factor * D, P100)."""
    spec = zb_spec(arch_name, b_micro_values, depth_values, n_micro_factor)
    result = CampaignRunner(engine=engine).run(spec)
    pairs: dict[tuple[int, int], dict[str, PipeFisherReport]] = {}
    for unit in spec.units():
        p = unit.params_dict()
        pairs.setdefault((p["b_micro"], p["depth"]), {})[p["schedule"]] = (
            result.objects[unit.key])
    rows = {
        (b, d): ZeroBubbleRow(
            arch=arch_name,
            b_micro=b,
            depth=d,
            n_micro=n_micro_factor * d,
            one_f_one_b=reports["1f1b"],
            zero_bubble=reports["zb1f1b"],
        )
        for (b, d), reports in pairs.items()
    }
    return ZeroBubbleSweepResult(rows=rows)


def format_zb_sweep(result: ZeroBubbleSweepResult) -> str:
    arch = next(iter(result.rows.values())).arch if result.rows else "?"
    lines = [
        f"ZB-H1 zero-bubble vs 1F1B ({arch} blocks, P100, same devices, "
        "same activation memory)",
        f"{'B_micro':>8s} {'D':>4s} "
        f"{'1f1b bub':>9s} {'zb bub':>8s} "
        f"{'1f1b util':>10s} {'zb util':>8s} "
        f"{'step x':>7s} {'zb PF util':>11s} {'zb refresh':>11s}",
    ]
    for (b, d), row in sorted(result.rows.items()):
        f, z = row.one_f_one_b, row.zero_bubble
        lines.append(
            f"{b:8d} {d:4d} "
            f"{row.bubble_1f1b:9.3f} {row.bubble_zb:8.3f} "
            f"{f.baseline_utilization:10.3f} {z.baseline_utilization:8.3f} "
            f"{row.step_speedup:7.3f} {z.pipefisher_utilization:11.3f} "
            f"{z.refresh_steps:11d}"
        )
    return "\n".join(lines)


# -- single-schedule panel (the CLI's --schedule entry point) -------------------


@dataclass
class SchedulePanel:
    """A Fig. 3-style PipeFisher panel for one registered schedule."""

    schedule: str
    report: PipeFisherReport

    @property
    def baseline_bubble(self) -> float:
        return baseline_bubble_fraction(self.report)


def schedule_panel_spec(
    schedule: str = "zb1f1b",
    arch_name: str = "BERT-Base",
    b_micro: int = 32,
    depth: int = 4,
    n_micro: int = 8,
    layers_per_stage: int = 3,
) -> CampaignSpec:
    """One Fig. 3-style panel for any registered schedule, as data."""
    return CampaignSpec(
        name="schedule_panel",
        title="Fig. 3-style panel for one registered schedule",
        kind="pipefisher",
        fixed=tuple(sorted({
            "schedule": schedule,
            "arch": arch_name,
            "hardware": "P100",
            "b_micro": b_micro,
            "depth": depth,
            "n_micro": n_micro,
            "layers_per_stage": layers_per_stage,
            "record_bubble": True,
        }.items())),
        artifacts=("figure panel: utilization/bubble/refresh for one "
                   "schedule",),
    )


register_campaign(schedule_panel_spec())


def run_schedule_panel(
    schedule: str = "zb1f1b",
    arch_name: str = "BERT-Base",
    b_micro: int = 32,
    depth: int = 4,
    n_micro: int = 8,
    layers_per_stage: int = 3,
    engine: SweepEngine | None = None,
) -> SchedulePanel:
    """Run any registered schedule at the paper's Fig. 3 configuration."""
    spec = schedule_panel_spec(schedule, arch_name, b_micro, depth, n_micro,
                               layers_per_stage)
    result = CampaignRunner(engine=engine).run(spec)
    return SchedulePanel(schedule=schedule,
                         report=result.objects[spec.units()[0].key])


def format_schedule_panel(panel: SchedulePanel) -> str:
    r = panel.report
    return "\n".join([
        f"schedule {panel.schedule}: {r.num_devices} devices",
        f"  baseline step time   {r.baseline_step_time * 1000:9.1f} ms",
        f"  baseline GPU util    {r.baseline_utilization:9.1%}",
        f"  baseline bubble frac {panel.baseline_bubble:9.1%}",
        f"  PipeFisher step time {r.pipefisher_step_time * 1000:9.1f} ms "
        f"(+{r.step_time_overhead:.1%})",
        f"  PipeFisher GPU util  {r.pipefisher_utilization:9.1%}",
        f"  curvature refresh    every {r.refresh_steps} steps",
    ])
