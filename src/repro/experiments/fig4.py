"""Figure 4: Chimera profile, BERT-Large, with/without PipeFisher.

Setup (caption): BERT-Large (L=24) with 8 stages (3 layers per stage), 8
GPUs, 8 micro-batches of size 32 per GPU per step, sequence length 128;
PipeFisher runs with data and inversion parallelism across the pipeline
pair.

The setup is declared once as :data:`FIG4_UNIT_PARAMS` — the registered
``fig4`` campaign runs it as a single ``pipefisher`` unit, and table 2's
campaign reuses the identical unit (same canonical point hash) through
the sweep engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignRunner, CampaignSpec, register_campaign
from repro.pipefisher.runner import PipeFisherReport
from repro.sweep.engine import SweepEngine

FIG4_PAPER = {
    "baseline_utilization": 0.598,
    "pipefisher_utilization": 0.976,
    "refresh_steps_range": (2, 4),
    #: Table 2 cites these step times from this exact setup.
    "baseline_step_time_s": 2.3456,
    "pipefisher_step_time_s": 2.4995,
}

#: The Fig. 4 panel as campaign-unit parameters (shared with table 2).
FIG4_UNIT_PARAMS = {
    "schedule": "chimera",
    "arch": "BERT-Large",
    "hardware": "P100",
    "b_micro": 32,
    "depth": 8,
    "n_micro": 8,
    "layers_per_stage": 3,
    "inversion_parallel": True,
}


@dataclass
class Fig4Result:
    report: PipeFisherReport


def fig4_spec(via_engine: bool = False) -> CampaignSpec:
    """Fig. 4 as data (``via_engine`` picks the evaluation path; both are
    bit-identical per the sweep-engine equivalence tests)."""
    return CampaignSpec(
        name="fig4",
        title="Fig. 4: Chimera + BERT-Large PipeFisher panel",
        kind="pipefisher",
        fixed=tuple(sorted(
            {**FIG4_UNIT_PARAMS, "via_engine": via_engine}.items())),
        artifacts=("figure panel: utilization/step-time/refresh report",),
    )


register_campaign(fig4_spec(via_engine=True))


def run_fig4(engine: SweepEngine | None = None) -> Fig4Result:
    """Run the Fig. 4 panel; with ``engine``, evaluate through the sweep
    engine (bit-identical — table 2 routes here with the shared engine)."""
    spec = fig4_spec(via_engine=engine is not None)
    result = CampaignRunner(engine=engine).run(spec)
    return Fig4Result(report=result.objects[spec.units()[0].key])


def format_fig4(result: Fig4Result) -> str:
    r = result.report
    p = FIG4_PAPER
    lo, hi = p["refresh_steps_range"]
    return "\n".join(
        [
            f"{'quantity':28s} {'paper':>10s} {'measured':>10s}",
            f"{'baseline GPU util':28s} {p['baseline_utilization']:10.1%} "
            f"{r.baseline_utilization:10.1%}",
            f"{'PipeFisher GPU util':28s} {p['pipefisher_utilization']:10.1%} "
            f"{r.pipefisher_utilization:10.1%}",
            f"{'baseline time/step':28s} {p['baseline_step_time_s']:9.3f}s "
            f"{r.baseline_step_time:9.3f}s",
            f"{'PipeFisher time/step':28s} {p['pipefisher_step_time_s']:9.3f}s "
            f"{r.pipefisher_step_time:9.3f}s",
            f"{'refresh interval (steps)':28s} {f'{lo}-{hi}':>10s} "
            f"{r.refresh_steps:>10d}",
        ]
    )
