"""Figure 4: Chimera profile, BERT-Large, with/without PipeFisher.

Setup (caption): BERT-Large (L=24) with 8 stages (3 layers per stage), 8
GPUs, 8 micro-batches of size 32 per GPU per step, sequence length 128;
PipeFisher runs with data and inversion parallelism across the pipeline
pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import BERT_LARGE
from repro.perfmodel.hardware import P100
from repro.pipefisher.runner import PipeFisherReport, PipeFisherRun
from repro.sweep.engine import SweepEngine

FIG4_PAPER = {
    "baseline_utilization": 0.598,
    "pipefisher_utilization": 0.976,
    "refresh_steps_range": (2, 4),
    #: Table 2 cites these step times from this exact setup.
    "baseline_step_time_s": 2.3456,
    "pipefisher_step_time_s": 2.4995,
}


@dataclass
class Fig4Result:
    report: PipeFisherReport


def run_fig4(engine: SweepEngine | None = None) -> Fig4Result:
    """Run the Fig. 4 panel; with ``engine``, evaluate through the sweep
    engine (bit-identical — table 2 routes here with the shared engine)."""
    run = PipeFisherRun(
        schedule="chimera",
        arch=BERT_LARGE,
        hardware=P100,
        b_micro=32,
        depth=8,
        n_micro=8,
        layers_per_stage=3,
        inversion_parallel=True,
    )
    report = run.execute() if engine is None else engine.run(run)
    return Fig4Result(report=report)


def format_fig4(result: Fig4Result) -> str:
    r = result.report
    p = FIG4_PAPER
    lo, hi = p["refresh_steps_range"]
    return "\n".join(
        [
            f"{'quantity':28s} {'paper':>10s} {'measured':>10s}",
            f"{'baseline GPU util':28s} {p['baseline_utilization']:10.1%} "
            f"{r.baseline_utilization:10.1%}",
            f"{'PipeFisher GPU util':28s} {p['pipefisher_utilization']:10.1%} "
            f"{r.pipefisher_utilization:10.1%}",
            f"{'baseline time/step':28s} {p['baseline_step_time_s']:9.3f}s "
            f"{r.baseline_step_time:9.3f}s",
            f"{'PipeFisher time/step':28s} {p['pipefisher_step_time_s']:9.3f}s "
            f"{r.pipefisher_step_time:9.3f}s",
            f"{'refresh interval (steps)':28s} {f'{lo}-{hi}':>10s} "
            f"{r.refresh_steps:>10d}",
        ]
    )
