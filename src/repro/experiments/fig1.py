"""Figure 1: schematic GPipe vs PipeFisher-for-GPipe schedule.

4 stages, 4 micro-batches, 4 devices; PipeFisher fills the bubbles of two
consecutive steps with one full curvature+inversion refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.hardware import P100
from repro.pipefisher.runner import PipeFisherReport, PipeFisherRun
from repro.profiler.ascii_viz import render_timeline


@dataclass
class Fig1Result:
    report: PipeFisherReport
    gpipe_art: str
    pipefisher_art: str


def run_fig1(width: int = 110) -> Fig1Result:
    """Reproduce the Fig. 1 schematic (as ASCII timelines)."""
    report = PipeFisherRun(
        schedule="gpipe",
        arch=BERT_BASE,
        hardware=P100,
        b_micro=32,
        depth=4,
        n_micro=4,
        layers_per_stage=3,
        window_steps=2,
        materialize_window=True,
    ).execute()
    two_steps = (0.0, 2 * report.baseline_step_time)
    gpipe_art = render_timeline(report.baseline_timeline, width=width, window=two_steps)
    pf_window = (0.0, 2 * report.pipefisher_step_time)
    pf_art = render_timeline(report.pipefisher_timeline, width=width, window=pf_window)
    return Fig1Result(report=report, gpipe_art=gpipe_art, pipefisher_art=pf_art)


def format_fig1(result: Fig1Result) -> str:
    r = result.report
    return (
        "(a) GPipe (2 steps)\n"
        f"{result.gpipe_art}\n\n"
        "(b) PipeFisher for GPipe (2 steps of the "
        f"{r.refresh_steps}-step refresh cycle)\n"
        f"{result.pipefisher_art}\n\n"
        f"GPU utilization: {r.baseline_utilization:.1%} -> "
        f"{r.pipefisher_utilization:.1%}; curvature refreshed every "
        f"{r.refresh_steps} steps; per-step overhead {r.step_time_overhead:.1%} "
        "(precondition only)"
    )
