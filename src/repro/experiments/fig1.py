"""Figure 1: schematic GPipe vs PipeFisher-for-GPipe schedule.

4 stages, 4 micro-batches, 4 devices; PipeFisher fills the bubbles of two
consecutive steps with one full curvature+inversion refresh.

Registered as the single-unit ``fig1`` campaign (one ``pipefisher`` unit
with the timeline window materialized); :func:`run_fig1` is a thin
wrapper that renders the ASCII panels from the live report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignRunner, CampaignSpec, register_campaign
from repro.pipefisher.runner import PipeFisherReport
from repro.profiler.ascii_viz import render_timeline

#: The Fig. 1 schematic as campaign-unit parameters.
FIG1_UNIT_PARAMS = {
    "schedule": "gpipe",
    "arch": "BERT-Base",
    "hardware": "P100",
    "b_micro": 32,
    "depth": 4,
    "n_micro": 4,
    "layers_per_stage": 3,
    "window_steps": 2,
    "materialize_window": True,
    "via_engine": False,
}


@dataclass
class Fig1Result:
    report: PipeFisherReport
    gpipe_art: str
    pipefisher_art: str


def fig1_spec() -> CampaignSpec:
    return CampaignSpec(
        name="fig1",
        title="Fig. 1: GPipe vs PipeFisher-for-GPipe schematic",
        kind="pipefisher",
        fixed=tuple(sorted(FIG1_UNIT_PARAMS.items())),
        artifacts=("figure panels: two-step ASCII timelines, both "
                   "schedules",),
    )


register_campaign(fig1_spec())


def run_fig1(width: int = 110) -> Fig1Result:
    """Reproduce the Fig. 1 schematic (as ASCII timelines)."""
    spec = fig1_spec()
    result = CampaignRunner().run(spec)
    report = result.objects[spec.units()[0].key]
    two_steps = (0.0, 2 * report.baseline_step_time)
    gpipe_art = render_timeline(report.baseline_timeline, width=width, window=two_steps)
    pf_window = (0.0, 2 * report.pipefisher_step_time)
    pf_art = render_timeline(report.pipefisher_timeline, width=width, window=pf_window)
    return Fig1Result(report=report, gpipe_art=gpipe_art, pipefisher_art=pf_art)


def format_fig1(result: Fig1Result) -> str:
    r = result.report
    return (
        "(a) GPipe (2 steps)\n"
        f"{result.gpipe_art}\n\n"
        "(b) PipeFisher for GPipe (2 steps of the "
        f"{r.refresh_steps}-step refresh cycle)\n"
        f"{result.pipefisher_art}\n\n"
        f"GPU utilization: {r.baseline_utilization:.1%} -> "
        f"{r.pipefisher_utilization:.1%}; curvature refreshed every "
        f"{r.refresh_steps} steps; per-step overhead {r.step_time_overhead:.1%} "
        "(precondition only)"
    )
