"""Figure 3: GPipe and 1F1B profiles, BERT-Base, with/without PipeFisher.

Setup (caption): pretraining BERT-Base (L=12) with 4 stages (3 layers per
stage), 4 or 8 GPUs, 4 micro-batches of size 32 per GPU per step, sequence
length 128, on P100s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import BERT_BASE
from repro.perfmodel.hardware import P100
from repro.pipefisher.runner import PipeFisherReport, PipeFisherRun

#: Paper-reported GPU utilizations for each panel.
FIG3_PAPER = {
    "gpipe_baseline": 0.417,
    "gpipe_pipefisher": 0.890,
    "gpipe_pipefisher_dp": 0.862,
    "1f1b_baseline": 0.415,
    "1f1b_pipefisher": 0.887,
    "1f1b_pipefisher_dp": 0.863,
    "max_refresh_steps": 2,
}


@dataclass
class Fig3Result:
    panels: dict[str, PipeFisherReport]

    def utilizations(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for sched in ("gpipe", "1f1b"):
            r = self.panels[sched]
            out[f"{sched}_baseline"] = r.baseline_utilization
            out[f"{sched}_pipefisher"] = r.pipefisher_utilization
            out[f"{sched}_pipefisher_dp"] = self.panels[
                f"{sched}_dp"
            ].pipefisher_utilization
        return out


def run_fig3() -> Fig3Result:
    """Reproduce all six panels of Fig. 3."""
    panels: dict[str, PipeFisherReport] = {}
    for sched in ("gpipe", "1f1b"):
        panels[sched] = PipeFisherRun(
            schedule=sched,
            arch=BERT_BASE,
            hardware=P100,
            b_micro=32,
            depth=4,
            n_micro=4,
            layers_per_stage=3,
        ).execute()
        panels[f"{sched}_dp"] = PipeFisherRun(
            schedule=sched,
            arch=BERT_BASE,
            hardware=P100,
            b_micro=32,
            depth=4,
            n_micro=4,
            layers_per_stage=3,
            dp=2,
            inversion_parallel=True,
        ).execute()
    return Fig3Result(panels=panels)


def format_fig3(result: Fig3Result) -> str:
    lines = [
        f"{'panel':26s} {'paper':>7s} {'measured':>9s}",
    ]
    measured = result.utilizations()
    for key, paper in FIG3_PAPER.items():
        if key == "max_refresh_steps":
            continue
        lines.append(f"{key:26s} {paper:7.1%} {measured[key]:9.1%}")
    for sched in ("gpipe", "1f1b"):
        lines.append(
            f"{sched} refresh interval: {result.panels[sched].refresh_steps} steps "
            f"(paper: <= {FIG3_PAPER['max_refresh_steps']})"
        )
    return "\n".join(lines)
