"""Figure 3: GPipe and 1F1B profiles, BERT-Base, with/without PipeFisher.

Setup (caption): pretraining BERT-Base (L=12) with 4 stages (3 layers per
stage), 4 or 8 GPUs, 4 micro-batches of size 32 per GPU per step, sequence
length 128, on P100s.

The six panels come from four simulations — per schedule, one plain run
and one with dp=2 + inversion parallelism — declared as explicit units of
the registered ``fig3`` campaign; :func:`run_fig3` is a thin wrapper
rebuilding the panel dict from the unit order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    UnitSpec,
    register_campaign,
)
from repro.pipefisher.runner import PipeFisherReport

#: Paper-reported GPU utilizations for each panel.
FIG3_PAPER = {
    "gpipe_baseline": 0.417,
    "gpipe_pipefisher": 0.890,
    "gpipe_pipefisher_dp": 0.862,
    "1f1b_baseline": 0.415,
    "1f1b_pipefisher": 0.887,
    "1f1b_pipefisher_dp": 0.863,
    "max_refresh_steps": 2,
}

#: Panel name -> extra params on top of the shared Fig. 3 configuration.
FIG3_PANELS: tuple[tuple[str, dict], ...] = (
    ("gpipe", {"schedule": "gpipe"}),
    ("gpipe_dp", {"schedule": "gpipe", "dp": 2, "inversion_parallel": True}),
    ("1f1b", {"schedule": "1f1b"}),
    ("1f1b_dp", {"schedule": "1f1b", "dp": 2, "inversion_parallel": True}),
)

_FIG3_BASE = {
    "arch": "BERT-Base",
    "hardware": "P100",
    "b_micro": 32,
    "depth": 4,
    "n_micro": 4,
    "layers_per_stage": 3,
    "via_engine": False,
}


@dataclass
class Fig3Result:
    panels: dict[str, PipeFisherReport]

    def utilizations(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for sched in ("gpipe", "1f1b"):
            r = self.panels[sched]
            out[f"{sched}_baseline"] = r.baseline_utilization
            out[f"{sched}_pipefisher"] = r.pipefisher_utilization
            out[f"{sched}_pipefisher_dp"] = self.panels[
                f"{sched}_dp"
            ].pipefisher_utilization
        return out


def fig3_spec() -> CampaignSpec:
    units = tuple(
        UnitSpec.make("pipefisher", **{**_FIG3_BASE, **extra})
        for _, extra in FIG3_PANELS
    )
    return CampaignSpec(
        name="fig3",
        title="Fig. 3: GPipe / 1F1B PipeFisher panels (BERT-Base, P100)",
        explicit_units=units,
        artifacts=("figure panels: utilization per schedule, plain and "
                   "dp=2 + inversion-parallel",),
    )


register_campaign(fig3_spec())


def run_fig3() -> Fig3Result:
    """Reproduce all six panels of Fig. 3."""
    spec = fig3_spec()
    result = CampaignRunner().run(spec)
    panels = {
        name: result.objects[unit.key]
        for (name, _), unit in zip(FIG3_PANELS, spec.units())
    }
    return Fig3Result(panels=panels)


def format_fig3(result: Fig3Result) -> str:
    lines = [
        f"{'panel':26s} {'paper':>7s} {'measured':>9s}",
    ]
    measured = result.utilizations()
    for key, paper in FIG3_PAPER.items():
        if key == "max_refresh_steps":
            continue
        lines.append(f"{key:26s} {paper:7.1%} {measured[key]:9.1%}")
    for sched in ("gpipe", "1f1b"):
        lines.append(
            f"{sched} refresh interval: {result.panels[sched].refresh_steps} steps "
            f"(paper: <= {FIG3_PAPER['max_refresh_steps']})"
        )
    return "\n".join(lines)
