"""Interleaved-1F1B architecture sweep (extension experiment).

For each (architecture, devices P, chunks v) row, build the *same model*
twice — plain 1F1B with ``L / P`` layers per stage, and interleaved 1F1B
with ``P * v`` virtual stages of ``L / (P * v)`` layers — run both with
and without PipeFisher, and report the schedule tradeoff the paper's §3.3
frames for Chimera, extended to Megatron-style virtual stages: fewer
bubbles mean a faster step and higher baseline utilization, but less idle
room for K-FAC work and hence a longer curvature-refresh interval.

The rows are registered as the ``interleaved`` campaign: because
``layers_per_stage`` is derived per row, the spec declares *explicit*
units (a 1F1B / interleaved pair per row) rather than a grid product.
:func:`run_interleaved_sweep` is a thin wrapper expanding the same spec
in-process (bit-identical to the former per-point loop; rows that share
a structural configuration share one schedule template).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    UnitSpec,
    pf_report_row,
    register_campaign,
)
from repro.pipefisher.runner import PipeFisherReport
from repro.sweep.engine import SweepEngine

#: Transformer blocks per model (the L of the paper's figure captions).
MODEL_LAYERS: dict[str, int] = {
    "BERT-Base": 12,
    "BERT-Large": 24,
}

#: (architecture, physical devices P, virtual chunks v, micro-batches).
#: Layers per stage follow from the architecture's layer count.
SWEEP_ROWS: tuple[tuple[str, int, int, int], ...] = (
    ("BERT-Base", 4, 3, 8),
    ("BERT-Base", 3, 2, 6),
    ("BERT-Large", 4, 2, 8),
    ("BERT-Large", 4, 3, 8),
)


@dataclass
class InterleavedRow:
    """One sweep row: the 1F1B baseline and its interleaved counterpart."""

    arch: str
    devices: int
    chunks: int
    n_micro: int
    b_micro: int
    one_f_one_b: PipeFisherReport
    interleaved: PipeFisherReport

    @property
    def step_speedup(self) -> float:
        """Baseline step-time advantage of interleaving (> 1 is faster)."""
        return self.one_f_one_b.baseline_step_time / self.interleaved.baseline_step_time


@dataclass
class InterleavedSweepResult:
    rows: dict[tuple[str, int, int], InterleavedRow]


def _row_units(arch_name: str, devices: int, chunks: int, n_micro: int,
               b_micro: int) -> tuple[UnitSpec, UnitSpec]:
    """The (1F1B, interleaved) unit pair for one sweep row."""
    layers = MODEL_LAYERS[arch_name]
    if layers % (devices * chunks) != 0:
        raise ValueError(
            f"{arch_name}: {layers} layers not divisible into "
            f"{devices} devices x {chunks} chunks"
        )
    base = UnitSpec.make(
        "pipefisher",
        schedule="1f1b",
        arch=arch_name,
        hardware="P100",
        b_micro=b_micro,
        depth=devices,
        n_micro=n_micro,
        layers_per_stage=layers // devices,
    )
    inter = UnitSpec.make(
        "pipefisher",
        schedule="interleaved",
        arch=arch_name,
        hardware="P100",
        b_micro=b_micro,
        depth=devices * chunks,
        n_micro=n_micro,
        layers_per_stage=layers // (devices * chunks),
        virtual_chunks=chunks,
    )
    return base, inter


def interleaved_spec(
    rows: tuple[tuple[str, int, int, int], ...] = SWEEP_ROWS,
    b_micro: int = 32,
) -> CampaignSpec:
    """The interleaved sweep as data: explicit units, deduplicated.

    Rows may share a 1F1B baseline (same arch, devices, and N_micro);
    the canonical point hash makes that sharing explicit, so the shared
    unit is declared — and executed — once.
    """
    units: list[UnitSpec] = []
    seen: set[str] = set()
    for arch_name, devices, chunks, n_micro in rows:
        for unit in _row_units(arch_name, devices, chunks, n_micro, b_micro):
            if unit.key not in seen:
                seen.add(unit.key)
                units.append(unit)
    return CampaignSpec(
        name="interleaved",
        title="Interleaved-1F1B vs 1F1B across architectures and chunkings",
        explicit_units=tuple(units),
        golden="interleaved",
        artifacts=("figure series: utilization / step time / refresh per "
                   "(arch, P, v, N) row, both schedules",),
    )


def _interleaved_payload(spec: CampaignSpec, values) -> list:
    rows: dict[tuple, tuple[dict, dict]] = {}
    for inter_unit in spec.units():
        p = inter_unit.params_dict()
        if p["schedule"] != "interleaved":
            continue
        chunks = p["virtual_chunks"]
        devices = p["depth"] // chunks
        base_unit, _ = _row_units(p["arch"], devices, chunks, p["n_micro"],
                                  p["b_micro"])
        key = (p["arch"], devices, chunks, p["n_micro"])
        rows[key] = (values[base_unit.key], values[inter_unit.key])
    payload = []
    for key in sorted(rows):
        f, i = rows[key]
        payload.append([
            list(key),
            pf_report_row(f),
            pf_report_row(i),
            f["baseline_step_time"] / i["baseline_step_time"],
        ])
    return payload


register_campaign(interleaved_spec(), golden_payload=_interleaved_payload)


def run_interleaved_sweep(
    rows: tuple[tuple[str, int, int, int], ...] = SWEEP_ROWS,
    b_micro: int = 32,
    engine: SweepEngine | None = None,
) -> InterleavedSweepResult:
    """Run every row through the shared sweep engine (bit-identical to
    the former per-point ``PipeFisherRun.execute`` loop; rows that share
    a structural configuration share one schedule template)."""
    spec = interleaved_spec(rows, b_micro)
    result = CampaignRunner(engine=engine).run(spec)
    out: dict[tuple[str, int, int, int], InterleavedRow] = {}
    for arch_name, devices, chunks, n_micro in rows:
        base_unit, inter_unit = _row_units(arch_name, devices, chunks,
                                           n_micro, b_micro)
        out[(arch_name, devices, chunks, n_micro)] = InterleavedRow(
            arch=arch_name,
            devices=devices,
            chunks=chunks,
            n_micro=n_micro,
            b_micro=b_micro,
            one_f_one_b=result.objects[base_unit.key],
            interleaved=result.objects[inter_unit.key],
        )
    return InterleavedSweepResult(rows=out)


def format_interleaved_sweep(result: InterleavedSweepResult) -> str:
    b_micros = sorted({row.b_micro for row in result.rows.values()})
    lines = [
        "interleaved-1F1B vs 1F1B (same model, same devices; P100, "
        f"B_micro={'/'.join(str(b) for b in b_micros)})",
        f"{'arch':11s} {'P':>3s} {'v':>3s} {'N':>3s} "
        f"{'1f1b util':>10s} {'intl util':>10s} "
        f"{'1f1b s/step':>12s} {'intl s/step':>12s} "
        f"{'PF util':>8s} {'refresh':>8s}",
    ]
    for (arch, devices, chunks, n_micro), row in result.rows.items():
        f, i = row.one_f_one_b, row.interleaved
        lines.append(
            f"{arch:11s} {devices:3d} {chunks:3d} {n_micro:3d} "
            f"{f.baseline_utilization:10.1%} {i.baseline_utilization:10.1%} "
            f"{f.baseline_step_time:11.3f}s {i.baseline_step_time:11.3f}s "
            f"{i.pipefisher_utilization:8.1%} {i.refresh_steps:8d}"
        )
    return "\n".join(lines)
