"""Interleaved-1F1B architecture sweep (extension experiment).

For each (architecture, devices P, chunks v) row, build the *same model*
twice — plain 1F1B with ``L / P`` layers per stage, and interleaved 1F1B
with ``P * v`` virtual stages of ``L / (P * v)`` layers — run both with
and without PipeFisher, and report the schedule tradeoff the paper's §3.3
frames for Chimera, extended to Megatron-style virtual stages: fewer
bubbles mean a faster step and higher baseline utilization, but less idle
room for K-FAC work and hence a longer curvature-refresh interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import ARCHITECTURES
from repro.perfmodel.hardware import P100
from repro.pipefisher.runner import PipeFisherReport, PipeFisherRun
from repro.sweep.engine import SweepEngine, default_engine

#: Transformer blocks per model (the L of the paper's figure captions).
MODEL_LAYERS: dict[str, int] = {
    "BERT-Base": 12,
    "BERT-Large": 24,
}

#: (architecture, physical devices P, virtual chunks v, micro-batches).
#: Layers per stage follow from the architecture's layer count.
SWEEP_ROWS: tuple[tuple[str, int, int, int], ...] = (
    ("BERT-Base", 4, 3, 8),
    ("BERT-Base", 3, 2, 6),
    ("BERT-Large", 4, 2, 8),
    ("BERT-Large", 4, 3, 8),
)


@dataclass
class InterleavedRow:
    """One sweep row: the 1F1B baseline and its interleaved counterpart."""

    arch: str
    devices: int
    chunks: int
    n_micro: int
    b_micro: int
    one_f_one_b: PipeFisherReport
    interleaved: PipeFisherReport

    @property
    def step_speedup(self) -> float:
        """Baseline step-time advantage of interleaving (> 1 is faster)."""
        return self.one_f_one_b.baseline_step_time / self.interleaved.baseline_step_time


@dataclass
class InterleavedSweepResult:
    rows: dict[tuple[str, int, int], InterleavedRow]


def _run_pair(arch_name: str, devices: int, chunks: int, n_micro: int,
              b_micro: int = 32,
              engine: SweepEngine | None = None) -> InterleavedRow:
    engine = default_engine() if engine is None else engine
    arch = ARCHITECTURES[arch_name]
    layers = MODEL_LAYERS[arch_name]
    if layers % (devices * chunks) != 0:
        raise ValueError(
            f"{arch_name}: {layers} layers not divisible into "
            f"{devices} devices x {chunks} chunks"
        )
    base = engine.run(PipeFisherRun(
        schedule="1f1b",
        arch=arch,
        hardware=P100,
        b_micro=b_micro,
        depth=devices,
        n_micro=n_micro,
        layers_per_stage=layers // devices,
    ))
    inter = engine.run(PipeFisherRun(
        schedule="interleaved",
        arch=arch,
        hardware=P100,
        b_micro=b_micro,
        depth=devices * chunks,
        n_micro=n_micro,
        layers_per_stage=layers // (devices * chunks),
        virtual_chunks=chunks,
    ))
    return InterleavedRow(
        arch=arch_name,
        devices=devices,
        chunks=chunks,
        n_micro=n_micro,
        b_micro=b_micro,
        one_f_one_b=base,
        interleaved=inter,
    )


def run_interleaved_sweep(
    rows: tuple[tuple[str, int, int, int], ...] = SWEEP_ROWS,
    b_micro: int = 32,
    engine: SweepEngine | None = None,
) -> InterleavedSweepResult:
    """Run every row through the shared sweep engine (bit-identical to
    the former per-point ``PipeFisherRun.execute`` loop; rows that share
    a structural configuration share one schedule template)."""
    engine = default_engine() if engine is None else engine
    out: dict[tuple[str, int, int, int], InterleavedRow] = {}
    for arch_name, devices, chunks, n_micro in rows:
        out[(arch_name, devices, chunks, n_micro)] = _run_pair(
            arch_name, devices, chunks, n_micro, b_micro=b_micro,
            engine=engine,
        )
    return InterleavedSweepResult(rows=out)


def format_interleaved_sweep(result: InterleavedSweepResult) -> str:
    b_micros = sorted({row.b_micro for row in result.rows.values()})
    lines = [
        "interleaved-1F1B vs 1F1B (same model, same devices; P100, "
        f"B_micro={'/'.join(str(b) for b in b_micros)})",
        f"{'arch':11s} {'P':>3s} {'v':>3s} {'N':>3s} "
        f"{'1f1b util':>10s} {'intl util':>10s} "
        f"{'1f1b s/step':>12s} {'intl s/step':>12s} "
        f"{'PF util':>8s} {'refresh':>8s}",
    ]
    for (arch, devices, chunks, n_micro), row in result.rows.items():
        f, i = row.one_f_one_b, row.interleaved
        lines.append(
            f"{arch:11s} {devices:3d} {chunks:3d} {n_micro:3d} "
            f"{f.baseline_utilization:10.1%} {i.baseline_utilization:10.1%} "
            f"{f.baseline_step_time:11.3f}s {i.baseline_step_time:11.3f}s "
            f"{i.pipefisher_utilization:8.1%} {i.refresh_steps:8d}"
        )
    return "\n".join(lines)
