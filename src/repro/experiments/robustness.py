"""Schedule robustness under stochastic cluster behavior (extension).

The question this experiment answers: *which registered schedule
degrades least when the cluster misbehaves* — by default under a single
5% straggler, the failure mode pipeline-parallel training meets first in
practice.  Every registered schedule (``gpipe``/``1f1b``/``chimera``/
``interleaved``/``zb1f1b``) runs the same Fig. 3-scale configuration as
a Monte Carlo campaign: ``CampaignSpec.seeds`` multiplies each schedule
point into replicates, each replicate is one seeded re-timing pass
through the compiled sweep-engine template (common random numbers across
schedules, so the comparison is paired), and the report reduces spans to
means with percentile confidence intervals.

The degradation ranking is pinned by
``tests/experiments/goldens/robustness.json``; ``repro robustness``
prints the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignRunner, CampaignSpec, register_campaign
from repro.pipeline.spec import schedule_names
from repro.stochastic.model import StochasticModel
from repro.stochastic.stats import Summary, summarize
from repro.sweep.engine import SweepEngine

#: The headline scenario: one device running 5% slow.
DEFAULT_MODEL = StochasticModel(straggler_count=1, straggler_slowdown=1.05)

#: Replicates per schedule in the default campaign.
DEFAULT_SEEDS = tuple(range(8))


def robustness_spec(
    arch_name: str = "BERT-Base",
    hardware: str = "P100",
    b_micro: int = 32,
    depth: int = 4,
    n_micro: int = 8,
    layers_per_stage: int = 3,
    model: StochasticModel = DEFAULT_MODEL,
    seeds=DEFAULT_SEEDS,
) -> CampaignSpec:
    """All registered schedules x Monte Carlo seeds, as data.

    The pipeline configuration is the ``schedule_panel`` one — valid for
    every registered schedule (even depth and ``n_micro % depth == 0``
    satisfy chimera and interleaved alike).
    """
    return CampaignSpec(
        name="robustness",
        title="Schedule robustness under a stochastic cluster "
              "(MC replicates, 5% straggler default)",
        kind="stochastic",
        fixed=tuple(sorted({
            "arch": arch_name,
            "hardware": hardware,
            "b_micro": b_micro,
            "depth": depth,
            "n_micro": n_micro,
            "layers_per_stage": layers_per_stage,
            **model.as_params(),
        }.items())),
        grid=(("schedule", tuple(schedule_names())),),
        seeds=tuple(seeds),
        golden="robustness",
        artifacts=("degradation ranking: mean span / bubble / utilization "
                   "with percentile CIs per schedule",),
    )


@dataclass
class RobustnessRow:
    """One schedule's Monte Carlo reductions."""

    schedule: str
    nominal_span: float
    span: Summary
    bubble_fraction: Summary
    utilization: Summary
    degradation: Summary  #: span / nominal span, per replicate

    @property
    def mean_degradation(self) -> float:
        return self.degradation.mean


@dataclass
class RobustnessResult:
    model: StochasticModel
    seeds: tuple
    rows: dict  #: schedule -> RobustnessRow

    def ranking(self) -> list:
        """Schedules least-degraded first (ties broken by name)."""
        return sorted(self.rows.values(),
                      key=lambda r: (r.mean_degradation, r.schedule))


def _rows_from_values(spec: CampaignSpec, values) -> dict:
    """Group recorded replicates by schedule and reduce.

    ``spec.units()`` is schedule-major, seed-minor, so per-schedule
    replicate lists come out in seed order — the deterministic fold order
    the summaries pin.
    """
    by_schedule: dict[str, list] = {}
    for u in spec.units():
        p = u.params_dict()
        by_schedule.setdefault(p["schedule"], []).append(values[u.key])
    rows = {}
    for schedule, reps in by_schedule.items():
        rows[schedule] = RobustnessRow(
            schedule=schedule,
            nominal_span=reps[0]["nominal_span"],
            span=summarize([r["span"] for r in reps]),
            bubble_fraction=summarize([r["bubble_fraction"] for r in reps]),
            utilization=summarize([r["utilization"] for r in reps]),
            degradation=summarize([r["span_degradation"] for r in reps]),
        )
    return rows


def _robustness_payload(spec: CampaignSpec, values) -> list:
    rows = _rows_from_values(spec, values)
    payload = [
        [
            schedule,
            rows[schedule].nominal_span,
            rows[schedule].span.as_list(),
            rows[schedule].bubble_fraction.as_list(),
            rows[schedule].utilization.as_list(),
            rows[schedule].degradation.as_list(),
        ]
        for schedule in sorted(rows)
    ]
    ranking = [
        [r.schedule, r.mean_degradation]
        for r in sorted(rows.values(),
                        key=lambda r: (r.mean_degradation, r.schedule))
    ]
    return [payload, ranking]


register_campaign(robustness_spec(), golden_payload=_robustness_payload)


def run_robustness(
    model: StochasticModel = DEFAULT_MODEL,
    seeds=DEFAULT_SEEDS,
    engine: SweepEngine | None = None,
    **config,
) -> RobustnessResult:
    """Run the robustness campaign in-process and reduce to rows."""
    spec = robustness_spec(model=model, seeds=seeds, **config)
    result = CampaignRunner(engine=engine).run(spec)
    return RobustnessResult(
        model=model,
        seeds=tuple(seeds),
        rows=_rows_from_values(spec, result.values()),
    )


def format_robustness(result: RobustnessResult) -> str:
    m = result.model
    knobs = ", ".join(f"{k}={v:g}" for k, v in m.as_params().items()
                      if v not in (0, 0.0))
    lines = [
        f"schedule robustness: {len(result.seeds)} Monte Carlo replicates "
        f"per schedule ({knobs or 'identity model'})",
        f"{'schedule':12s} {'nominal':>9s} {'mean span':>10s} "
        f"{'span CI95':>21s} {'p95':>9s} {'degrade':>8s} {'util':>6s}",
    ]
    for row in result.ranking():
        s = row.span
        lines.append(
            f"{row.schedule:12s} {row.nominal_span * 1000:8.1f}m "
            f"{s.mean * 1000:9.1f}m "
            f"[{s.ci95_lo * 1000:8.1f}m,{s.ci95_hi * 1000:8.1f}m] "
            f"{s.p95 * 1000:8.1f}m {row.mean_degradation:8.4f} "
            f"{row.utilization.mean:6.3f}"
        )
    best = result.ranking()[0]
    lines.append(
        f"least degraded: {best.schedule} "
        f"(mean span {best.mean_degradation:.4f}x nominal)")
    return "\n".join(lines)
