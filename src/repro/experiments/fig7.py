"""Figure 7: Phase-1 pretraining convergence, NVLAMB vs K-FAC.

Paper setup: BERT-Base on English Wikipedia, mini-batch 8,192, 7,038
steps; K-FAC differs only in warmup (600 vs 2,000 steps).  K-FAC reaches
NVLAMB's final loss (3.41) in 2,961 steps (42.0%); with Chimera step times
(847.8 / 980.2 ms on 256 P100s), 48.4 vs 99.4 minutes (48.7%).

Scaled-down protocol (see DESIGN.md §2): a structurally identical BERT
(2 layers, d=64) on the synthetic corpus, with the warmup fractions and
the single-hyperparameter change preserved.  The mini-batch is 32 rather
than 8,192 (CPU), which shrinks — but preserves the sign of — K-FAC's
advantage; EXPERIMENTS.md discusses the magnitude gap.

Wall-clock times come from the same source as the paper's: time/step of
Chimera without/with PipeFisher from the pipeline simulator (Fig. 7 right).

The two training runs live behind the ``fig7_training`` unit kind
(declared here), so the ``fig7`` campaign can run, resume, and record the
convergence comparison like any simulator experiment; :func:`run_fig7` is
a thin wrapper over the single-unit campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    register_campaign,
    register_unit_kind,
)
from repro.data.corpus import CorpusConfig
from repro.data.dataloader import PretrainDataLoader
from repro.kfac.kfac import KFAC
from repro.models.bert import BertConfig, BertForPreTraining
from repro.optim.lamb import NVLAMB
from repro.optim.lr_scheduler import PolyWarmupSchedule
from repro.training.convergence import smooth_loss, steps_to_target
from repro.training.trainer import TrainConfig, Trainer

FIG7_PAPER = {
    "nvlamb_final_loss": 3.41,
    "kfac_final_loss": 2.92,
    "nvlamb_steps": 7038,
    "kfac_steps_to_target": 2961,
    "step_fraction": 0.420,
    "time_fraction": 0.487,
    "nvlamb_step_time_s": 0.8478,
    "kfac_step_time_s": 0.9802,
}

#: Paper warmup fractions: 2000/7038 and 600/7038.
NVLAMB_WARMUP_FRAC = 2000 / 7038
KFAC_WARMUP_FRAC = 600 / 7038


@dataclass
class Fig7Result:
    total_steps: int
    nvlamb_losses: np.ndarray
    kfac_losses: np.ndarray
    nvlamb_final: float
    kfac_final: float
    kfac_steps_to_nvlamb_final: int | None
    #: Steps-to-intermediate-target ratios (stable at small scale).
    target_ratios: dict[float, float] = field(default_factory=dict)
    nvlamb_step_time_s: float = FIG7_PAPER["nvlamb_step_time_s"]
    kfac_step_time_s: float = FIG7_PAPER["kfac_step_time_s"]

    @property
    def step_fraction(self) -> float | None:
        if self.kfac_steps_to_nvlamb_final is None:
            return None
        return self.kfac_steps_to_nvlamb_final / self.total_steps

    @property
    def time_fraction(self) -> float | None:
        f = self.step_fraction
        if f is None:
            return None
        return f * self.kfac_step_time_s / self.nvlamb_step_time_s


def _train(
    use_kfac: bool,
    total_steps: int,
    base_lr: float,
    batch_size: int,
    seed: int,
) -> np.ndarray:
    corpus = CorpusConfig(seed=7, branching=4, num_word_types=1500)
    data = PretrainDataLoader(
        vocab_size=300, seq_len=32, num_documents=200, corpus_config=corpus, seed=7
    )
    cfg = BertConfig.tiny(
        vocab_size=data.vocab_size, seed=seed, max_position_embeddings=32
    )
    model = BertForPreTraining(cfg)
    inner = NVLAMB(model.parameters(), lr=base_lr)
    if use_kfac:
        stepper: NVLAMB | KFAC = KFAC(
            model.encoder_linear_layers(),
            inner,
            damping=0.03,
            curvature_interval=2,
            inverse_interval=2,
        )
        warmup = max(2, int(round(KFAC_WARMUP_FRAC * total_steps)))
    else:
        stepper = inner
        warmup = max(2, int(round(NVLAMB_WARMUP_FRAC * total_steps)))
    sched = PolyWarmupSchedule(base_lr, warmup, total_steps, optimizer=stepper)
    trainer = Trainer(
        model, stepper, data, sched, TrainConfig(batch_size=batch_size)
    )
    trainer.train(total_steps)
    return trainer.losses


def _execute_fig7(params: dict, ctx) -> Fig7Result:
    total_steps = params["total_steps"]
    base_lr = params["base_lr"]
    batch_size = params["batch_size"]
    seed = params["seed"]
    lamb = _train(False, total_steps, base_lr, batch_size, seed)
    kfac = _train(True, total_steps, base_lr, batch_size, seed)
    skip = max(5, total_steps // 10)
    lamb_final = float(smooth_loss(lamb)[-1])
    kfac_final = float(smooth_loss(kfac)[-1])
    steps = steps_to_target(kfac, lamb_final, skip_initial=skip)

    # Intermediate targets on the steep part of the curve.
    ratios: dict[float, float] = {}
    hi = float(smooth_loss(lamb)[skip:].max())
    lo = lamb_final
    for frac in (0.25, 0.5, 0.75):
        tgt = hi - frac * (hi - lo)
        a = steps_to_target(lamb, tgt, skip_initial=skip)
        b = steps_to_target(kfac, tgt, skip_initial=skip)
        if a and b:
            ratios[round(tgt, 4)] = b / a

    return Fig7Result(
        total_steps=total_steps,
        nvlamb_losses=lamb,
        kfac_losses=kfac,
        nvlamb_final=lamb_final,
        kfac_final=kfac_final,
        kfac_steps_to_nvlamb_final=steps,
        target_ratios=ratios,
        nvlamb_step_time_s=(params["nvlamb_step_time_s"]
                            or FIG7_PAPER["nvlamb_step_time_s"]),
        kfac_step_time_s=(params["kfac_step_time_s"]
                          or FIG7_PAPER["kfac_step_time_s"]),
    )


def _serialize_fig7(r: Fig7Result, params: dict) -> dict:
    return {
        "total_steps": r.total_steps,
        "nvlamb_final": r.nvlamb_final,
        "kfac_final": r.kfac_final,
        "kfac_steps_to_nvlamb_final": r.kfac_steps_to_nvlamb_final,
        "step_fraction": r.step_fraction,
        "time_fraction": r.time_fraction,
        "target_ratios": [[t, ratio] for t, ratio in r.target_ratios.items()],
        "nvlamb_step_time_s": r.nvlamb_step_time_s,
        "kfac_step_time_s": r.kfac_step_time_s,
    }


register_unit_kind("fig7_training", _execute_fig7, _serialize_fig7)


def fig7_spec(
    total_steps: int = 160,
    base_lr: float = 5e-2,
    batch_size: int = 32,
    seed: int = 0,
    nvlamb_step_time_s: float | None = None,
    kfac_step_time_s: float | None = None,
) -> CampaignSpec:
    return CampaignSpec(
        name="fig7",
        title="Fig. 7: NVLAMB vs K-FAC convergence (scaled-down training)",
        kind="fig7_training",
        fixed=tuple(sorted({
            "total_steps": total_steps,
            "base_lr": base_lr,
            "batch_size": batch_size,
            "seed": seed,
            "nvlamb_step_time_s": nvlamb_step_time_s,
            "kfac_step_time_s": kfac_step_time_s,
        }.items())),
        artifacts=("figure curves: loss vs step, both optimizers; "
                   "step/time fractions to NVLAMB's final loss",),
    )


register_campaign(fig7_spec())


def run_fig7(
    total_steps: int = 160,
    base_lr: float = 5e-2,
    batch_size: int = 32,
    seed: int = 0,
    nvlamb_step_time_s: float | None = None,
    kfac_step_time_s: float | None = None,
) -> Fig7Result:
    """Train both optimizers and measure the convergence advantage."""
    spec = fig7_spec(total_steps, base_lr, batch_size, seed,
                     nvlamb_step_time_s, kfac_step_time_s)
    result = CampaignRunner().run(spec)
    return result.objects[spec.units()[0].key]


def format_fig7(r: Fig7Result) -> str:
    lines = [
        f"{'quantity':38s} {'paper':>12s} {'measured':>12s}",
        f"{'NVLAMB final loss (smoothed)':38s} {FIG7_PAPER['nvlamb_final_loss']:12.2f} "
        f"{r.nvlamb_final:12.4f}",
        f"{'K-FAC final loss (smoothed)':38s} {FIG7_PAPER['kfac_final_loss']:12.2f} "
        f"{r.kfac_final:12.4f}",
        f"{'K-FAC final < NVLAMB final':38s} {'yes':>12s} "
        f"{'yes' if r.kfac_final < r.nvlamb_final else 'NO':>12s}",
    ]
    if r.step_fraction is not None:
        lines.append(
            f"{'steps to NVLAMB final (fraction)':38s} "
            f"{FIG7_PAPER['step_fraction']:12.1%} {r.step_fraction:12.1%}"
        )
        lines.append(
            f"{'wall-clock fraction':38s} "
            f"{FIG7_PAPER['time_fraction']:12.1%} {r.time_fraction:12.1%}"
        )
    for tgt, ratio in r.target_ratios.items():
        lines.append(f"  steps ratio @ loss {tgt:<8.3f} {'<1':>19s} {ratio:12.2f}")
    return "\n".join(lines)
