"""Table 2: BERT-Large Phase-1 pretraining time, NVLAMB vs K-FAC/PipeFisher.

Paper methodology: the number of steps comes from Pauloski et al. (2022)
(7,038 for NVLAMB, 5,000 for K-FAC); time-per-step is measured on 8 P100
GPUs with Chimera (the Fig. 4 setup) and multiplied out — "ignoring the
increase in communication costs when scaling from 8 GPUs to 2K GPUs".
We do exactly the same with simulated step times.

The simulated setup is declared as the registered ``table2`` campaign:
one ``pipefisher`` unit — the Fig. 4 configuration, shared with the
``fig4`` campaign by canonical point hash — evaluated through the shared
sweep engine.  :func:`run_table2` is a thin wrapper over it, and the
golden payload multiplies recorded step times by the published step
counts exactly as :class:`Table2Result` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignRunner, CampaignSpec, register_campaign
from repro.experiments.fig4 import FIG4_UNIT_PARAMS
from repro.sweep.engine import SweepEngine
from repro.training.wallclock import simulated_minutes

TABLE2_PAPER = {
    "nvlamb_steps": 7038,
    "kfac_steps": 5000,
    "nvlamb_step_ms": 2345.6,
    "kfac_step_ms": 2499.5,
    "nvlamb_minutes": 275.1,
    "kfac_minutes": 208.3,
    "time_fraction": 0.757,
    "nvlamb_f1": 90.1,
    "kfac_f1": 90.15,
    "phase2_steps": 1563,
}


@dataclass
class Table2Result:
    nvlamb_step_s: float
    kfac_step_s: float
    nvlamb_minutes: float
    kfac_minutes: float

    @property
    def time_fraction(self) -> float:
        return self.kfac_minutes / self.nvlamb_minutes

    @property
    def step_overhead(self) -> float:
        """PipeFisher per-step overhead (paper: ~6.5%)."""
        return self.kfac_step_s / self.nvlamb_step_s - 1.0


def table2_spec() -> CampaignSpec:
    """Table 2 as data: the Fig. 4 simulation, engine-evaluated."""
    return CampaignSpec(
        name="table2",
        title="Table 2: BERT-Large Phase-1 wall-clock, NVLAMB vs PipeFisher",
        kind="pipefisher",
        fixed=tuple(sorted({**FIG4_UNIT_PARAMS, "via_engine": True}.items())),
        golden="table2",
        artifacts=("table rows: step times x published step counts",),
    )


def _wallclock(nv_s: float, kf_s: float) -> Table2Result:
    return Table2Result(
        nvlamb_step_s=nv_s,
        kfac_step_s=kf_s,
        nvlamb_minutes=simulated_minutes(TABLE2_PAPER["nvlamb_steps"], nv_s),
        kfac_minutes=simulated_minutes(TABLE2_PAPER["kfac_steps"], kf_s),
    )


def _table2_payload(spec: CampaignSpec, values) -> list:
    value = values[spec.units()[0].key]
    r = _wallclock(value["baseline_step_time"], value["pipefisher_step_time"])
    return [
        r.nvlamb_step_s, r.kfac_step_s, r.nvlamb_minutes, r.kfac_minutes,
        r.time_fraction, r.step_overhead,
    ]


register_campaign(table2_spec(), golden_payload=_table2_payload)


def run_table2(engine: SweepEngine | None = None) -> Table2Result:
    """Simulate the Fig. 4 setup and multiply by the published step counts.

    The simulation runs through the shared sweep engine, so repeated
    table-2 evaluations (and anything else using the Fig. 4 template)
    reuse one compiled schedule; the numbers are bit-identical to the
    per-point run (pinned by the table2 golden).
    """
    spec = table2_spec()
    result = CampaignRunner(engine=engine).run(spec)
    report = result.objects[spec.units()[0].key]
    return _wallclock(report.baseline_step_time, report.pipefisher_step_time)


def format_table2(r: Table2Result) -> str:
    p = TABLE2_PAPER
    return "\n".join(
        [
            f"{'Optimizer':10s} {'Pipeline':22s} {'Steps':>6s} "
            f"{'Time/step':>16s} {'Time':>18s}",
            f"{'NVLAMB':10s} {'Chimera':22s} {p['nvlamb_steps']:6d} "
            f"{p['nvlamb_step_ms']:7.1f}/{r.nvlamb_step_s * 1000:7.1f}ms "
            f"{p['nvlamb_minutes']:7.1f}/{r.nvlamb_minutes:7.1f}min",
            f"{'K-FAC':10s} {'Chimera w/ PipeFisher':22s} {p['kfac_steps']:6d} "
            f"{p['kfac_step_ms']:7.1f}/{r.kfac_step_s * 1000:7.1f}ms "
            f"{p['kfac_minutes']:7.1f}/{r.kfac_minutes:7.1f}min",
            f"(cells are paper/measured; Phase-1 time ratio paper "
            f"{p['time_fraction']:.1%} vs measured {r.time_fraction:.1%})",
        ]
    )
