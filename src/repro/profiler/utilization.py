"""GPU-utilization metric (paper Appendix B.4).

"The percentage of colored areas in each figure corresponds to the
percentage of time that some kernel is being executed on the GPU, which we
display as GPU utilization."

Each work kind carries a *kernel density* — the fraction of its interval
that is kernel-active.  Forward/backward work mixes GEMMs with many small
kernels (density < 1); K-FAC curvature/inversion/precondition are dense
back-to-back matmul/Cholesky kernels (density 1); allreduce interleaves
communication kernels with waiting; host overhead has no kernels at all.
"""

from __future__ import annotations

from repro.profiler.timeline import Timeline

#: Default kernel-active fraction per work kind (see perfmodel.calibration).
COLOR_DENSITY: dict[str, float] = {
    "forward": 0.88,
    "backward": 0.88,
    "backward_input": 0.88,
    "backward_weight": 0.88,
    "recompute": 0.88,
    "curvature": 1.0,
    "inversion": 1.0,
    "precondition": 1.0,
    "sync_grad": 0.75,
    "sync_curv": 0.75,
    "overhead": 0.0,
}


def colored_seconds(events, density: dict[str, float] | None = None) -> float:
    """Total kernel-active seconds of an event iterable."""
    density = COLOR_DENSITY if density is None else density
    total = 0.0
    for e in events:
        total += e.duration * density.get(e.kind, 1.0)
    return total


def colored_time(timeline: Timeline, density: dict[str, float] | None = None) -> float:
    """Total kernel-active seconds across all devices."""
    return colored_seconds(timeline.events, density)


def utilization(
    timeline: Timeline,
    window: tuple[float, float] | None = None,
    density: dict[str, float] | None = None,
) -> float:
    """Colored fraction of the (devices x window) area, in [0, 1]."""
    if window is None:
        window = timeline.span
    t0, t1 = window
    if t1 <= t0:
        raise ValueError(f"empty window {window}")
    sub = timeline.window(t0, t1)
    return colored_time(sub, density) / (timeline.num_devices * (t1 - t0))
