"""Timeline recording and GPU-utilization accounting.

Replaces the paper's Nsight profiling (Appendix B.4): the simulator emits
:class:`TimelineEvent` records; utilization is the fraction of
kernel-active ("colored") time across all devices, exactly the paper's
definition of the colored-area percentage in Figs. 3-4.
"""

from repro.profiler.timeline import Timeline, TimelineEvent
from repro.profiler.utilization import (
    utilization, colored_time, colored_seconds, COLOR_DENSITY,
)
from repro.profiler.ascii_viz import render_timeline

__all__ = [
    "Timeline",
    "TimelineEvent",
    "utilization",
    "colored_time",
    "colored_seconds",
    "COLOR_DENSITY",
    "render_timeline",
]
