"""ASCII rendering of pipeline timelines (the Fig. 1/3/4 plots, in text).

Each device becomes one row; time is quantized into character columns; each
work kind has a letter.  Useful in examples and for eyeballing schedules::

    GPU 1 |FFFF........BBBBBBBB~~~~
    GPU 2 |.FFFF......BBBBBBBB.~~~~
"""

from __future__ import annotations

from repro.profiler.timeline import Timeline

#: One-character glyph per work kind.
GLYPHS: dict[str, str] = {
    "forward": "F",
    "backward": "B",
    "backward_input": "B",
    "backward_weight": "W",
    "recompute": "r",
    "curvature": "c",
    "inversion": "i",
    "precondition": "p",
    "sync_grad": "s",
    "sync_curv": "x",
    "overhead": "~",
}

#: Painting priority when events share a column (higher wins).
_PRIORITY = {
    "overhead": 0,
    "sync_grad": 2,
    "sync_curv": 2,
    "curvature": 3,
    "inversion": 3,
    "precondition": 3,
    "recompute": 4,
    "forward": 5,
    "backward": 5,
    "backward_input": 5,
    "backward_weight": 5,
}


def render_timeline(
    timeline: Timeline,
    width: int = 100,
    window: tuple[float, float] | None = None,
    show_legend: bool = True,
) -> str:
    """Render a timeline as fixed-width ASCII art."""
    if window is None:
        window = timeline.span
    t0, t1 = window
    if t1 <= t0:
        return "(empty timeline)"
    scale = width / (t1 - t0)

    rows: list[str] = []
    for d in range(timeline.num_devices):
        chars = ["."] * width
        prio = [-1] * width
        for e in timeline.device_events(d):
            if e.end <= t0 or e.start >= t1:
                continue
            c0 = max(0, int((e.start - t0) * scale))
            c1 = min(width, max(c0 + 1, int((e.end - t0) * scale + 0.5)))
            glyph = GLYPHS.get(e.kind, "?")
            p = _PRIORITY.get(e.kind, 1)
            for col in range(c0, c1):
                if p >= prio[col]:
                    chars[col] = glyph
                    prio[col] = p
        rows.append(f"GPU {d + 1:>2} |" + "".join(chars))

    out = "\n".join(rows)
    if show_legend:
        # Kinds sharing a glyph (backward / backward_input) collapse to
        # one legend entry under the first-listed kind.
        seen: dict[str, str] = {}
        for k, g in GLYPHS.items():
            seen.setdefault(g, k)
        legend = "  ".join(f"{g}={k}" for g, k in seen.items())
        out += "\n" + f"legend: {legend}  .=idle"
    return out
