"""Timeline data structures produced by the pipeline simulator.

:class:`Timeline` keeps events bucketed per device at :meth:`Timeline.add`
time and lazily caches sorted views and merged busy intervals, so the
query helpers (``device_events`` / ``busy_intervals`` / ``idle_intervals``
/ ``verify_no_overlap``) do not re-filter and re-sort the global event
list on every call.  Caches are invalidated per device on mutation; all
mutation must go through :meth:`add` / :meth:`extend`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineEvent:
    """One work interval on one device.

    Attributes
    ----------
    device:
        Device index (0-based).
    kind:
        Work type string ("forward", "backward", "curvature", "inversion",
        "precondition", "sync_grad", "sync_curv", "overhead").
    start, end:
        Interval endpoints in seconds.
    label:
        Human-readable tag (e.g. "F m3 s1" or "curvA L2 m0").
    meta:
        Free-form metadata (stage, micro-batch, step, layer...).
    """

    device: int
    kind: str
    start: float
    end: float
    label: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, dt: float) -> "TimelineEvent":
        # Each copy gets its own meta dict: replicas of one template event
        # must not alias mutable state.
        return TimelineEvent(self.device, self.kind, self.start + dt,
                             self.end + dt, self.label, dict(self.meta))


class Timeline:
    """A set of device-work intervals plus query helpers.

    Events are stored twice: in insertion order in :attr:`events` (the
    public, read-only view many consumers iterate) and bucketed per device
    for the queries.  Sorted per-device views and merged busy intervals
    are cached per ``kinds`` filter and rebuilt only after that device is
    mutated.
    """

    def __init__(self, num_devices: int) -> None:
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        self.num_devices = num_devices
        #: All events in insertion order.  Treat as read-only; mutate the
        #: timeline only via :meth:`add` / :meth:`extend`.
        self.events: list[TimelineEvent] = []
        self._by_device: list[list[TimelineEvent]] = [[] for _ in range(num_devices)]
        #: device -> {kinds key -> events sorted by (start, end)}.
        self._sorted_cache: list[dict] = [{} for _ in range(num_devices)]
        #: device -> {kinds key -> (merged busy intervals, their end times)}.
        self._busy_cache: list[dict] = [{} for _ in range(num_devices)]
        self._span: tuple[float, float] | None = None

    def add(self, event: TimelineEvent) -> None:
        if not 0 <= event.device < self.num_devices:
            raise ValueError(
                f"device {event.device} out of range [0, {self.num_devices})"
            )
        if event.end < event.start:
            raise ValueError(f"event ends before it starts: {event}")
        self.events.append(event)
        self._by_device[event.device].append(event)
        if self._sorted_cache[event.device]:
            self._sorted_cache[event.device] = {}
        if self._busy_cache[event.device]:
            self._busy_cache[event.device] = {}
        if self._span is None:
            self._span = (event.start, event.end)
        else:
            s0, s1 = self._span
            self._span = (min(s0, event.start), max(s1, event.end))

    def extend(self, events: list[TimelineEvent]) -> None:
        for e in events:
            self.add(e)

    @property
    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all events."""
        if self._span is None:
            return (0.0, 0.0)
        return self._span

    def _sorted_events(self, device: int, key: frozenset | None
                       ) -> list[TimelineEvent]:
        cache = self._sorted_cache[device]
        evs = cache.get(key)
        if evs is None:
            if key is None:
                evs = sorted(self._by_device[device],
                             key=lambda e: (e.start, e.end))
            else:
                evs = [e for e in self._sorted_events(device, None)
                       if e.kind in key]
            cache[key] = evs
        return evs

    def device_events(self, device: int, kinds: set[str] | None = None
                      ) -> list[TimelineEvent]:
        """Events on one device, sorted by start time."""
        if not 0 <= device < self.num_devices:
            return []
        key = None if kinds is None else frozenset(kinds)
        return list(self._sorted_events(device, key))

    def _busy(self, device: int, key: frozenset | None
              ) -> tuple[list[tuple[float, float]], list[float]]:
        cache = self._busy_cache[device]
        hit = cache.get(key)
        if hit is None:
            merged: list[tuple[float, float]] = []
            for e in self._sorted_events(device, key):
                if merged and e.start <= merged[-1][1] + 1e-12:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], e.end))
                else:
                    merged.append((e.start, e.end))
            hit = (merged, [b for _, b in merged])
            cache[key] = hit
        return hit

    def busy_intervals(self, device: int, kinds: set[str] | None = None
                       ) -> list[tuple[float, float]]:
        """Merged occupied intervals on one device."""
        if not 0 <= device < self.num_devices:
            return []
        key = None if kinds is None else frozenset(kinds)
        return list(self._busy(device, key)[0])

    def idle_intervals(
        self,
        device: int,
        window: tuple[float, float],
        kinds: set[str] | None = None,
        min_duration: float = 0.0,
    ) -> list[tuple[float, float]]:
        """Gaps (bubbles) on one device within ``window``.

        O(log n + k) per call once the busy index is built: a bisection
        finds the first busy interval overlapping the window, then only
        the k overlapping intervals are walked.
        """
        w0, w1 = window
        if not 0 <= device < self.num_devices:
            busy: list[tuple[float, float]] = []
            ends: list[float] = []
        else:
            key = None if kinds is None else frozenset(kinds)
            busy, ends = self._busy(device, key)
        idle: list[tuple[float, float]] = []
        cursor = w0
        # Merged intervals are disjoint with strictly increasing ends, so
        # the first interval with end > w0 starts the overlapping run.
        i = bisect.bisect_right(ends, w0)
        while i < len(busy):
            b0, b1 = busy[i]
            if b0 >= w1:
                break
            b0c, b1c = max(b0, w0), min(b1, w1)
            if b0c > cursor:
                idle.append((cursor, b0c))
            cursor = max(cursor, b1c)
            i += 1
        if cursor < w1:
            idle.append((cursor, w1))
        return [(a, b) for a, b in idle if b - a > min_duration]

    def verify_no_overlap(self, kinds: set[str] | None = None) -> None:
        """Raise if any two events on the same device overlap.

        Control/overhead events are excluded via ``kinds`` when they model
        windows rather than exclusive occupancy.
        """
        key = None if kinds is None else frozenset(kinds)
        for d in range(self.num_devices):
            evs = self._sorted_events(d, key)
            for prev, cur in zip(evs, evs[1:]):
                if cur.start < prev.end - 1e-9:
                    raise AssertionError(
                        f"device {d}: {prev.label or prev.kind} "
                        f"[{prev.start:.4f},{prev.end:.4f}] overlaps "
                        f"{cur.label or cur.kind} [{cur.start:.4f},{cur.end:.4f}]"
                    )

    def window(self, t0: float, t1: float) -> "Timeline":
        """Sub-timeline clipped to [t0, t1]."""
        sub = Timeline(self.num_devices)
        for e in self.events:
            if e.end <= t0 or e.start >= t1:
                continue
            sub.add(TimelineEvent(e.device, e.kind, max(e.start, t0),
                                  min(e.end, t1), e.label, dict(e.meta)))
        return sub
