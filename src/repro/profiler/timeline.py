"""Timeline data structures produced by the pipeline simulator."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineEvent:
    """One work interval on one device.

    Attributes
    ----------
    device:
        Device index (0-based).
    kind:
        Work type string ("forward", "backward", "curvature", "inversion",
        "precondition", "sync_grad", "sync_curv", "overhead").
    start, end:
        Interval endpoints in seconds.
    label:
        Human-readable tag (e.g. "F m3 s1" or "curvA L2 m0").
    meta:
        Free-form metadata (stage, micro-batch, step, layer...).
    """

    device: int
    kind: str
    start: float
    end: float
    label: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, dt: float) -> "TimelineEvent":
        return TimelineEvent(self.device, self.kind, self.start + dt,
                             self.end + dt, self.label, self.meta)


class Timeline:
    """A set of device-work intervals plus query helpers."""

    def __init__(self, num_devices: int) -> None:
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        self.num_devices = num_devices
        self.events: list[TimelineEvent] = []

    def add(self, event: TimelineEvent) -> None:
        if not 0 <= event.device < self.num_devices:
            raise ValueError(
                f"device {event.device} out of range [0, {self.num_devices})"
            )
        if event.end < event.start:
            raise ValueError(f"event ends before it starts: {event}")
        self.events.append(event)

    def extend(self, events: list[TimelineEvent]) -> None:
        for e in events:
            self.add(e)

    @property
    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all events."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    def device_events(self, device: int, kinds: set[str] | None = None
                      ) -> list[TimelineEvent]:
        """Events on one device, sorted by start time."""
        evs = [
            e for e in self.events
            if e.device == device and (kinds is None or e.kind in kinds)
        ]
        return sorted(evs, key=lambda e: (e.start, e.end))

    def busy_intervals(self, device: int, kinds: set[str] | None = None
                       ) -> list[tuple[float, float]]:
        """Merged occupied intervals on one device."""
        evs = self.device_events(device, kinds)
        merged: list[tuple[float, float]] = []
        for e in evs:
            if merged and e.start <= merged[-1][1] + 1e-12:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e.end))
            else:
                merged.append((e.start, e.end))
        return merged

    def idle_intervals(
        self,
        device: int,
        window: tuple[float, float],
        kinds: set[str] | None = None,
        min_duration: float = 0.0,
    ) -> list[tuple[float, float]]:
        """Gaps (bubbles) on one device within ``window``."""
        w0, w1 = window
        busy = self.busy_intervals(device, kinds)
        idle: list[tuple[float, float]] = []
        cursor = w0
        for b0, b1 in busy:
            if b1 <= w0 or b0 >= w1:
                continue
            b0c, b1c = max(b0, w0), min(b1, w1)
            if b0c > cursor:
                idle.append((cursor, b0c))
            cursor = max(cursor, b1c)
        if cursor < w1:
            idle.append((cursor, w1))
        return [(a, b) for a, b in idle if b - a > min_duration]

    def verify_no_overlap(self, kinds: set[str] | None = None) -> None:
        """Raise if any two events on the same device overlap.

        Control/overhead events are excluded via ``kinds`` when they model
        windows rather than exclusive occupancy.
        """
        for d in range(self.num_devices):
            evs = self.device_events(d, kinds)
            for prev, cur in zip(evs, evs[1:]):
                if cur.start < prev.end - 1e-9:
                    raise AssertionError(
                        f"device {d}: {prev.label or prev.kind} "
                        f"[{prev.start:.4f},{prev.end:.4f}] overlaps "
                        f"{cur.label or cur.kind} [{cur.start:.4f},{cur.end:.4f}]"
                    )

    def window(self, t0: float, t1: float) -> "Timeline":
        """Sub-timeline clipped to [t0, t1]."""
        sub = Timeline(self.num_devices)
        for e in self.events:
            if e.end <= t0 or e.start >= t1:
                continue
            sub.add(TimelineEvent(e.device, e.kind, max(e.start, t0),
                                  min(e.end, t1), e.label, e.meta))
        return sub
