"""Bubble accounting over simulated timelines."""

from __future__ import annotations

from repro.profiler.timeline import Timeline

#: Kinds that occupy the device for bubble purposes.  OVERHEAD is a host
#: wait, not device occupancy — PipeFisher may fill it with K-FAC kernels.
OCCUPYING_KINDS = {
    "forward",
    "backward",
    "backward_input",
    "backward_weight",
    "recompute",
    "curvature",
    "inversion",
    "precondition",
    "sync_grad",
    "sync_curv",
}


def bubble_intervals(
    timeline: Timeline, device: int, window: tuple[float, float],
    min_duration: float = 0.0,
) -> list[tuple[float, float]]:
    """Idle (fillable) intervals on one device within ``window``."""
    return timeline.idle_intervals(
        device, window, kinds=OCCUPYING_KINDS, min_duration=min_duration
    )


def bubble_time(timeline: Timeline, window: tuple[float, float] | None = None) -> float:
    """Total idle seconds summed over devices."""
    if window is None:
        window = timeline.span
    total = 0.0
    for d in range(timeline.num_devices):
        for a, b in bubble_intervals(timeline, d, window):
            total += b - a
    return total


def bubble_fraction(timeline: Timeline, window: tuple[float, float] | None = None) -> float:
    """Idle fraction of the (devices x window) area."""
    if window is None:
        window = timeline.span
    t0, t1 = window
    if t1 <= t0:
        raise ValueError(f"empty window {window}")
    return bubble_time(timeline, window) / (timeline.num_devices * (t1 - t0))
