"""Declarative schedule specifications and the schedule registry.

A :class:`ScheduleSpec` declares *everything* the rest of the codebase
needs to know about one pipeline schedule, as data:

* the **task-graph program** — forward/backward phase priorities, the
  per-stage in-flight (activation-memory) policy, and whether the
  backward pass is split into input-grad (B) and weight-grad (W) halves
  (zero-bubble schedules);
* the **device topology** — stage -> device mapping, stages hosted per
  device, allreduce groups, and the (possibly bidirectional) pipelines a
  micro-batch traverses;
* the **host-overhead model** (the per-family calibration constant that
  used to live in a string-keyed dict in ``perfmodel.calibration``);
* the **analytic critical path** of §3.3 / Table 1, when the schedule
  has one;
* the **closed-form span bounds** the executor invariant tests check
  fuzzed simulations against; and
* the **structural keys** the sweep engine needs to canonicalize points
  onto shared templates (stages per device, allreduce group size,
  whether ``virtual_chunks`` shapes the graph).

One generic builder (:class:`repro.pipeline.schedules.ScheduleBuilder`)
executes the program; :func:`repro.pipeline.schedules.make_schedule`,
``perfmodel`` and the sweep engine all resolve schedules through
:func:`get_spec`, so adding a schedule is *one* :func:`register_schedule`
call — no string-compare dispatch site anywhere needs editing.

Every callable field takes the :class:`~repro.pipeline.schedules.PipelineConfig`
first, so a spec is a pure description: it holds no state and can be
shared across configs, builders, and sweep templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


# -- default (unidirectional) topology helpers ----------------------------------


def _uni_num_devices(cfg) -> int:
    return cfg.depth * cfg.dp


def _uni_device(cfg, stage: int, replica: int, pipeline=None) -> int:
    return stage * cfg.dp + replica


def _uni_stages(cfg, dev: int) -> list[int]:
    return [dev // cfg.dp]


def _uni_dp_group(cfg, dev: int) -> list[int]:
    stage = dev // cfg.dp
    return [stage * cfg.dp + r for r in range(cfg.dp)]


def _one_pipeline(cfg) -> tuple:
    return (None,)


def _no_pipe(cfg, dev: int, stage: int):
    return None


def _all_microbatches(cfg) -> range:
    return range(cfg.n_micro)


def _one_stage_per_device(virtual_chunks: int) -> int:
    return 1


def _dp_group_size(dp: int) -> int:
    return dp


@dataclass(frozen=True)
class ScheduleSpec:
    """Declarative description of one pipeline schedule.

    Attributes
    ----------
    name:
        Registry key (``make_schedule``/CLI name).
    description:
        One-line human description (examples enumerate it).
    fwd_priority, bwd_priority:
        ``(cfg, micro_batch, stage) -> tuple`` — the phase/priority rule
        the executor's ready heaps compare.  This *is* the schedule: GPipe
        phases forwards before backwards, 1F1B inverts that, Chimera and
        interleaved reorder by injection index.
    inflight_limit:
        ``(cfg, stage) -> int`` — activation-memory admission limit for
        forwards of that stage.
    split_backward:
        Zero-bubble schedules split the backward into an input-grad (B)
        task on the critical path and a deferrable weight-grad (W) task.
    wgt_priority:
        ``(cfg, micro_batch, stage) -> tuple`` for W tasks (split only).
        Declared *below* forwards so W work sinks into what the schedule
        would otherwise leave as bubbles.
    num_devices, device_of, stages_of_device, dp_group, pipe_of_stage:
        Device topology (``device_of`` takes ``(cfg, stage, replica,
        pipeline)``; ``pipe_of_stage`` resolves which pipeline a device
        runs a stage for — Chimera's down/up pair, ``None`` elsewhere).
    pipelines:
        ``(cfg) -> tuple`` of pipeline tags a replica's task graph
        contains (``(None,)`` except Chimera's ``("down", "up")``).
    microbatches:
        ``(cfg) -> range`` of micro-batch indices per pipeline (Chimera
        splits ``n_micro`` across its pair).
    validate:
        Structural constraint check, raising ``ValueError`` (Chimera
        evenness, interleaved divisibility); ``None`` when unconstrained.
    uses_virtual_chunks:
        Whether ``virtual_chunks`` shapes the task graph (sweep-template
        canonicalization zeroes the key for schedules that ignore it).
    stages_per_device:
        ``(virtual_chunks) -> int`` — constant within the family; the
        sweep engine's structural mirror of ``stages_of_device``.
    group_size:
        ``(dp) -> int`` — allreduce group size before
        ``world_multiplier`` (Chimera's pair doubles the replication).
    host_overhead_s:
        Per-step uncolored host overhead (seconds) of the schedule's
        code family — see ``perfmodel.calibration`` for the fit.
    critical_path:
        ``(depth) -> (C_f, C_b)`` §3.3 / Table 1 constants at
        ``N_micro = depth``, or ``None`` when the analytic model does not
        cover the schedule (interleaved).
    span_bounds:
        ``(cfg) -> (lo, hi)`` closed-form bounds on the simulated
        one-step span (no data parallelism, no host overhead — the
        Table 1 regime).  ``lo == hi`` declares an exact closed form;
        the invariant fuzz tests assert every simulation obeys this.
    """

    name: str
    description: str
    # -- task-graph program --
    fwd_priority: Callable
    bwd_priority: Callable
    inflight_limit: Callable
    split_backward: bool = False
    wgt_priority: Callable | None = None
    # -- device topology --
    num_devices: Callable = _uni_num_devices
    device_of: Callable = _uni_device
    stages_of_device: Callable = _uni_stages
    dp_group: Callable = _uni_dp_group
    pipelines: Callable = _one_pipeline
    pipe_of_stage: Callable = _no_pipe
    microbatches: Callable = _all_microbatches
    validate: Callable | None = None
    # -- structural keys (sweep-template canonicalization) --
    uses_virtual_chunks: bool = False
    stages_per_device: Callable = _one_stage_per_device
    group_size: Callable = _dp_group_size
    # -- models --
    host_overhead_s: float = 0.145
    critical_path: Callable | None = None
    # -- closed-form bounds for the invariant tests --
    span_bounds: Callable | None = None


# -- registry -------------------------------------------------------------------

_REGISTRY: dict[str, ScheduleSpec] = {}


def register_schedule(spec: ScheduleSpec) -> ScheduleSpec:
    """Add a spec to the registry (the single point of schedule dispatch)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"schedule {spec.name!r} is already registered")
    if spec.split_backward and spec.wgt_priority is None:
        raise ValueError(
            f"schedule {spec.name!r} splits the backward but declares no "
            "weight-grad priority"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ScheduleSpec:
    """Resolve a schedule name, or raise listing every registered name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def schedule_names() -> list[str]:
    """Registered schedule names, sorted (CLI choices, test parametrize)."""
    return sorted(_REGISTRY)


def schedule_specs() -> dict[str, ScheduleSpec]:
    """A snapshot of the registry (name -> spec)."""
    return dict(_REGISTRY)


# -- the paper's schedules -------------------------------------------------------


def _unidirectional_exact_span(cfg) -> tuple[float, float]:
    """GPipe / 1F1B (with flush): span == (N + D - 1)(Tf + Tb), exactly."""
    span = (cfg.n_micro + cfg.depth - 1) * (cfg.costs.t_fwd + cfg.costs.t_bwd)
    return span, span


GPIPE = register_schedule(ScheduleSpec(
    name="gpipe",
    description="GPipe: all forwards, then all backwards (Huang et al. 2019)",
    fwd_priority=lambda cfg, m, s: (0, m),
    bwd_priority=lambda cfg, m, s: (1, cfg.n_micro - 1 - m),
    inflight_limit=lambda cfg, s: cfg.n_micro,  # every micro-batch in flight
    host_overhead_s=0.145,
    critical_path=lambda d: (2 * d - 1, 2 * d - 1),
    span_bounds=_unidirectional_exact_span,
))


ONE_F_ONE_B = register_schedule(ScheduleSpec(
    name="1f1b",
    description="1F1B / PipeDream-Flush (Narayanan et al. 2019)",
    fwd_priority=lambda cfg, m, s: (1, m),
    bwd_priority=lambda cfg, m, s: (0, m),
    inflight_limit=lambda cfg, s: cfg.depth - s,
    host_overhead_s=0.145,
    critical_path=lambda d: (2 * d - 1, 2 * d - 1),
    span_bounds=_unidirectional_exact_span,
))


# -- Chimera (Li & Hoefler 2021): two bidirectional pipelines -------------------


def _chimera_validate(cfg) -> None:
    if cfg.depth % 2 != 0:
        raise ValueError("Chimera needs an even number of stages")
    if cfg.n_micro % 2 != 0:
        raise ValueError("Chimera needs an even number of micro-batches")


def _chimera_device(cfg, stage: int, replica: int, pipeline=None) -> int:
    base = stage if pipeline != "up" else cfg.depth - 1 - stage
    return base * cfg.dp + replica


def _chimera_stages(cfg, dev: int) -> list[int]:
    base = dev // cfg.dp
    return sorted({base, cfg.depth - 1 - base})


def _chimera_dp_group(cfg, dev: int) -> list[int]:
    base = dev // cfg.dp
    mirror = cfg.depth - 1 - base
    group = set()
    for b in (base, mirror):
        for r in range(cfg.dp):
            group.add(b * cfg.dp + r)
    return sorted(group)


def _chimera_span_bounds(cfg) -> tuple[float, float]:
    """Table 1 critical path below, a generously slacked GPipe flush above."""
    tf, tb = cfg.costs.t_fwd, cfg.costs.t_bwd
    extra = cfg.n_micro - cfg.depth
    lower = max(cfg.n_micro * (tf + tb),
                cfg.depth * tf + (2 * cfg.depth - 2) * tb + extra * (tf + tb))
    upper = 1.25 * (cfg.n_micro + cfg.depth - 1) * (tf + tb)
    return lower, upper


CHIMERA = register_schedule(ScheduleSpec(
    name="chimera",
    description="Chimera: two interlocked bidirectional pipelines "
                "(Li & Hoefler 2021)",
    fwd_priority=lambda cfg, m, s: (1, m),
    bwd_priority=lambda cfg, m, s: (0, m),
    inflight_limit=lambda cfg, s: cfg.depth - s,
    num_devices=_uni_num_devices,
    device_of=_chimera_device,
    stages_of_device=_chimera_stages,
    dp_group=_chimera_dp_group,
    pipelines=lambda cfg: ("down", "up"),
    pipe_of_stage=lambda cfg, dev, s: "down" if s == dev // cfg.dp else "up",
    microbatches=lambda cfg: range(cfg.n_micro // 2),
    validate=_chimera_validate,
    stages_per_device=lambda v: 2,
    group_size=lambda dp: 2 * dp,  # the pipeline pair replicates weights
    host_overhead_s=0.055,
    critical_path=lambda d: (d, 2 * d - 2),
    span_bounds=_chimera_span_bounds,
))


# -- interleaved 1F1B (Megatron-LM virtual stages, Narayanan et al. 2021) -------


def _interleaved_physical_depth(cfg) -> int:
    return cfg.depth // cfg.virtual_chunks


def _interleaved_validate(cfg) -> None:
    v = cfg.virtual_chunks
    if v < 2:
        raise ValueError(f"interleaved 1F1B needs virtual_chunks >= 2, got {v}")
    if cfg.depth % v != 0:
        raise ValueError(
            f"depth {cfg.depth} not divisible by virtual_chunks {v}"
        )
    if cfg.depth // v < 2:
        raise ValueError(
            f"interleaving {cfg.depth} stages over {v} chunks leaves "
            "fewer than 2 devices; reduce virtual_chunks"
        )


def _interleaved_fwd_priority(cfg, m: int, s: int) -> tuple:
    p = _interleaved_physical_depth(cfg)
    return (0, m + (s // p) * p)


def _interleaved_bwd_priority(cfg, m: int, s: int) -> tuple:
    p = _interleaved_physical_depth(cfg)
    return (1, m + ((cfg.depth - 1 - s) // p) * p)


def _interleaved_span_bounds(cfg) -> tuple[float, float]:
    """Theoretical (P-1)(Tf+Tb) chunk bubble from above, with at most
    ``depth`` chunk slots of asymmetric-cost slack."""
    tfb = cfg.costs.t_fwd + cfg.costs.t_bwd
    p = _interleaved_physical_depth(cfg)
    work = cfg.n_micro * cfg.virtual_chunks * tfb
    return work + (p - 1) * tfb, work + (p - 1) * tfb + cfg.depth * tfb


INTERLEAVED = register_schedule(ScheduleSpec(
    name="interleaved",
    description="Interleaved 1F1B with virtual stage chunks (Megatron-LM)",
    fwd_priority=_interleaved_fwd_priority,
    bwd_priority=_interleaved_bwd_priority,
    inflight_limit=lambda cfg, s: cfg.depth - s,
    num_devices=lambda cfg: _interleaved_physical_depth(cfg) * cfg.dp,
    device_of=lambda cfg, s, r, pipe=None: (
        (s % _interleaved_physical_depth(cfg)) * cfg.dp + r
    ),
    stages_of_device=lambda cfg, dev: [
        dev // cfg.dp + k * _interleaved_physical_depth(cfg)
        for k in range(cfg.virtual_chunks)
    ],
    validate=_interleaved_validate,
    uses_virtual_chunks=True,
    stages_per_device=lambda v: v,
    host_overhead_s=0.145,
    critical_path=None,  # the §3.3 analytic model does not cover it
    span_bounds=_interleaved_span_bounds,
))


# -- ZB-H1 zero-bubble 1F1B (Qi et al., ICLR 2024) -------------------------------


def _zb_span_bounds(cfg) -> tuple[float, float]:
    """Occupancy lower bound; 1F1B's flush plus non-preemption slack above.

    Lower: the last stage starts its first forward no earlier than
    ``(D-1) Tf`` and then owes ``N (Tf + Tb_in + Tw)`` of serial work.
    Upper: the greedy executor may start a weight-grad right before an
    input-grad becomes ready, delaying the critical path by at most one
    ``Tw`` per pipeline rank on top of 1F1B's ``(N + D - 1)(Tf + Tb)``
    flush (the same full-backward total, just split).
    """
    tf, tb = cfg.costs.t_fwd, cfg.costs.t_bwd
    lo = (cfg.depth - 1) * tf + cfg.n_micro * (tf + tb)
    hi = (cfg.n_micro + cfg.depth - 1) * (tf + tb) \
        + cfg.depth * cfg.costs.t_bwd_weight
    return lo, hi


ZB1F1B = register_schedule(ScheduleSpec(
    name="zb1f1b",
    description="ZB-H1 zero-bubble 1F1B: split backward, weight-grads "
                "deferred into the bubbles (Qi et al. 2024)",
    fwd_priority=lambda cfg, m, s: (1, m),
    bwd_priority=lambda cfg, m, s: (0, m),   # input-grad: critical path
    inflight_limit=lambda cfg, s: cfg.depth - s,  # same memory as 1F1B
    split_backward=True,
    wgt_priority=lambda cfg, m, s: (2, m),   # below forwards: fills bubbles
    host_overhead_s=0.145,  # Megatron/PipeDream code family, like 1F1B
    # W-filled cooldown leaves only the (D-1) Tf warmup ramp as bubble:
    # T_pipe = N (Tf + Tb) + (D-1) Tf = (2D-1) Tf + D Tb at N = D.
    critical_path=lambda d: (2 * d - 1, d),
    span_bounds=_zb_span_bounds,
))
