"""Builders for GPipe, 1F1B, Chimera, and interleaved-1F1B task graphs.

Every builder turns a :class:`PipelineConfig` into the task graph of one or
more synchronous optimization steps:

* forward/backward tasks per (micro-batch, stage) with P2P dependencies,
* optional activation recomputation before each backward,
* sync-grad allreduce tasks per data-parallel group,
* an optional precondition task (PipeFisher's only per-step overhead),
* an uncolored host-overhead interval, and
* a global barrier (the pipeline flush) between steps.

Schedule policy is expressed through task priorities and in-flight
(activation memory) limits, executed by :func:`repro.pipeline.executor.simulate_tasks`:

============  ==============================  ==============================
schedule      forward priority                 in-flight limit per stage
============  ==============================  ==============================
GPipe         before backwards, m asc          N_micro (unbounded)
1F1B          after backwards, m asc           D - stage
Chimera       after backwards, inj asc         D - local stage, per pipeline
Interleaved   before backwards, virtual        D - stage (D counts virtual
              index m + chunk*P asc            stages)
============  ==============================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.costs import StageCosts
from repro.pipeline.comm import CommModel
from repro.pipeline.work import Task, WorkKind


@dataclass
class PipelineConfig:
    """Everything a schedule builder needs.

    Attributes
    ----------
    depth:
        Number of pipeline stages D.
    n_micro:
        Micro-batches per device per step (paper's N_micro).
    costs:
        Per-stage work durations.
    comm:
        Communication model for collectives.
    dp:
        Simulated data-parallel replicas (devices = dp * depth).
    world_multiplier:
        Extra un-simulated replicas that only enlarge the allreduce world
        (e.g. Fig. 7's 64 model copies simulated as one instance).
    recompute:
        Activation recomputation (R in the figures).
    precondition:
        Append PipeFisher's per-step precondition work to the critical path.
    stage_param_bytes:
        Parameter bytes per stage (sync-grad allreduce volume).
    virtual_chunks:
        Stage chunks per device for the interleaved schedule (Megatron's
        v); ignored by GPipe/1F1B/Chimera.
    """

    depth: int
    n_micro: int
    costs: StageCosts
    comm: CommModel = field(default_factory=CommModel)
    dp: int = 1
    world_multiplier: int = 1
    recompute: bool = False
    precondition: bool = False
    stage_param_bytes: float = 0.0
    virtual_chunks: int = 2

    def __post_init__(self) -> None:
        if self.depth < 2:
            raise ValueError(f"pipeline depth must be >= 2, got {self.depth}")
        if self.n_micro < 1:
            raise ValueError(f"n_micro must be >= 1, got {self.n_micro}")
        if self.dp < 1 or self.world_multiplier < 1:
            raise ValueError("dp and world_multiplier must be >= 1")
        if self.virtual_chunks < 1:
            raise ValueError(
                f"virtual_chunks must be >= 1, got {self.virtual_chunks}"
            )


class ScheduleBuilder:
    """Base class: unidirectional schedules (GPipe, 1F1B) differ only in
    priorities and in-flight limits; Chimera overrides device mapping."""

    name: str = "base"

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    # -- device topology --------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return self.config.depth * self.config.dp

    def device(self, stage: int, replica: int) -> int:
        """Device executing ``stage`` for data-parallel ``replica``."""
        return stage * self.config.dp + replica

    def stages_of_device(self, dev: int) -> list[int]:
        """Stages hosted by a device (one here; two for Chimera)."""
        return [dev // self.config.dp]

    def dp_group(self, dev: int) -> list[int]:
        """Devices holding a replica of ``dev``'s stage (allreduce group)."""
        stage = dev // self.config.dp
        return [self.device(stage, r) for r in range(self.config.dp)]

    def allreduce_world(self, dev: int) -> int:
        return len(self.dp_group(dev)) * self.config.world_multiplier

    # -- schedule policy ----------------------------------------------------------

    def fwd_priority(self, m: int, stage: int = 0) -> tuple:
        raise NotImplementedError

    def bwd_priority(self, m: int, stage: int = 0) -> tuple:
        raise NotImplementedError

    def inflight_limit(self, stage: int) -> int:
        raise NotImplementedError

    # -- task-graph construction ----------------------------------------------------

    def build(self, steps: int = 1) -> list[Task]:
        """Task graph for ``steps`` consecutive optimization steps."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        tasks: list[Task] = []
        prev_barrier: str | None = None
        for k in range(steps):
            step_tasks, barrier = self._build_step(k, prev_barrier)
            tasks.extend(step_tasks)
            prev_barrier = barrier
        return tasks

    def _build_step(
        self, step: int, prev_barrier: str | None
    ) -> tuple[list[Task], str]:
        cfg = self.config
        c = cfg.costs
        tasks: list[Task] = []
        entry_deps = (prev_barrier,) if prev_barrier else ()

        for r in range(cfg.dp):
            for m in range(cfg.n_micro):
                for s in range(cfg.depth):
                    dev = self.device(s, r)
                    fid = f"F.{step}.{r}.{m}.{s}"
                    deps = list(entry_deps)
                    if s > 0:
                        deps.append(f"F.{step}.{r}.{m}.{s - 1}")
                    tasks.append(
                        Task(
                            tid=fid,
                            device=dev,
                            kind=WorkKind.FORWARD,
                            duration=c.t_fwd,
                            deps=tuple(deps),
                            priority=self.fwd_priority(m, s),
                            label=f"F m{m} s{s}",
                            meta={
                                "stage": s,
                                "micro_batch": m,
                                "replica": r,
                                "step": step,
                                "inflight_key": (r, "uni", s),
                                "inflight_limit": self.inflight_limit(s),
                            },
                        )
                    )
                for s in reversed(range(cfg.depth)):
                    dev = self.device(s, r)
                    bid = f"B.{step}.{r}.{m}.{s}"
                    deps = [f"F.{step}.{r}.{m}.{s}"]
                    if s < cfg.depth - 1:
                        deps.append(f"B.{step}.{r}.{m}.{s + 1}")
                    dur = c.t_bwd + (c.t_fwd if cfg.recompute else 0.0)
                    tasks.append(
                        Task(
                            tid=bid,
                            device=dev,
                            kind=WorkKind.BACKWARD,
                            duration=dur,
                            deps=tuple(deps),
                            priority=self.bwd_priority(m, s),
                            label=f"B m{m} s{s}",
                            meta={
                                "stage": s,
                                "micro_batch": m,
                                "replica": r,
                                "step": step,
                                "inflight_release": (r, "uni", s),
                                "recompute": cfg.recompute,
                            },
                        )
                    )

        tasks.extend(self._tail_tasks(step, tasks))
        barrier_id = f"BAR.{step}"
        tail_ids = [t.tid for t in tasks if t.meta.get("tail") and t.meta["step"] == step]
        tasks.append(
            Task(
                tid=barrier_id,
                device=None,
                kind=WorkKind.BARRIER,
                duration=0.0,
                deps=tuple(tail_ids),
                label=f"flush step {step}",
                meta={"step": step},
            )
        )
        return tasks, barrier_id

    def _last_backward_ids(self, step: int, dev: int, tasks: list[Task]) -> list[str]:
        """All backward tids of this step on this device (sync-grad deps)."""
        return [
            t.tid
            for t in tasks
            if t.kind == WorkKind.BACKWARD
            and t.device == dev
            and t.meta["step"] == step
        ]

    def _tail_tasks(self, step: int, body: list[Task]) -> list[Task]:
        """Per-device sync-grad -> precondition -> overhead chain."""
        cfg = self.config
        c = cfg.costs
        tail: list[Task] = []
        for dev in range(self.num_devices):
            own_bwd = self._last_backward_ids(step, dev, body)
            if not own_bwd:
                continue
            last_dep_ids = list(own_bwd)
            world = self.allreduce_world(dev)
            if world > 1 and cfg.stage_param_bytes > 0:
                group = self.dp_group(dev)
                group_bwd: list[str] = []
                for g in group:
                    group_bwd.extend(self._last_backward_ids(step, g, body))
                n_stages = len(self.stages_of_device(dev))
                dur = cfg.comm.allreduce_time(
                    cfg.stage_param_bytes * n_stages, world
                )
                sid = f"SG.{step}.{dev}"
                tail.append(
                    Task(
                        tid=sid,
                        device=dev,
                        kind=WorkKind.SYNC_GRAD,
                        duration=dur,
                        deps=tuple(group_bwd),
                        priority=(2, 0),
                        label=f"sync-grad d{dev}",
                        meta={"step": step, "tail": False},
                    )
                )
                last_dep_ids = [sid]
            if cfg.precondition:
                pid = f"PC.{step}.{dev}"
                n_stages = len(self.stages_of_device(dev))
                tail.append(
                    Task(
                        tid=pid,
                        device=dev,
                        kind=WorkKind.PRECONDITION,
                        duration=c.t_prec * n_stages,
                        deps=tuple(last_dep_ids),
                        priority=(2, 1),
                        label=f"precond d{dev}",
                        meta={"step": step, "tail": False},
                    )
                )
                last_dep_ids = [pid]
            oid = f"OH.{step}.{dev}"
            tail.append(
                Task(
                    tid=oid,
                    device=dev,
                    kind=WorkKind.OVERHEAD,
                    duration=c.t_overhead,
                    deps=tuple(last_dep_ids),
                    priority=(3, 0),
                    label=f"overhead d{dev}",
                    meta={"step": step, "tail": True},
                )
            )
        return tail


class GPipeSchedule(ScheduleBuilder):
    """GPipe: all forwards, then all backwards (reverse micro-batch order)."""

    name = "gpipe"

    def fwd_priority(self, m: int, stage: int = 0) -> tuple:
        return (0, m)

    def bwd_priority(self, m: int, stage: int = 0) -> tuple:
        return (1, self.config.n_micro - 1 - m)

    def inflight_limit(self, stage: int) -> int:
        return self.config.n_micro  # GPipe keeps every micro-batch in flight


class OneFOneBSchedule(ScheduleBuilder):
    """1F1B (PipeDream-Flush): backward-priority with D - s in-flight cap."""

    name = "1f1b"

    def fwd_priority(self, m: int, stage: int = 0) -> tuple:
        return (1, m)

    def bwd_priority(self, m: int, stage: int = 0) -> tuple:
        return (0, m)

    def inflight_limit(self, stage: int) -> int:
        return self.config.depth - stage


class InterleavedSchedule(ScheduleBuilder):
    """Interleaved 1F1B with virtual stage chunks (Megatron-LM,
    Narayanan et al. 2021).

    ``depth`` counts *virtual* stages; each of the ``depth / v`` physical
    devices hosts ``v`` non-contiguous chunks — device p runs stages
    p, p + P, p + 2P, ... with P = depth / v physical devices per replica.
    Because the first backward returns after traversing one chunk rather
    than a device's whole model share, the warmup/cooldown bubble shrinks
    by ~1/v at the cost of more in-flight activations and P2P traffic.

    Policy: chunk k of micro-batch m competes like micro-batch ``m + k*P``
    of a plain pipeline — the Megatron block-interleaving order collapsed
    into a single *virtual injection index*.  Forwards outrank backwards
    of the same index and the 1F1B alternation emerges from the in-flight
    cap (a blocked forward yields the device to the next backward), which
    reproduces the theoretical interleaved bubble (P-1)(Tf+Tb)/v to within
    one chunk slot on symmetric costs.
    """

    name = "interleaved"

    def __init__(self, config: PipelineConfig) -> None:
        super().__init__(config)
        v = config.virtual_chunks
        if v < 2:
            raise ValueError(
                f"interleaved 1F1B needs virtual_chunks >= 2, got {v}"
            )
        if config.depth % v != 0:
            raise ValueError(
                f"depth {config.depth} not divisible by virtual_chunks {v}"
            )
        if config.depth // v < 2:
            raise ValueError(
                f"interleaving {config.depth} stages over {v} chunks leaves "
                "fewer than 2 devices; reduce virtual_chunks"
            )

    @property
    def physical_depth(self) -> int:
        """Devices per replica (P); ``depth`` is P * virtual_chunks."""
        return self.config.depth // self.config.virtual_chunks

    @property
    def num_devices(self) -> int:
        return self.physical_depth * self.config.dp

    def device(self, stage: int, replica: int) -> int:
        return (stage % self.physical_depth) * self.config.dp + replica

    def stages_of_device(self, dev: int) -> list[int]:
        base = dev // self.config.dp
        return [
            base + k * self.physical_depth
            for k in range(self.config.virtual_chunks)
        ]

    def fwd_priority(self, m: int, stage: int = 0) -> tuple:
        chunk = stage // self.physical_depth
        return (0, m + chunk * self.physical_depth)

    def bwd_priority(self, m: int, stage: int = 0) -> tuple:
        rev_chunk = (self.config.depth - 1 - stage) // self.physical_depth
        return (1, m + rev_chunk * self.physical_depth)

    def inflight_limit(self, stage: int) -> int:
        return self.config.depth - stage


class ChimeraSchedule(ScheduleBuilder):
    """Chimera with two bidirectional pipelines (Li & Hoefler 2021).

    The *down* pipeline maps stage s to device s; the *up* pipeline maps
    stage s to device D-1-s, so every device hosts two stages and the two
    pipelines' bubbles interlock.  Micro-batches are split evenly; the
    model weights are replicated across the pipeline pair, giving the
    inherent 2-way data parallelism whose sync-grad appears in Fig. 4.
    """

    name = "chimera"

    def __init__(self, config: PipelineConfig) -> None:
        super().__init__(config)
        if config.depth % 2 != 0:
            raise ValueError("Chimera needs an even number of stages")
        if config.n_micro % 2 != 0:
            raise ValueError("Chimera needs an even number of micro-batches")

    def device(self, stage: int, replica: int, pipeline: str = "down") -> int:
        base = stage if pipeline == "down" else self.config.depth - 1 - stage
        return base * self.config.dp + replica

    def stages_of_device(self, dev: int) -> list[int]:
        base = dev // self.config.dp
        return sorted({base, self.config.depth - 1 - base})

    def dp_group(self, dev: int) -> list[int]:
        """The pipeline pair (plus outer replicas) holding the same stages."""
        base = dev // self.config.dp
        mirror = self.config.depth - 1 - base
        group = set()
        for b in (base, mirror):
            for r in range(self.config.dp):
                group.add(b * self.config.dp + r)
        return sorted(group)

    def fwd_priority(self, m: int, stage: int = 0) -> tuple:
        return (1, m)

    def bwd_priority(self, m: int, stage: int = 0) -> tuple:
        return (0, m)

    def inflight_limit(self, stage: int) -> int:
        return self.config.depth - stage

    def _build_step(
        self, step: int, prev_barrier: str | None
    ) -> tuple[list[Task], str]:
        cfg = self.config
        c = cfg.costs
        tasks: list[Task] = []
        entry_deps = (prev_barrier,) if prev_barrier else ()
        half = cfg.n_micro // 2

        for r in range(cfg.dp):
            for pipe in ("down", "up"):
                for m in range(half):
                    for s in range(cfg.depth):
                        dev = self.device(s, r, pipe)
                        fid = f"F.{step}.{r}.{pipe}.{m}.{s}"
                        deps = list(entry_deps)
                        if s > 0:
                            deps.append(f"F.{step}.{r}.{pipe}.{m}.{s - 1}")
                        tasks.append(
                            Task(
                                tid=fid,
                                device=dev,
                                kind=WorkKind.FORWARD,
                                duration=c.t_fwd,
                                deps=tuple(deps),
                                priority=self.fwd_priority(m, s),
                                label=f"F {pipe[0]}{m} s{s}",
                                meta={
                                    "stage": s,
                                    "micro_batch": m,
                                    "pipeline": pipe,
                                    "replica": r,
                                    "step": step,
                                    "inflight_key": (r, pipe, s),
                                    "inflight_limit": self.inflight_limit(s),
                                },
                            )
                        )
                    for s in reversed(range(cfg.depth)):
                        dev = self.device(s, r, pipe)
                        bid = f"B.{step}.{r}.{pipe}.{m}.{s}"
                        deps = [f"F.{step}.{r}.{pipe}.{m}.{s}"]
                        if s < cfg.depth - 1:
                            deps.append(f"B.{step}.{r}.{pipe}.{m}.{s + 1}")
                        dur = c.t_bwd + (c.t_fwd if cfg.recompute else 0.0)
                        tasks.append(
                            Task(
                                tid=bid,
                                device=dev,
                                kind=WorkKind.BACKWARD,
                                duration=dur,
                                deps=tuple(deps),
                                priority=self.bwd_priority(m, s),
                                label=f"B {pipe[0]}{m} s{s}",
                                meta={
                                    "stage": s,
                                    "micro_batch": m,
                                    "pipeline": pipe,
                                    "replica": r,
                                    "step": step,
                                    "inflight_release": (r, pipe, s),
                                    "recompute": cfg.recompute,
                                },
                            )
                        )

        tasks.extend(self._tail_tasks(step, tasks))
        barrier_id = f"BAR.{step}"
        tail_ids = [
            t.tid for t in tasks if t.meta.get("tail") and t.meta["step"] == step
        ]
        tasks.append(
            Task(
                tid=barrier_id,
                device=None,
                kind=WorkKind.BARRIER,
                duration=0.0,
                deps=tuple(tail_ids),
                label=f"flush step {step}",
                meta={"step": step},
            )
        )
        return tasks, barrier_id

    def allreduce_world(self, dev: int) -> int:
        # The pair is genuine replication; outer instances multiply it.
        return len(self.dp_group(dev)) * self.config.world_multiplier


SCHEDULES: dict[str, type[ScheduleBuilder]] = {
    "gpipe": GPipeSchedule,
    "1f1b": OneFOneBSchedule,
    "chimera": ChimeraSchedule,
    "interleaved": InterleavedSchedule,
}


def make_schedule(name: str, config: PipelineConfig) -> ScheduleBuilder:
    """Instantiate a schedule builder by name."""
    try:
        cls = SCHEDULES[name]
    except KeyError:
        raise ValueError(f"unknown schedule {name!r}; choose from {sorted(SCHEDULES)}")
    return cls(config)
