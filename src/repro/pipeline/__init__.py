"""Pipeline-parallel training substrate.

Implements the three synchronous pipeline schedules the paper targets —
**GPipe** (Huang et al. 2019), **1F1B** (PipeDream-Flush, Narayanan et al.
2019), and **Chimera** (Li & Hoefler 2021, bidirectional, two pipelines) —
plus **interleaved 1F1B** (Megatron-LM virtual stages, Narayanan et al.
2021) and **ZB-H1 zero-bubble 1F1B** (split backward, Qi et al. 2024), as
dependency graphs of work items executed by a discrete-event simulator
with per-device clocks, plus a numerically-executing pipeline used to
verify that pipelined gradient computation is exact.

Every schedule is a declarative :class:`~repro.pipeline.spec.ScheduleSpec`
in a registry; one generic builder executes the spec's program, so a new
schedule is a ``register_schedule`` call plus tests.
"""

from repro.pipeline.work import Task, WorkKind, COMPUTE_KINDS
from repro.pipeline.comm import CommModel
from repro.pipeline.spec import (
    ScheduleSpec,
    register_schedule,
    get_spec,
    schedule_names,
    schedule_specs,
)
from repro.pipeline.schedules import (
    PipelineConfig,
    ScheduleBuilder,
    GPipeSchedule,
    OneFOneBSchedule,
    ChimeraSchedule,
    InterleavedSchedule,
    ZeroBubbleSchedule,
    builder_class,
    make_schedule,
    SCHEDULES,
)
from repro.pipeline.executor import simulate_tasks, SimulationResult
from repro.pipeline.bubbles import bubble_time, bubble_fraction
from repro.pipeline.numeric import NumericPipeline

__all__ = [
    "Task",
    "WorkKind",
    "COMPUTE_KINDS",
    "CommModel",
    "PipelineConfig",
    "ScheduleBuilder",
    "ScheduleSpec",
    "register_schedule",
    "get_spec",
    "schedule_names",
    "schedule_specs",
    "GPipeSchedule",
    "OneFOneBSchedule",
    "ChimeraSchedule",
    "InterleavedSchedule",
    "ZeroBubbleSchedule",
    "builder_class",
    "make_schedule",
    "SCHEDULES",
    "simulate_tasks",
    "SimulationResult",
    "bubble_time",
    "bubble_fraction",
    "NumericPipeline",
]
