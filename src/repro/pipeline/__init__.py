"""Pipeline-parallel training substrate.

Implements the three synchronous pipeline schedules the paper targets —
**GPipe** (Huang et al. 2019), **1F1B** (PipeDream-Flush, Narayanan et al.
2019), and **Chimera** (Li & Hoefler 2021, bidirectional, two pipelines) —
plus **interleaved 1F1B** (Megatron-LM virtual stages, Narayanan et al.
2021), as dependency graphs of work items executed by a discrete-event simulator
with per-device clocks, plus a numerically-executing pipeline used to
verify that pipelined gradient computation is exact.
"""

from repro.pipeline.work import Task, WorkKind, COMPUTE_KINDS
from repro.pipeline.comm import CommModel
from repro.pipeline.schedules import (
    PipelineConfig,
    ScheduleBuilder,
    GPipeSchedule,
    OneFOneBSchedule,
    ChimeraSchedule,
    InterleavedSchedule,
    make_schedule,
    SCHEDULES,
)
from repro.pipeline.executor import simulate_tasks, SimulationResult
from repro.pipeline.bubbles import bubble_time, bubble_fraction
from repro.pipeline.numeric import NumericPipeline

__all__ = [
    "Task",
    "WorkKind",
    "COMPUTE_KINDS",
    "CommModel",
    "PipelineConfig",
    "ScheduleBuilder",
    "GPipeSchedule",
    "OneFOneBSchedule",
    "ChimeraSchedule",
    "InterleavedSchedule",
    "make_schedule",
    "SCHEDULES",
    "simulate_tasks",
    "SimulationResult",
    "bubble_time",
    "bubble_fraction",
    "NumericPipeline",
]
