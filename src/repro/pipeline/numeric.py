"""Numerically-executing pipeline: proves schedule transparency.

Synchronous pipeline parallelism computes *exactly* the same gradients as
non-pipelined training — only the execution order changes.  This module
actually runs a stage-partitioned BERT over micro-batches in pipeline
order and accumulates gradients, so tests can assert bit-level agreement
(up to fp summation order) with a monolithic backward pass.  It is also
the numeric substrate for the convergence experiment's gradient
accumulation (Appendix B.2 simulates an 8K mini-batch the same way).
"""

from __future__ import annotations

import numpy as np

from repro.models.bert import BertForPreTraining
from repro.models.partition import StagePartition, partition_layers
from repro.tensor import Tensor


class NumericPipeline:
    """Micro-batched gradient computation over a stage-partitioned model.

    Parameters
    ----------
    model:
        The full pretraining model (stages share its parameters, as real
        pipeline stages hold partitions of the same network).
    num_stages:
        Pipeline depth; encoder blocks are split contiguously.
    """

    def __init__(self, model: BertForPreTraining, num_stages: int) -> None:
        self.model = model
        self.partition: StagePartition = partition_layers(
            model.config.num_hidden_layers, num_stages
        )

    def _forward_stage(self, stage: int, x: Tensor, attention_mask) -> Tensor:
        for layer_idx in self.partition.stage_layers[stage]:
            x = self.model.encoder.layers[layer_idx](x, attention_mask)
        return x

    def forward(self, input_ids, token_type_ids=None, attention_mask=None):
        """Full forward pass routed stage by stage (same math as model())."""
        x = self.model.embeddings(input_ids, token_type_ids)
        for s in range(self.partition.num_stages):
            x = self._forward_stage(s, x, attention_mask)
        pooled = self.model.pooler(x)
        return self.model.heads(x, pooled)

    def run_step(
        self,
        input_ids: np.ndarray,
        mlm_labels: np.ndarray,
        nsp_labels: np.ndarray,
        n_micro: int,
        token_type_ids: np.ndarray | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> float:
        """One pipelined optimization step's gradient computation.

        Splits the mini-batch into ``n_micro`` micro-batches, runs each
        through the stages, and accumulates gradients scaled by 1/n_micro
        (so the result equals the full-batch mean-loss gradient when
        micro-batches are equal-sized).  Returns the mean loss.
        """
        batch = input_ids.shape[0]
        if batch % n_micro != 0:
            raise ValueError(
                f"batch size {batch} not divisible into {n_micro} micro-batches"
            )
        mb = batch // n_micro
        total_loss = 0.0
        for m in range(n_micro):
            sl = slice(m * mb, (m + 1) * mb)
            tt = token_type_ids[sl] if token_type_ids is not None else None
            am = attention_mask[sl] if attention_mask is not None else None
            mlm_logits, nsp_logits = self.forward(input_ids[sl], tt, am)
            from repro.nn.losses import masked_lm_loss, next_sentence_loss

            loss = masked_lm_loss(mlm_logits, mlm_labels[sl]) + next_sentence_loss(
                nsp_logits, nsp_labels[sl]
            )
            scaled = loss * (1.0 / n_micro)
            scaled.backward()
            total_loss += float(loss.item()) / n_micro
        return total_loss
