"""Communication cost model.

P2P (send/recv of stage-boundary activations) is "small and can easily be
overlapped with forward and backward passes" (paper §1); the §3.3 model
ignores it, and so does the simulator by default (a latency knob exists for
ablations).  Collective allreduce (sync-grad, sync-curvature) is the real
cost and uses the standard ring model:

    t = latency * 2 (W - 1) + 2 (W - 1) / W * bytes / bus_bandwidth
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CommModel:
    """Bandwidth/latency parameters for one cluster.

    Attributes
    ----------
    allreduce_gbs:
        Effective allreduce bus bandwidth per device, GB/s (calibrated to
        the paper's P100 cluster; see perfmodel.calibration).
    p2p_gbs:
        Point-to-point bandwidth for stage-boundary sends.
    latency_s:
        Per-hop latency.
    """

    allreduce_gbs: float = 1.1
    intra_node_gbs: float = 5.0
    intra_node_world: int = 4
    p2p_gbs: float = 8.0
    latency_s: float = 20e-6

    def allreduce_time(self, nbytes: float, world: int) -> float:
        """Ring allreduce duration across ``world`` participants.

        Groups of up to ``intra_node_world`` devices communicate over the
        fast intra-node fabric; larger groups cross the cluster
        interconnect (the fitted effective bus bandwidth).
        """
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        if world == 1:
            return 0.0
        gbs = self.intra_node_gbs if world <= self.intra_node_world else self.allreduce_gbs
        steps = 2 * (world - 1)
        bw = gbs * 1e9
        return self.latency_s * steps + (steps / world) * nbytes / bw

    def p2p_time(self, nbytes: float) -> float:
        """Point-to-point transfer duration."""
        return self.latency_s + nbytes / (self.p2p_gbs * 1e9)
