"""Work items for the discrete-event pipeline simulation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class WorkKind(str, enum.Enum):
    """Types of work a device can perform (the colors of Figs. 1, 3, 4)."""

    FORWARD = "forward"
    BACKWARD = "backward"
    #: Zero-bubble split backward: input-grad (B, critical path) and
    #: weight-grad (W, deferrable into bubbles) halves.
    BACKWARD_INPUT = "backward_input"
    BACKWARD_WEIGHT = "backward_weight"
    RECOMPUTE = "recompute"
    CURVATURE = "curvature"
    INVERSION = "inversion"
    PRECONDITION = "precondition"
    SYNC_GRAD = "sync_grad"
    SYNC_CURV = "sync_curv"
    OVERHEAD = "overhead"
    BARRIER = "barrier"  # zero-duration control dependency


#: Kinds that occupy a device exclusively.
COMPUTE_KINDS = {
    WorkKind.FORWARD,
    WorkKind.BACKWARD,
    WorkKind.BACKWARD_INPUT,
    WorkKind.BACKWARD_WEIGHT,
    WorkKind.RECOMPUTE,
    WorkKind.CURVATURE,
    WorkKind.INVERSION,
    WorkKind.PRECONDITION,
    WorkKind.SYNC_GRAD,
    WorkKind.SYNC_CURV,
}


@dataclass
class Task:
    """One schedulable unit.

    Attributes
    ----------
    tid:
        Unique id.
    device:
        Executing device, or ``None`` for control tasks (barriers).
    kind:
        Work type.
    duration:
        Seconds of device occupancy.
    deps:
        tids that must complete before this task may start.
    priority:
        Tuple compared ascending when a device chooses among ready tasks;
        this is where each schedule's policy (GPipe phase order, 1F1B
        backward-priority, Chimera injection order) is encoded.
    label, meta:
        Display/diagnostic info (stage, micro-batch, step, pipeline).
    """

    tid: str
    device: int | None
    kind: WorkKind
    duration: float
    deps: tuple[str, ...] = ()
    priority: tuple = ()
    label: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative duration for task {self.tid}")
        if self.device is None and self.kind not in (WorkKind.BARRIER,):
            raise ValueError(f"non-control task {self.tid} needs a device")
