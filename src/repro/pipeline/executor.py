"""Discrete-event execution of pipeline task graphs.

Greedy list scheduling with per-device clocks: whenever a device is free it
starts the highest-priority *ready and eligible* task assigned to it; if
nothing is ready it waits for the next dependency to complete.  The
schedule-specific behaviour (GPipe's phase order, 1F1B's backward priority
and in-flight limit, Chimera's injection order) lives entirely in the
tasks' ``priority`` tuples and in-flight metadata, so one executor serves
every schedule.

Eligibility (activation-memory admission control) uses two meta keys:

* ``inflight_key``/``inflight_limit`` on a FORWARD: the forward may start
  only while fewer than ``limit`` micro-batches are in flight for that key.
* ``inflight_release`` on a BACKWARD: completing it releases one slot.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.pipeline.work import Task, WorkKind
from repro.profiler.timeline import Timeline, TimelineEvent


@dataclass
class SimulationResult:
    """Output of a pipeline simulation."""

    timeline: Timeline
    start_times: dict[str, float]
    end_times: dict[str, float]
    makespan: float
    #: Peak number of in-flight micro-batches seen per inflight key.
    peak_inflight: dict = field(default_factory=dict)

    def end_of(self, tid: str) -> float:
        return self.end_times[tid]


def simulate_tasks(
    tasks: list[Task],
    num_devices: int,
    start_time: float = 0.0,
) -> SimulationResult:
    """Simulate a task graph and return the resulting timeline.

    Raises ``RuntimeError`` on dependency cycles or unknown deps.
    """
    by_id: dict[str, Task] = {}
    for t in tasks:
        if t.tid in by_id:
            raise ValueError(f"duplicate task id {t.tid}")
        by_id[t.tid] = t
    for t in tasks:
        for d in t.deps:
            if d not in by_id:
                raise RuntimeError(f"task {t.tid} depends on unknown task {d}")

    dependents: dict[str, list[str]] = defaultdict(list)
    missing: dict[str, int] = {}
    for t in tasks:
        missing[t.tid] = len(t.deps)
        for d in t.deps:
            dependents[d].append(t.tid)

    device_free: dict[int, float] = defaultdict(lambda: start_time)
    # ready_time = max over completed deps' end times.
    ready_time: dict[str, float] = {t.tid: start_time for t in tasks}
    ready: dict[int, set[str]] = defaultdict(set)
    control_ready: list[str] = []
    start_times: dict[str, float] = {}
    end_times: dict[str, float] = {}
    inflight: dict = defaultdict(int)
    peak_inflight: dict = defaultdict(int)
    timeline = Timeline(num_devices)

    def mark_ready(tid: str) -> None:
        t = by_id[tid]
        if t.device is None:
            control_ready.append(tid)
        else:
            ready[t.device].add(tid)

    for t in tasks:
        if missing[t.tid] == 0:
            mark_ready(t.tid)

    def complete(tid: str, end: float) -> None:
        end_times[tid] = end
        t = by_id[tid]
        rel = t.meta.get("inflight_release")
        if rel is not None:
            inflight[rel] -= 1
        for dep_id in dependents[tid]:
            missing[dep_id] -= 1
            ready_time[dep_id] = max(ready_time[dep_id], end)
            if missing[dep_id] == 0:
                mark_ready(dep_id)

    remaining = len(tasks)
    while remaining > 0:
        # Control tasks complete instantly once their deps are done.
        while control_ready:
            tid = control_ready.pop()
            start_times[tid] = ready_time[tid]
            complete(tid, ready_time[tid])
            remaining -= 1
        if remaining == 0:
            break

        # Each device proposes its next (start, priority, tid).
        best: tuple | None = None
        for dev, pool in ready.items():
            if not pool:
                continue
            eligible = []
            blocked_min_start = None
            for tid in pool:
                t = by_id[tid]
                key = t.meta.get("inflight_key")
                if key is not None:
                    limit = t.meta["inflight_limit"]
                    if inflight[key] >= limit:
                        continue  # admission-blocked; may free up later
                eligible.append(tid)
            if not eligible:
                continue
            t_star = max(device_free[dev], min(ready_time[t] for t in eligible))
            avail = [t for t in eligible if ready_time[t] <= t_star + 1e-12]
            tid = min(avail, key=lambda x: by_id[x].priority)
            cand = (t_star, by_id[tid].priority, dev, tid)
            if best is None or cand < best:
                best = cand

        if best is None:
            stuck = [t for t in by_id.values() if t.tid not in end_times]
            raise RuntimeError(
                f"deadlock: {len(stuck)} tasks cannot run "
                f"(first few: {[t.tid for t in stuck[:5]]}); check deps and "
                "in-flight limits"
            )

        t_start, _, dev, tid = best
        task = by_id[tid]
        ready[dev].discard(tid)
        key = task.meta.get("inflight_key")
        if key is not None:
            inflight[key] += 1
            peak_inflight[key] = max(peak_inflight[key], inflight[key])
        t_end = t_start + task.duration
        device_free[dev] = t_end
        start_times[tid] = t_start
        timeline.add(
            TimelineEvent(dev, task.kind.value, t_start, t_end, task.label, task.meta)
        )
        complete(tid, t_end)
        remaining -= 1

    makespan = max(end_times.values(), default=start_time)
    return SimulationResult(
        timeline=timeline,
        start_times=start_times,
        end_times=end_times,
        makespan=makespan,
        peak_inflight=dict(peak_inflight),
    )
