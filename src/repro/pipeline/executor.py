"""Discrete-event execution of pipeline task graphs.

Event-driven list scheduling: a global event heap holds task completions
in simulated-time order; each device keeps a ready heap of its runnable
tasks keyed by ``(priority, tid)``.  When a completion fires, it releases
the finished task's in-flight slot, promotes dependents whose last
dependency just ended, and wakes every device whose state changed; a woken
idle device immediately starts its best *eligible* ready task.  The
schedule-specific behaviour (GPipe's phase order, 1F1B's backward priority
and in-flight limit, Chimera's injection order, interleaved-1F1B's chunk
order) lives entirely in the tasks' ``priority`` tuples and in-flight
metadata, so one executor serves every schedule.

Eligibility (activation-memory admission control) uses two meta keys:

* ``inflight_key``/``inflight_limit`` on a FORWARD: the forward may start
  only while fewer than ``limit`` micro-batches are in flight for that key.
* ``inflight_release`` on the releasing task — the full BACKWARD, or the
  input-grad (BACKWARD_INPUT) half when the schedule splits the backward:
  the slot is freed at that task's simulated *end* time (a forward
  elsewhere can never be admitted at a simulated time before the task
  that frees its slot has finished).  Zero-bubble weight-grad tasks
  neither hold nor release slots: they consume saved tensors accounted
  to the already-released micro-batch, so deferring them into bubbles
  cannot deadlock admission.

The run is deterministic: every tie — equal priorities, equal event
times — is broken by task id or insertion order, never by hash order, so
two simulations of the same graph produce identical timelines regardless
of ``PYTHONHASHSEED``.

Complexity is O(T log T) in the number of tasks (plus re-queueing of
admission-blocked tasks), independent of the device count — the previous
implementation re-scanned every device's whole ready pool per scheduling
decision, which made ~100k-task architecture sweeps quadratic in practice
(see ``benchmarks/test_executor_scaling.py``).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.pipeline.work import Task, WorkKind
from repro.profiler.timeline import Timeline, TimelineEvent

#: Two simulated instants closer than this are the same instant (guards
#: float drift when equal end times are summed along different dep paths).
_TIME_EPS = 1e-12


@dataclass
class SimulationResult:
    """Output of a pipeline simulation."""

    timeline: Timeline
    start_times: dict[str, float]
    end_times: dict[str, float]
    makespan: float
    #: Peak number of in-flight micro-batches seen per inflight key.
    peak_inflight: dict = field(default_factory=dict)

    def end_of(self, tid: str) -> float:
        return self.end_times[tid]


def simulate_tasks(
    tasks: list[Task],
    num_devices: int,
    start_time: float = 0.0,
) -> SimulationResult:
    """Simulate a task graph and return the resulting timeline.

    Raises ``RuntimeError`` on dependency cycles or unknown deps.
    """
    by_id: dict[str, Task] = {}
    for t in tasks:
        if t.tid in by_id:
            raise ValueError(f"duplicate task id {t.tid}")
        by_id[t.tid] = t
    for t in tasks:
        for d in t.deps:
            if d not in by_id:
                raise RuntimeError(f"task {t.tid} depends on unknown task {d}")

    dependents: dict[str, list[str]] = defaultdict(list)
    missing: dict[str, int] = {}
    for t in tasks:
        missing[t.tid] = len(t.deps)
        for d in t.deps:
            dependents[d].append(t.tid)

    device_free: dict[int, float] = defaultdict(lambda: start_time)
    ready: dict[int, list[tuple]] = defaultdict(list)  # heap of (prio, tid)
    #: Admission-blocked tasks, per inflight key; re-queued on release.
    parked: dict = defaultdict(list)
    start_times: dict[str, float] = {}
    end_times: dict[str, float] = {}
    inflight: dict = defaultdict(int)
    peak_inflight: dict = defaultdict(int)
    timeline = Timeline(num_devices)
    remaining = len(tasks)

    #: (end_time, insertion_seq, tid) — seq keeps equal-time pops FIFO.
    events: list[tuple[float, int, str]] = []
    seq = 0

    def promote(tid: str, now: float, dirty: set[int]) -> None:
        """All deps of ``tid`` are done as of ``now``: make it runnable.

        Control tasks (device None) complete instantly, cascading through
        their dependents; device tasks enter their device's ready heap.
        """
        nonlocal remaining
        stack = [tid]
        while stack:
            cur = stack.pop()
            t = by_id[cur]
            if t.device is None:
                start_times[cur] = now
                end_times[cur] = now
                remaining -= 1
                for dep_id in dependents[cur]:
                    missing[dep_id] -= 1
                    if missing[dep_id] == 0:
                        stack.append(dep_id)
            else:
                heapq.heappush(ready[t.device], (t.priority, cur))
                dirty.add(t.device)

    def finish(tid: str, end: float, dirty: set[int]) -> None:
        """Apply a completion's effects at its simulated end time."""
        nonlocal remaining
        end_times[tid] = end
        remaining -= 1
        t = by_id[tid]
        dirty.add(t.device)
        rel = t.meta.get("inflight_release")
        if rel is not None:
            inflight[rel] -= 1
            if parked[rel]:
                # A slot freed: blocked tasks compete again at their devices.
                for prio, blocked_tid in parked[rel]:
                    dev = by_id[blocked_tid].device
                    heapq.heappush(ready[dev], (prio, blocked_tid))
                    dirty.add(dev)
                parked[rel].clear()
        for dep_id in dependents[tid]:
            missing[dep_id] -= 1
            if missing[dep_id] == 0:
                promote(dep_id, end, dirty)

    def dispatch(dev: int, now: float) -> None:
        """Start the device's best eligible ready task, if it is idle."""
        nonlocal seq
        if device_free[dev] > now + _TIME_EPS:
            return
        heap = ready[dev]
        while heap:
            prio, tid = heap[0]
            task = by_id[tid]
            key = task.meta.get("inflight_key")
            if key is not None and inflight[key] >= task.meta["inflight_limit"]:
                heapq.heappop(heap)
                parked[key].append((prio, tid))
                continue  # admission-blocked; a release will re-queue it
            heapq.heappop(heap)
            if key is not None:
                inflight[key] += 1
                peak_inflight[key] = max(peak_inflight[key], inflight[key])
            t_end = now + task.duration
            device_free[dev] = t_end
            start_times[tid] = now
            timeline.add(
                TimelineEvent(dev, task.kind.value, now, t_end, task.label, task.meta)
            )
            heapq.heappush(events, (t_end, seq, tid))
            seq += 1
            return

    # Seed: zero-dep tasks are runnable at start_time; control chains that
    # are complete from the outset collapse immediately.
    dirty: set[int] = set()
    for t in tasks:
        if missing[t.tid] == 0:
            promote(t.tid, start_time, dirty)
    for dev in sorted(dirty):
        dispatch(dev, start_time)

    while events:
        now = events[0][0]
        dirty = set()
        # Drain every completion at this instant before any device picks,
        # so simultaneous releases/readiness are all visible to the pick.
        while events and events[0][0] <= now + _TIME_EPS:
            _, _, tid = heapq.heappop(events)
            finish(tid, now, dirty)
        for dev in sorted(dirty):
            dispatch(dev, now)

    if remaining > 0:
        stuck = [t for t in by_id.values() if t.tid not in end_times]
        raise RuntimeError(
            f"deadlock: {len(stuck)} tasks cannot run "
            f"(first few: {[t.tid for t in stuck[:5]]}); check deps and "
            "in-flight limits"
        )

    makespan = max(end_times.values(), default=start_time)
    return SimulationResult(
        timeline=timeline,
        start_times=start_times,
        end_times=end_times,
        makespan=makespan,
        peak_inflight=dict(peak_inflight),
    )
