"""Training harness: pretraining loops, convergence metrics, wall-clock
simulation (the paper's Fig. 7 / Table 2 methodology)."""

from repro.training.trainer import Trainer, TrainConfig
from repro.training.convergence import (
    LossCurve,
    smooth_loss,
    steps_to_target,
)
from repro.training.wallclock import simulated_minutes, time_to_target

__all__ = [
    "Trainer",
    "TrainConfig",
    "LossCurve",
    "smooth_loss",
    "steps_to_target",
    "simulated_minutes",
    "time_to_target",
]
