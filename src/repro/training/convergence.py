"""Convergence metrics and the paper's loss smoothing.

Fig. 7's curves are smoothed with
``scipy.signal.filtfilt(*signal.butter(3, 0.05), y)`` (caption); the
steps-to-target measurement uses the smoothed curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal


def smooth_loss(losses: np.ndarray, order: int = 3, cutoff: float = 0.05) -> np.ndarray:
    """Zero-phase Butterworth smoothing, exactly as in the Fig. 7 caption."""
    losses = np.asarray(losses, dtype=np.float64)
    # filtfilt needs a minimum signal length relative to the filter order.
    min_len = 3 * (order + 1) * 3
    if losses.size < min_len:
        return losses.copy()
    b, a = signal.butter(order, cutoff)
    return signal.filtfilt(b, a, losses)


def steps_to_target(
    losses: np.ndarray,
    target: float,
    smooth: bool = True,
    skip_initial: int = 0,
) -> int | None:
    """First step (1-based) at which the (smoothed) loss reaches ``target``.

    ``skip_initial`` ignores early steps (the paper ignores "large
    fluctuations around the 1,000th step").  Returns None if never reached.
    """
    y = smooth_loss(losses) if smooth else np.asarray(losses, dtype=np.float64)
    for i in range(skip_initial, y.size):
        if y[i] <= target:
            return i + 1
    return None


@dataclass
class LossCurve:
    """A named training curve plus derived statistics."""

    name: str
    losses: np.ndarray
    time_per_step_s: float | None = None

    @property
    def final_loss(self) -> float:
        return float(smooth_loss(self.losses)[-1])

    @property
    def raw_final_loss(self) -> float:
        return float(np.asarray(self.losses)[-1])

    def steps_to(self, target: float, skip_initial: int = 0) -> int | None:
        return steps_to_target(self.losses, target, skip_initial=skip_initial)

    def minutes_to(self, target: float, skip_initial: int = 0) -> float | None:
        """Simulated wall-clock minutes to reach ``target``."""
        if self.time_per_step_s is None:
            raise ValueError(f"curve {self.name} has no time_per_step")
        s = self.steps_to(target, skip_initial=skip_initial)
        return None if s is None else s * self.time_per_step_s / 60.0
