"""Simulated wall-clock accounting (the paper's §4 / Table 2 methodology).

"we simulate the time by multiplying the measured time per step by the
total number of steps" — our time-per-step comes from the pipeline
simulator instead of a physical cluster.
"""

from __future__ import annotations


def simulated_minutes(steps: int, time_per_step_s: float) -> float:
    """Total simulated training time in minutes."""
    if steps < 0 or time_per_step_s < 0:
        raise ValueError("steps and time_per_step_s must be non-negative")
    return steps * time_per_step_s / 60.0


def time_to_target(
    steps_to_target: int,
    time_per_step_s: float,
) -> float:
    """Minutes for a run to reach a loss target given its step time."""
    return simulated_minutes(steps_to_target, time_per_step_s)
