"""Pretraining loop for BERT with first-order or K-FAC optimizers.

Follows Appendix B.2: gradient accumulation over micro-batches to form the
mini-batch (the paper simulates an 8K batch on 32 GPUs by accumulating
8 micro-batch gradients), global gradient clipping, and a per-step LR
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataloader import PretrainDataLoader
from repro.kfac.kfac import KFAC
from repro.models.bert import BertForPreTraining
from repro.optim.base import Optimizer, clip_grad_norm
from repro.optim.lr_scheduler import LRSchedule


@dataclass
class TrainConfig:
    """Loop hyperparameters."""

    batch_size: int = 32
    grad_accumulation: int = 1
    clip_norm: float | None = 1.0
    log_every: int = 10


@dataclass
class TrainState:
    """Mutable loop state exposed to callers."""

    step: int = 0
    losses: list[float] = field(default_factory=list)
    mlm_losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)


class Trainer:
    """Drives pretraining of a :class:`BertForPreTraining` model.

    The optimizer may be a plain :class:`Optimizer` (NVLAMB baseline) or a
    :class:`KFAC` wrapper (the paper's K-FAC runs); the loop is identical —
    which is the point of PipeFisher: preconditioning is the only extra
    per-step work.
    """

    def __init__(
        self,
        model: BertForPreTraining,
        optimizer: Optimizer | KFAC,
        data: PretrainDataLoader,
        schedule: LRSchedule | None = None,
        config: TrainConfig | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.data = data
        self.schedule = schedule
        self.config = config or TrainConfig()
        self.state = TrainState()
        self._params = list(model.parameters())

    def train_step(self) -> float:
        """One optimization step (with gradient accumulation). Returns loss."""
        cfg = self.config
        self.optimizer.zero_grad()
        step_loss = 0.0
        step_mlm = 0.0
        for _ in range(cfg.grad_accumulation):
            batch = self.data.next_batch(cfg.batch_size)
            loss, metrics = self.model.loss(
                batch.input_ids,
                batch.mlm_labels,
                batch.nsp_labels,
                token_type_ids=batch.token_type_ids,
                attention_mask=batch.attention_mask,
            )
            scaled = loss * (1.0 / cfg.grad_accumulation)
            scaled.backward()
            step_loss += metrics["loss"] / cfg.grad_accumulation
            step_mlm += metrics["mlm_loss"] / cfg.grad_accumulation

        if cfg.clip_norm is not None:
            clip_grad_norm(self._params, cfg.clip_norm)
        if self.schedule is not None:
            lr = self.schedule.step()
            self.optimizer.lr = lr
        else:
            lr = self.optimizer.lr
        self.optimizer.step()

        st = self.state
        st.step += 1
        st.losses.append(step_loss)
        st.mlm_losses.append(step_mlm)
        st.lrs.append(lr)
        return step_loss

    def train(self, steps: int, verbose: bool = False) -> TrainState:
        """Run ``steps`` optimization steps."""
        for _ in range(steps):
            loss = self.train_step()
            if verbose and self.state.step % self.config.log_every == 0:
                print(f"step {self.state.step:5d}  loss {loss:.4f}")
        return self.state

    @property
    def losses(self) -> np.ndarray:
        return np.asarray(self.state.losses)
