"""Embedding table module."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            (rng.standard_normal((num_embeddings, embedding_dim)) * init_std).astype(
                np.float32
            )
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.max(initial=0) >= self.num_embeddings or ids.min(initial=0) < 0:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        return F.embedding(self.weight, ids)
